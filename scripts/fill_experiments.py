#!/usr/bin/env python3
"""Fills EXPERIMENTS.md's MEASURED_* placeholders from bench_output.txt.

Usage: python3 scripts/fill_experiments.py
Idempotent only in the placeholder direction: run it once after a full
`cargo bench --workspace 2>&1 | tee bench_output.txt`.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BENCH = (ROOT / "bench_output.txt").read_text()
EXP = ROOT / "EXPERIMENTS.md"


def section(marker: str) -> str:
    """Text of one bench target's output (from its Running line to the next)."""
    pattern = rf"Running benches/{marker}\.rs.*?(?=Running benches/|\Z)"
    m = re.search(pattern, BENCH, re.S)
    if not m:
        sys.exit(f"bench section {marker} not found in bench_output.txt")
    return m.group(0)


def grab(text: str, pattern: str) -> str:
    m = re.search(pattern, text)
    if not m:
        sys.exit(f"pattern {pattern!r} not found")
    return m.group(1)


fig4 = section("fig4_ilu0_a100")
fig5 = section("fig5_iluk_a100")

repl = {
    "MEASURED_FIG4_GMEAN": grab(fig4, r"gmean per-iteration speedup: ([\d.]+x)"),
    "MEASURED_FIG4_ACC": grab(fig4, r"% accelerated: ([\d.]+%)"),
    "MEASURED_FIG4_E2E": grab(fig4, r"gmean end-to-end speedup: ([\d.]+x)"),
    "MEASURED_FIG4_SAME": grab(fig4, r"iterations approximately unchanged: ([\d.]+%)"),
    "MEASURED_FIG5_GMEAN": grab(fig5, r"gmean per-iteration speedup: ([\d.]+x)"),
    "MEASURED_FIG5_ACC": grab(fig5, r"% accelerated: ([\d.]+%)"),
    "MEASURED_FIG5_WORST": grab(fig5, r"worst slowdown: ([\d.]+x)"),
    "MEASURED_FIG5_E2E": grab(fig5, r"gmean end-to-end speedup: ([\d.]+x)"),
    "MEASURED_FIG5_SAME": grab(fig5, r"iterations approximately unchanged: ([\d.]+%)"),
}

text = EXP.read_text()
for k, v in repl.items():
    if k not in text:
        print(f"note: placeholder {k} absent (already filled?)")
    text = text.replace(k, v)
EXP.write_text(text)
print("EXPERIMENTS.md updated:")
for k, v in repl.items():
    print(f"  {k} = {v}")
