#!/usr/bin/env python3
"""Refreshes EXPERIMENTS.md from benchmark artifacts.

Two jobs, both idempotent:

1. **Trajectory tables** (always): reads the tracked `BENCH_10.json` written
   by `cargo bench -p spcg-bench --bench trajectory` and regenerates the
   tables between the `BENCH_TRAJECTORY:BEGIN/END`,
   `BENCH_ORDERINGS:BEGIN/END`, `BENCH_PRECISION:BEGIN/END`,
   `BENCH_SYNC:BEGIN/END`, `BENCH_PRECOND:BEGIN/END`,
   `BENCH_SERVE:BEGIN/END`, and
   `BENCH_SEQUENCE:BEGIN/END` markers.
   Re-running with the same JSON is a no-op.
2. **MEASURED_* placeholders** (only when `bench_output.txt` exists):
   greps the captured full-collection bench run for the Fig 4/5 headline
   numbers and substitutes any placeholders still present. The full run
   takes minutes and its capture is not tracked, so this step is skipped —
   not fatal — when the file is absent.

Usage: python3 scripts/fill_experiments.py
"""

import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
EXP = ROOT / "EXPERIMENTS.md"
BENCH_JSON = ROOT / "BENCH_10.json"
BENCH_TXT = ROOT / "bench_output.txt"

BEGIN = "<!-- BENCH_TRAJECTORY:BEGIN -->"
END = "<!-- BENCH_TRAJECTORY:END -->"
ORD_BEGIN = "<!-- BENCH_ORDERINGS:BEGIN -->"
ORD_END = "<!-- BENCH_ORDERINGS:END -->"
PREC_BEGIN = "<!-- BENCH_PRECISION:BEGIN -->"
PREC_END = "<!-- BENCH_PRECISION:END -->"
SYNC_BEGIN = "<!-- BENCH_SYNC:BEGIN -->"
SYNC_END = "<!-- BENCH_SYNC:END -->"
PRECOND_BEGIN = "<!-- BENCH_PRECOND:BEGIN -->"
PRECOND_END = "<!-- BENCH_PRECOND:END -->"
SERVE_BEGIN = "<!-- BENCH_SERVE:BEGIN -->"
SERVE_END = "<!-- BENCH_SERVE:END -->"
SEQ_BEGIN = "<!-- BENCH_SEQUENCE:BEGIN -->"
SEQ_END = "<!-- BENCH_SEQUENCE:END -->"


def trajectory_block(traj: dict) -> str:
    """Markdown table for the tracked trajectory point."""
    lines = [
        f"Fixed-recipe ILU(0) trajectory on the {traj['device']} "
        f"(tolerance {traj['tolerance']:g}); regenerate with",
        "`cargo bench -p spcg-bench --bench trajectory && "
        "python3 scripts/fill_experiments.py`.",
        "",
        "| Fixture | n | nnz | Iters (base → spcg) | Per-iter | End-to-end |",
        "|---|---|---|---|---|---|",
    ]
    for r in traj["rows"]:
        lines.append(
            f"| {r['name']} | {r['n']} | {r['nnz']} "
            f"| {r['baseline']['iterations']} → {r['spcg']['iterations']} "
            f"| {r['per_iteration_speedup']:.3f}x "
            f"| {r['end_to_end_speedup']:.3f}x |"
        )
    lines.append(
        f"| **gmean** | | | "
        f"| **{traj['gmean_per_iteration_speedup']:.3f}x** "
        f"| **{traj['gmean_end_to_end_speedup']:.3f}x** |"
    )
    return "\n".join(lines)


def orderings_block(traj: dict) -> str:
    """Markdown table for the natural-vs-auto ordering study."""
    lines = [
        "Ordering study at fixed sparsify ratio: the natural plan and the",
        "`--ordering auto` plan share the heuristic's chosen ratio, so the",
        "level counts isolate what reordering alone buys.",
        "",
        "| Fixture | Chosen | Levels (natural → auto) | Reduction | Iters (auto) |",
        "|---|---|---|---|---|",
    ]
    for r in traj["rows"]:
        o = r["ordering"]
        lines.append(
            f"| {r['name']} | {o['chosen']} "
            f"| {o['levels_natural']} → {o['levels_auto']} "
            f"| {o['level_reduction_percent']:.1f}% "
            f"| {o['iterations_auto']} |"
        )
    lines.append(
        f"| **gmean** | | | "
        f"| **{traj['gmean_level_reduction_percent']:.1f}%** | |"
    )
    return "\n".join(lines)


def precision_block(traj: dict) -> str:
    """Markdown table for the full-vs-mixed precision study."""
    lines = [
        "Mixed-precision study on the same fixtures: f32-stored factors under",
        "the f64 iterative-refinement outer loop (`--precision mixed`) against",
        "the default full-f64 plan. Apply bytes are the simulated L+U trisolve",
        "traffic per iteration; CI gates the ratio at a 1.5x floor.",
        "",
        "| Fixture | Iters (full → mixed) | Refine restarts "
        "| Apply bytes (full → mixed) | Ratio |",
        "|---|---|---|---|---|",
    ]
    for r in traj["rows"]:
        p = r["precision"]
        lines.append(
            f"| {r['name']} "
            f"| {p['iterations_full']} → {p['iterations_mixed']} "
            f"| {p['refine_restarts']} "
            f"| {p['apply_bytes_full']:.0f} → {p['apply_bytes_mixed']:.0f} "
            f"| {p['apply_bytes_ratio']:.3f}x |"
        )
    lines.append(
        f"| **gmean** | | | | **{traj['gmean_apply_bytes_ratio']:.3f}x** |"
    )
    return "\n".join(lines)


def sync_block(traj: dict) -> str:
    """Markdown table for the barrier-vs-dependency-block executor study."""
    lines = [
        "Executor sync study on the same sparsified factors: the level-barrier",
        "executor pays one synchronization per wavefront (L+U) while the",
        "dependency-block executor (`--exec-strategy blocks`) pays one counter",
        "release per block. Sweep times are the simulated L+U trisolve cost per",
        "iteration; CI gates the sync reduction strictly above zero on every",
        "multi-level fixture.",
        "",
        "| Fixture | Syncs/iter (barrier → blocks) | Reduction "
        "| Sweep µs (barrier → blocks) | Iters (blocks) |",
        "|---|---|---|---|---|",
    ]
    for r in traj["rows"]:
        s = r["sync"]
        lines.append(
            f"| {r['name']} "
            f"| {s['syncs_barrier']} → {s['syncs_blocks']} "
            f"| {s['sync_reduction_percent']:.1f}% "
            f"| {s['sweep_us_barrier']:.3f} → {s['sweep_us_blocks']:.3f} "
            f"| {s['iterations_blocks']} |"
        )
    lines.append(
        f"| **gmean** | | **{traj['gmean_sync_reduction_percent']:.1f}%** | | |"
    )
    return "\n".join(lines)


def precond_block(traj: dict) -> str:
    """Markdown table for the ILU-vs-FSAI preconditioner-family study."""
    lines = [
        "Preconditioner-family study: the default ILU(0)-sparsified plan",
        "(level-barrier apply) against the level-free FSAI plan on the same",
        "systems, plus the kind `--precond auto`'s joint search commits to and",
        "its end-to-end pricing of that pick vs the always-ILU candidate. CI",
        "gates the FSAI sync count at zero and Auto's priced total at or below",
        "ILU's on every fixture.",
        "",
        "| Fixture | Iters (ilu vs fsai) | Per-iter µs (ilu vs fsai) "
        "| Syncs/apply (ilu vs fsai) | Auto chose | Priced µs (auto vs ilu) |",
        "|---|---|---|---|---|---|",
    ]
    for r in traj["rows"]:
        p = r["precond"]
        lines.append(
            f"| {r['name']} "
            f"| {p['iterations_ilu']} vs {p['iterations_fsai']} "
            f"| {p['per_iteration_us_ilu']:.1f} vs {p['per_iteration_us_fsai']:.1f} "
            f"| {p['syncs_per_iter_ilu']} vs {p['syncs_per_iter_fsai']} "
            f"| {p['auto_chose']} "
            f"| {p['auto_total_us']:.0f} vs {p['ilu_total_us']:.0f} |"
        )
    return "\n".join(lines)


def serve_block(traj: dict) -> str:
    """Markdown table for the virtual-time admission-control replay."""
    s = traj["serve"]
    lines = [
        f"Poisson arrivals at {s['arrival_rate_per_s']:.0f} req/s against a modeled",
        f"capacity of {s['capacity_per_s']:.0f} req/s ({s['workers']} workers, queue",
        f"capacity {s['queue_capacity']}, deadline {s['deadline_us']:.0f} µs, seed",
        f"{s['seed']}): overall shed rate {s['shed_rate_percent']:.1f}%, degraded",
        f"rate {s['degraded_rate_percent']:.1f}%.",
        "",
        "| Priority | Offered | Admitted | Downgraded | Shed | Watchdog-killed "
        "| p50 µs | p99 µs |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for c in s["classes"]:
        lines.append(
            f"| {c['priority']} | {c['offered']} | {c['admitted']} "
            f"| {c['downgraded']} | {c['shed']} | {c['watchdog_killed']} "
            f"| {c['p50_us']:.0f} | {c['p99_us']:.0f} |"
        )
    return "\n".join(lines)


def sequence_block(traj: dict) -> str:
    """Markdown table for the drifting-sequence refresh/warm-start study."""
    seq = traj["sequence"]
    steps = seq[0]["steps"] if seq else 0
    drift = seq[0]["drift"] * 100 if seq else 0.0
    lines = [
        f"Time-varying sequence study: {steps} drift steps at {drift:.1f}% value",
        "perturbation per step. Rebuild/refresh are the modeled serial plan",
        "costs (full analysis + factorization vs numeric factorization only);",
        "iterations compare warm-started steps against cold solves of the same",
        "drifted systems. CI gates refresh at a 2x floor and warm ≤ cold.",
        "",
        "| Fixture | Rebuild µs | Refresh µs | Speedup | Iters (warm vs cold) | Saved |",
        "|---|---|---|---|---|---|",
    ]
    for s in seq:
        lines.append(
            f"| {s['name']} | {s['rebuild_us']:.1f} | {s['refresh_us']:.1f} "
            f"| {s['refresh_speedup']:.1f}x "
            f"| {s['iterations_warm']} vs {s['iterations_cold']} "
            f"| {s['warm_saved_percent']:.1f}% |"
        )
    lines.append(
        f"| **gmean** | | | **{traj['gmean_refresh_speedup']:.1f}x** | | |"
    )
    return "\n".join(lines)


def replace_between(text: str, begin: str, end: str, block: str) -> str:
    b, e = text.find(begin), text.find(end)
    if b < 0 or e < 0 or e < b:
        sys.exit(f"EXPERIMENTS.md is missing the {begin} / {end} markers")
    return f"{text[: b + len(begin)]}\n{block}\n{text[e:]}"


def fill_trajectory(text: str) -> str:
    if not BENCH_JSON.exists():
        sys.exit(
            "BENCH_10.json missing — run "
            "`cargo bench -p spcg-bench --bench trajectory` first"
        )
    traj = json.loads(BENCH_JSON.read_text())
    text = replace_between(text, BEGIN, END, trajectory_block(traj))
    text = replace_between(text, ORD_BEGIN, ORD_END, orderings_block(traj))
    text = replace_between(text, PREC_BEGIN, PREC_END, precision_block(traj))
    text = replace_between(text, SYNC_BEGIN, SYNC_END, sync_block(traj))
    text = replace_between(text, PRECOND_BEGIN, PRECOND_END, precond_block(traj))
    text = replace_between(text, SERVE_BEGIN, SERVE_END, serve_block(traj))
    return replace_between(text, SEQ_BEGIN, SEQ_END, sequence_block(traj))


def section(bench_text: str, marker: str) -> str | None:
    """Text of one bench target's output (its Running line to the next)."""
    pattern = rf"Running benches/{marker}\.rs.*?(?=Running benches/|\Z)"
    m = re.search(pattern, bench_text, re.S)
    return m.group(0) if m else None


def grab(text: str, pattern: str) -> str | None:
    m = re.search(pattern, text)
    return m.group(1) if m else None


def fill_placeholders(text: str) -> str:
    if not BENCH_TXT.exists():
        print("note: bench_output.txt absent — skipping MEASURED_* placeholders")
        return text
    bench = BENCH_TXT.read_text()
    fig4, fig5 = section(bench, "fig4_ilu0_a100"), section(bench, "fig5_iluk_a100")
    if fig4 is None or fig5 is None:
        print("note: bench_output.txt lacks fig4/fig5 sections — skipping")
        return text
    repl = {
        "MEASURED_FIG4_GMEAN": grab(fig4, r"gmean per-iteration speedup: ([\d.]+x)"),
        "MEASURED_FIG4_ACC": grab(fig4, r"% accelerated: ([\d.]+%)"),
        "MEASURED_FIG4_E2E": grab(fig4, r"gmean end-to-end speedup: ([\d.]+x)"),
        "MEASURED_FIG4_SAME": grab(fig4, r"iterations approximately unchanged: ([\d.]+%)"),
        "MEASURED_FIG5_GMEAN": grab(fig5, r"gmean per-iteration speedup: ([\d.]+x)"),
        "MEASURED_FIG5_ACC": grab(fig5, r"% accelerated: ([\d.]+%)"),
        "MEASURED_FIG5_WORST": grab(fig5, r"worst slowdown: ([\d.]+x)"),
        "MEASURED_FIG5_E2E": grab(fig5, r"gmean end-to-end speedup: ([\d.]+x)"),
        "MEASURED_FIG5_SAME": grab(fig5, r"iterations approximately unchanged: ([\d.]+%)"),
    }
    for k, v in repl.items():
        if v is None:
            print(f"note: value for {k} not found in bench_output.txt")
        elif k in text:
            text = text.replace(k, v)
            print(f"  {k} = {v}")
    return text


def main() -> None:
    text = EXP.read_text()
    updated = fill_placeholders(fill_trajectory(text))
    if updated != text:
        EXP.write_text(updated)
        print("EXPERIMENTS.md updated")
    else:
        print("EXPERIMENTS.md already current")


if __name__ == "__main__":
    main()
