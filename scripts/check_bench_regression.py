#!/usr/bin/env python3
"""CI perf-regression gate over the tracked trajectory bench.

Compares a freshly regenerated `BENCH_10.json` against the committed
baseline and fails (exit 1) if any fixture regressed beyond tolerance:

* **Simulated per-iteration cost** (baseline, spcg, auto-ordering, and
  mixed-precision variants): more than 2% slower — the simulator is
  deterministic, so any real increase is a code change, and the slack
  only absorbs rounding of the 3-decimal artifact.
* **Real iteration count** (any variant): more than `max(3, 10%)` extra
  iterations — the same "approximately unchanged" band EXPERIMENTS.md
  uses for the paper's convergence claim.
* **Level-reduction headline**: the gmean level reduction from `auto`
  reordering dropping below the 10% acceptance floor, or by more than
  2 points against the baseline.
* **Mixed-precision apply bytes**: the full/mixed preconditioner-apply
  bytes ratio dropping below the 1.5x acceptance floor on any fixture —
  the bandwidth win is the mixed tier's reason to exist, so losing it is
  a regression even if timings hold.
* **Sync study (barrier vs dependency blocks)**: any multi-level fixture
  (more wavefronts than the two mandatory L/U sweeps) whose per-iteration
  sync reduction is not strictly positive, or whose dependency-block
  sweep prices at or above the barrier sweep — killing the per-level
  barrier is the executor's reason to exist, so losing the reduction is
  a regression even if timings hold.
* **Preconditioner study (ILU vs level-free)**: a nonzero measured sync
  count on any FSAI solve (the approximate-inverse apply is pure SpMV —
  synchronizing at all means a triangular sweep leaked back in), an
  `Auto` kind pick pricing worse than the always-ILU candidate in its
  own search (the argmin includes ILU, so this can only mean the search
  broke), or no wavefront-poor fixture (>= 100 barrier syncs/iter)
  crossing over to a level-free kind — the crossover is the family's
  reason to exist.
* **Serve study (admission control at 2x load)**: any priority class's
  p99 virtual-time latency exceeding the per-request deadline (the
  watchdog makes the deadline a hard ceiling, so a breach means the
  watchdog or admission feasibility check broke), the high-priority p99
  regressing more than 2% against baseline, shedding that is not
  monotone by priority (low >= normal >= high), or a 2x-overload run
  that sheds nothing at all.
* **Sequence study (value-only refresh + warm starts)**: any fixture
  whose modeled refresh is less than 2x cheaper than a full plan
  rebuild (the refresh exists to skip the analysis; losing the
  asymmetry means it stopped skipping it), or whose warm-started
  iteration total exceeds the cold total (a warm start that hurts
  convergence is worse than no warm start).

A before/after table is always printed, pass or fail, so the CI log
doubles as the perf report.

Usage: check_bench_regression.py BASELINE.json CANDIDATE.json
"""

import json
import sys
from pathlib import Path

PER_ITER_SLACK = 1.02  # 2% relative
PER_ITER_EPS = 0.005  # absolute µs floor under the 3-decimal rounding
ITER_PCT = 0.10
ITER_ABS = 3
LEVEL_FLOOR = 10.0  # acceptance floor for gmean level reduction, percent
LEVEL_DRIFT = 2.0  # allowed drop vs baseline, points
APPLY_BYTES_FLOOR = 1.5  # per-fixture floor for full/mixed apply-bytes ratio
P99_SLACK = 1.02  # 2% relative, high-priority p99 vs baseline
P99_EPS = 0.01  # absolute µs floor under the 3-decimal rounding
REFRESH_SPEEDUP_FLOOR = 2.0  # per-fixture floor for rebuild/refresh cost ratio
AUTO_PRICE_EPS = 0.01  # absolute µs slack under the 3-decimal rounding
WAVEFRONT_POOR_SYNCS = 100  # barrier syncs/iter above which sweeps are serial-bound


def load(path: str) -> dict:
    p = Path(path)
    if not p.exists():
        sys.exit(f"error: {path} does not exist")
    return json.loads(p.read_text())


def variants(row: dict) -> list[tuple[str, float, int]]:
    """(label, per_iteration_us, iterations) for every gated variant."""
    o = row["ordering"]
    p = row["precision"]
    return [
        ("base", row["baseline"]["per_iteration_us"], row["baseline"]["iterations"]),
        ("spcg", row["spcg"]["per_iteration_us"], row["spcg"]["iterations"]),
        ("auto", o["per_iteration_us_auto"], o["iterations_auto"]),
        ("mixed", p["per_iteration_us_mixed"], p["iterations_mixed"]),
    ]


def check_sync_study(cand_rows: dict[str, dict], failures: list[str]) -> None:
    """Gate the barrier-vs-dependency-block executor study.

    A fixture is *multi-level* when its barrier executor pays more than the
    two mandatory synchronizations (one L sweep, one U sweep — a
    diagonal-only factor pair bottoms out at 2). On every such fixture the
    dependency-block executor must strictly reduce syncs per iteration and
    price its L+U sweep strictly below the barrier sweep.
    """
    print("-" * 66)
    print(f"{'sync study':<16} {'syncs/iter':>22} {'sweep µs':>24}")
    for name, c in cand_rows.items():
        s = c.get("sync")
        if s is None:
            failures.append(f"sync/{name}: study missing from candidate")
            continue
        syncs = f"{s['syncs_barrier']:>7} -> {s['syncs_blocks']:<7}"
        sweep = f"{s['sweep_us_barrier']:>10.3f} -> {s['sweep_us_blocks']:<10.3f}"
        print(f"{name:<16} {syncs:>22} {sweep:>24}")
        if s["syncs_barrier"] <= 2:
            continue  # diagonal-only: nothing for the block executor to win
        if s["syncs_blocks"] >= s["syncs_barrier"]:
            failures.append(
                f"sync/{name}: {s['syncs_barrier']} -> {s['syncs_blocks']} syncs/iter — "
                f"the dependency-block executor stopped reducing synchronizations"
            )
        if s["sweep_us_blocks"] >= s["sweep_us_barrier"]:
            failures.append(
                f"sync/{name}: block sweep {s['sweep_us_blocks']:.3f} µs prices at or above "
                f"the barrier sweep {s['sweep_us_barrier']:.3f} µs"
            )


def check_precond(cand_rows: dict[str, dict], failures: list[str]) -> None:
    """Gate the ILU-vs-level-free preconditioner study.

    Three properties, all load-bearing: the level-free apply synchronizes
    nothing (measured, not assumed), the `Auto` search never prices its
    pick above the always-admissible ILU candidate, and at least one
    wavefront-poor fixture — deep sweeps, where the paper's latency
    argument bites hardest — actually crosses over to a level-free kind.
    """
    print("-" * 66)
    print(f"{'precond study':<16} {'iters ilu/fsai':>15} {'syncs':>12} {'auto':>18}")
    crossover = False
    any_poor = False
    for name, c in cand_rows.items():
        p = c.get("precond")
        if p is None:
            failures.append(f"precond/{name}: study missing from candidate")
            continue
        iters = f"{p['iterations_ilu']:>5} / {p['iterations_fsai']:<5}"
        syncs = f"{p['syncs_per_iter_ilu']:>5} / {p['syncs_per_iter_fsai']:<3}"
        auto = f"{p['auto_chose']} {p['auto_total_us']:>7.0f} µs"
        print(f"{name:<16} {iters:>15} {syncs:>12} {auto:>18}")
        if p["syncs_per_iter_fsai"] != 0:
            failures.append(
                f"precond/{name}: FSAI solve measured {p['syncs_per_iter_fsai']} syncs — "
                f"the level-free apply must synchronize nothing"
            )
        if p["auto_total_us"] > p["ilu_total_us"] + AUTO_PRICE_EPS:
            failures.append(
                f"precond/{name}: Auto's pick ({p['auto_chose']}) priced "
                f"{p['auto_total_us']:.0f} µs above the ILU candidate's "
                f"{p['ilu_total_us']:.0f} µs — the kind search stopped taking the argmin"
            )
        wavefront_poor = c.get("sync", {}).get("syncs_barrier", 0) >= WAVEFRONT_POOR_SYNCS
        any_poor = any_poor or wavefront_poor
        if wavefront_poor and p["auto_chose"] != "ilu":
            crossover = True
    if any_poor and not crossover:
        failures.append(
            f"precond: no wavefront-poor fixture (>= {WAVEFRONT_POOR_SYNCS} barrier "
            f"syncs/iter) crossed over to a level-free kind — Auto stopped finding "
            f"the sweeps worth escaping"
        )


def check_serve(base: dict | None, cand: dict | None, failures: list[str]) -> None:
    """Gate the virtual-time admission-control replay."""
    if cand is None:
        failures.append("serve: study missing from candidate")
        return
    deadline = cand["deadline_us"]
    classes = {c["priority"]: c for c in cand["classes"]}
    print("-" * 66)
    print(f"serve study: deadline {deadline:.1f} µs, {cand['workers']} workers")
    for name, c in classes.items():
        print(
            f"  {name:<8} offered {c['offered']:>4}  shed {c['shed']:>4}  "
            f"killed {c['watchdog_killed']:>4}  p99 {c['p99_us']:>10.1f} µs"
        )
        if c["p99_us"] > deadline + P99_EPS:
            failures.append(
                f"serve/{name}: p99 {c['p99_us']:.1f} µs exceeds the "
                f"{deadline:.1f} µs deadline — the watchdog ceiling broke"
            )
    shed = [classes[p]["shed"] for p in ("low", "normal", "high")]
    if not (shed[0] >= shed[1] >= shed[2]):
        failures.append(f"serve: shedding not monotone by priority: low/normal/high = {shed}")
    if sum(shed) == 0:
        failures.append("serve: a 2x-overload run shed nothing — admission control is inert")
    if base is not None:
        b = {c["priority"]: c for c in base["classes"]}["high"]["p99_us"]
        c = classes["high"]["p99_us"]
        print(f"  high-priority p99: {b:.1f} -> {c:.1f} µs (tolerance {P99_SLACK:.2f}x)")
        if c > b * P99_SLACK + P99_EPS:
            failures.append(
                f"serve/high: p99 {b:.1f} -> {c:.1f} µs (> {(P99_SLACK - 1) * 100:.0f}% tolerance)"
            )


def check_sequence(cand: list[dict] | None, failures: list[str]) -> None:
    """Gate the refresh-vs-rebuild and warm-vs-cold sequence study."""
    if cand is None:
        failures.append("sequence: study missing from candidate")
        return
    print("-" * 66)
    print(f"sequence study: {len(cand)} fixtures (refresh floor {REFRESH_SPEEDUP_FLOOR}x)")
    for s in cand:
        name = s["name"]
        print(
            f"  {name:<14} rebuild {s['rebuild_us']:>9.1f} µs  refresh {s['refresh_us']:>8.1f} µs"
            f"  ({s['refresh_speedup']:>5.1f}x)  iters warm {s['iterations_warm']:>3}"
            f" vs cold {s['iterations_cold']:>3}"
        )
        if s["refresh_speedup"] < REFRESH_SPEEDUP_FLOOR:
            failures.append(
                f"sequence/{name}: refresh only {s['refresh_speedup']:.2f}x cheaper than "
                f"rebuild (floor {REFRESH_SPEEDUP_FLOOR}x) — the value-only path stopped "
                f"skipping the analysis"
            )
        if s["iterations_warm"] > s["iterations_cold"]:
            failures.append(
                f"sequence/{name}: warm-started iterations {s['iterations_warm']} exceed "
                f"cold {s['iterations_cold']} — the warm start is hurting convergence"
            )


def main() -> None:
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip().splitlines()[-1])
    base = load(sys.argv[1])
    cand = load(sys.argv[2])
    base_rows = {r["name"]: r for r in base["rows"]}
    cand_rows = {r["name"]: r for r in cand["rows"]}

    failures: list[str] = []
    print(f"{'fixture':<16} {'variant':<8} {'per-iter µs':>22} {'iterations':>16}")
    print("-" * 66)
    for name, b in base_rows.items():
        c = cand_rows.get(name)
        if c is None:
            failures.append(f"{name}: fixture missing from candidate")
            continue
        for (label, b_us, b_it), (_, c_us, c_it) in zip(variants(b), variants(c)):
            us = f"{b_us:>9.3f} -> {c_us:<9.3f}"
            it = f"{b_it:>5} -> {c_it:<5}"
            print(f"{name:<16} {label:<8} {us:>22} {it:>16}")
            if c_us > b_us * PER_ITER_SLACK + PER_ITER_EPS:
                failures.append(
                    f"{name}/{label}: per-iteration cost {b_us:.3f} -> {c_us:.3f} µs "
                    f"(> {(PER_ITER_SLACK - 1) * 100:.0f}% tolerance)"
                )
            if c_it > b_it + max(ITER_ABS, round(b_it * ITER_PCT)):
                failures.append(
                    f"{name}/{label}: iterations {b_it} -> {c_it} "
                    f"(> max({ITER_ABS}, {ITER_PCT:.0%}) tolerance)"
                )
        ratio = c["precision"]["apply_bytes_ratio"]
        if ratio < APPLY_BYTES_FLOOR:
            failures.append(
                f"{name}: mixed apply-bytes ratio {ratio:.3f}x fell below the "
                f"{APPLY_BYTES_FLOOR}x floor"
            )
    for name in cand_rows.keys() - base_rows.keys():
        print(f"{name:<16} {'(new)':<8} {'--':>22} {'--':>16}")

    b_lvl = base["gmean_level_reduction_percent"]
    c_lvl = cand["gmean_level_reduction_percent"]
    print("-" * 66)
    print(f"gmean level reduction: {b_lvl:.1f}% -> {c_lvl:.1f}%")
    print(
        f"gmean apply-bytes ratio: {base['gmean_apply_bytes_ratio']:.3f}x -> "
        f"{cand['gmean_apply_bytes_ratio']:.3f}x (floor {APPLY_BYTES_FLOOR}x)"
    )
    print(
        f"gmean sync reduction: {base.get('gmean_sync_reduction_percent', 0.0):.1f}% -> "
        f"{cand.get('gmean_sync_reduction_percent', 0.0):.1f}%"
    )
    if c_lvl < LEVEL_FLOOR:
        failures.append(
            f"gmean level reduction {c_lvl:.1f}% fell below the {LEVEL_FLOOR:.0f}% floor"
        )
    elif c_lvl < b_lvl - LEVEL_DRIFT:
        failures.append(
            f"gmean level reduction dropped {b_lvl:.1f}% -> {c_lvl:.1f}% "
            f"(> {LEVEL_DRIFT:.0f} point drift)"
        )

    check_sync_study(cand_rows, failures)
    check_precond(cand_rows, failures)
    check_serve(base.get("serve"), cand.get("serve"), failures)
    check_sequence(cand.get("sequence"), failures)

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("\nOK: no perf regressions against baseline")


if __name__ == "__main__":
    main()
