#!/usr/bin/env python3
"""Repo-hygiene gate: no stray top-level entries sneak into the tree.

Walks `git ls-files` and fails (exit 1) if any tracked path lives under a
top-level directory — or is a top-level file — that the allowlist below
does not name. Scratch directories (`examples_tmp/`, `notes/`, editor
droppings) historically accumulate at the root between PRs; this check
turns "someone eventually notices" into a CI failure with a precise list.

Extending the tree is a one-line allowlist edit here, reviewed like any
other change.

Usage: check_hygiene.py  (run from anywhere inside the repo)
"""

import subprocess
import sys

ALLOWED_DIRS = {
    ".claude",
    ".github",
    "crates",
    "examples",
    "scripts",
    "shims",
    "src",
    "tests",
}

ALLOWED_FILES = {
    ".gitignore",
    "BENCH_9.json",
    "CHANGES.md",
    "Cargo.lock",
    "Cargo.toml",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ISSUE.md",
    "PAPER.md",
    "PAPERS.md",
    "README.md",
    "ROADMAP.md",
    "SNIPPETS.md",
    "rustfmt.toml",
}


def main() -> None:
    files = subprocess.run(
        ["git", "ls-files"], capture_output=True, text=True, check=True
    ).stdout.splitlines()

    stray: set[str] = set()
    for path in files:
        top, sep, _ = path.partition("/")
        if sep:
            if top not in ALLOWED_DIRS:
                stray.add(top + "/")
        elif top not in ALLOWED_FILES:
            stray.add(top)

    if stray:
        print("FAIL: stray top-level entries:", file=sys.stderr)
        for s in sorted(stray):
            print(f"  - {s}", file=sys.stderr)
        print(
            "either remove them or extend the allowlist in "
            "scripts/check_hygiene.py",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"OK: {len(files)} tracked files, no stray top-level entries")


if __name__ == "__main__":
    main()
