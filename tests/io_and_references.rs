//! Matrix Market round-trips of suite matrices, and sanity of the named
//! reference matrices used by the §5.3/§5.4 analyses.

use spcg::lowrank::{probe_factor, HssProbeParams};
use spcg::prelude::*;
use spcg::sparse::io::{read_matrix_market, write_matrix_market, MmSymmetry};
use spcg_suite::{fast_collection, reference};

#[test]
fn suite_matrices_roundtrip_through_matrix_market() {
    for spec in fast_collection().into_iter().step_by(5) {
        let a = spec.build();
        let mut buf = Vec::new();
        write_matrix_market(&a, MmSymmetry::Symmetric, &mut buf)
            .unwrap_or_else(|e| panic!("{}: write failed: {e}", spec.name));
        let back: spcg::sparse::CsrMatrix<f64> = read_matrix_market(buf.as_slice())
            .unwrap_or_else(|e| panic!("{}: read failed: {e}", spec.name));
        assert_eq!(a.n_rows(), back.n_rows(), "{}", spec.name);
        assert_eq!(a.nnz(), back.nnz(), "{}", spec.name);
        // Values survive the decimal round-trip to within print precision.
        for ((r1, c1, v1), (r2, c2, v2)) in a.iter().zip(back.iter()) {
            assert_eq!((r1, c1), (r2, c2), "{}", spec.name);
            assert!((v1 - v2).abs() <= 1e-12 * v1.abs().max(1.0), "{}", spec.name);
        }
    }
}

#[test]
fn reference_matrices_factor_and_solve() {
    let cases = [
        ("dubcova1", reference::dubcova1_like()),
        ("thermomech_dM", reference::thermomech_dm_like()),
        ("2cubes_sphere", reference::two_cubes_sphere_like()),
        ("muu", reference::muu_like()),
    ];
    for (name, a) in cases {
        let f = ilu0(&a, ExecutionStrategy::Sequential)
            .unwrap_or_else(|e| panic!("{name}: factorization failed: {e}"));
        let b = vec![1.0f64; a.n_rows()];
        let r =
            pcg(&a, &f, &b, &SolverConfig::default().with_tol(1e-8).with_max_iters(1000)).unwrap();
        assert!(
            r.converged(),
            "{name}: baseline PCG did not converge (stop {:?}, resid {})",
            r.stop,
            r.final_residual
        );
    }
}

#[test]
fn profiling_trio_speedup_ordering() {
    // The §5.3 contrast: thermomech-like must benefit far more than
    // Muu-like under the A100 model.
    use spcg_core::wavefront_aware_sparsify;
    use spcg_gpusim::{pcg_iteration_cost, DeviceSpec};
    let dev = DeviceSpec::a100();
    let speedup = |a: &spcg::sparse::CsrMatrix<f64>| {
        let fb = ilu0(a, ExecutionStrategy::Sequential).unwrap();
        let d = wavefront_aware_sparsify(a, &SparsifyParams::default());
        let fs = ilu0(&d.sparsified.a_hat, ExecutionStrategy::Sequential).unwrap();
        pcg_iteration_cost(&dev, a, &fb).total_us() / pcg_iteration_cost(&dev, a, &fs).total_us()
    };
    let thermo = speedup(&reference::thermomech_dm_like());
    let muu = speedup(&reference::muu_like());
    assert!(thermo > 2.0, "thermomech-like speedup {thermo} too small");
    assert!(muu < 1.3, "Muu-like speedup {muu} should be near 1");
    assert!(thermo > 2.0 * muu);
}

#[test]
fn hss_probe_rarely_triggers_on_ilu0_factors() {
    // §4.6: incomplete factors rarely qualify for HSS compression at
    // default (strict) parameters.
    let mut triggered = 0usize;
    let mut total = 0usize;
    for spec in fast_collection().into_iter().step_by(4) {
        let a = spec.build();
        let Ok(f) = ilu0(&a, ExecutionStrategy::Sequential) else { continue };
        let rep = probe_factor(f.l(), &HssProbeParams::default());
        total += 1;
        if rep.triggers() {
            triggered += 1;
        }
    }
    assert!(total >= 5);
    assert!(
        (triggered as f64) / (total as f64) <= 0.5,
        "HSS triggered on {triggered}/{total} — incomplete factors should rarely qualify"
    );
}
