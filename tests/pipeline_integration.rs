//! Integration tests of the full Figure-2 pipeline across the workspace
//! crates: suite matrices → wavefront-aware sparsification → ILU
//! factorization → PCG on the original system, with GPU-model pricing.

use spcg::prelude::*;
use spcg::sparse::spmv::spmv_alloc;
use spcg_core::SelectionReason;
use spcg_gpusim::{pcg_iteration_cost, DeviceSpec};
use spcg_suite::{fast_collection, MatrixSpec};

fn solver() -> SolverConfig {
    SolverConfig::default().with_tol(1e-9).with_max_iters(800)
}

/// One-shot pipeline run through the blessed plan API: analyze, solve,
/// fold back into the legacy-shaped outcome the assertions inspect.
fn run_pipeline(
    a: &CsrMatrix<f64>,
    b: &[f64],
    opts: SpcgOptions,
) -> Result<SpcgOutcome<f64>, String> {
    let plan = SpcgPlan::build(a, opts).map_err(|e| e.to_string())?;
    let result = plan.solve(b).map_err(|e| e.to_string())?;
    Ok(plan.into_outcome(result))
}

/// A deterministic sample of the collection, small enough for CI.
fn sample() -> Vec<MatrixSpec> {
    fast_collection().into_iter().step_by(3).collect()
}

#[test]
fn spcg_converges_wherever_baseline_does() {
    for spec in sample() {
        let a = spec.build();
        let b = spec.rhs(a.n_rows());
        let base =
            run_pipeline(&a, &b, SpcgOptions::default().with_sparsify(None).with_solver(solver()))
                .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", spec.name));
        let spcg = run_pipeline(&a, &b, SpcgOptions::default().with_solver(solver()))
            .unwrap_or_else(|e| panic!("{}: SPCG failed: {e}", spec.name));
        if base.result.converged() {
            assert!(
                spcg.result.converged(),
                "{}: baseline converged but SPCG did not (stop {:?})",
                spec.name,
                spcg.result.stop
            );
        }
    }
}

#[test]
fn spcg_solution_solves_the_original_system() {
    for spec in sample().into_iter().take(5) {
        let a = spec.build();
        let b = spec.rhs(a.n_rows());
        let out = run_pipeline(&a, &b, SpcgOptions::default().with_solver(solver())).unwrap();
        if !out.result.converged() {
            continue;
        }
        let ax = spmv_alloc(&a, &out.result.x);
        let b_norm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        let resid: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        assert!(
            resid / b_norm < 1e-7,
            "{}: relative residual vs ORIGINAL A is {}",
            spec.name,
            resid / b_norm
        );
    }
}

#[test]
fn sparsified_ilu0_never_has_more_wavefronts() {
    for spec in sample() {
        let a = spec.build();
        let b = spec.rhs(a.n_rows());
        let base =
            run_pipeline(&a, &b, SpcgOptions::default().with_sparsify(None).with_solver(solver()))
                .unwrap();
        let spcg = run_pipeline(&a, &b, SpcgOptions::default().with_solver(solver())).unwrap();
        assert!(
            spcg.factors.total_wavefronts() <= base.factors.total_wavefronts(),
            "{}: sparsification added wavefronts ({} > {})",
            spec.name,
            spcg.factors.total_wavefronts(),
            base.factors.total_wavefronts()
        );
    }
}

#[test]
fn decision_traces_are_well_formed() {
    for spec in sample() {
        let a = spec.build();
        let d = spcg_core::wavefront_aware_sparsify(&a, &SparsifyParams::default());
        assert!(!d.trace.is_empty(), "{}: empty trace", spec.name);
        assert!(
            [10.0, 5.0, 1.0].contains(&d.chosen_ratio),
            "{}: unexpected ratio {}",
            spec.name,
            d.chosen_ratio
        );
        // decomposition invariant
        let sum = d.sparsified.a_hat.add(&d.sparsified.s).unwrap().prune_zeros();
        assert_eq!(sum, a.prune_zeros(), "{}: A != A_hat + S", spec.name);
        // reasons consistent with the trace
        match d.reason {
            SelectionReason::WavefrontReduction | SelectionReason::LastRatio => {
                assert!(d.trace.iter().any(|t| t.ratio == d.chosen_ratio && t.passed_convergence));
            }
            SelectionReason::ConvergenceFallback => {
                assert!(d.trace.iter().all(|t| !t.passed_convergence));
                assert_eq!(d.chosen_ratio, 10.0);
            }
            SelectionReason::Fallthrough => {}
        }
    }
}

#[test]
fn gpu_model_prices_spcg_no_slower_for_ilu0() {
    // Per-iteration simulated cost of the sparsified preconditioner should
    // never exceed the baseline's for ILU(0): the factors are a subset.
    let dev = DeviceSpec::a100();
    for spec in sample() {
        let a = spec.build();
        let b = spec.rhs(a.n_rows());
        let base =
            run_pipeline(&a, &b, SpcgOptions::default().with_sparsify(None).with_solver(solver()))
                .unwrap();
        let spcg = run_pipeline(&a, &b, SpcgOptions::default().with_solver(solver())).unwrap();
        let tb = pcg_iteration_cost(&dev, &a, &base.factors).total_us();
        let ts = pcg_iteration_cost(&dev, &a, &spcg.factors).total_us();
        assert!(
            ts <= tb * 1.0001,
            "{}: simulated per-iteration cost increased ({ts} > {tb})",
            spec.name
        );
    }
}

#[test]
fn iluk_pipeline_beats_ilu0_on_iterations() {
    // More fill ⇒ at least as good convergence (on our well-behaved
    // matrices) — checks ILU(K) end to end through the pipeline.
    let spec = &fast_collection()[0];
    let a = spec.build();
    let b = spec.rhs(a.n_rows());
    let r0 = run_pipeline(
        &a,
        &b,
        SpcgOptions::default()
            .with_sparsify(None)
            .with_ilu_fill(IluFill::Ilu0)
            .with_solver(solver()),
    )
    .unwrap();
    let r2 = run_pipeline(
        &a,
        &b,
        SpcgOptions::default()
            .with_sparsify(None)
            .with_ilu_fill(IluFill::Iluk(2))
            .with_solver(solver()),
    )
    .unwrap();
    assert!(r0.result.converged() && r2.result.converged());
    assert!(
        r2.result.iterations <= r0.result.iterations,
        "ILU(2) {} > ILU(0) {}",
        r2.result.iterations,
        r0.result.iterations
    );
}
