//! Workspace-level property-based tests (proptest): randomized structures
//! exercising the invariants that every figure in the paper relies on.

use proptest::prelude::*;
use spcg::prelude::*;
use spcg::sparse::generators::{banded_spd, poisson_2d, random_spd, with_magnitude_spread};
use spcg::sparse::spmv::spmv_alloc;
use spcg_core::sparsify_by_magnitude;
use spcg_gpusim::{trisolve_cost, DeviceSpec, TrisolveWorkload};
use spcg_precond::FsaiPreconditioner;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Â + S == A exactly, for any matrix family and ratio.
    #[test]
    fn sparsify_decomposition_is_exact(
        n in 20usize..120,
        band in 2usize..8,
        pct in 0.0f64..40.0,
        seed in 0u64..1000,
    ) {
        let a = banded_spd(n, band, 0.8, 1.5, seed);
        let sp = sparsify_by_magnitude(&a, pct);
        let sum = sp.a_hat.add(&sp.s).unwrap().prune_zeros();
        prop_assert_eq!(sum, a.prune_zeros());
        prop_assert!(sp.a_hat.is_symmetric(0.0));
        prop_assert!(sp.s.is_symmetric(0.0));
        // diagonal untouched
        prop_assert_eq!(sp.a_hat.diag(), a.diag());
    }

    /// Sparsification never increases the lower-triangle wavefront count.
    #[test]
    fn sparsification_is_wavefront_monotone(
        nx in 6usize..20,
        pct in 0.0f64..30.0,
        seed in 0u64..100,
    ) {
        let a = with_magnitude_spread(&poisson_2d(nx, nx), 6.0, seed);
        let before = wavefront_count(&a);
        let after = wavefront_count(&sparsify_by_magnitude(&a, pct).a_hat);
        prop_assert!(after <= before, "wavefronts {before} -> {after}");
    }

    /// Level schedules are topological orders covering each row once.
    #[test]
    fn level_schedule_is_valid_topological_order(
        n in 30usize..200,
        nnz_per_row in 2usize..7,
        seed in 0u64..500,
    ) {
        let a = random_spd(n, nnz_per_row, 1.5, seed);
        let schedule = LevelSchedule::build(&a, Triangle::Lower);
        prop_assert!(schedule.validate(&a));
        let mut order = schedule.execution_order();
        order.sort_unstable();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// PCG with ILU(0) solves random well-conditioned SPD systems to the
    /// requested tolerance, and the solution matches a dense direct solve.
    #[test]
    fn pcg_matches_direct_solver(
        n in 10usize..40,
        seed in 0u64..300,
    ) {
        let a = banded_spd(n, 3, 0.9, 2.0, seed);
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let r = pcg(&a, &f, &b, &SolverConfig::default().with_tol(1e-11)).unwrap();
        prop_assert_eq!(r.stop, StopReason::Converged);
        let direct = a.to_dense().solve(&b).unwrap();
        for (got, want) in r.x.iter().zip(&direct) {
            prop_assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    /// ILU(0) factors reproduce A exactly on A's own sparsity pattern.
    #[test]
    fn ilu0_matches_pattern(
        nx in 4usize..12,
        ny in 4usize..12,
    ) {
        let a = poisson_2d(nx, ny);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let lu = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
        for (i, j, v) in a.iter() {
            prop_assert!((lu.get(i, j) - v).abs() < 1e-9);
        }
    }

    /// The GPU cost model is monotone: adding a level at fixed total work
    /// never makes the solve cheaper.
    #[test]
    fn gpusim_levels_monotone(
        rows in 64usize..2048,
        nnz_per_row in 2usize..6,
        levels in 2usize..40,
    ) {
        let device = DeviceSpec::a100();
        let nnz = rows * nnz_per_row;
        let make = |k: usize| TrisolveWorkload {
            levels: (0..k).map(|_| (rows / k, nnz / k, nnz_per_row)).collect(),
            n_rows: rows,
            nnz,
            value_bytes: 8.0,
        };
        let few = trisolve_cost(&device, &make(levels));
        let more = trisolve_cost(&device, &make(levels * 2));
        prop_assert!(more.time_us >= few.time_us,
            "{} levels cost {} < {} levels cost {}", levels * 2, more.time_us, levels, few.time_us);
    }

    /// The FSAI factor `G ≈ L⁻¹` is lower triangular with a strictly
    /// positive diagonal on every SPD input — the structural invariant that
    /// makes the split apply `Gᵀ(G r)` SPD-preserving, so PCG stays sound.
    #[test]
    fn fsai_factor_is_lower_triangular_with_positive_diagonal(
        n in 10usize..80,
        band in 2usize..6,
        density in 0.4f64..1.0,
        seed in 0u64..500,
    ) {
        let a = banded_spd(n, band, density, 1.4, seed);
        let f = FsaiPreconditioner::new(&a).unwrap();
        let g = f.g();
        for i in 0..n {
            let mut saw_diag = false;
            for (&j, &v) in g.row_cols(i).iter().zip(g.row_values(i)) {
                prop_assert!(j <= i, "G[{i},{j}] above the diagonal");
                if j == i {
                    saw_diag = true;
                    prop_assert!(v > 0.0, "G[{i},{i}] = {v} not positive");
                }
            }
            prop_assert!(saw_diag, "row {i} of G has no diagonal entry");
        }
    }

    /// SpMV agrees with the dense reference on arbitrary sparse matrices.
    #[test]
    fn spmv_matches_dense_reference(
        n in 5usize..40,
        nnz_per_row in 1usize..6,
        seed in 0u64..400,
    ) {
        let a = random_spd(n, nnz_per_row, 1.3, seed);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let sparse = spmv_alloc(&a, &x);
        let dense = a.to_dense().matvec(&x);
        for (s, d) in sparse.iter().zip(&dense) {
            prop_assert!((s - d).abs() < 1e-10);
        }
    }
}
