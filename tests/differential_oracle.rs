//! Differential oracle: the end-to-end "is the answer right" net.
//!
//! Every `spcg-suite` recipe family is instantiated at a dense-checkable
//! size and solved two independent ways:
//!
//! * through the full SPCG pipeline ([`SpcgPlan`]): sparsify (Algorithm 2),
//!   incomplete-factor preconditioner, level-scheduled triangular sweeps,
//!   PCG — for every preconditioner kind and both with and without
//!   sparsification;
//! * through the dense reference path: `CsrMatrix::to_dense()` followed by
//!   Gaussian elimination with partial pivoting — no Krylov iteration, no
//!   preconditioner, no shared code with the pipeline past matrix
//!   assembly.
//!
//! Agreement is asserted per category band: the PCG relative *residual*
//! tolerance is 1e-10, so the relative *error* against the direct solve is
//! bounded by roughly `cond(A) * 1e-10`; the bands below encode each
//! family's conditioning at these sizes with an order of magnitude of
//! slack. The bands are documented in DESIGN.md §Testing — tighten them
//! only with evidence, loosening them requires understanding why.

use spcg::prelude::*;
use spcg::suite::recipes::{Ordering, Recipe};

/// One differential case: a recipe family at dense-checkable size plus the
/// relative-error band its conditioning earns it.
struct OracleCase {
    name: &'static str,
    recipe: Recipe,
    spread: f64,
    ordering: Ordering,
    /// Max allowed `||x - x_ref|| / ||x_ref||` (2-norm).
    band: f64,
}

/// Every `Recipe` variant appears at least once; orderings cover Natural,
/// Rcm, and Scrambled so permutation handling is under the net too.
fn cases() -> Vec<OracleCase> {
    vec![
        OracleCase {
            name: "poisson2d",
            recipe: Recipe::Poisson2D { nx: 20, ny: 20 },
            spread: 4.0,
            ordering: Ordering::Natural,
            band: 5e-7,
        },
        OracleCase {
            name: "poisson3d",
            recipe: Recipe::Poisson3D { nx: 7, ny: 7, nz: 7 },
            spread: 4.0,
            ordering: Ordering::Rcm,
            band: 5e-7,
        },
        OracleCase {
            name: "anisotropic",
            recipe: Recipe::Anisotropic { nx: 18, ny: 18, eps: 0.05 },
            spread: 1.0,
            ordering: Ordering::Natural,
            band: 5e-6,
        },
        OracleCase {
            name: "stencil9",
            recipe: Recipe::Stencil9 { nx: 18, ny: 18 },
            spread: 4.0,
            ordering: Ordering::Natural,
            band: 5e-7,
        },
        OracleCase {
            name: "varcoef",
            recipe: Recipe::VarCoef { nx: 18, ny: 18, lo: 0.1, hi: 10.0 },
            spread: 1.0,
            ordering: Ordering::Natural,
            band: 5e-6,
        },
        OracleCase {
            name: "graph_laplacian",
            recipe: Recipe::GraphLaplacian { n: 400, degree: 6, shift: 0.05 },
            spread: 3.0,
            ordering: Ordering::Scrambled,
            band: 5e-6,
        },
        OracleCase {
            name: "banded",
            recipe: Recipe::Banded { n: 400, band: 5, density: 0.7, dominance: 1.6 },
            spread: 3.0,
            ordering: Ordering::Natural,
            band: 1e-8,
        },
        OracleCase {
            name: "random_spd",
            recipe: Recipe::RandomSpd { n: 400, nnz_per_row: 6, dominance: 1.6 },
            spread: 3.0,
            ordering: Ordering::Scrambled,
            band: 1e-8,
        },
        OracleCase {
            name: "layered2d",
            recipe: Recipe::Layered2D { nx: 20, ny: 20, period: 4, weak: 0.015 },
            spread: 6.0,
            ordering: Ordering::Natural,
            band: 5e-6,
        },
        OracleCase {
            name: "layered3d",
            recipe: Recipe::Layered3D { nx: 7, ny: 7, nz: 7, period: 3, weak: 0.015 },
            spread: 6.0,
            ordering: Ordering::Rcm,
            band: 5e-6,
        },
    ]
}

fn rhs_for(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = spcg::sparse::Rng::new(seed);
    (0..n).map(|_| rng.range(-1.0, 1.0)).collect()
}

fn rel_err(x: &[f64], x_ref: &[f64]) -> f64 {
    let num: f64 = x.iter().zip(x_ref).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    let den: f64 = x_ref.iter().map(|v| v * v).sum::<f64>().sqrt();
    num / den.max(f64::MIN_POSITIVE)
}

fn solver() -> SolverConfig {
    SolverConfig::default().with_tol(1e-10).with_max_iters(3000)
}

/// Pipeline configurations the oracle sweeps: every preconditioner kind,
/// sparsified and baseline.
fn pipeline_variants() -> Vec<(&'static str, SpcgOptions)> {
    let base = SpcgOptions { solver: solver(), ..SpcgOptions::default() };
    vec![
        ("spcg-ilu0", SpcgOptions { ilu_fill: IluFill::Ilu0, ..base.clone() }),
        ("spcg-iluk1", SpcgOptions { ilu_fill: IluFill::Iluk(1), ..base.clone() }),
        ("spcg-iluk2", SpcgOptions { ilu_fill: IluFill::Iluk(2), ..base.clone() }),
        ("pcg-ilu0", SpcgOptions { sparsify: None, ilu_fill: IluFill::Ilu0, ..base.clone() }),
        ("pcg-iluk1", SpcgOptions { sparsify: None, ilu_fill: IluFill::Iluk(1), ..base }),
    ]
}

#[test]
fn every_recipe_agrees_with_dense_reference() {
    for case in cases() {
        let a = case.recipe.build(11, case.spread, case.ordering);
        let n = a.n_rows();
        let b = rhs_for(n, 0xd1ff ^ n as u64);
        let x_ref = a.to_dense().solve(&b).expect("dense reference must solve SPD system");

        for (variant, opts) in pipeline_variants() {
            let plan = SpcgPlan::build(&a, &opts)
                .unwrap_or_else(|e| panic!("{}/{variant}: plan build failed: {e}", case.name));
            let result = plan
                .solve(&b)
                .unwrap_or_else(|e| panic!("{}/{variant}: solve failed: {e}", case.name));
            assert!(
                result.converged(),
                "{}/{variant}: stopped {:?} after {} iterations",
                case.name,
                result.stop,
                result.iterations
            );
            let err = rel_err(&result.x, &x_ref);
            assert!(
                err <= case.band,
                "{}/{variant}: relative error {err:.3e} exceeds band {:.0e} (n = {n})",
                case.name,
                case.band
            );
        }
    }
}

/// The level-free approximate-inverse family sits under the same net with
/// one documented concession: FSAI and SPAI are weaker preconditioners
/// than ILU at these sizes, so PCG takes more iterations and the
/// accumulated rounding in the longer Krylov recurrence lands the iterate
/// further from the direct solve. Convergence is still declared on the
/// true f64 residual at 1e-10, so the `cond(A)·tol` bound still governs —
/// the band is the ILU band widened by one order of magnitude, same
/// concession the mixed-precision tier gets, never more.
#[test]
fn level_free_preconditioners_agree_with_dense_reference() {
    for case in cases() {
        let a = case.recipe.build(11, case.spread, case.ordering);
        let n = a.n_rows();
        let b = rhs_for(n, 0xa14c ^ n as u64);
        let x_ref = a.to_dense().solve(&b).expect("dense reference must solve SPD system");
        let ainv_band = case.band * 10.0;

        for kind in [PrecondKind::Fsai, PrecondKind::Spai] {
            let opts =
                SpcgOptions { solver: solver(), ..SpcgOptions::default() }.with_precond(kind);
            let plan = SpcgPlan::build(&a, &opts).unwrap_or_else(|e| {
                panic!("{}/{}: plan build failed: {e}", case.name, kind.label())
            });
            assert!(
                plan.is_level_free(),
                "{}/{}: plan must be level-free",
                case.name,
                kind.label()
            );
            let result = plan
                .solve(&b)
                .unwrap_or_else(|e| panic!("{}/{}: solve failed: {e}", case.name, kind.label()));
            assert!(
                result.converged(),
                "{}/{}: stopped {:?} after {} iterations",
                case.name,
                kind.label(),
                result.stop,
                result.iterations
            );
            let err = rel_err(&result.x, &x_ref);
            assert!(
                err <= ainv_band,
                "{}/{}: relative error {err:.3e} exceeds band {ainv_band:.0e} (n = {n})",
                case.name,
                kind.label()
            );
        }
    }
}

/// Reordered plans sit under the same net: whichever permutation the
/// planner commits to (explicit RCM/coloring or the `auto` joint search),
/// the returned iterate is in the *original* ordering and must land inside
/// the same band against the dense reference as the natural plan does.
#[test]
fn reordered_plans_agree_with_dense_reference() {
    // Two contrasting families: a structured grid (where coloring cuts
    // levels hard) and a scrambled graph Laplacian (where RCM matters).
    for case in [&cases()[0], &cases()[5]] {
        let a = case.recipe.build(11, case.spread, case.ordering);
        let b = rhs_for(a.n_rows(), 0x0dd ^ a.n_rows() as u64);
        let x_ref = a.to_dense().solve(&b).expect("dense reference must solve SPD system");

        for ordering in [OrderingKind::Rcm, OrderingKind::Coloring, OrderingKind::Auto] {
            let opts =
                SpcgOptions { solver: solver(), ..SpcgOptions::default() }.with_ordering(ordering);
            let plan = SpcgPlan::build(&a, &opts)
                .unwrap_or_else(|e| panic!("{}/{ordering}: plan build failed: {e}", case.name));
            let result = plan
                .solve(&b)
                .unwrap_or_else(|e| panic!("{}/{ordering}: solve failed: {e}", case.name));
            assert!(
                result.converged(),
                "{}/{ordering}: stopped {:?} after {} iterations",
                case.name,
                result.stop,
                result.iterations
            );
            let err = rel_err(&result.x, &x_ref);
            assert!(
                err <= case.band,
                "{}/{ordering}: relative error {err:.3e} exceeds band {:.0e}",
                case.name,
                case.band
            );
        }
    }
}

/// The dependency-block executor sits under the same net — and under a
/// stronger one: because every executor accumulates each row's dot product
/// in CSR storage order, a dependency-block plan is not merely
/// band-accurate but *bitwise identical* to the sequential plan across
/// iterate, residual history, and iteration count, on every suite recipe.
/// `Auto` must resolve to one of the two and therefore match as well.
#[test]
fn dependency_block_plans_match_sequential_bitwise_on_every_recipe() {
    for case in cases() {
        let a = case.recipe.build(11, case.spread, case.ordering);
        let n = a.n_rows();
        let b = rhs_for(n, 0xb10c ^ n as u64);
        let x_ref = a.to_dense().solve(&b).expect("dense reference must solve SPD system");
        let base = SpcgOptions { solver: solver().with_history(true), ..SpcgOptions::default() };

        let seq = SpcgPlan::build(&a, &base).unwrap().solve(&b).unwrap();
        for exec in [ExecutionStrategy::DependencyBlocks, ExecutionStrategy::Auto] {
            let plan = SpcgPlan::build(&a, base.clone().with_exec(exec))
                .unwrap_or_else(|e| panic!("{}/{exec:?}: plan build failed: {e}", case.name));
            let r = plan
                .solve(&b)
                .unwrap_or_else(|e| panic!("{}/{exec:?}: solve failed: {e}", case.name));
            assert!(r.converged(), "{}/{exec:?}: stopped {:?}", case.name, r.stop);
            assert_eq!(r.x, seq.x, "{}/{exec:?}: iterate differs bitwise", case.name);
            assert_eq!(r.residual_history, seq.residual_history, "{}/{exec:?}", case.name);
            assert_eq!(r.iterations, seq.iterations, "{}/{exec:?}", case.name);
            let err = rel_err(&r.x, &x_ref);
            assert!(
                err <= case.band,
                "{}/{exec:?}: relative error {err:.3e} exceeds band {:.0e}",
                case.name,
                case.band
            );
        }
    }
}

/// The mixed-precision tier sits under the same net with one documented
/// concession: storing and applying the factors in f32 perturbs the Krylov
/// trajectory (the effective operator `M⁻¹A` changes at unit-roundoff-of-
/// f32 scale), so the returned iterate is a *different* residual-tolerance-
/// satisfying solution than the full-precision one. Convergence is still
/// declared on the full-precision f64 residual at 1e-10, so the error
/// bound `cond(A)·tol` still applies — the band below is the full-precision
/// band widened by one order of magnitude to absorb the trajectory
/// difference, never more.
#[test]
fn mixed_precision_agrees_with_dense_reference_within_looser_band() {
    for case in cases() {
        let a = case.recipe.build(11, case.spread, case.ordering);
        let n = a.n_rows();
        let b = rhs_for(n, 0xd1ff ^ n as u64);
        let x_ref = a.to_dense().solve(&b).expect("dense reference must solve SPD system");
        let mixed_band = case.band * 10.0;

        for policy in [PrecisionPolicy::MixedF32, PrecisionPolicy::Auto] {
            let opts =
                SpcgOptions { solver: solver(), ..SpcgOptions::default() }.with_precision(policy);
            let plan = SpcgPlan::build(&a, &opts)
                .unwrap_or_else(|e| panic!("{}/{policy}: plan build failed: {e}", case.name));
            let result = plan
                .solve(&b)
                .unwrap_or_else(|e| panic!("{}/{policy}: solve failed: {e}", case.name));
            assert!(
                result.converged(),
                "{}/{policy}: stopped {:?} after {} iterations",
                case.name,
                result.stop,
                result.iterations
            );
            let err = rel_err(&result.x, &x_ref);
            assert!(
                err <= mixed_band,
                "{}/{policy}: relative error {err:.3e} exceeds mixed band {mixed_band:.0e} \
                 (n = {n}, full band {:.0e})",
                case.name,
                case.band
            );
        }
    }
}

/// `PrecisionPolicy::Full` is not "mostly the same" as the pre-mixed-tier
/// pipeline — it is bitwise identical. An explicit `Full` must match the
/// default bit for bit across iterate, history, and iteration count, while
/// `MixedF32` on the same system must actually take a different trajectory
/// (otherwise the tier under test is dead code).
#[test]
fn full_policy_is_bitwise_identical_and_mixed_is_not() {
    for case in [&cases()[0], &cases()[7]] {
        let a = case.recipe.build(11, case.spread, case.ordering);
        let b = rhs_for(a.n_rows(), 0xf00d ^ a.n_rows() as u64);
        let base = SpcgOptions { solver: solver().with_history(true), ..SpcgOptions::default() };

        let default_plan = SpcgPlan::build(&a, &base).unwrap();
        let full_plan =
            SpcgPlan::build(&a, base.clone().with_precision(PrecisionPolicy::Full)).unwrap();
        let d = default_plan.solve(&b).unwrap();
        let f = full_plan.solve(&b).unwrap();
        assert_eq!(d.x, f.x, "{}: explicit Full must be bitwise the default", case.name);
        assert_eq!(d.residual_history, f.residual_history, "{}", case.name);
        assert_eq!(d.iterations, f.iterations, "{}", case.name);

        let mixed_plan =
            SpcgPlan::build(&a, base.clone().with_precision(PrecisionPolicy::MixedF32)).unwrap();
        let m = mixed_plan.solve(&b).unwrap();
        assert!(m.converged(), "{}: mixed must still converge", case.name);
        assert_ne!(d.x, m.x, "{}: the mixed tier must actually run narrow", case.name);
    }
}

/// The resilient entry point sits under the same net: with no fault, it
/// must agree with the dense reference exactly as the planned path does.
#[test]
fn resilient_path_agrees_with_dense_reference() {
    let case = &cases()[0];
    let a = case.recipe.build(11, case.spread, case.ordering);
    let b = rhs_for(a.n_rows(), 0xada);
    let x_ref = a.to_dense().solve(&b).unwrap();
    let plan =
        SpcgPlan::build(&a, SpcgOptions { solver: solver(), ..SpcgOptions::default() }).unwrap();
    let rs = plan.solve_resilient(&b).unwrap();
    assert!(rs.converged() && rs.report.clean());
    assert!(rel_err(&rs.result.x, &x_ref) <= case.band);
}

/// A time-varying sequence sits under the same net: a session stepping
/// through drifting values (value-only plan refresh + warm start at every
/// step) must agree with an independent dense elimination of *each*
/// drifted operator. The refresh path reuses the sparsify decision and the
/// symbolic factorization of the opening matrix, so this is the oracle
/// check that the reused analysis stays numerically valid as the values
/// move.
#[test]
fn drifting_sequence_steps_agree_with_dense_reference() {
    for case in [&cases()[0], &cases()[6]] {
        let a = case.recipe.build(11, case.spread, case.ordering);
        let b = rhs_for(a.n_rows(), 0xd21f ^ a.n_rows() as u64);
        let service: SolveService = SolveService::new(ServiceConfig {
            options: SpcgOptions { solver: solver(), ..SpcgOptions::default() },
            ..ServiceConfig::default()
        });
        let mut session = service.open_session(&a).unwrap();
        let mut rng = spcg::sparse::Rng::new(0x5e9_u64 ^ a.n_rows() as u64);
        let mut current = a.clone();
        for step in 0..5 {
            let stats = session.step(&current, &b).unwrap();
            assert!(
                stats.converged(),
                "{}/step {step}: stopped {:?} after {} iterations",
                case.name,
                stats.stop,
                stats.iterations
            );
            let x_ref = current.to_dense().solve(&b).expect("dense reference solves SPD drift");
            let err = rel_err(session.solution(), &x_ref);
            assert!(
                err <= case.band,
                "{}/step {step}: relative error {err:.3e} exceeds band {:.0e}",
                case.name,
                case.band
            );
            // Symmetry-preserving drift: one uniform scale per step.
            let scale = 1.0 + 0.002 * rng.range(-1.0, 1.0);
            current = current.map_values(|v| v * scale);
        }
        assert!(service.stats().session_refreshes >= 4, "{}: drift must refresh", case.name);
    }
}

/// The serve layer is an amortization layer, not a numerics layer: a served
/// (cached) solve must land inside the same band as the dense reference.
#[test]
fn served_solves_agree_with_dense_reference() {
    let case = &cases()[6]; // banded: tightest band
    let a = case.recipe.build(11, case.spread, case.ordering);
    let b = rhs_for(a.n_rows(), 0x5e5e);
    let x_ref = a.to_dense().solve(&b).unwrap();
    let service: SolveService = SolveService::new(ServiceConfig {
        options: SpcgOptions { solver: solver(), ..SpcgOptions::default() },
        ..ServiceConfig::default()
    });
    let cold = service.solve(&a, &b).unwrap();
    let warm = service.solve(&a, &b).unwrap();
    assert!(!cold.cache_hit && warm.cache_hit);
    for out in [&cold, &warm] {
        assert!(out.result.converged());
        assert!(rel_err(&out.result.x, &x_ref) <= case.band);
    }
    assert_eq!(cold.result.x, warm.result.x, "cached solve must be bitwise identical");
}
