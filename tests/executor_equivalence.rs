//! Cross-executor determinism: the sequential, level-parallel and
//! synchronization-free triangular executors must be bitwise
//! interchangeable inside PCG, across structurally diverse matrices.

use spcg::prelude::*;
use spcg::sparse::Rng;
use spcg_suite::{Ordering, Recipe};
use spcg_wavefront::{solve_levels_par, solve_lower_seq, solve_lower_sync_free};

fn matrices() -> Vec<(&'static str, spcg::sparse::CsrMatrix<f64>)> {
    vec![
        (
            "layered",
            Recipe::Layered2D { nx: 30, ny: 30, period: 4, weak: 0.015 }.build(
                3,
                1.5,
                Ordering::Natural,
            ),
        ),
        (
            "scrambled-graph",
            Recipe::GraphLaplacian { n: 900, degree: 4, shift: 0.8 }.build(
                4,
                1.0,
                Ordering::Scrambled,
            ),
        ),
        (
            "banded",
            Recipe::Banded { n: 1100, band: 3, density: 0.9, dominance: 1.7 }.build(
                5,
                1.0,
                Ordering::Natural,
            ),
        ),
        ("stencil9-rcm", Recipe::Stencil9 { nx: 32, ny: 32 }.build(6, 5.0, Ordering::Rcm)),
    ]
}

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.range(-1.0, 1.0)).collect()
}

#[test]
fn triangular_executors_agree_bitwise() {
    for (name, a) in matrices() {
        let l = a.lower();
        let schedule = LevelSchedule::build(&l, Triangle::Lower);
        let b = rhs(a.n_rows(), 1);
        let mut x_seq = vec![0.0; a.n_rows()];
        let mut x_par = vec![0.0; a.n_rows()];
        let mut x_sf = vec![0.0; a.n_rows()];
        solve_lower_seq(&l, &b, &mut x_seq);
        solve_levels_par(&l, &schedule, &b, &mut x_par);
        solve_lower_sync_free(&l, &b, &mut x_sf, 6);
        assert_eq!(x_seq, x_par, "{name}: level-parallel diverged");
        assert_eq!(x_seq, x_sf, "{name}: sync-free diverged");
    }
}

#[test]
fn pcg_trajectory_is_executor_independent() {
    for (name, a) in matrices() {
        let b = rhs(a.n_rows(), 2);
        let cfg = SolverConfig::default().with_tol(1e-9).with_history(true);
        let fs = ilu0(&a, TriangularExec::Sequential).unwrap_or_else(|e| panic!("{name}: {e}"));
        let fp = ilu0(&a, TriangularExec::LevelParallel).unwrap();
        let rs = pcg(&a, &fs, &b, &cfg).unwrap();
        let rp = pcg(&a, &fp, &b, &cfg).unwrap();
        assert_eq!(rs.iterations, rp.iterations, "{name}");
        assert_eq!(rs.residual_history, rp.residual_history, "{name}");
        assert_eq!(rs.x, rp.x, "{name}: solutions differ bitwise");
    }
}

#[test]
fn schedules_validate_against_their_matrices() {
    for (name, a) in matrices() {
        let f = ilu0(&a, TriangularExec::Sequential).unwrap();
        assert!(f.l_schedule().validate(f.l()), "{name}: L schedule invalid");
        assert!(f.u_schedule().validate(f.u()), "{name}: U schedule invalid");
        // Level count equals the dependence DAG's critical path.
        let dag = spcg_wavefront::DependenceDag::build(f.l(), Triangle::Lower);
        assert_eq!(f.l_schedule().n_levels(), dag.critical_path_len(), "{name}");
    }
}
