//! Cross-executor determinism: the sequential, level-parallel,
//! synchronization-free, and dependency-block triangular executors must be
//! bitwise interchangeable inside PCG, across structurally diverse
//! matrices, adversarial topologies, thread counts, and repeated solves.

use spcg::prelude::*;
use spcg::sparse::Rng;
use spcg_suite::{Ordering, Recipe};
use spcg_wavefront::{
    solve_blocks_with_threads, solve_levels_par, solve_lower_seq, solve_lower_sync_free,
    BlockOptions, BlockSchedule,
};

fn matrices() -> Vec<(&'static str, spcg::sparse::CsrMatrix<f64>)> {
    vec![
        (
            "layered",
            Recipe::Layered2D { nx: 30, ny: 30, period: 4, weak: 0.015 }.build(
                3,
                1.5,
                Ordering::Natural,
            ),
        ),
        (
            "scrambled-graph",
            Recipe::GraphLaplacian { n: 900, degree: 4, shift: 0.8 }.build(
                4,
                1.0,
                Ordering::Scrambled,
            ),
        ),
        (
            "banded",
            Recipe::Banded { n: 1100, band: 3, density: 0.9, dominance: 1.7 }.build(
                5,
                1.0,
                Ordering::Natural,
            ),
        ),
        ("stencil9-rcm", Recipe::Stencil9 { nx: 32, ny: 32 }.build(6, 5.0, Ordering::Rcm)),
    ]
}

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.range(-1.0, 1.0)).collect()
}

/// Runs all four executors on the lower triangle of `a` at `threads`
/// worker threads and asserts bitwise agreement with the sequential sweep.
/// `target_rows` controls block granularity (small values maximize
/// cross-block edges, the adversarial regime for the release path).
fn assert_executors_agree(
    name: &str,
    l: &spcg::sparse::CsrMatrix<f64>,
    threads: usize,
    target_rows: usize,
) {
    let n = l.n_rows();
    let schedule = LevelSchedule::build(l, Triangle::Lower);
    let blocks = BlockSchedule::from_levels_with(l, &schedule, BlockOptions { target_rows });
    blocks.validate(l).unwrap_or_else(|e| panic!("{name}: invalid block schedule: {e}"));
    let b = rhs(n, 1);
    let mut x_seq = vec![0.0; n];
    let mut x_par = vec![0.0; n];
    let mut x_sf = vec![0.0; n];
    let mut x_blk = vec![0.0; n];
    solve_lower_seq(l, &b, &mut x_seq);
    solve_levels_par(l, &schedule, &b, &mut x_par);
    solve_lower_sync_free(l, &b, &mut x_sf, threads);
    solve_blocks_with_threads(l, &blocks, &b, &mut x_blk, threads);
    assert_eq!(x_seq, x_par, "{name}@{threads}t: level-parallel diverged");
    assert_eq!(x_seq, x_sf, "{name}@{threads}t: sync-free diverged");
    assert_eq!(x_seq, x_blk, "{name}@{threads}t: dependency-blocks diverged");
}

#[test]
fn triangular_executors_agree_bitwise() {
    for (name, a) in matrices() {
        let l = a.lower();
        for threads in [1, 4, 6] {
            assert_executors_agree(name, &l, threads, 64);
        }
    }
}

/// Builds a lower-triangular matrix from explicit (row, col, value)
/// triples, with a dominant diagonal so every executor is well-pivoted.
fn lower_from_deps(n: usize, deps: &[(usize, usize)]) -> spcg::sparse::CsrMatrix<f64> {
    let mut coo = spcg::sparse::CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0 + (i % 5) as f64).unwrap();
    }
    for &(r, c) in deps {
        assert!(c < r, "deps must be strictly lower");
        coo.push(r, c, -0.25 - ((r + c) % 7) as f64 * 0.05).unwrap();
    }
    coo.to_csr()
}

/// Adversarial triangle topologies for the torture sweep: a pure serial
/// chain (depth n, every block release on the critical path), wide fan-out
/// levels (one hub row unblocks hundreds of successors at once), a
/// diagonal-only system (no dependencies — the executor must still cover
/// every row), and a ragged pseudo-random web of skips.
fn adversarial_triangles() -> Vec<(&'static str, spcg::sparse::CsrMatrix<f64>)> {
    let n = 600;
    let chain: Vec<(usize, usize)> = (1..n).map(|i| (i, i - 1)).collect();
    // Wide levels: rows [1, n/2) all hang off row 0; rows [n/2, n) all hang
    // off one row of the first wave — two huge waves behind single hubs.
    let mut wide: Vec<(usize, usize)> = (1..n / 2).map(|i| (i, 0)).collect();
    wide.extend((n / 2..n).map(|i| (i, n / 4)));
    // Ragged: hash-driven skips of wildly varying row degree.
    let mut ragged = Vec::new();
    for r in 1..n {
        let mut h = (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let deg = (h >> 60) as usize % 4;
        for _ in 0..deg {
            h = h.wrapping_mul(0xC2B2_AE3D_27D4_EB4F).wrapping_add(0x165667B19E3779F9);
            ragged.push((r, (h >> 33) as usize % r));
        }
    }
    ragged.sort_unstable();
    ragged.dedup();
    vec![
        ("chain", lower_from_deps(n, &chain)),
        ("wide-levels", lower_from_deps(n, &wide)),
        ("diagonal-only", lower_from_deps(n, &[])),
        ("ragged", lower_from_deps(n, &ragged)),
    ]
}

/// The torture sweep itself: adversarial topologies × all four executors ×
/// {1, 4} threads × {fine, default} block granularity, everything judged
/// bitwise against the sequential sweep.
#[test]
fn adversarial_topologies_agree_across_executors_and_threads() {
    for (name, l) in adversarial_triangles() {
        for threads in [1, 4] {
            for target_rows in [8, 256] {
                assert_executors_agree(name, &l, threads, target_rows);
            }
        }
    }
}

/// Repeated-solve stress: 120 warm solves through the same block schedule
/// (counter pool reuse, fresh claim indices every pass) must stay bitwise
/// identical to the first — any release-path race shows up as a flaky
/// divergence here long before TSan runs.
#[test]
fn repeated_block_solves_are_bitwise_stable() {
    let (_, a) = matrices().swap_remove(0);
    let l = a.lower();
    let n = l.n_rows();
    let schedule = LevelSchedule::build(&l, Triangle::Lower);
    let blocks = BlockSchedule::from_levels_with(&l, &schedule, BlockOptions { target_rows: 32 });
    let b = rhs(n, 9);
    let mut reference = vec![0.0; n];
    solve_lower_seq(&l, &b, &mut reference);
    let mut x = vec![0.0; n];
    for pass in 0..120 {
        x.iter_mut().for_each(|v| *v = f64::NAN); // poison between passes
        solve_blocks_with_threads(&l, &blocks, &b, &mut x, 4);
        assert_eq!(x, reference, "pass {pass} diverged");
    }
}

#[test]
fn pcg_trajectory_is_executor_independent() {
    for (name, a) in matrices() {
        let b = rhs(a.n_rows(), 2);
        let cfg = SolverConfig::default().with_tol(1e-9).with_history(true);
        let fs = ilu0(&a, ExecutionStrategy::Sequential).unwrap_or_else(|e| panic!("{name}: {e}"));
        let fp = ilu0(&a, ExecutionStrategy::LevelBarrier).unwrap();
        let fb = ilu0(&a, ExecutionStrategy::DependencyBlocks).unwrap();
        let rs = pcg(&a, &fs, &b, &cfg).unwrap();
        let rp = pcg(&a, &fp, &b, &cfg).unwrap();
        let rb = pcg(&a, &fb, &b, &cfg).unwrap();
        assert_eq!(rs.iterations, rp.iterations, "{name}");
        assert_eq!(rs.residual_history, rp.residual_history, "{name}");
        assert_eq!(rs.x, rp.x, "{name}: solutions differ bitwise");
        assert_eq!(rs.iterations, rb.iterations, "{name}: blocks changed iteration count");
        assert_eq!(rs.residual_history, rb.residual_history, "{name}: blocks changed trajectory");
        assert_eq!(rs.x, rb.x, "{name}: dependency-block solution differs bitwise");
    }
}

/// A breakdown *inside a block* (zeroed U pivot mid-matrix) must surface
/// through the dependency-block path exactly as it does through the
/// barrier path: same typed stop reason, same iteration of first failure,
/// same (non-)result — faults must not be masked, reordered, or amplified
/// by the executor swap.
#[test]
fn block_breakdown_matches_barrier_breakdown() {
    for (name, a) in matrices().into_iter().take(2) {
        let b = rhs(a.n_rows(), 3);
        let cfg = SolverConfig::default().with_tol(1e-9).with_history(true);
        let row = a.n_rows() / 2;
        let barrier = ilu0(&a, ExecutionStrategy::LevelBarrier).unwrap().with_zeroed_pivot(row);
        let blocks = ilu0(&a, ExecutionStrategy::DependencyBlocks).unwrap().with_zeroed_pivot(row);
        let rp = pcg(&a, &barrier, &b, &cfg);
        let rb = pcg(&a, &blocks, &b, &cfg);
        match (rp, rb) {
            (Ok(rp), Ok(rb)) => {
                assert!(rp.stop.is_breakdown(), "{name}: barrier path must break down");
                assert_eq!(rp.stop, rb.stop, "{name}: stop reasons differ across executors");
                assert_eq!(rp.iterations, rb.iterations, "{name}");
                assert_eq!(rp.residual_history, rb.residual_history, "{name}");
            }
            (Err(ep), Err(eb)) => {
                assert_eq!(
                    format!("{ep:?}"),
                    format!("{eb:?}"),
                    "{name}: typed errors differ across executors"
                );
            }
            (rp, rb) => panic!("{name}: outcome shape diverged: {rp:?} vs {rb:?}"),
        }
    }
}

#[test]
fn schedules_validate_against_their_matrices() {
    for (name, a) in matrices() {
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        assert!(f.l_schedule().validate(f.l()), "{name}: L schedule invalid");
        assert!(f.u_schedule().validate(f.u()), "{name}: U schedule invalid");
        // Level count equals the dependence DAG's critical path.
        let dag = spcg_wavefront::DependenceDag::build(f.l(), Triangle::Lower);
        assert_eq!(f.l_schedule().n_levels(), dag.critical_path_len(), "{name}");
    }
}
