//! Regression pins for the headline reproduction numbers: the aggregate
//! statistics must stay inside bands bracketing the paper's results, so a
//! future change that silently destroys the reproduction fails CI.

use spcg::prelude::*;
use spcg_gpusim::{pcg_iteration_cost, DeviceSpec};
use spcg_suite::fast_collection;

/// Plans and solves one system, returning the plan so the sweep can price
/// its factors on the device model. `None` if any pipeline stage fails.
fn planned_solve(a: &CsrMatrix<f64>, b: &[f64], opts: SpcgOptions) -> Option<SpcgPlan<f64>> {
    let plan = SpcgPlan::build(a, opts).ok()?;
    plan.solve(b).ok()?;
    Some(plan)
}

/// Runs the ILU(0) heuristic sweep on the fast collection and returns the
/// per-iteration speedups (simulated A100).
fn sweep_speedups() -> Vec<f64> {
    let device = DeviceSpec::a100();
    let solver = SolverConfig::default().with_tol(1e-9).with_max_iters(500);
    let mut out = Vec::new();
    for spec in fast_collection() {
        let a = spec.build();
        let b = spec.rhs(a.n_rows());
        let Some(base) = planned_solve(
            &a,
            &b,
            SpcgOptions::default().with_sparsify(None).with_solver(solver.clone()),
        ) else {
            continue;
        };
        let Some(spcg) = planned_solve(&a, &b, SpcgOptions::default().with_solver(solver.clone()))
        else {
            continue;
        };
        let tb = pcg_iteration_cost(&device, &a, base.factors()).total_us();
        let ts = pcg_iteration_cost(&device, &a, spcg.factors()).total_us();
        out.push(tb / ts);
    }
    out
}

fn gmean(xs: &[f64]) -> f64 {
    (xs.iter().map(|v| v.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[test]
fn headline_per_iteration_gmean_band() {
    let speedups = sweep_speedups();
    assert!(speedups.len() >= 20, "sweep lost too many matrices");
    let g = gmean(&speedups);
    // Paper: 1.23x on the full dataset. The quarter collection is noisier;
    // pin a generous but meaningful band.
    assert!(
        (1.05..=2.2).contains(&g),
        "per-iteration gmean {g} left the reproduction band [1.05, 2.2]"
    );
}

#[test]
fn majority_of_matrices_accelerate() {
    let speedups = sweep_speedups();
    let pct = 100.0 * speedups.iter().filter(|&&s| s > 1.0).count() as f64 / speedups.len() as f64;
    // Paper: 69.16%.
    assert!(
        (50.0..=95.0).contains(&pct),
        "% accelerated {pct} left the reproduction band [50, 95]"
    );
}

#[test]
fn no_catastrophic_slowdowns() {
    let speedups = sweep_speedups();
    let worst = speedups.iter().cloned().fold(f64::MAX, f64::min);
    // Paper's ILU(0) distribution: slowdowns stay mild.
    assert!(worst > 0.5, "worst per-iteration slowdown {worst} < 0.5x");
}
