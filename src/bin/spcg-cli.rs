//! `spcg-cli` — run the SPCG pipeline on Matrix Market files.
//!
//! See `spcg-cli help` (or [`spcg::cli::USAGE`]) for the interface.

use spcg::cli::{
    parse, sparsify_params, Command, GenerateArgs, ServeBenchArgs, SolveArgs, SparsifyMode, USAGE,
};
use spcg::prelude::*;
use spcg::sparse::generators as gen;
use spcg::sparse::io::{read_matrix_market_file, write_matrix_market_file, MmSymmetry};
use spcg_gpusim::{
    end_to_end_cost, pcg_iteration_cost_with_factor_bytes, plan_end_to_end_cost,
    plan_iteration_cost, simulated_solve_trace, DeviceSpec,
};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(Command::Help) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::Solve(a)) => run_solve(&a, false),
        Ok(Command::Analyze(a)) => run_solve(&a, true),
        Ok(Command::Generate(g)) => run_generate(&g),
        Ok(Command::ServeBench(sb)) => run_serve_bench(&sb),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn device_by_name(name: &str) -> DeviceSpec {
    match name {
        "v100" => DeviceSpec::v100(),
        "epyc" => DeviceSpec::epyc_7413(),
        _ => DeviceSpec::a100(),
    }
}

fn run_solve(args: &SolveArgs, analyze_only: bool) -> ExitCode {
    let a: spcg::sparse::CsrMatrix<f64> = match read_matrix_market_file(Path::new(&args.matrix)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.matrix);
            return ExitCode::FAILURE;
        }
    };
    if !a.is_square() {
        eprintln!("error: matrix is {}x{}, need square SPD", a.n_rows(), a.n_cols());
        return ExitCode::FAILURE;
    }
    println!(
        "matrix {}: n = {}, nnz = {}, wavefronts = {}, symmetric = {}",
        args.matrix,
        a.n_rows(),
        a.nnz(),
        wavefront_count(&a),
        a.is_symmetric(1e-12)
    );

    if analyze_only {
        let params = sparsify_params(&args.sparsify).unwrap_or_default();
        let d = spcg_core::wavefront_aware_sparsify(&a, &params);
        println!(
            "Algorithm 2: chose ratio {}% ({:?}), wavefronts {} -> {} ({:.2}% reduction)",
            d.chosen_ratio,
            d.reason,
            d.wavefronts_original,
            d.wavefronts_sparsified,
            d.wavefront_reduction()
        );
        for t in &d.trace {
            println!(
                "  ratio {:>5}%: indicator {:.4} ({}), wavefronts {:?}",
                t.ratio,
                t.indicator.product,
                if t.passed_convergence { "pass" } else { "fail" },
                t.wavefronts
            );
        }
        return ExitCode::SUCCESS;
    }

    let b = vec![1.0f64; a.n_rows()];
    let opts = SpcgOptions {
        sparsify: match &args.sparsify {
            SparsifyMode::Off => None,
            other => sparsify_params(other),
        },
        precond: args.precond,
        ilu_fill: args.ilu_fill,
        exec: args.exec,
        solver: args.solver.clone(),
        ordering: args.ordering,
        precision: args.precision,
        ..Default::default()
    };
    // Record the whole run — plan analysis plus the solve loop — through
    // one probe so the trace covers every phase.
    let mut probe = RecordingProbe::new();
    let plan = match SpcgPlan::build_probed(&a, &opts, &mut probe) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: pipeline analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ws = plan.make_workspace();
    let result = match plan.solve_with_workspace_probed(&b, &mut ws, &mut probe) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: solve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Time-varying sequence: every step past the first drifts the matrix
    // values by a seeded uniform scale (symmetry-preserving), refreshes the
    // plan numerics (analysis reused), and warm-starts from the resident
    // solution in the workspace.
    if args.sequence > 1 {
        println!("sequence: {} steps, drift {:.3}% per step", args.sequence, 100.0 * args.drift);
        println!("  step 0: {} iterations (cold build)", result.iterations);
        let mut rng = spcg::sparse::Rng::new(0x5e9);
        let mut current = a.clone();
        let mut seq_plan: Option<SpcgPlan<f64>> = None;
        for step in 1..args.sequence {
            let scale = 1.0 + args.drift * rng.range(-1.0, 1.0);
            current = current.map_values(|v| v * scale);
            let refreshed = match seq_plan.as_ref().unwrap_or(&plan).refresh_values(&current) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: plan refresh failed at step {step}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let stats = match refreshed.solve_from(&b, &mut ws) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: sequence step {step} failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "  step {step}: {} iterations (warm refresh), residual {:.3e}",
                stats.iterations, stats.final_residual
            );
            if !stats.converged() {
                eprintln!("error: sequence step {step} did not converge: {:?}", stats.stop);
                return ExitCode::FAILURE;
            }
            seq_plan = Some(refreshed);
        }
    }

    let trace = probe.finish();
    let reorder = plan.reorder().cloned();
    let reorder_time = plan.reorder_time();
    let precision = plan.precision();
    let factor_bytes = plan.factor_value_bytes() as f64;
    let resolved = plan.precond_kind();
    let label = if resolved == PrecondKind::IluSparsified {
        args.ilu_fill.label()
    } else {
        resolved.label().to_uppercase()
    };
    let kind_decision = plan.kind_decision().cloned();
    let level_free = plan.is_level_free();
    let sparsify_time = plan.sparsify_time();
    let factorization_time = plan.factorization_time();
    // Level-free plans carry no ILU factors; everything below borrows from
    // the plan instead of consuming it via `into_outcome`.
    let decision = plan.decision();
    let factors = if level_free { None } else { Some(plan.factors()) };
    println!(
        "{} {}: {:?} after {} iterations, residual {:.3e}",
        if decision.is_some() { "SPCG" } else { "PCG" },
        label,
        result.stop,
        result.iterations,
        result.final_residual
    );
    if let Some(d) = &kind_decision {
        let priced: Vec<String> = d
            .candidates
            .iter()
            .map(|c| {
                format!(
                    "{} {:.0}us{}",
                    c.kind.label(),
                    c.total_us,
                    if c.guard_passed { "" } else { " [guard]" }
                )
            })
            .collect();
        println!(
            "precond: requested {}, chose {} ({})",
            d.requested.label(),
            d.chosen.label(),
            priced.join(", ")
        );
    }
    if args.precision != PrecisionPolicy::Full {
        println!(
            "precision: requested {}, running {} ({}-byte factor values)",
            args.precision, precision, factor_bytes
        );
    }
    if let Some(r) = &reorder {
        println!(
            "ordering: requested {}, chose {}, levels {} -> {} ({:.2}% reduction)",
            r.requested,
            r.chosen,
            r.levels_natural,
            r.levels_chosen,
            r.level_reduction_percent()
        );
    }
    if let Some(d) = decision {
        println!(
            "sparsification: ratio {}% ({:?}), wavefronts {} -> {}",
            d.chosen_ratio, d.reason, d.wavefronts_original, d.wavefronts_sparsified
        );
    }
    println!(
        "timings: reorder {:.2?}, sparsify {:.2?}, factorization {:.2?}, solve loop {:.2?}",
        reorder_time, sparsify_time, factorization_time, result.timings.total
    );
    if let Some(path) = &args.trace {
        let json = match serde_json::to_string_pretty(&trace) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: cannot serialize trace: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("trace: {} events -> {path}", trace.events.len());
        println!("{}", trace.phase_table());
    }
    if let Some(dev_name) = &args.device {
        let dev = device_by_name(dev_name);
        if let Some(factors) = factors {
            let it = pcg_iteration_cost_with_factor_bytes(&dev, &a, factors, factor_bytes);
            let e2e = end_to_end_cost(
                &dev,
                &a,
                factors.l(),
                factors,
                result.iterations,
                decision.is_some(),
            );
            println!(
                "{} model: {:.1} us/iteration, {:.1} us end-to-end",
                dev.name,
                it.total_us(),
                e2e.total_us()
            );
            if args.trace.is_some() {
                // Simulated counterpart of the measured table above: same
                // span vocabulary, timings from the execution model.
                let sim = simulated_solve_trace(&dev, &a, factors, result.iterations);
                println!("{} model phase table:", dev.name);
                println!("{}", sim.phase_table());
            }
        } else {
            // Level-free apply: priced through the plan-aware entry points
            // (SpMVs over the stored inverse factors, no sweeps).
            let it = plan_iteration_cost(&dev, &plan);
            let e2e = plan_end_to_end_cost(&dev, &plan, result.iterations);
            println!(
                "{} model: {:.1} us/iteration, {:.1} us end-to-end",
                dev.name,
                it.total_us(),
                e2e.total_us()
            );
        }
    }
    if result.converged() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Mixed small-system workload for the solve service: distinct operators
/// (different generators and magnitude spreads) so the cache holds several
/// plans at once, all small enough that a run finishes in seconds.
fn serve_bench_matrices(count: usize, size: usize) -> Vec<std::sync::Arc<CsrMatrix<f64>>> {
    (0..count)
        .map(|i| {
            let base = match i % 3 {
                0 => gen::poisson_2d(size, size + i / 3),
                1 => gen::layered_poisson_2d(size, size + i / 3, 4, 0.015),
                _ => gen::banded_spd(size * size, 3 + i / 3, 0.8, 1.5, 7 + i as u64),
            };
            std::sync::Arc::new(gen::with_magnitude_spread(&base, 3.0, 11 + i as u64))
        })
        .collect()
}

/// Runs `requests` solves of the mixed workload through a fresh service
/// with `workers` worker threads; returns (elapsed, converged, stats).
fn serve_bench_run(
    mats: &[std::sync::Arc<CsrMatrix<f64>>],
    workers: usize,
    args: &ServeBenchArgs,
) -> (std::time::Duration, usize, spcg::serve::ServiceStats) {
    let service = SolveService::new(ServiceConfig {
        workers,
        queue_capacity: (args.requests / 2).clamp(8, 512),
        batch_window: std::time::Duration::from_micros(args.window_us),
        ..ServiceConfig::default()
    });
    let converged = std::sync::atomic::AtomicUsize::new(0);
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for client in 0..args.clients {
            let service = &service;
            let converged = &converged;
            s.spawn(move || {
                let quota = args.requests / args.clients
                    + usize::from(client < args.requests % args.clients);
                let mut tickets = Vec::with_capacity(quota);
                for i in 0..quota {
                    // Deterministic interleave: consecutive requests from one
                    // client hit different systems, concurrent clients
                    // collide on the same system — the coalescing case.
                    let m = &mats[(client + i) % mats.len()];
                    let b: Vec<f64> =
                        (0..m.n_rows()).map(|j| ((j + i) % 13) as f64 / 13.0 - 0.4).collect();
                    if let Ok(t) = service.submit(SolveRequest::new(std::sync::Arc::clone(m), b)) {
                        tickets.push(t);
                    }
                }
                for t in tickets {
                    if let Ok(out) = t.wait() {
                        if out.result.converged() {
                            converged.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let stats = service.stats();
    (elapsed, converged.into_inner(), stats)
}

/// Open-loop sustained-load benchmark: Poisson arrivals at a fixed offered
/// rate, mixed priorities, per-request deadlines. Unlike the closed-loop
/// mode (which self-throttles: a slow service slows its own clients), the
/// arrival process here does not wait for completions, so pushing the rate
/// past capacity exercises admission control — the run fails unless the
/// service sheds deterministically and its counters reconcile.
fn run_open_loop(args: &ServeBenchArgs) -> ExitCode {
    use spcg::serve::{Priority, RequestPolicy, Ticket};
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::{Duration, Instant};

    const CONVERGED: u8 = 0;
    const DEADLINE: u8 = 1;
    const FAILED: u8 = 2;

    let mats = serve_bench_matrices(args.matrices, args.size);
    let service = SolveService::new(ServiceConfig {
        workers: args.workers,
        queue_capacity: (args.requests / 2).clamp(8, 512),
        batch_window: Duration::from_micros(args.window_us),
        ..ServiceConfig::default()
    });

    // Warm every plan, then time a short burst so the auto rate is a fixed
    // multiple of what *this* machine actually sustains with a hot cache.
    for m in mats.iter() {
        let b = vec![1.0f64; m.n_rows()];
        if let Err(e) = service.solve(m, &b) {
            eprintln!("error: open-loop warmup solve failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let probe_solves = 8 * mats.len();
    let t0 = Instant::now();
    for i in 0..probe_solves {
        let m = &mats[i % mats.len()];
        let b = vec![1.0f64; m.n_rows()];
        let _ = service.solve(m, &b);
    }
    let per_solve_s = (t0.elapsed().as_secs_f64() / probe_solves as f64).max(1e-9);
    let capacity = args.workers as f64 / per_solve_s;
    let rate = if args.rate == 0 { 2.0 * capacity } else { args.rate as f64 };
    println!(
        "open-loop: {} requests at {:.0} req/s ({}), warm capacity ~{:.0} req/s, \
deadline {} ms, seed {}",
        args.requests,
        rate,
        if args.rate == 0 { "auto: 2x capacity" } else { "requested" },
        capacity,
        args.deadline_ms,
        args.seed
    );

    // Collector pool: tickets are redeemed off the arrival thread so a slow
    // solve never stalls the arrival process (that would close the loop).
    let (tx, rx) = mpsc::channel::<(Priority, Instant, Ticket<f64>)>();
    let rx = Arc::new(Mutex::new(rx));
    let outcomes: Arc<Mutex<Vec<(Priority, u64, u8)>>> = Arc::new(Mutex::new(Vec::new()));
    let collectors: Vec<_> = (0..args.workers.max(2))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let outcomes = Arc::clone(&outcomes);
            std::thread::spawn(move || loop {
                let msg = rx.lock().unwrap().recv();
                let Ok((priority, submitted, ticket)) = msg else { break };
                let kind = match ticket.wait() {
                    Ok(out) if out.result.converged() => CONVERGED,
                    Ok(_) => FAILED,
                    Err(ServeError::Solver(SolverError::DeadlineExceeded { .. })) => DEADLINE,
                    Err(_) => FAILED,
                };
                let latency_ns = submitted.elapsed().as_nanos() as u64;
                outcomes.lock().unwrap().push((priority, latency_ns, kind));
            })
        })
        .collect();

    // Poisson arrivals: exponential inter-arrival gaps from a seeded
    // generator, so two runs with the same seed offer the same schedule.
    let mut rng = spcg::sparse::Rng::new(args.seed);
    let deadline = Duration::from_millis(args.deadline_ms);
    let mut shed = [0u64; 3];
    let start = Instant::now();
    let mut next_arrival_s = 0.0f64;
    for i in 0..args.requests {
        next_arrival_s += -(1.0 - rng.uniform()).ln() / rate;
        let target = start + Duration::from_secs_f64(next_arrival_s);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let priority = Priority::ALL[i % 3];
        let m = &mats[i % mats.len()];
        let b: Vec<f64> = (0..m.n_rows()).map(|j| ((j + i) % 13) as f64 / 13.0 - 0.4).collect();
        let policy = RequestPolicy::default().with_deadline(deadline).with_priority(priority);
        let submitted = Instant::now();
        match service.submit(SolveRequest::new(std::sync::Arc::clone(m), b).policy(policy)) {
            Ok(ticket) => tx.send((priority, submitted, ticket)).expect("collector pool alive"),
            Err(_) => shed[priority.tag() as usize] += 1,
        }
    }
    drop(tx);
    for c in collectors {
        c.join().expect("collector panicked");
    }
    let elapsed = start.elapsed();
    let outcomes = Arc::try_unwrap(outcomes).expect("collectors joined").into_inner().unwrap();
    let stats = service.stats();

    // Per-priority latency quantiles through the same nearest-rank machinery
    // the probe layer uses everywhere else.
    println!(
        "\n  priority  offered     shed  converged  deadline  failed     p50      p95      p99"
    );
    let ms = |ns: u64| ns as f64 / 1e6;
    for priority in Priority::ALL {
        let mut probe = HistogramProbe::new().with_quantiles(&[0.50, 0.95, 0.99]);
        let (mut converged, mut deadline_hit, mut failed) = (0u64, 0u64, 0u64);
        for (p, latency_ns, kind) in outcomes.iter() {
            if *p != priority {
                continue;
            }
            probe.record_duration_ns(Span::ServeRequest, *latency_ns);
            match *kind {
                CONVERGED => converged += 1,
                DEADLINE => deadline_hit += 1,
                _ => failed += 1,
            }
        }
        let shed_here = shed[priority.tag() as usize];
        let offered = converged + deadline_hit + failed + shed_here;
        let qs = probe.quantiles_for(Span::ServeRequest);
        let q = |idx: usize| qs.get(idx).map_or(0.0, |(_, ns)| ms(*ns));
        println!(
            "  {:>8}  {:>7}  {:>7}  {:>9}  {:>8}  {:>6}  {:>6.2}ms {:>6.2}ms {:>6.2}ms",
            priority.label(),
            offered,
            shed_here,
            converged,
            deadline_hit,
            failed,
            q(0),
            q(1),
            q(2),
        );
    }

    let total_shed: u64 = shed.iter().sum();
    let offered_rate = args.requests as f64 / elapsed.as_secs_f64().max(1e-9);
    println!("\nadmission table ({} workers):", args.workers);
    for (label, value) in [
        ("serve.admission.offered", stats.offered),
        ("serve.admission.admitted", stats.admitted),
        ("serve.admission.downgraded", stats.downgraded),
        ("serve.admission.shed", stats.shed),
        ("serve.admission.closed", stats.closed_rejected),
        ("serve.deadline.expired", stats.deadline_expired),
        ("serve.breaker.rejected", stats.breaker.rejected),
    ] {
        println!("  {label:<28} {value:>12}");
    }
    println!(
        "offered {:.0} req/s over {:.2?}; shed rate {:.1}%, degraded rate {:.1}%",
        offered_rate,
        elapsed,
        100.0 * stats.shed as f64 / stats.offered.max(1) as f64,
        100.0 * stats.downgraded as f64 / stats.offered.max(1) as f64,
    );

    // Gates: every policy submission must be accounted for exactly once, and
    // an over-capacity offered rate must actually shed (if it does not, the
    // admission controller is not protecting the queue).
    let reconciles =
        stats.offered == stats.admitted + stats.downgraded + stats.shed + stats.closed_rejected;
    let redeemed = outcomes.len() as u64 + total_shed == args.requests as u64;
    if !reconciles {
        eprintln!(
            "open-loop FAILED: counters do not reconcile: offered {} != admitted {} + \
downgraded {} + shed {} + closed {}",
            stats.offered, stats.admitted, stats.downgraded, stats.shed, stats.closed_rejected
        );
        return ExitCode::FAILURE;
    }
    if !redeemed {
        eprintln!(
            "open-loop FAILED: {} outcomes + {} shed != {} offered",
            outcomes.len(),
            total_shed,
            args.requests
        );
        return ExitCode::FAILURE;
    }
    if args.rate == 0 && stats.shed == 0 {
        eprintln!("open-loop FAILED: no shedding at 2x measured capacity");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_serve_bench(args: &ServeBenchArgs) -> ExitCode {
    if args.open_loop {
        return run_open_loop(args);
    }
    let mats = serve_bench_matrices(args.matrices, args.size);
    println!(
        "serve-bench: {} clients x {} requests over {} systems (n = {}..{}), window {} us",
        args.clients,
        args.requests,
        args.matrices,
        mats.iter().map(|m| m.n_rows()).min().unwrap_or(0),
        mats.iter().map(|m| m.n_rows()).max().unwrap_or(0),
        args.window_us
    );

    let (t1, ok1, s1) = serve_bench_run(&mats, 1, args);
    let (tn, okn, sn) = serve_bench_run(&mats, args.workers, args);

    let rate = |d: std::time::Duration| args.requests as f64 / d.as_secs_f64();
    println!("\n  workers  elapsed      req/s   converged  batches  max-batch");
    println!(
        "  {:>7}  {:>9.2?}  {:>8.1}  {:>9}  {:>7}  {:>9}",
        1,
        t1,
        rate(t1),
        ok1,
        s1.batches,
        s1.max_batch
    );
    println!(
        "  {:>7}  {:>9.2?}  {:>8.1}  {:>9}  {:>7}  {:>9}",
        args.workers,
        tn,
        rate(tn),
        okn,
        sn.batches,
        sn.max_batch
    );
    let ratio = t1.as_secs_f64() / tn.as_secs_f64().max(1e-9);
    println!(
        "throughput ratio ({} workers / 1 worker): {ratio:.2}x on {} hardware threads",
        args.workers,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // Cache table for the multi-worker run (the run CI gates on).
    let total = sn.cache.hits + sn.cache.misses;
    let hit_rate = if total == 0 { 0.0 } else { 100.0 * sn.cache.hits as f64 / total as f64 };
    println!("\ncache table ({} workers):", args.workers);
    for (label, value) in [
        ("serve.cache.hit", sn.cache.hits),
        ("serve.cache.miss", sn.cache.misses),
        ("serve.cache.eviction", sn.cache.evictions),
        ("serve.cache.bytes", sn.cache.bytes as u64),
        ("serve.batch.count", sn.batches),
        ("serve.batch.rhs", sn.batched_rhs),
        ("serve.queue.rejected", sn.rejected),
    ] {
        println!("  {label:<22} {value:>12}");
    }
    println!("cache hit rate: {hit_rate:.1}% (target >= 90%)");

    // Phase table of one warm served request, recorded through the probe
    // layer — the serve span wraps the usual plan/solve vocabulary.
    let service = SolveService::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let b = vec![1.0f64; mats[0].n_rows()];
    let mut probe = RecordingProbe::new();
    let _ = service.solve(&mats[0], &b); // warm the cache
    match service.solve_probed(&mats[0], &b, &mut probe) {
        Ok(out) => {
            println!(
                "\nwarm served solve: {} iterations, cache_hit = {}",
                out.result.iterations, out.cache_hit
            );
            println!("{}", probe.finish().phase_table());
        }
        Err(e) => {
            eprintln!("error: warm served solve failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    if hit_rate >= 90.0 && ok1 == args.requests && okn == args.requests {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "serve-bench FAILED: hit rate {hit_rate:.1}% (need >= 90), converged {ok1}/{} and {okn}/{}",
            args.requests, args.requests
        );
        ExitCode::FAILURE
    }
}

fn run_generate(g: &GenerateArgs) -> ExitCode {
    let p = |key: &str, default: f64| g.params.get(key).copied().unwrap_or(default);
    let m = match g.kind.as_str() {
        "poisson2d" => gen::poisson_2d(p("nx", 32.0) as usize, p("ny", 32.0) as usize),
        "poisson3d" => {
            gen::poisson_3d(p("nx", 12.0) as usize, p("ny", 12.0) as usize, p("nz", 12.0) as usize)
        }
        "layered2d" => gen::layered_poisson_2d(
            p("nx", 64.0) as usize,
            p("ny", 64.0) as usize,
            p("period", 4.0) as usize,
            p("weak", 0.015),
        ),
        "banded" => gen::banded_spd(
            p("n", 1000.0) as usize,
            p("band", 4.0) as usize,
            p("density", 0.8),
            p("dominance", 1.5),
            p("seed", 1.0) as u64,
        ),
        other => {
            eprintln!("error: unknown generator kind {other}");
            return ExitCode::FAILURE;
        }
    };
    match write_matrix_market_file(&m, MmSymmetry::Symmetric, Path::new(&g.out)) {
        Ok(()) => {
            println!("wrote {} (n = {}, nnz = {})", g.out, m.n_rows(), m.nnz());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", g.out);
            ExitCode::FAILURE
        }
    }
}
