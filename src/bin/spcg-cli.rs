//! `spcg-cli` — run the SPCG pipeline on Matrix Market files.
//!
//! See `spcg-cli help` (or [`spcg::cli::USAGE`]) for the interface.

use spcg::cli::{
    parse, sparsify_params, Command, GenerateArgs, ServeBenchArgs, SolveArgs, SparsifyMode, USAGE,
};
use spcg::prelude::*;
use spcg::sparse::generators as gen;
use spcg::sparse::io::{read_matrix_market_file, write_matrix_market_file, MmSymmetry};
use spcg_gpusim::{
    end_to_end_cost, pcg_iteration_cost_with_factor_bytes, simulated_solve_trace, DeviceSpec,
};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(Command::Help) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::Solve(a)) => run_solve(&a, false),
        Ok(Command::Analyze(a)) => run_solve(&a, true),
        Ok(Command::Generate(g)) => run_generate(&g),
        Ok(Command::ServeBench(sb)) => run_serve_bench(&sb),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn device_by_name(name: &str) -> DeviceSpec {
    match name {
        "v100" => DeviceSpec::v100(),
        "epyc" => DeviceSpec::epyc_7413(),
        _ => DeviceSpec::a100(),
    }
}

fn run_solve(args: &SolveArgs, analyze_only: bool) -> ExitCode {
    let a: spcg::sparse::CsrMatrix<f64> = match read_matrix_market_file(Path::new(&args.matrix)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.matrix);
            return ExitCode::FAILURE;
        }
    };
    if !a.is_square() {
        eprintln!("error: matrix is {}x{}, need square SPD", a.n_rows(), a.n_cols());
        return ExitCode::FAILURE;
    }
    println!(
        "matrix {}: n = {}, nnz = {}, wavefronts = {}, symmetric = {}",
        args.matrix,
        a.n_rows(),
        a.nnz(),
        wavefront_count(&a),
        a.is_symmetric(1e-12)
    );

    if analyze_only {
        let params = sparsify_params(&args.sparsify).unwrap_or_default();
        let d = spcg_core::wavefront_aware_sparsify(&a, &params);
        println!(
            "Algorithm 2: chose ratio {}% ({:?}), wavefronts {} -> {} ({:.2}% reduction)",
            d.chosen_ratio,
            d.reason,
            d.wavefronts_original,
            d.wavefronts_sparsified,
            d.wavefront_reduction()
        );
        for t in &d.trace {
            println!(
                "  ratio {:>5}%: indicator {:.4} ({}), wavefronts {:?}",
                t.ratio,
                t.indicator.product,
                if t.passed_convergence { "pass" } else { "fail" },
                t.wavefronts
            );
        }
        return ExitCode::SUCCESS;
    }

    let b = vec![1.0f64; a.n_rows()];
    let opts = SpcgOptions {
        sparsify: match &args.sparsify {
            SparsifyMode::Off => None,
            other => sparsify_params(other),
        },
        precond: args.precond,
        exec: args.exec,
        solver: args.solver.clone(),
        ordering: args.ordering,
        precision: args.precision,
        ..Default::default()
    };
    // Record the whole run — plan analysis plus the solve loop — through
    // one probe so the trace covers every phase.
    let mut probe = RecordingProbe::new();
    let plan = match SpcgPlan::build_probed(&a, &opts, &mut probe) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: pipeline analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ws = plan.make_workspace();
    let result = match plan.solve_with_workspace_probed(&b, &mut ws, &mut probe) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: solve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = probe.finish();
    let reorder = plan.reorder().cloned();
    let reorder_time = plan.reorder_time();
    let precision = plan.precision();
    let factor_bytes = plan.factor_value_bytes() as f64;
    let out = plan.into_outcome(result);
    println!(
        "{} {}: {:?} after {} iterations, residual {:.3e}",
        if opts.sparsify.is_some() { "SPCG" } else { "PCG" },
        args.precond.label(),
        out.result.stop,
        out.result.iterations,
        out.result.final_residual
    );
    if args.precision != PrecisionPolicy::Full {
        println!(
            "precision: requested {}, running {} ({}-byte factor values)",
            args.precision, precision, factor_bytes
        );
    }
    if let Some(r) = &reorder {
        println!(
            "ordering: requested {}, chose {}, levels {} -> {} ({:.2}% reduction)",
            r.requested,
            r.chosen,
            r.levels_natural,
            r.levels_chosen,
            r.level_reduction_percent()
        );
    }
    if let Some(d) = &out.decision {
        println!(
            "sparsification: ratio {}% ({:?}), wavefronts {} -> {}",
            d.chosen_ratio, d.reason, d.wavefronts_original, d.wavefronts_sparsified
        );
    }
    println!(
        "timings: reorder {:.2?}, sparsify {:.2?}, factorization {:.2?}, solve loop {:.2?}",
        reorder_time, out.sparsify_time, out.factorization_time, out.result.timings.total
    );
    if let Some(path) = &args.trace {
        let json = match serde_json::to_string_pretty(&trace) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: cannot serialize trace: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("trace: {} events -> {path}", trace.events.len());
        println!("{}", trace.phase_table());
    }
    if let Some(dev_name) = &args.device {
        let dev = device_by_name(dev_name);
        let it = pcg_iteration_cost_with_factor_bytes(&dev, &a, &out.factors, factor_bytes);
        let e2e = end_to_end_cost(
            &dev,
            &a,
            out.factors.l(),
            &out.factors,
            out.result.iterations,
            out.decision.is_some(),
        );
        println!(
            "{} model: {:.1} us/iteration, {:.1} us end-to-end",
            dev.name,
            it.total_us(),
            e2e.total_us()
        );
        if args.trace.is_some() {
            // Simulated counterpart of the measured table above: same span
            // vocabulary, timings from the execution model.
            let sim = simulated_solve_trace(&dev, &a, &out.factors, out.result.iterations);
            println!("{} model phase table:", dev.name);
            println!("{}", sim.phase_table());
        }
    }
    if out.result.converged() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Mixed small-system workload for the solve service: distinct operators
/// (different generators and magnitude spreads) so the cache holds several
/// plans at once, all small enough that a run finishes in seconds.
fn serve_bench_matrices(count: usize, size: usize) -> Vec<std::sync::Arc<CsrMatrix<f64>>> {
    (0..count)
        .map(|i| {
            let base = match i % 3 {
                0 => gen::poisson_2d(size, size + i / 3),
                1 => gen::layered_poisson_2d(size, size + i / 3, 4, 0.015),
                _ => gen::banded_spd(size * size, 3 + i / 3, 0.8, 1.5, 7 + i as u64),
            };
            std::sync::Arc::new(gen::with_magnitude_spread(&base, 3.0, 11 + i as u64))
        })
        .collect()
}

/// Runs `requests` solves of the mixed workload through a fresh service
/// with `workers` worker threads; returns (elapsed, converged, stats).
fn serve_bench_run(
    mats: &[std::sync::Arc<CsrMatrix<f64>>],
    workers: usize,
    args: &ServeBenchArgs,
) -> (std::time::Duration, usize, spcg::serve::ServiceStats) {
    let service = SolveService::new(ServiceConfig {
        workers,
        queue_capacity: (args.requests / 2).clamp(8, 512),
        batch_window: std::time::Duration::from_micros(args.window_us),
        ..ServiceConfig::default()
    });
    let converged = std::sync::atomic::AtomicUsize::new(0);
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for client in 0..args.clients {
            let service = &service;
            let converged = &converged;
            s.spawn(move || {
                let quota = args.requests / args.clients
                    + usize::from(client < args.requests % args.clients);
                let mut tickets = Vec::with_capacity(quota);
                for i in 0..quota {
                    // Deterministic interleave: consecutive requests from one
                    // client hit different systems, concurrent clients
                    // collide on the same system — the coalescing case.
                    let m = &mats[(client + i) % mats.len()];
                    let b: Vec<f64> =
                        (0..m.n_rows()).map(|j| ((j + i) % 13) as f64 / 13.0 - 0.4).collect();
                    if let Ok(t) = service.submit(std::sync::Arc::clone(m), b) {
                        tickets.push(t);
                    }
                }
                for t in tickets {
                    if let Ok(out) = t.wait() {
                        if out.result.converged() {
                            converged.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let stats = service.stats();
    (elapsed, converged.into_inner(), stats)
}

fn run_serve_bench(args: &ServeBenchArgs) -> ExitCode {
    let mats = serve_bench_matrices(args.matrices, args.size);
    println!(
        "serve-bench: {} clients x {} requests over {} systems (n = {}..{}), window {} us",
        args.clients,
        args.requests,
        args.matrices,
        mats.iter().map(|m| m.n_rows()).min().unwrap_or(0),
        mats.iter().map(|m| m.n_rows()).max().unwrap_or(0),
        args.window_us
    );

    let (t1, ok1, s1) = serve_bench_run(&mats, 1, args);
    let (tn, okn, sn) = serve_bench_run(&mats, args.workers, args);

    let rate = |d: std::time::Duration| args.requests as f64 / d.as_secs_f64();
    println!("\n  workers  elapsed      req/s   converged  batches  max-batch");
    println!(
        "  {:>7}  {:>9.2?}  {:>8.1}  {:>9}  {:>7}  {:>9}",
        1,
        t1,
        rate(t1),
        ok1,
        s1.batches,
        s1.max_batch
    );
    println!(
        "  {:>7}  {:>9.2?}  {:>8.1}  {:>9}  {:>7}  {:>9}",
        args.workers,
        tn,
        rate(tn),
        okn,
        sn.batches,
        sn.max_batch
    );
    let ratio = t1.as_secs_f64() / tn.as_secs_f64().max(1e-9);
    println!(
        "throughput ratio ({} workers / 1 worker): {ratio:.2}x on {} hardware threads",
        args.workers,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // Cache table for the multi-worker run (the run CI gates on).
    let total = sn.cache.hits + sn.cache.misses;
    let hit_rate = if total == 0 { 0.0 } else { 100.0 * sn.cache.hits as f64 / total as f64 };
    println!("\ncache table ({} workers):", args.workers);
    for (label, value) in [
        ("serve.cache.hit", sn.cache.hits),
        ("serve.cache.miss", sn.cache.misses),
        ("serve.cache.eviction", sn.cache.evictions),
        ("serve.cache.bytes", sn.cache.bytes as u64),
        ("serve.batch.count", sn.batches),
        ("serve.batch.rhs", sn.batched_rhs),
        ("serve.queue.rejected", sn.rejected),
    ] {
        println!("  {label:<22} {value:>12}");
    }
    println!("cache hit rate: {hit_rate:.1}% (target >= 90%)");

    // Phase table of one warm served request, recorded through the probe
    // layer — the serve span wraps the usual plan/solve vocabulary.
    let service = SolveService::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let b = vec![1.0f64; mats[0].n_rows()];
    let mut probe = RecordingProbe::new();
    let _ = service.solve(&mats[0], &b); // warm the cache
    match service.solve_probed(&mats[0], &b, &mut probe) {
        Ok(out) => {
            println!(
                "\nwarm served solve: {} iterations, cache_hit = {}",
                out.result.iterations, out.cache_hit
            );
            println!("{}", probe.finish().phase_table());
        }
        Err(e) => {
            eprintln!("error: warm served solve failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    if hit_rate >= 90.0 && ok1 == args.requests && okn == args.requests {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "serve-bench FAILED: hit rate {hit_rate:.1}% (need >= 90), converged {ok1}/{} and {okn}/{}",
            args.requests, args.requests
        );
        ExitCode::FAILURE
    }
}

fn run_generate(g: &GenerateArgs) -> ExitCode {
    let p = |key: &str, default: f64| g.params.get(key).copied().unwrap_or(default);
    let m = match g.kind.as_str() {
        "poisson2d" => gen::poisson_2d(p("nx", 32.0) as usize, p("ny", 32.0) as usize),
        "poisson3d" => {
            gen::poisson_3d(p("nx", 12.0) as usize, p("ny", 12.0) as usize, p("nz", 12.0) as usize)
        }
        "layered2d" => gen::layered_poisson_2d(
            p("nx", 64.0) as usize,
            p("ny", 64.0) as usize,
            p("period", 4.0) as usize,
            p("weak", 0.015),
        ),
        "banded" => gen::banded_spd(
            p("n", 1000.0) as usize,
            p("band", 4.0) as usize,
            p("density", 0.8),
            p("dominance", 1.5),
            p("seed", 1.0) as u64,
        ),
        other => {
            eprintln!("error: unknown generator kind {other}");
            return ExitCode::FAILURE;
        }
    };
    match write_matrix_market_file(&m, MmSymmetry::Symmetric, Path::new(&g.out)) {
        Ok(()) => {
            println!("wrote {} (n = {}, nnz = {})", g.out, m.n_rows(), m.nnz());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", g.out);
            ExitCode::FAILURE
        }
    }
}
