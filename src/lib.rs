//! # spcg — Sparsified Preconditioned Conjugate Gradient
//!
//! Facade crate re-exporting the whole SPCG workspace behind one import.
//! See the README for the architecture overview and DESIGN.md for the
//! paper-to-module mapping.
//!
//! ```
//! use spcg::prelude::*;
//!
//! let a = spcg::sparse::generators::poisson_2d(16, 16);
//! let b = vec![1.0f64; a.n_rows()];
//! let out = spcg_solve(&a, &b, &SpcgOptions::default()).unwrap();
//! assert!(out.result.converged());
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use spcg_core as core;
pub use spcg_gpusim as gpusim;
pub use spcg_lowrank as lowrank;
pub use spcg_precond as precond;
pub use spcg_solver as solver;
pub use spcg_sparse as sparse;
pub use spcg_suite as suite;
pub use spcg_wavefront as wavefront;

/// The most common imports in one place.
pub mod prelude {
    pub use spcg_core::{
        oracle_select, spcg_solve, wavefront_aware_sparsify, FallbackRung, FaultInjection,
        PrecondKind, RecoveryReport, ResilienceOptions, SparsifyParams, SpcgOptions, SpcgPlan,
        ORACLE_RATIOS,
    };
    pub use spcg_precond::{
        ic0, ilu0, iluk, shifted_factorization, Preconditioner, ShiftPolicy, TriangularExec,
    };
    pub use spcg_solver::{
        cg, pcg, pcg_in_place, pcg_with_workspace, BreakdownKind, SolveStats, SolveWorkspace,
        SolverConfig, SolverError, StopReason, ToleranceMode,
    };
    pub use spcg_sparse::{CooMatrix, CsrMatrix, Scalar};
    pub use spcg_wavefront::{wavefront_count, LevelSchedule, Triangle, WavefrontStats};
}
