//! # spcg — Sparsified Preconditioned Conjugate Gradient
//!
//! Facade crate re-exporting the whole SPCG workspace behind one import.
//! See the README for the architecture overview and DESIGN.md for the
//! paper-to-module mapping.
//!
//! The blessed surface lives in [`prelude`]: build an [`SpcgPlan`]
//! (amortizing sparsification, factorization, and level-schedule
//! construction), then solve as many right-hand sides as needed —
//! optionally observing every phase through a [`Probe`]:
//!
//! ```
//! use spcg::prelude::*;
//!
//! let a = spcg::sparse::generators::poisson_2d(16, 16);
//! let b = vec![1.0f64; a.n_rows()];
//!
//! let mut probe = RecordingProbe::new();
//! let plan = SpcgPlan::build_probed(&a, SpcgOptions::default(), &mut probe).unwrap();
//! let mut ws = plan.make_workspace();
//! let result = plan.solve_with_workspace_probed(&b, &mut ws, &mut probe).unwrap();
//! assert!(result.converged());
//!
//! let trace = probe.finish();
//! assert_eq!(trace.iterations(), result.iterations);
//! trace.validate_nesting().unwrap();
//! ```
//!
//! [`SpcgPlan`]: prelude::SpcgPlan
//! [`Probe`]: prelude::Probe

#![warn(missing_docs)]

pub mod cli;

pub use spcg_core as core;
pub use spcg_gpusim as gpusim;
pub use spcg_lowrank as lowrank;
pub use spcg_precond as precond;
pub use spcg_probe as probe;
pub use spcg_serve as serve;
pub use spcg_solver as solver;
pub use spcg_sparse as sparse;
pub use spcg_suite as suite;
pub use spcg_wavefront as wavefront;

/// The most common imports in one place: the plan/solve pipeline, its
/// options and results, the recovery ladder, and the probe layer.
pub mod prelude {
    pub use spcg_core::{
        oracle_select, wavefront_aware_sparsify, FallbackRung, FaultInjection, IluFill,
        KindCandidate, KindDecision, OrderingKind, PrecisionPolicy, PrecondKind, RecoveryAttempt,
        RecoveryReport, ReorderCandidate, ReorderDecision, ResilienceOptions, ResilientSolve,
        SparsifyParams, SpcgOptions, SpcgOutcome, SpcgPlan, ORACLE_RATIOS,
    };
    pub use spcg_precond::{
        ic0, ilu0, iluk, shifted_factorization, ExecutionStrategy, Preconditioner, ShiftPolicy,
    };
    pub use spcg_probe::{
        Counter, HistogramProbe, IterationEvent, NoProbe, PhaseStats, Probe, ProbeStop,
        RecordingProbe, RunTrace, RungEvent, RungKind, Span, TraceEvent,
    };
    pub use spcg_serve::{
        CacheConfig, PlanKey, RequestPolicy, ServeError, ServeOutcome, ServiceConfig, Session,
        SessionId, SolveRequest, SolveService, SolveTier, Ticket,
    };
    pub use spcg_solver::{
        cg, pcg, pcg_in_place, pcg_with_workspace, BreakdownKind, PhaseTimings, SolveResult,
        SolveStats, SolveWorkspace, SolverConfig, SolverError, StopReason, ToleranceMode,
    };
    pub use spcg_sparse::{CooMatrix, CsrMatrix, MatrixFingerprint, Scalar};
    pub use spcg_wavefront::{wavefront_count, LevelSchedule, Triangle, WavefrontStats};
}
