//! Command-line interface logic for the `spcg-cli` binary.
//!
//! Subcommands:
//!
//! * `solve`    — run PCG/SPCG on a Matrix Market file;
//! * `analyze`  — wavefront statistics + Algorithm-2 trace for a matrix;
//! * `generate` — write a synthetic SPD matrix to a Matrix Market file.
//!
//! Parsing is hand-rolled (no external dependency) and lives here so it is
//! unit-testable; `src/bin/spcg-cli.rs` is a thin wrapper.

use spcg_core::{
    CondEstimator, IluFill, OrderingKind, PrecisionPolicy, PrecondKind, SparsifyParams,
};
use spcg_precond::ExecutionStrategy;
use spcg_solver::{SolverConfig, ToleranceMode};
use std::collections::HashMap;

/// Sparsification mode requested on the command line.
#[derive(Debug, Clone, PartialEq)]
pub enum SparsifyMode {
    /// No sparsification — baseline PCG.
    Off,
    /// Algorithm 2 with default τ/ω.
    Auto,
    /// A fixed drop ratio in percent.
    Fixed(f64),
}

/// Parsed `solve` (and `analyze`) options.
#[derive(Debug, Clone)]
pub struct SolveArgs {
    /// Path to the Matrix Market file.
    pub matrix: String,
    /// Preconditioner family (sparsified ILU, a level-free approximate
    /// inverse, or the priced `auto` search).
    pub precond: PrecondKind,
    /// Fill level within the ILU family (ignored by level-free kinds).
    pub ilu_fill: IluFill,
    /// Sparsification mode.
    pub sparsify: SparsifyMode,
    /// Symmetric ordering applied before analysis.
    pub ordering: OrderingKind,
    /// Precision policy for the preconditioner apply.
    pub precision: PrecisionPolicy,
    /// Solver configuration.
    pub solver: SolverConfig,
    /// Triangular-solve execution strategy.
    pub exec: ExecutionStrategy,
    /// Device model for cost reporting (`a100`, `v100`, `epyc`), if any.
    pub device: Option<String>,
    /// Path to write the recorded run trace (JSON) to, if any.
    pub trace: Option<String>,
    /// Number of solves in a time-varying sequence (1 = a single solve).
    /// Steps past the first drift the matrix values and go through the
    /// value-only plan refresh + warm-start path.
    pub sequence: usize,
    /// Relative per-step value perturbation for `--sequence` (e.g. `0.002`
    /// = 0.2% drift per step).
    pub drift: f64,
}

/// Parsed `generate` options.
#[derive(Debug, Clone)]
pub struct GenerateArgs {
    /// Generator kind (`poisson2d`, `poisson3d`, `layered2d`, `banded`).
    pub kind: String,
    /// Output path.
    pub out: String,
    /// Free-form numeric parameters (`--nx`, `--ny`, ...).
    pub params: HashMap<String, f64>,
}

/// Parsed `serve-bench` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeBenchArgs {
    /// Concurrent client threads submitting requests.
    pub clients: usize,
    /// Distinct systems in the workload (cache working set).
    pub matrices: usize,
    /// Total requests per run.
    pub requests: usize,
    /// Worker threads for the multi-worker run (always compared against a
    /// 1-worker run of the same workload).
    pub workers: usize,
    /// Batching admission window in microseconds.
    pub window_us: u64,
    /// Grid side of the generated systems (n = size²).
    pub size: usize,
    /// Open-loop mode: Poisson arrivals at a fixed offered rate, with
    /// per-request deadlines, instead of the closed-loop client threads.
    pub open_loop: bool,
    /// Offered arrival rate in requests/second (open-loop only). Zero means
    /// "auto": 2x the measured warm-cache service capacity.
    pub rate: u64,
    /// Per-request deadline in milliseconds (open-loop only).
    pub deadline_ms: u64,
    /// Arrival-process seed (open-loop only).
    pub seed: u64,
}

impl Default for ServeBenchArgs {
    fn default() -> Self {
        Self {
            clients: 8,
            matrices: 4,
            requests: 200,
            workers: 8,
            window_us: 200,
            size: 24,
            open_loop: false,
            rate: 0,
            deadline_ms: 200,
            seed: 42,
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone)]
pub enum Command {
    /// Solve a system.
    Solve(SolveArgs),
    /// Analyze a matrix.
    Analyze(SolveArgs),
    /// Generate a matrix file.
    Generate(GenerateArgs),
    /// Benchmark the solve service.
    ServeBench(ServeBenchArgs),
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
spcg-cli — sparsified preconditioned conjugate gradient solver

USAGE:
  spcg-cli solve   --matrix FILE [--precond ilu0|iluk=K|fsai|spai|jacobi|auto] \
[--sparsify auto|off|RATIO%] [--ordering natural|rcm|coloring|auto] \
[--precision full|mixed|auto] [--tol 1e-10] [--abs-tol] [--max-iters N] \
[--exec-strategy seq|barrier|blocks|auto] [--exec seq|par] \
[--device a100|v100|epyc] [--trace OUT.json] \
[--sequence N [--drift SIGMA]]
  spcg-cli analyze --matrix FILE [--sparsify auto|RATIO%]
  spcg-cli generate --kind poisson2d|poisson3d|layered2d|banded --out FILE \
[--nx N] [--ny N] [--nz N] [--n N] [--period P] [--weak W] [--band B] [--seed S]
  spcg-cli serve-bench [--clients 8] [--matrices 4] [--requests 200] \
[--workers 8] [--window-us 200] [--size 24] \
[--open-loop [--rate REQ_PER_S] [--deadline-ms 200] [--seed 42]]
  spcg-cli help
";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected positional argument: {a}"));
        };
        // boolean flags
        if key == "abs-tol" || key == "open-loop" {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return Err(format!("flag --{key} needs a value"));
        };
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn parse_precond(s: &str) -> Result<(PrecondKind, IluFill), String> {
    if s == "ilu" || s == "ilu0" {
        return Ok((PrecondKind::IluSparsified, IluFill::Ilu0));
    }
    if let Some(k) = s.strip_prefix("iluk=") {
        return k
            .parse::<usize>()
            .map(|k| (PrecondKind::IluSparsified, IluFill::Iluk(k)))
            .map_err(|e| format!("bad K in --precond {s}: {e}"));
    }
    // `sai` is the legacy spelling of the static-pattern inverse.
    if s == "sai" {
        return Ok((PrecondKind::Spai, IluFill::Ilu0));
    }
    if let Some(kind) = PrecondKind::parse(s) {
        return Ok((kind, IluFill::Ilu0));
    }
    Err(format!("unknown preconditioner: {s} (expected ilu0, iluk=K, fsai, spai, jacobi, or auto)"))
}

fn parse_sparsify(s: &str) -> Result<SparsifyMode, String> {
    match s {
        "auto" => Ok(SparsifyMode::Auto),
        "off" => Ok(SparsifyMode::Off),
        other => {
            let trimmed = other.trim_end_matches('%');
            trimmed
                .parse::<f64>()
                .map(SparsifyMode::Fixed)
                .map_err(|e| format!("bad --sparsify value {other}: {e}"))
        }
    }
}

fn parse_solve(args: &[String]) -> Result<SolveArgs, String> {
    let flags = parse_flags(args)?;
    let matrix = flags.get("matrix").cloned().ok_or_else(|| "--matrix is required".to_string())?;
    let (precond, ilu_fill) = match flags.get("precond") {
        None => (PrecondKind::IluSparsified, IluFill::Ilu0),
        Some(s) => parse_precond(s)?,
    };
    let sparsify = match flags.get("sparsify") {
        None => SparsifyMode::Auto,
        Some(s) => parse_sparsify(s)?,
    };
    let ordering = match flags.get("ordering") {
        None => OrderingKind::Natural,
        Some(s) => OrderingKind::parse(s)
            .ok_or_else(|| format!("unknown --ordering {s} (natural|rcm|coloring|auto)"))?,
    };
    let precision = match flags.get("precision") {
        None => PrecisionPolicy::Full,
        Some(s) => PrecisionPolicy::parse(s)
            .ok_or_else(|| format!("unknown --precision {s} (full|mixed|auto)"))?,
    };
    let mut solver = SolverConfig::default();
    if let Some(t) = flags.get("tol") {
        solver.tol = t.parse().map_err(|e| format!("bad --tol: {e}"))?;
    }
    if flags.contains_key("abs-tol") {
        solver.tol_mode = ToleranceMode::Absolute;
    }
    if let Some(m) = flags.get("max-iters") {
        solver.max_iters = m.parse().map_err(|e| format!("bad --max-iters: {e}"))?;
    }
    let exec = match (flags.get("exec-strategy"), flags.get("exec").map(String::as_str)) {
        (Some(_), Some(_)) => {
            return Err("--exec and --exec-strategy are mutually exclusive".to_string())
        }
        (Some(s), None) => ExecutionStrategy::parse(s)
            .ok_or_else(|| format!("unknown --exec-strategy {s} (seq|barrier|blocks|auto)"))?,
        (None, None | Some("seq")) => ExecutionStrategy::Sequential,
        (None, Some("par")) => ExecutionStrategy::LevelBarrier,
        (None, Some(other)) => return Err(format!("unknown --exec {other} (seq|par)")),
    };
    let device = flags.get("device").cloned();
    if let Some(d) = &device {
        if !["a100", "v100", "epyc"].contains(&d.as_str()) {
            return Err(format!("unknown --device {d} (a100|v100|epyc)"));
        }
    }
    let trace = flags.get("trace").cloned();
    if let Some(t) = &trace {
        if t.is_empty() {
            return Err("--trace needs a non-empty output path".to_string());
        }
    }
    let sequence = match flags.get("sequence") {
        None => 1,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            Ok(_) => return Err("--sequence must be positive".to_string()),
            Err(e) => return Err(format!("bad --sequence {v}: {e}")),
        },
    };
    let drift = match flags.get("drift") {
        None => 0.001,
        Some(v) => {
            if sequence == 1 {
                return Err("--drift only applies with --sequence".to_string());
            }
            match v.parse::<f64>() {
                Ok(d) if d.is_finite() && d >= 0.0 => d,
                Ok(_) => return Err("--drift must be a finite non-negative number".to_string()),
                Err(e) => return Err(format!("bad --drift {v}: {e}")),
            }
        }
    };
    Ok(SolveArgs {
        matrix,
        precond,
        ilu_fill,
        sparsify,
        ordering,
        precision,
        solver,
        exec,
        device,
        trace,
        sequence,
        drift,
    })
}

fn parse_generate(args: &[String]) -> Result<GenerateArgs, String> {
    let flags = parse_flags(args)?;
    let kind = flags.get("kind").cloned().ok_or_else(|| "--kind is required".to_string())?;
    let out = flags.get("out").cloned().ok_or_else(|| "--out is required".to_string())?;
    let mut params = HashMap::new();
    for (k, v) in &flags {
        if k == "kind" || k == "out" {
            continue;
        }
        let val: f64 = v.parse().map_err(|e| format!("bad --{k} {v}: {e}"))?;
        params.insert(k.clone(), val);
    }
    Ok(GenerateArgs { kind, out, params })
}

fn parse_serve_bench(args: &[String]) -> Result<ServeBenchArgs, String> {
    let flags = parse_flags(args)?;
    let mut out = ServeBenchArgs::default();
    let known = [
        "clients",
        "matrices",
        "requests",
        "workers",
        "window-us",
        "size",
        "open-loop",
        "rate",
        "deadline-ms",
        "seed",
    ];
    for key in flags.keys() {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown serve-bench flag --{key}"));
        }
    }
    let num = |key: &str, default: usize| -> Result<usize, String> {
        match flags.get(key) {
            None => Ok(default),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                Ok(_) => Err(format!("--{key} must be positive")),
                Err(e) => Err(format!("bad --{key} {v}: {e}")),
            },
        }
    };
    out.clients = num("clients", out.clients)?;
    out.matrices = num("matrices", out.matrices)?;
    out.requests = num("requests", out.requests)?;
    out.workers = num("workers", out.workers)?;
    out.size = num("size", out.size)?;
    // The window may legitimately be zero (coalesce only what already queued).
    if let Some(v) = flags.get("window-us") {
        out.window_us = v.parse().map_err(|e| format!("bad --window-us {v}: {e}"))?;
    }
    out.open_loop = flags.contains_key("open-loop");
    // The rate may be zero (auto: 2x measured capacity).
    if let Some(v) = flags.get("rate") {
        out.rate = v.parse().map_err(|e| format!("bad --rate {v}: {e}"))?;
    }
    if let Some(v) = flags.get("deadline-ms") {
        out.deadline_ms = match v.parse::<u64>() {
            Ok(ms) if ms > 0 => ms,
            Ok(_) => return Err("--deadline-ms must be positive".to_string()),
            Err(e) => return Err(format!("bad --deadline-ms {v}: {e}")),
        };
    }
    if let Some(v) = flags.get("seed") {
        out.seed = v.parse().map_err(|e| format!("bad --seed {v}: {e}"))?;
    }
    for key in ["rate", "deadline-ms", "seed"] {
        if flags.contains_key(key) && !out.open_loop {
            return Err(format!("--{key} only applies with --open-loop"));
        }
    }
    Ok(out)
}

/// Parses a full command line (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("solve") => parse_solve(&args[1..]).map(Command::Solve),
        Some("analyze") => parse_solve(&args[1..]).map(Command::Analyze),
        Some("generate") => parse_generate(&args[1..]).map(Command::Generate),
        Some("serve-bench") => parse_serve_bench(&args[1..]).map(Command::ServeBench),
        Some(other) => Err(format!("unknown subcommand: {other}\n{USAGE}")),
    }
}

/// Builds the `SparsifyParams` for a mode (Fixed handled by the caller).
pub fn sparsify_params(mode: &SparsifyMode) -> Option<SparsifyParams> {
    match mode {
        SparsifyMode::Off => None,
        SparsifyMode::Auto => Some(SparsifyParams::default()),
        SparsifyMode::Fixed(r) => Some(SparsifyParams {
            ratios: vec![*r],
            tau: f64::MAX,
            omega: 0.0,
            estimator: CondEstimator::PaperApprox,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_basic_solve() {
        let cmd = parse(&s(&["solve", "--matrix", "m.mtx"])).unwrap();
        let Command::Solve(a) = cmd else { panic!("wrong command") };
        assert_eq!(a.matrix, "m.mtx");
        assert_eq!(a.precond, PrecondKind::IluSparsified);
        assert_eq!(a.ilu_fill, IluFill::Ilu0);
        assert_eq!(a.sparsify, SparsifyMode::Auto);
        assert_eq!(a.ordering, OrderingKind::Natural);
        assert_eq!(a.exec, ExecutionStrategy::Sequential);
    }

    #[test]
    fn parses_ordering_flag() {
        for (spelling, kind) in [
            ("natural", OrderingKind::Natural),
            ("rcm", OrderingKind::Rcm),
            ("coloring", OrderingKind::Coloring),
            ("auto", OrderingKind::Auto),
        ] {
            let cmd = parse(&s(&["solve", "--matrix", "m.mtx", "--ordering", spelling])).unwrap();
            let Command::Solve(a) = cmd else { panic!() };
            assert_eq!(a.ordering, kind, "--ordering {spelling}");
        }
        let err = parse(&s(&["solve", "--matrix", "m.mtx", "--ordering", "metis"]));
        assert!(err.is_err(), "unknown orderings must be rejected");
    }

    #[test]
    fn parses_precision_flag() {
        let cmd = parse(&s(&["solve", "--matrix", "m.mtx"])).unwrap();
        let Command::Solve(a) = cmd else { panic!() };
        assert_eq!(a.precision, PrecisionPolicy::Full, "full precision is the default");
        for (spelling, policy) in [
            ("full", PrecisionPolicy::Full),
            ("mixed", PrecisionPolicy::MixedF32),
            ("auto", PrecisionPolicy::Auto),
        ] {
            let cmd = parse(&s(&["solve", "--matrix", "m.mtx", "--precision", spelling])).unwrap();
            let Command::Solve(a) = cmd else { panic!() };
            assert_eq!(a.precision, policy, "--precision {spelling}");
        }
        assert!(parse(&s(&["solve", "--matrix", "m.mtx", "--precision", "half"])).is_err());
    }

    #[test]
    fn parses_full_solve() {
        let cmd = parse(&s(&[
            "solve",
            "--matrix",
            "m.mtx",
            "--precond",
            "iluk=2",
            "--sparsify",
            "5%",
            "--tol",
            "1e-8",
            "--max-iters",
            "200",
            "--exec",
            "par",
            "--device",
            "v100",
        ]))
        .unwrap();
        let Command::Solve(a) = cmd else { panic!() };
        assert_eq!(a.precond, PrecondKind::IluSparsified);
        assert_eq!(a.ilu_fill, IluFill::Iluk(2));
        assert_eq!(a.sparsify, SparsifyMode::Fixed(5.0));
        assert_eq!(a.solver.tol, 1e-8);
        assert_eq!(a.solver.max_iters, 200);
        assert_eq!(a.exec, ExecutionStrategy::LevelBarrier);
        assert_eq!(a.device.as_deref(), Some("v100"));
        assert_eq!(a.trace, None);
    }

    #[test]
    fn parses_exec_strategy_flag() {
        for (spelling, exec) in [
            ("seq", ExecutionStrategy::Sequential),
            ("sequential", ExecutionStrategy::Sequential),
            ("barrier", ExecutionStrategy::LevelBarrier),
            ("level-barrier", ExecutionStrategy::LevelBarrier),
            ("blocks", ExecutionStrategy::DependencyBlocks),
            ("dependency-blocks", ExecutionStrategy::DependencyBlocks),
            ("auto", ExecutionStrategy::Auto),
        ] {
            let cmd =
                parse(&s(&["solve", "--matrix", "m.mtx", "--exec-strategy", spelling])).unwrap();
            let Command::Solve(a) = cmd else { panic!() };
            assert_eq!(a.exec, exec, "--exec-strategy {spelling}");
        }
        assert!(parse(&s(&["solve", "--matrix", "m", "--exec-strategy", "warp"])).is_err());
        // The legacy spelling still works but cannot be combined with the
        // new flag.
        assert!(parse(&s(&[
            "solve",
            "--matrix",
            "m",
            "--exec",
            "par",
            "--exec-strategy",
            "blocks"
        ]))
        .is_err());
    }

    #[test]
    fn parses_precond_kinds() {
        for (spelling, kind) in [
            ("ilu", PrecondKind::IluSparsified),
            ("fsai", PrecondKind::Fsai),
            ("spai", PrecondKind::Spai),
            ("sai", PrecondKind::Spai), // legacy spelling
            ("jacobi", PrecondKind::Jacobi),
            ("auto", PrecondKind::Auto),
        ] {
            let cmd = parse(&s(&["solve", "--matrix", "m.mtx", "--precond", spelling])).unwrap();
            let Command::Solve(a) = cmd else { panic!() };
            assert_eq!(a.precond, kind, "--precond {spelling}");
            assert_eq!(a.ilu_fill, IluFill::Ilu0, "level-free kinds leave fill at the default");
        }
    }

    #[test]
    fn parses_trace_flag() {
        let cmd = parse(&s(&["solve", "--matrix", "m.mtx", "--trace", "out.json"])).unwrap();
        let Command::Solve(a) = cmd else { panic!() };
        assert_eq!(a.trace.as_deref(), Some("out.json"));
        assert!(parse(&s(&["solve", "--matrix", "m.mtx", "--trace", ""])).is_err());
        assert!(parse(&s(&["solve", "--matrix", "m.mtx", "--trace"])).is_err());
    }

    #[test]
    fn parses_sequence_flags() {
        let cmd = parse(&s(&["solve", "--matrix", "m.mtx"])).unwrap();
        let Command::Solve(a) = cmd else { panic!() };
        assert_eq!(a.sequence, 1, "a plain solve is a one-step sequence");

        let cmd = parse(&s(&["solve", "--matrix", "m.mtx", "--sequence", "8", "--drift", "0.002"]))
            .unwrap();
        let Command::Solve(a) = cmd else { panic!() };
        assert_eq!(a.sequence, 8);
        assert_eq!(a.drift, 0.002);

        let cmd = parse(&s(&["solve", "--matrix", "m.mtx", "--sequence", "3"])).unwrap();
        let Command::Solve(a) = cmd else { panic!() };
        assert_eq!(a.drift, 0.001, "drift defaults to 0.1% per step");

        assert!(parse(&s(&["solve", "--matrix", "m.mtx", "--sequence", "0"])).is_err());
        assert!(parse(&s(&["solve", "--matrix", "m.mtx", "--sequence", "two"])).is_err());
        assert!(
            parse(&s(&["solve", "--matrix", "m.mtx", "--drift", "0.1"])).is_err(),
            "--drift without --sequence must be rejected"
        );
        assert!(parse(&s(&["solve", "--matrix", "m.mtx", "--sequence", "4", "--drift", "-0.5"]))
            .is_err());
    }

    #[test]
    fn abs_tol_flag() {
        let cmd = parse(&s(&["solve", "--matrix", "m.mtx", "--abs-tol"])).unwrap();
        let Command::Solve(a) = cmd else { panic!() };
        assert_eq!(a.solver.tol_mode, ToleranceMode::Absolute);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&s(&["solve"])).is_err()); // missing matrix
        assert!(parse(&s(&["solve", "--matrix", "m", "--precond", "magic"])).is_err());
        assert!(parse(&s(&["solve", "--matrix", "m", "--device", "h100"])).is_err());
        assert!(parse(&s(&["solve", "--matrix", "m", "--exec", "warp"])).is_err());
        assert!(parse(&s(&["frobnicate"])).is_err());
        assert!(parse(&s(&["solve", "--matrix"])).is_err()); // missing value
        assert!(parse(&s(&["solve", "positional"])).is_err());
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(&s(&[
            "generate",
            "--kind",
            "poisson2d",
            "--out",
            "o.mtx",
            "--nx",
            "10",
            "--ny",
            "12",
        ]))
        .unwrap();
        let Command::Generate(g) = cmd else { panic!() };
        assert_eq!(g.kind, "poisson2d");
        assert_eq!(g.params["nx"], 10.0);
        assert_eq!(g.params["ny"], 12.0);
    }

    #[test]
    fn parses_serve_bench() {
        let cmd = parse(&s(&["serve-bench"])).unwrap();
        let Command::ServeBench(a) = cmd else { panic!() };
        assert_eq!(a, ServeBenchArgs::default());

        let cmd = parse(&s(&[
            "serve-bench",
            "--clients",
            "4",
            "--matrices",
            "3",
            "--requests",
            "50",
            "--workers",
            "2",
            "--window-us",
            "0",
            "--size",
            "16",
        ]))
        .unwrap();
        let Command::ServeBench(a) = cmd else { panic!() };
        assert_eq!(
            a,
            ServeBenchArgs {
                clients: 4,
                matrices: 3,
                requests: 50,
                workers: 2,
                window_us: 0,
                size: 16,
                ..ServeBenchArgs::default()
            }
        );

        assert!(parse(&s(&["serve-bench", "--clients", "0"])).is_err());
        assert!(parse(&s(&["serve-bench", "--workers", "eight"])).is_err());
        assert!(parse(&s(&["serve-bench", "--frobnicate", "1"])).is_err());
    }

    #[test]
    fn parses_open_loop_serve_bench() {
        let cmd = parse(&s(&["serve-bench", "--open-loop"])).unwrap();
        let Command::ServeBench(a) = cmd else { panic!() };
        assert!(a.open_loop);
        assert_eq!(a.rate, 0, "rate defaults to auto (2x capacity)");
        assert_eq!(a.deadline_ms, 200);
        assert_eq!(a.seed, 42);

        let cmd = parse(&s(&[
            "serve-bench",
            "--open-loop",
            "--rate",
            "500",
            "--deadline-ms",
            "50",
            "--seed",
            "7",
            "--requests",
            "1000",
        ]))
        .unwrap();
        let Command::ServeBench(a) = cmd else { panic!() };
        assert!(a.open_loop);
        assert_eq!(a.rate, 500);
        assert_eq!(a.deadline_ms, 50);
        assert_eq!(a.seed, 7);
        assert_eq!(a.requests, 1000);

        // Open-loop knobs are rejected without the mode flag.
        assert!(parse(&s(&["serve-bench", "--rate", "500"])).is_err());
        assert!(parse(&s(&["serve-bench", "--seed", "7"])).is_err());
        assert!(parse(&s(&["serve-bench", "--open-loop", "--deadline-ms", "0"])).is_err());
        assert!(parse(&s(&["serve-bench", "--open-loop", "--rate", "fast"])).is_err());
    }

    #[test]
    fn help_paths() {
        assert!(matches!(parse(&[]).unwrap(), Command::Help));
        assert!(matches!(parse(&s(&["help"])).unwrap(), Command::Help));
        assert!(matches!(parse(&s(&["--help"])).unwrap(), Command::Help));
    }

    #[test]
    fn sparsify_params_modes() {
        assert!(sparsify_params(&SparsifyMode::Off).is_none());
        let auto = sparsify_params(&SparsifyMode::Auto).unwrap();
        assert_eq!(auto.ratios, vec![10.0, 5.0, 1.0]);
        let fixed = sparsify_params(&SparsifyMode::Fixed(7.5)).unwrap();
        assert_eq!(fixed.ratios, vec![7.5]);
        assert_eq!(fixed.omega, 0.0);
    }
}
