//! Offline stand-in for `serde_derive`.
//!
//! Generates implementations of the serde *shim's* traits (`Serialize` /
//! `Deserialize`, a value-tree model) for the item shapes this workspace
//! uses: non-generic structs with named fields, tuple structs, and enums
//! with unit, tuple, and struct variants. `#[serde(...)]` attributes and
//! generic parameters are intentionally unsupported — the macro panics with
//! a clear message so a future change is caught at compile time rather than
//! silently mis-serialized.
//!
//! No `syn`/`quote` (unavailable offline): the item is parsed directly from
//! the `proc_macro` token stream and code is emitted via string formatting.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum ItemShape {
    /// Struct with named fields.
    Struct { fields: Vec<String> },
    /// Tuple struct with `arity` fields.
    TupleStruct { arity: usize },
    /// Enum.
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    shape: ItemShape,
}

/// Derives the serde shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derives the serde shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "serde shim derive: generic type `{name}` is not supported by the offline \
             serde stand-in — serialize a concrete mirror type instead"
        );
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::Struct { fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemShape::TupleStruct { arity: count_top_level_fields(g.stream()) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemShape::TupleStruct { arity: 0 },
            other => panic!("serde shim derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::Enum { variants: parse_variants(g.stream()) }
            }
            other => panic!("serde shim derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };

    Item { name, shape }
}

/// Advances `i` past attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists (struct bodies and struct
/// variants), returning the field names in declaration order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after `{field}`, got {other}"),
        }
        // Consume the type: everything until a comma at angle-bracket
        // depth 0. Grouped tokens (parens/brackets) are single trees, so
        // only `<`/`>` need depth tracking.
        let mut depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

/// Counts fields in a tuple-struct/tuple-variant body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde shim derive: explicit discriminants are not supported");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        ItemShape::Struct { fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        ItemShape::TupleStruct { arity } => {
            let entries: Vec<String> =
                (0..*arity).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Seq(vec![{}])", entries.join(", "))
        }
        ItemShape::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let vals: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\
                                 \"{vn}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                                vals.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        ItemShape::Struct { fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::DeError::new(\"expected map for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemShape::TupleStruct { arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                 if __s.len() != {arity} {{ return Err(::serde::DeError::new(\
                 \"wrong tuple arity for {name}\")); }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        ItemShape::Enum { variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __s = __payload.as_seq().ok_or_else(|| \
                                 ::serde::DeError::new(\"expected array payload\"))?; \
                                 if __s.len() != {n} {{ return Err(::serde::DeError::new(\
                                 \"wrong payload arity for {name}::{vn}\")); }} \
                                 return Ok({name}::{vn}({})); }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::map_get(__fm, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __fm = __payload.as_map().ok_or_else(|| \
                                 ::serde::DeError::new(\"expected map payload\"))?; \
                                 return Ok({name}::{vn} {{ {} }}); }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let Some(__s) = __v.as_str() {{\n\
                     match __s {{ {unit} _ => return Err(::serde::DeError::new(\
                     format!(\"unknown unit variant `{{__s}}` for {name}\"))) }}\n\
                 }}\n\
                 if let Some(__m) = __v.as_map() {{\n\
                     if __m.len() == 1 {{\n\
                         let (__tag, __payload) = (&__m[0].0, &__m[0].1);\n\
                         match __tag.as_str() {{ {data} _ => return Err(::serde::DeError::new(\
                         format!(\"unknown variant `{{__tag}}` for {name}\"))) }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::DeError::new(\"unrecognized enum encoding for {name}\"))",
                unit = unit_arms.join(" "),
                data = data_arms.join(" "),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
         {{ {body} }}\n\
         }}"
    )
}
