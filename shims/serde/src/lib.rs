//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal self-consistent serialization framework under serde's name:
//! types convert to and from a [`Value`] tree, and `serde_json` (the
//! sibling shim) prints/parses that tree as JSON. The `#[derive(Serialize,
//! Deserialize)]` attributes used across the workspace are provided by the
//! `serde_derive` shim and generate implementations of the traits below.
//!
//! This is intentionally NOT wire-compatible with real serde beyond plain
//! JSON structs/enums — it exists so the workspace builds and its JSON
//! artifacts/round-trip tests work without network access.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;
use std::time::Duration;

/// A dynamically-typed serialization tree (the subset of JSON's data model
/// this workspace needs, with integers kept exact).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a field in an object, with a helpful error (used by generated
/// code; public so the derive output can call it).
pub fn map_get<'v>(map: &'v [(String, Value)], key: &str) -> Result<&'v Value, DeError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{key}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("unsigned integer out of range")),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("negative value for unsigned integer")),
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::new(format!("expected unsigned integer, got {other:?}"))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::new(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(DeError::new(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::new("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if s.len() != expected {
                    return Err(DeError::new(format!(
                        "expected {expected}-tuple, got {} elements", s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map().ok_or_else(|| DeError::new("expected duration map"))?;
        let secs = u64::from_value(map_get(m, "secs")?)?;
        let nanos = u32::from_value(map_get(m, "nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            Option::<String>::from_value(&Some("hi".to_string()).to_value()).unwrap(),
            Some("hi".to_string())
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2usize, 3usize), (4, 5, 6)];
        let back = Vec::<(usize, usize, usize)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let d = Duration::new(3, 141_592_653);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }
}
