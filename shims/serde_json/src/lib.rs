//! Offline stand-in for `serde_json`, built on the serde shim's [`Value`]
//! tree: `to_string`/`to_string_pretty` print a value tree as JSON, and
//! `from_str` parses JSON back (recursive descent) so round-trip tests and
//! artifact files work without network access.

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error from serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value_str(s)?;
    Ok(T::from_value(&v)?)
}

fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a decimal point so the value re-parses as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!("unexpected input {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's artifacts; reject rather than
                            // silently corrupt.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_compact() {
        let v = Value::Map(vec![
            ("name".to_string(), Value::Str("poisson".to_string())),
            ("n".to_string(), Value::U64(4096)),
            ("tol".to_string(), Value::F64(1e-12)),
            ("converged".to_string(), Value::Bool(true)),
            ("note".to_string(), Value::Null),
            (
                "ratios".to_string(),
                Value::Seq(vec![Value::F64(10.0), Value::F64(5.0), Value::F64(1.0)]),
            ),
        ]);
        let s = to_string(&v).unwrap();
        let back = parse_value_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_round_trips() {
        let v = Value::Seq(vec![
            Value::Map(vec![("k".to_string(), Value::I64(-3))]),
            Value::Str("a \"quoted\"\nline".to_string()),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(parse_value_str(&s).unwrap(), v);
    }

    #[test]
    fn parses_nested_json_text() {
        let v = parse_value_str(r#"{"a": [1, -2, 3.5], "b": {"c": null}}"#).unwrap();
        let m = v.as_map().unwrap();
        assert_eq!(m[0].0, "a");
        assert_eq!(m[0].1, Value::Seq(vec![Value::U64(1), Value::I64(-2), Value::F64(3.5)]));
    }

    #[test]
    fn floats_keep_precision() {
        let s = to_string(&Value::F64(0.1234567890123456)).unwrap();
        let back = parse_value_str(&s).unwrap();
        assert_eq!(back, Value::F64(0.1234567890123456));
    }
}
