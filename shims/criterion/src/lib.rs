//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use — groups,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `criterion_group!`,
//! `criterion_main!` — as a plain wall-clock harness: each benchmark is
//! warmed up, then timed over a fixed batch of iterations, and the mean
//! time per iteration is printed. No statistics, plots, or baselines; it
//! exists so `cargo bench` compiles and produces usable numbers without
//! network access.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. This stand-in runs one setup
/// per routine call regardless of variant, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Handle passed to benchmark closures; drives the timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup()` input per call; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    _criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the measured iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Warm-up pass with a few iterations.
        let mut warm = Bencher { iters: 3, elapsed: Duration::ZERO };
        f(&mut warm);

        let mut b = Bencher { iters: self.sample_size, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        println!("{}/{}: {:>12.3} µs/iter  ({} iters)", self.name, id, per_iter * 1e6, b.iters);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: 100, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g =
            BenchmarkGroup { name: "bench".to_string(), sample_size: 100, _criterion: self };
        g.bench_function(id, f);
        self
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u32; 8], |v| v.iter().sum::<u32>(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
