//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of rayon's API it actually uses, executed
//! with `std::thread::scope`. Parallel iterators here are indexed: every
//! adapter knows its length and can produce the item at position `i`, which
//! is what lets `for_each` hand disjoint index ranges to worker threads.
//!
//! Semantics preserved from real rayon for the patterns in this workspace:
//!
//! * `for_each` over `par_iter`/`par_iter_mut` touches each index exactly
//!   once (disjoint `&mut` access is sound — see [`ParIterMut`](iter::ParIterMut));
//! * `reduce` folds per-thread partials and then combines them in thread
//!   submission order, so integer-exact reductions are deterministic;
//! * small inputs run inline on the calling thread (fork/join would
//!   dominate), matching rayon's adaptive splitting in spirit.

#![warn(missing_docs)]

use std::marker::PhantomData;

/// Everything a `use rayon::prelude::*` caller expects.
pub mod prelude {
    pub use crate::iter::{
        IndexedParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator,
    };
}

/// Below this many items a "parallel" call runs inline on the caller:
/// spawning threads for tiny loops costs more than it saves.
const INLINE_THRESHOLD: usize = 2048;

/// Number of worker threads used for genuinely parallel execution.
///
/// Honors `RAYON_NUM_THREADS` exactly as real rayon's default pool does —
/// CI pins it to exercise the concurrency tests single-threaded and
/// oversubscribed — and falls back to the machine's parallelism. Like real
/// rayon's global pool, the size is fixed at first use: the env var is read
/// once (reading it per call would also put a `String` allocation on the
/// executors' per-sweep hot path).
pub fn current_num_threads() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| {
        match std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    })
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// A fork-join scope: spawned closures may borrow from the enclosing stack
/// frame and are all joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Handle passed to [`scope`] closures, mirroring `rayon::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that runs before the scope exits. The closure receives
    /// the scope again (as in rayon) so it can spawn nested tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'s> FnOnce(&Scope<'s, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Indexed parallel iterators over slices.
pub mod iter {
    use super::{current_num_threads, PhantomData, INLINE_THRESHOLD};

    /// Obtain a parallel iterator borrowing each element (`par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: Send + Sync + 'a;
        /// Borrowing parallel iterator (`&self` counterpart of rayon's).
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    /// Obtain a parallel iterator mutably borrowing each element
    /// (`par_iter_mut`).
    pub trait IntoParallelRefMutIterator<'a> {
        /// Element type.
        type Item: Send + 'a;
        /// Mutably borrowing parallel iterator.
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
    }

    impl<'a, T: Send + Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    impl<'a, T: Send + Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = T;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut { ptr: self.as_mut_ptr(), len: self.len(), _marker: PhantomData }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            self.as_mut_slice().par_iter_mut()
        }
    }

    /// An indexed source of items: the engine drives it by handing each
    /// worker a disjoint range of indices.
    ///
    /// # Safety
    ///
    /// Implementations must tolerate `item(i)` being called at most once per
    /// index, from any thread, with `&self` shared. [`ParIterMut`] hands out
    /// `&mut T` derived from a raw pointer, which is sound exactly because
    /// the engine never produces the same index twice.
    pub unsafe trait IndexedParallelIterator: Sized + Send + Sync {
        /// The item produced at each index.
        type Item: Send;

        /// Number of items.
        fn len(&self) -> usize;

        /// `true` when there are no items.
        fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Produces the item at `i`.
        ///
        /// # Safety
        ///
        /// Each index in `0..len` must be passed at most once across all
        /// threads.
        unsafe fn item(&self, i: usize) -> Self::Item;

        /// Pairs this iterator with another of the same length.
        fn zip<B: IndexedParallelIterator>(self, other: B) -> Zip<Self, B> {
            assert_eq!(self.len(), other.len(), "zip: length mismatch");
            Zip { a: self, b: other }
        }

        /// Maps each item through `f`.
        fn map<R: Send, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Attaches the index to each item.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { base: self }
        }

        /// Accepted for rayon compatibility; chunking here is per-thread
        /// ranges already, so this is a no-op.
        fn with_min_len(self, _min: usize) -> Self {
            self
        }
    }

    /// Consumer methods; blanket-implemented for every indexed iterator.
    pub trait ParallelIterator: IndexedParallelIterator {
        /// Calls `f` on every item, in parallel for large inputs.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            let n = self.len();
            let workers = current_num_threads();
            if n < INLINE_THRESHOLD || workers < 2 {
                for i in 0..n {
                    // SAFETY: each index visited exactly once.
                    f(unsafe { self.item(i) });
                }
                return;
            }
            let chunk = n.div_ceil(workers);
            let it = &self;
            let f = &f;
            std::thread::scope(|s| {
                for w in 0..workers {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    if lo >= hi {
                        break;
                    }
                    s.spawn(move || {
                        for i in lo..hi {
                            // SAFETY: ranges are disjoint across workers.
                            f(unsafe { it.item(i) });
                        }
                    });
                }
            });
        }

        /// Folds items with `op`, seeding every partial fold from
        /// `identity`. Partials are combined in worker order.
        fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
        where
            ID: Fn() -> Self::Item + Sync + Send,
            OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
        {
            let n = self.len();
            let workers = current_num_threads();
            if n < INLINE_THRESHOLD || workers < 2 {
                let mut acc = identity();
                for i in 0..n {
                    // SAFETY: each index visited exactly once.
                    acc = op(acc, unsafe { self.item(i) });
                }
                return acc;
            }
            let chunk = n.div_ceil(workers);
            let it = &self;
            let identity = &identity;
            let op = &op;
            let partials: Vec<Self::Item> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .filter_map(|w| {
                        let lo = w * chunk;
                        let hi = ((w + 1) * chunk).min(n);
                        (lo < hi).then(|| {
                            s.spawn(move || {
                                let mut acc = identity();
                                for i in lo..hi {
                                    // SAFETY: ranges are disjoint.
                                    acc = op(acc, unsafe { it.item(i) });
                                }
                                acc
                            })
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("rayon worker panicked")).collect()
            });
            partials.into_iter().fold(identity(), &op)
        }

        /// Sums the items.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item> + Send,
            Self::Item: Send,
        {
            let n = self.len();
            // Sequential: `Sum` gives us no parallel monoid to fold with.
            (0..n)
                .map(|i| {
                    // SAFETY: each index visited exactly once.
                    unsafe { self.item(i) }
                })
                .sum()
        }

        /// Collects items in index order.
        fn collect<C>(self) -> C
        where
            C: FromIterator<Self::Item>,
        {
            let n = self.len();
            (0..n)
                .map(|i| {
                    // SAFETY: each index visited exactly once.
                    unsafe { self.item(i) }
                })
                .collect()
        }
    }

    impl<I: IndexedParallelIterator> ParallelIterator for I {}

    /// Shared-borrow parallel iterator over a slice.
    pub struct ParIter<'a, T> {
        pub(crate) slice: &'a [T],
    }

    // SAFETY: produces `&T` by index; any per-index discipline is fine for
    // shared references.
    unsafe impl<'a, T: Send + Sync> IndexedParallelIterator for ParIter<'a, T> {
        type Item = &'a T;
        fn len(&self) -> usize {
            self.slice.len()
        }
        unsafe fn item(&self, i: usize) -> &'a T {
            // SAFETY: i < len by the engine's contract.
            unsafe { self.slice.get_unchecked(i) }
        }
    }

    /// Mutable parallel iterator over a slice.
    pub struct ParIterMut<'a, T> {
        pub(crate) ptr: *mut T,
        pub(crate) len: usize,
        pub(crate) _marker: PhantomData<&'a mut T>,
    }

    // SAFETY: the engine guarantees each index is produced at most once, so
    // the `&mut T` handed out never aliases.
    unsafe impl<T: Send> Send for ParIterMut<'_, T> {}
    // SAFETY: `item` is only called under the at-most-once-per-index
    // contract, so shared access to the iterator itself is fine.
    unsafe impl<T: Send> Sync for ParIterMut<'_, T> {}

    unsafe impl<'a, T: Send + 'a> IndexedParallelIterator for ParIterMut<'a, T> {
        type Item = &'a mut T;
        fn len(&self) -> usize {
            self.len
        }
        unsafe fn item(&self, i: usize) -> &'a mut T {
            debug_assert!(i < self.len);
            // SAFETY: i < len, and the engine never repeats an index, so
            // this &mut is unique.
            unsafe { &mut *self.ptr.add(i) }
        }
    }

    /// Lock-step pairing of two indexed iterators.
    pub struct Zip<A, B> {
        a: A,
        b: B,
    }

    // SAFETY: delegates the per-index contract to both halves.
    unsafe impl<A: IndexedParallelIterator, B: IndexedParallelIterator> IndexedParallelIterator
        for Zip<A, B>
    {
        type Item = (A::Item, B::Item);
        fn len(&self) -> usize {
            self.a.len().min(self.b.len())
        }
        unsafe fn item(&self, i: usize) -> Self::Item {
            // SAFETY: forwarded contract.
            unsafe { (self.a.item(i), self.b.item(i)) }
        }
    }

    /// Mapping adapter.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    // SAFETY: delegates the per-index contract to the base iterator.
    unsafe impl<I, R, F> IndexedParallelIterator for Map<I, F>
    where
        I: IndexedParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync + Send,
    {
        type Item = R;
        fn len(&self) -> usize {
            self.base.len()
        }
        unsafe fn item(&self, i: usize) -> R {
            // SAFETY: forwarded contract.
            (self.f)(unsafe { self.base.item(i) })
        }
    }

    /// Index-attaching adapter.
    pub struct Enumerate<I> {
        base: I,
    }

    // SAFETY: delegates the per-index contract to the base iterator.
    unsafe impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {
        type Item = (usize, I::Item);
        fn len(&self) -> usize {
            self.base.len()
        }
        unsafe fn item(&self, i: usize) -> (usize, I::Item) {
            // SAFETY: forwarded contract.
            (i, unsafe { self.base.item(i) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_for_each_touches_every_element() {
        let mut v: Vec<u64> = (0..50_000).collect();
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x += i as u64);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn zip_map_reduce_matches_sequential_dot() {
        let x: Vec<f64> = (0..30_000).map(|i| (i % 7) as f64 - 3.0).collect();
        let y: Vec<f64> = (0..30_000).map(|i| (i % 5) as f64 - 2.0).collect();
        let par = x.par_iter().zip(y.par_iter()).map(|(&a, &b)| a * b).reduce(|| 0.0, |a, b| a + b);
        let seq: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_eq!(par, seq); // integer-valued products: both sums exact
    }

    #[test]
    fn small_inputs_run_inline() {
        let v = [1, 2, 3];
        let s: i32 = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 6);
    }

    #[test]
    fn join_and_scope_run_both_sides() {
        let (a, b) = crate::join(|| 2 + 2, || 3 * 3);
        assert_eq!((a, b), (4, 9));
        let mut hits = [0u8; 4];
        let (head, tail) = hits.split_at_mut(2);
        crate::scope(|s| {
            s.spawn(move |_| head.iter_mut().for_each(|h| *h += 1));
            s.spawn(move |_| tail.iter_mut().for_each(|h| *h += 1));
        });
        assert_eq!(hits, [1; 4]);
    }
}
