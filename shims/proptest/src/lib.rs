//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace uses — the `proptest!` macro,
//! `ProptestConfig { cases, .. }`, range/tuple/`collection::vec`/`any`
//! strategies, and `prop_assert!`/`prop_assert_eq!` — with deterministic
//! input generation: each property derives its RNG seed from its own path,
//! so every run explores the same cases and failures are reproducible
//! without a persistence file. There is no shrinking; the failing case's
//! index and message are reported instead.

#![warn(missing_docs)]

/// Test-runner types: configuration, RNG, and case-failure error.
pub mod test_runner {
    use std::fmt;

    /// Run configuration (`ProptestConfig` in the prelude). Only `cases`
    /// is meaningful here; construct with struct-update syntax as with
    /// real proptest: `Config { cases: 32, ..Config::default() }`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
        /// Accepted for source compatibility; unused by this stand-in.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// A failed property case (raised by `prop_assert!`-family macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic RNG (splitmix64) seeded from the property's path.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name so each property has a stable, distinct
        /// input stream.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the fully-qualified test path.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Input-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }

    impl_signed_range!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.next_f64();
            // Guard against rounding up to the exclusive bound.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (Range { start: self.start as f64, end: self.end as f64 }).generate(rng) as f32
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
    }

    /// Strategy produced by [`crate::any`].
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T> AnyStrategy<T> {
        pub(crate) fn new() -> Self {
            AnyStrategy(std::marker::PhantomData)
        }
    }

    /// Types with a canonical "arbitrary value" strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
}

/// Collection strategies (`prop::collection` in proptest).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`: vectors whose length is
    /// drawn from `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start < self.size.end {
                self.size.start + (rng.next_u64() as usize) % (self.size.end - self.size.start)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Returns the canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: strategy::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy::new()
}

/// The usual imports for writing properties.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    // Real proptest's prelude exposes the crate as `prop` for paths like
    // `prop::collection::vec`.
    pub use crate as prop;
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        ::std::panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pa_l, __pa_r) = (&$left, &$right);
        if !(*__pa_l == *__pa_r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    __pa_l,
                    __pa_r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pa_l, __pa_r) = (&$left, &$right);
        if !(*__pa_l == *__pa_r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(n in 3usize..17, x in -2.5f64..2.5, b in any::<bool>()) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.5..2.5).contains(&x));
            let _ = b;
        }

        #[test]
        fn vec_strategy_respects_length(
            v in prop::collection::vec((0usize..8, -1.0f64..1.0), 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (i, x) in &v {
                prop_assert!(*i < 8);
                prop_assert!((-1.0..1.0).contains(x));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("tests::stable");
        let mut b = TestRng::from_name("tests::stable");
        let s = 0usize..1000;
        for _ in 0..64 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
