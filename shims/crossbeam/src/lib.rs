//! Offline stand-in for the `crossbeam` crate (no crates.io access in this
//! build environment). Only scoped threads are provided — the single API
//! this workspace uses — implemented on `std::thread::scope`, which has
//! offered the same structured-concurrency guarantee since Rust 1.63.

#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped threads.
pub mod thread {
    /// Result of a [`scope`](super::scope) call: `Err` carries the payload
    /// of a panicking child thread, as in crossbeam.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Handle passed to the scope closure; lets it spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        pub(crate) inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread joined before the scope exits. As in crossbeam,
        /// the closure receives the scope so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F)
        where
            F: for<'s> FnOnce(&Scope<'s, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }));
        }
    }
}

/// Creates a scope in which threads may borrow from the caller's stack.
/// Returns `Err` with the panic payload if any spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&thread::Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&thread::Scope { inner: s }))))
        .map_err(|e| e as Box<dyn Any + Send>)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let mut data = [0u32; 8];
        let chunks: Vec<&mut [u32]> = data.chunks_mut(2).collect();
        crate::scope(|s| {
            for c in chunks {
                s.spawn(move |_| c.iter_mut().for_each(|v| *v = 7));
            }
        })
        .unwrap();
        assert!(data.iter().all(|&v| v == 7));
    }

    #[test]
    fn panicking_child_yields_err() {
        let r = crate::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
