//! Level-reducing symmetric reordering — the planner's second lever.
//!
//! Sparsification (Algorithm 2) shrinks triangular-solve level counts by
//! dropping nonzeros; *ordering* shrinks them by moving nonzeros. This
//! module selects a symmetric permutation before the sparsify/factor
//! phases run:
//!
//! * [`OrderingKind::Rcm`] — reverse Cuthill–McKee, bandwidth (and hence
//!   dependency-chain) reduction;
//! * [`OrderingKind::Coloring`] — greedy graph coloring, the level-set
//!   flattener (factor levels are bounded by the color count);
//! * [`OrderingKind::Auto`] — evaluate Natural, RCM, and Coloring through
//!   the *joint* space (ordering × sparsify ratio): each candidate is
//!   permuted, run through Algorithm 2, and judged by the cost-model-priced
//!   sweep time of its chosen sparsified matrix under the plan's execution
//!   strategy (dependency-block execution already removes most of the
//!   per-level launch cost, so an ordering must win on *priced time*, not
//!   raw level count). A non-natural ordering is accepted only when it cuts
//!   priced time by at least ω percent **and** the candidate's
//!   `‖Â⁻¹‖·‖S‖ ≤ τ` convergence guard still passes.
//!
//! The permutation is an analysis-time decision: `SpcgPlan` factors in
//! permuted space and transparently permutes `b`/`x` at the solve
//! boundary, so the public API and the returned solutions stay in the
//! caller's ordering.

use crate::algorithm2::{wavefront_aware_sparsify_probed, SelectionReason, SparsifyDecision};
use crate::pipeline::SpcgOptions;
use serde::{Deserialize, Serialize};
use spcg_precond::ExecutionStrategy;
use spcg_probe::{Counter, Probe, Span};
use spcg_sparse::permute::{greedy_color_perm, reverse_cuthill_mckee};
use spcg_sparse::{CsrMatrix, Scalar};
use spcg_wavefront::{wavefront_count, BlockSchedule, ExecCostModel, LevelSchedule, Triangle};

/// Which symmetric ordering the planner applies before sparsification and
/// factorization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrderingKind {
    /// Keep the caller's row order (the default; bitwise-identical to the
    /// pre-reordering pipeline).
    #[default]
    Natural,
    /// Reverse Cuthill–McKee.
    Rcm,
    /// Greedy graph coloring.
    Coloring,
    /// Evaluate every ordering through Algorithm 2 and keep the one whose
    /// sparsified matrix prices cheapest under the plan's execution
    /// strategy (subject to the ω/τ rule).
    Auto,
}

impl OrderingKind {
    /// Short stable label (also the CLI spelling).
    pub fn label(&self) -> &'static str {
        match self {
            OrderingKind::Natural => "natural",
            OrderingKind::Rcm => "rcm",
            OrderingKind::Coloring => "coloring",
            OrderingKind::Auto => "auto",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "natural" => Some(OrderingKind::Natural),
            "rcm" => Some(OrderingKind::Rcm),
            "coloring" => Some(OrderingKind::Coloring),
            "auto" => Some(OrderingKind::Auto),
            _ => None,
        }
    }

    /// Stable small integer for hash mixing (cache shard selection).
    pub fn tag(&self) -> u64 {
        match self {
            OrderingKind::Natural => 0,
            OrderingKind::Rcm => 1,
            OrderingKind::Coloring => 2,
            OrderingKind::Auto => 3,
        }
    }
}

impl std::fmt::Display for OrderingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One ordering examined by the selection pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReorderCandidate {
    /// The concrete ordering evaluated (never `Auto`).
    pub ordering: OrderingKind,
    /// Level count of the candidate's metric matrix (the sparsified `Â`
    /// chosen by Algorithm 2 on the permuted system, or the permuted `A`
    /// itself when sparsification is off).
    pub levels: usize,
    /// Percent level reduction vs the natural candidate (0 for natural).
    pub reduction_percent: f64,
    /// Cost-model-priced time of one lower sweep of the metric matrix
    /// under the plan's execution strategy, µs — the quantity the `Auto`
    /// ω-acceptance rule is evaluated against.
    pub priced_us: f64,
    /// Whether the candidate's `‖Â⁻¹‖·‖S‖ ≤ τ` guard passed (always true
    /// when sparsification is off).
    pub guard_passed: bool,
    /// The sparsify ratio Algorithm 2 chose for this candidate, when
    /// sparsification ran.
    pub chosen_ratio: Option<f64>,
}

/// The outcome of the ordering selection pass, recorded on the plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReorderDecision {
    /// What the caller asked for.
    pub requested: OrderingKind,
    /// The concrete ordering the plan factors under (never `Auto`).
    pub chosen: OrderingKind,
    /// Level count of the natural-ordering metric matrix.
    pub levels_natural: usize,
    /// Level count under the chosen ordering.
    pub levels_chosen: usize,
    /// Every candidate the selection examined.
    pub trace: Vec<ReorderCandidate>,
}

impl ReorderDecision {
    /// Percent level reduction of the chosen ordering vs natural
    /// (`100·(L_nat − L_chosen)/L_nat`; 0 when natural was kept).
    pub fn level_reduction_percent(&self) -> f64 {
        reduction_percent(self.levels_natural, self.levels_chosen)
    }
}

fn reduction_percent(natural: usize, chosen: usize) -> f64 {
    if natural == 0 {
        0.0
    } else {
        100.0 * (natural as f64 - chosen as f64) / natural as f64
    }
}

/// Float analogue of [`reduction_percent`] for the priced-time objective.
fn priced_reduction_percent(natural_us: f64, chosen_us: f64) -> f64 {
    if natural_us <= 0.0 {
        0.0
    } else {
        100.0 * (natural_us - chosen_us) / natural_us
    }
}

/// Prices one lower-triangular sweep of `m` under `exec` with the default
/// (A100) executor cost model — the same model plan-side `Auto` strategy
/// resolution uses, so the ordering search and the executor choice optimize
/// the same quantity. `Sequential`/`Auto` price at the cheaper of the two
/// parallel executors: an ordering should not be credited for flattening
/// levels the dependency-block executor would never pay for.
fn priced_sweep_us<T: Scalar>(m: &CsrMatrix<T>, exec: ExecutionStrategy) -> f64 {
    let model = ExecCostModel::default();
    let schedule = LevelSchedule::build(m, Triangle::Lower);
    let level_us = model.level_time_us(m, &schedule);
    match exec {
        ExecutionStrategy::LevelBarrier => level_us,
        ExecutionStrategy::DependencyBlocks => {
            model.block_time_us(m, &BlockSchedule::from_levels(m, &schedule))
        }
        ExecutionStrategy::Sequential | ExecutionStrategy::Auto => {
            level_us.min(model.block_time_us(m, &BlockSchedule::from_levels(m, &schedule)))
        }
    }
}

/// Everything the selection hands back to plan construction.
pub(crate) struct ReorderOutcome<T: Scalar> {
    /// Decision record (`None` when the request was `Natural` — the
    /// trivial fast path leaves no trace, keeping default plans
    /// event-identical to the pre-reordering pipeline).
    pub decision: Option<ReorderDecision>,
    /// `perm[new] = old`, present when a non-natural ordering was chosen.
    pub perm: Option<Vec<usize>>,
    /// The permuted system, present when a non-natural ordering was chosen.
    pub permuted: Option<CsrMatrix<T>>,
    /// The chosen candidate's sparsify decision from the joint search
    /// (`Auto` with sparsification on), reused by the plan so Algorithm 2
    /// does not run twice on the winning matrix.
    pub sparsify: Option<SparsifyDecision<T>>,
}

impl<T: Scalar> ReorderOutcome<T> {
    fn natural() -> Self {
        Self { decision: None, perm: None, permuted: None, sparsify: None }
    }
}

/// Computes the permutation for a concrete ordering (`None` for natural).
fn perm_for<T: Scalar>(kind: OrderingKind, a: &CsrMatrix<T>) -> Option<Vec<usize>> {
    match kind {
        OrderingKind::Natural | OrderingKind::Auto => None,
        OrderingKind::Rcm => Some(reverse_cuthill_mckee(a)),
        OrderingKind::Coloring => Some(greedy_color_perm(a)),
    }
}

/// Runs the ordering selection pass for `a` under `opts`.
///
/// `Natural` returns immediately without touching the probe — the default
/// pipeline stays bitwise- and trace-identical. Explicit `Rcm`/`Coloring`
/// apply unconditionally (the caller asked for that ordering; Algorithm 2
/// then runs on the permuted system as usual). `Auto` performs the joint
/// search described in the module docs.
pub(crate) fn select_ordering_probed<T: Scalar, P: Probe>(
    a: &CsrMatrix<T>,
    opts: &SpcgOptions,
    probe: &mut P,
) -> ReorderOutcome<T> {
    match opts.ordering {
        OrderingKind::Natural => ReorderOutcome::natural(),
        kind @ (OrderingKind::Rcm | OrderingKind::Coloring) => {
            probe.span_begin(Span::Reorder);
            let perm = perm_for(kind, a).expect("explicit orderings always permute");
            let permuted = a.permute_sym(&perm).expect("ordering perms are valid by construction");
            let levels_natural = wavefront_count(a);
            let levels_chosen = wavefront_count(&permuted);
            probe.counter(Counter::ReorderCandidates, 1);
            probe.counter(Counter::ReorderLevelsBefore, levels_natural as u64);
            probe.counter(Counter::ReorderLevelsAfter, levels_chosen as u64);
            probe.span_end(Span::Reorder);
            let decision = ReorderDecision {
                requested: kind,
                chosen: kind,
                levels_natural,
                levels_chosen,
                trace: vec![ReorderCandidate {
                    ordering: kind,
                    levels: levels_chosen,
                    reduction_percent: reduction_percent(levels_natural, levels_chosen),
                    priced_us: priced_sweep_us(&permuted, opts.exec),
                    guard_passed: true,
                    chosen_ratio: None,
                }],
            };
            ReorderOutcome {
                decision: Some(decision),
                perm: Some(perm),
                permuted: Some(permuted),
                sparsify: None,
            }
        }
        OrderingKind::Auto => auto_select(a, opts, probe),
    }
}

/// One evaluated `Auto` candidate plus the artifacts needed to keep it.
struct AutoCandidate<T: Scalar> {
    record: ReorderCandidate,
    perm: Option<Vec<usize>>,
    permuted: Option<CsrMatrix<T>>,
    sparsify: Option<SparsifyDecision<T>>,
}

fn auto_select<T: Scalar, P: Probe>(
    a: &CsrMatrix<T>,
    opts: &SpcgOptions,
    probe: &mut P,
) -> ReorderOutcome<T> {
    probe.span_begin(Span::Reorder);
    let kinds = [OrderingKind::Natural, OrderingKind::Rcm, OrderingKind::Coloring];
    let mut candidates: Vec<AutoCandidate<T>> = Vec::with_capacity(kinds.len());
    let mut levels_natural = 0usize;
    let mut priced_natural = 0.0f64;
    for kind in kinds {
        let perm = perm_for(kind, a);
        let permuted = perm
            .as_ref()
            .map(|p| a.permute_sym(p).expect("ordering perms are valid by construction"));
        let m = permuted.as_ref().unwrap_or(a);
        // Judge the candidate by the priced sweep time of the matrix the
        // factorization would actually see: the Â Algorithm 2 picks on the
        // permuted system (the joint ordering × ratio space), or the
        // permuted A itself for unsparsified plans. Level counts are still
        // recorded — they are the paper-facing headline — but the
        // acceptance rule runs on priced time under the plan's executor.
        let (levels, guard_passed, chosen_ratio, sparsify) = match &opts.sparsify {
            Some(params) => {
                let d = wavefront_aware_sparsify_probed(m, params, probe);
                let guard = d.reason != SelectionReason::ConvergenceFallback;
                (d.wavefronts_sparsified, guard, Some(d.chosen_ratio), Some(d))
            }
            None => (wavefront_count(m), true, None, None),
        };
        let metric = sparsify.as_ref().map(|d| &d.sparsified.a_hat).unwrap_or(m);
        let priced_us = priced_sweep_us(metric, opts.exec);
        if kind == OrderingKind::Natural {
            levels_natural = levels;
            priced_natural = priced_us;
        }
        candidates.push(AutoCandidate {
            record: ReorderCandidate {
                ordering: kind,
                levels,
                reduction_percent: reduction_percent(levels_natural, levels),
                priced_us,
                guard_passed,
                chosen_ratio,
            },
            perm,
            permuted,
            sparsify,
        });
    }

    // The selection rule (DESIGN.md §3i): keep the cheapest-priced
    // candidate, but accept a non-natural ordering only when its τ guard
    // passed and it cuts priced sweep time by at least ω percent vs
    // natural. Pricing (not raw level count) is the objective because the
    // dependency-block executor already amortizes most of the per-level
    // launch cost — an ordering must pay for its permutation overhead in
    // modeled time under the executor the plan will actually run.
    let best = candidates
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, c)| c.record.guard_passed)
        .min_by(|(_, x), (_, y)| x.record.priced_us.total_cmp(&y.record.priced_us))
        .map(|(i, _)| i);
    let chosen_idx = match best {
        Some(i)
            if priced_reduction_percent(priced_natural, candidates[i].record.priced_us)
                >= opts.ordering_omega =>
        {
            i
        }
        _ => 0,
    };

    let trace: Vec<ReorderCandidate> = candidates.iter().map(|c| c.record.clone()).collect();
    let chosen = candidates.swap_remove(chosen_idx);
    let levels_chosen = chosen.record.levels;
    probe.counter(Counter::ReorderCandidates, trace.len() as u64);
    probe.counter(Counter::ReorderLevelsBefore, levels_natural as u64);
    probe.counter(Counter::ReorderLevelsAfter, levels_chosen as u64);
    probe.span_end(Span::Reorder);

    ReorderOutcome {
        decision: Some(ReorderDecision {
            requested: OrderingKind::Auto,
            chosen: chosen.record.ordering,
            levels_natural,
            levels_chosen,
            trace,
        }),
        perm: chosen.perm,
        permuted: chosen.permuted,
        sparsify: chosen.sparsify,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_probe::NoProbe;
    use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};

    fn grid(n: usize) -> CsrMatrix<f64> {
        with_magnitude_spread(&poisson_2d(n, n), 5.0, 21)
    }

    #[test]
    fn labels_round_trip() {
        for k in
            [OrderingKind::Natural, OrderingKind::Rcm, OrderingKind::Coloring, OrderingKind::Auto]
        {
            assert_eq!(OrderingKind::parse(k.label()), Some(k));
            assert_eq!(format!("{k}"), k.label());
        }
        assert_eq!(OrderingKind::parse("metis"), None);
        assert_eq!(OrderingKind::default(), OrderingKind::Natural);
    }

    #[test]
    fn natural_request_is_a_no_op() {
        let a = grid(10);
        let opts = SpcgOptions::default();
        let out = select_ordering_probed(&a, &opts, &mut NoProbe);
        assert!(out.decision.is_none());
        assert!(out.perm.is_none());
        assert!(out.permuted.is_none());
    }

    #[test]
    fn explicit_ordering_applies_unconditionally() {
        let a = grid(10);
        let opts = SpcgOptions::default().with_ordering(OrderingKind::Coloring);
        let out = select_ordering_probed(&a, &opts, &mut NoProbe);
        let d = out.decision.unwrap();
        assert_eq!(d.chosen, OrderingKind::Coloring);
        assert!(out.perm.is_some());
        let ap = out.permuted.unwrap();
        assert_eq!(ap.nnz(), a.nnz());
        // Coloring flattens the 5-point grid's level structure massively.
        assert!(d.levels_chosen < d.levels_natural);
    }

    #[test]
    fn auto_search_picks_minimum_priced_time() {
        let a = grid(12);
        let opts = SpcgOptions::default().with_ordering(OrderingKind::Auto);
        let out = select_ordering_probed(&a, &opts, &mut NoProbe);
        let d = out.decision.unwrap();
        assert_eq!(d.requested, OrderingKind::Auto);
        assert_eq!(d.trace.len(), 3);
        // Every candidate was priced, and natural is the first entry.
        assert!(d.trace.iter().all(|c| c.priced_us > 0.0));
        assert_eq!(d.trace[0].ordering, OrderingKind::Natural);
        let natural_us = d.trace[0].priced_us;
        let chosen_rec =
            d.trace.iter().find(|c| c.ordering == d.chosen).expect("chosen is in trace");
        // The chosen candidate prices no worse than any guard-passing
        // alternative that clears the ω bar (natural included).
        let min_ok = d
            .trace
            .iter()
            .filter(|c| c.guard_passed)
            .filter(|c| priced_reduction_percent(natural_us, c.priced_us) >= opts.ordering_omega)
            .map(|c| c.priced_us)
            .fold(natural_us, f64::min);
        assert!(chosen_rec.priced_us <= min_ok + 1e-12);
        if d.chosen != OrderingKind::Natural {
            assert!(
                priced_reduction_percent(natural_us, chosen_rec.priced_us) >= opts.ordering_omega
            );
        }
    }

    /// Under a dependency-block executor the launch term an ordering would
    /// save is already small, so the priced objective must be stricter than
    /// the raw level count: a candidate that flattens levels but inflates
    /// nothing else still needs to clear ω in modeled microseconds.
    #[test]
    fn priced_objective_tracks_exec_strategy() {
        let a = grid(12);
        for exec in [
            ExecutionStrategy::Sequential,
            ExecutionStrategy::LevelBarrier,
            ExecutionStrategy::DependencyBlocks,
            ExecutionStrategy::Auto,
        ] {
            let us = priced_sweep_us(&a, exec);
            assert!(us > 0.0, "{exec:?} priced non-positive");
        }
        // Barrier-per-level pays a launch per level; the block executor
        // amortizes it, so its priced sweep is cheaper on a deep schedule.
        let barrier = priced_sweep_us(&a, ExecutionStrategy::LevelBarrier);
        let blocks = priced_sweep_us(&a, ExecutionStrategy::DependencyBlocks);
        assert!(blocks < barrier);
        // Sequential/Auto price at the cheaper of the two.
        let auto = priced_sweep_us(&a, ExecutionStrategy::Auto);
        assert!((auto - barrier.min(blocks)).abs() < 1e-12);
    }

    #[test]
    fn huge_omega_keeps_natural() {
        let a = grid(10);
        let opts =
            SpcgOptions::default().with_ordering(OrderingKind::Auto).with_ordering_omega(1e9);
        let out = select_ordering_probed(&a, &opts, &mut NoProbe);
        let d = out.decision.unwrap();
        assert_eq!(d.chosen, OrderingKind::Natural);
        assert!(out.perm.is_none());
        assert_eq!(d.levels_chosen, d.levels_natural);
    }
}
