//! # spcg-core
//!
//! The paper's contribution: **wavefront-aware sparsification** for
//! preconditioned conjugate-gradient solvers.
//!
//! * [`sparsify`] — magnitude-based symmetric sparsification `A = Â + S`;
//! * [`indicator`] — the convergence-safety indicator `‖Â⁻¹‖·‖S‖ ≤ τ`
//!   (Equation 6) with the paper's cheap condition-number approximation;
//! * [`algorithm2`] — the wavefront-aware selection loop (Algorithm 2);
//! * [`pipeline`] — the Figure-2 pipeline: sparsify → ILU(0)/ILU(K) → PCG;
//! * [`oracle`] — the best-fixed-ratio upper bound of §4.4;
//! * [`report`] — serializable per-run records for the benchmark harness.
//!
//! ## Quick start
//!
//! ```
//! use spcg_core::pipeline::{spcg_solve, SpcgOptions};
//! use spcg_sparse::generators::poisson_2d;
//!
//! let a = poisson_2d(16, 16);
//! let b = vec![1.0f64; a.n_rows()];
//! let outcome = spcg_solve(&a, &b, &SpcgOptions::default()).unwrap();
//! assert!(outcome.result.converged());
//! ```

#![warn(missing_docs)]

pub mod algorithm2;
pub mod indicator;
pub mod oracle;
pub mod pipeline;
pub mod report;
pub mod sparsify;

pub use algorithm2::{
    wavefront_aware_sparsify, SelectionReason, SparsifyDecision, SparsifyParams,
};
pub use indicator::{condition_estimate, convergence_indicator, CondEstimator, IndicatorValue};
pub use oracle::{oracle_select, OracleChoice, ORACLE_RATIOS};
pub use pipeline::{
    build_preconditioner, select_best_k, spcg_solve, PrecondKind, SpcgOptions, SpcgOutcome,
};
pub use report::RunReport;
pub use sparsify::{sparsify_by_magnitude, Sparsified, SparsifyStats};
