//! # spcg-core
//!
//! The paper's contribution: **wavefront-aware sparsification** for
//! preconditioned conjugate-gradient solvers.
//!
//! * [`sparsify`] — magnitude-based symmetric sparsification `A = Â + S`;
//! * [`indicator`] — the convergence-safety indicator `‖Â⁻¹‖·‖S‖ ≤ τ`
//!   (Equation 6) with the paper's cheap condition-number approximation;
//! * [`algorithm2`] — the wavefront-aware selection loop (Algorithm 2);
//! * [`pipeline`] — the Figure-2 pipeline: sparsify → ILU(0)/ILU(K) → PCG;
//! * [`plan`] — the plan/execute split: analyze once, solve many times;
//! * [`reorder`] — level-reducing symmetric orderings (RCM, coloring) and
//!   the joint ordering × ratio selection pass;
//! * [`resilient`] — breakdown recovery: the adaptive de-sparsification
//!   fallback ladder with deterministic fault injection;
//! * [`oracle`] — the best-fixed-ratio upper bound of §4.4;
//! * [`report`] — serializable per-run records for the benchmark harness.
//!
//! ## Quick start
//!
//! One-shot solve — build a plan and solve once (chainable `with_*`
//! builders configure the options inline):
//!
//! ```
//! use spcg_core::{SpcgOptions, SpcgPlan};
//! use spcg_sparse::generators::poisson_2d;
//!
//! let a = poisson_2d(16, 16);
//! let b = vec![1.0f64; a.n_rows()];
//! let plan = SpcgPlan::build(&a, SpcgOptions::default().with_tau(1.0)).unwrap();
//! assert!(plan.solve(&b).unwrap().converged());
//! ```
//!
//! Repeated solves against one operator — build the plan once, reuse its
//! analysis (sparsification, factors, level schedules) for every
//! right-hand side:
//!
//! ```
//! use spcg_core::{SpcgOptions, SpcgPlan};
//! use spcg_sparse::generators::poisson_2d;
//!
//! let a = poisson_2d(16, 16);
//! let plan = SpcgPlan::build(&a, &SpcgOptions::default()).unwrap();
//! let rhs: Vec<Vec<f64>> = (0..3)
//!     .map(|k| (0..a.n_rows()).map(|i| ((i + k) % 7) as f64).collect())
//!     .collect();
//! for result in plan.solve_many(&rhs) {
//!     assert!(result.unwrap().converged());
//! }
//! ```
//!
//! Breakdown-resilient solves — a runtime breakdown climbs the fallback
//! ladder (re-sparsify less aggressively → unsparsified → diagonally
//! shifted refactorization → Jacobi) and reports what it took:
//!
//! ```
//! use spcg_core::{SpcgOptions, SpcgPlan};
//! use spcg_sparse::generators::poisson_2d;
//!
//! let a = poisson_2d(16, 16);
//! let plan = SpcgPlan::build(&a, &SpcgOptions::default()).unwrap();
//! let b = vec![1.0f64; a.n_rows()];
//! let solve = plan.solve_resilient(&b).unwrap();
//! assert!(solve.converged());
//! assert!(solve.report.clean()); // healthy solve: no fallback needed
//! ```

#![warn(missing_docs)]

pub mod algorithm2;
pub mod indicator;
pub mod oracle;
pub mod pipeline;
pub mod plan;
pub mod precision;
pub mod precond_select;
pub mod reorder;
pub mod report;
pub mod resilient;
pub mod sparsify;

pub use algorithm2::{
    wavefront_aware_sparsify, wavefront_aware_sparsify_probed, SelectionReason, SparsifyDecision,
    SparsifyParams,
};
pub use indicator::{condition_estimate, convergence_indicator, CondEstimator, IndicatorValue};
pub use oracle::{oracle_select, OracleChoice, ORACLE_RATIOS};
pub use pipeline::{
    build_preconditioner, build_preconditioner_probed, IluFill, PrecondKind, SpcgOptions,
    SpcgOutcome,
};
#[allow(deprecated)] // the deprecated one-shot entry points stay re-exported for migration
pub use pipeline::{select_best_k, spcg_solve};
pub use plan::SpcgPlan;
pub use precision::{fits_lower_precision, PrecisionPolicy};
pub use precond_select::{KindCandidate, KindDecision};
pub use reorder::{OrderingKind, ReorderCandidate, ReorderDecision};
pub use report::RunReport;
pub use resilient::{
    FallbackRung, FaultInjection, RecoveryAttempt, RecoveryReport, ResilienceOptions,
    ResilientSolve,
};
pub use sparsify::{sparsify_by_magnitude, Sparsified, SparsifyStats};
pub use spcg_precond::ExecutionStrategy;
