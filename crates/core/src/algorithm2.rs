//! Wavefront-aware sparsification — Algorithm 2 of the paper, verbatim
//! including both fallback rules:
//!
//! * ratios are tried from most to least aggressive (default 10, 5, 1%);
//! * a candidate must pass the convergence indicator `‖Â⁻¹‖·‖S‖ ≤ τ`
//!   (lines 3–8); if even the smallest ratio fails, the *most aggressive*
//!   ratio is returned (line 6: no level is safe, so prioritize speed);
//! * a passing candidate is accepted when its wavefront reduction
//!   `100·(w_A − w_Â)/w_Â` meets ω, or it is the last ratio (lines 9–12);
//! * if the loop falls through, `Â₁₀` is returned (line 14).

use crate::indicator::{convergence_indicator, CondEstimator, IndicatorValue};
use crate::sparsify::{sparsify_by_magnitude, Sparsified};
use serde::{Deserialize, Serialize};
use spcg_probe::{Counter, NoProbe, Probe, Span};
use spcg_sparse::{CsrMatrix, Scalar};
use spcg_wavefront::{wavefront_count, wavefront_reduction_percent};

/// Tunables of Algorithm 2.
#[derive(Debug, Clone)]
pub struct SparsifyParams {
    /// Candidate drop ratios in percent, most aggressive first.
    pub ratios: Vec<f64>,
    /// Convergence threshold τ (paper default 1, from a grid search).
    pub tau: f64,
    /// Wavefront-reduction threshold ω in percent (paper default 10).
    pub omega: f64,
    /// Inverse-norm estimator.
    pub estimator: CondEstimator,
}

impl Default for SparsifyParams {
    fn default() -> Self {
        Self {
            ratios: vec![10.0, 5.0, 1.0],
            tau: 1.0,
            omega: 10.0,
            estimator: CondEstimator::PaperApprox,
        }
    }
}

/// Why a particular ratio was selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionReason {
    /// Passed the convergence check and met the wavefront threshold ω.
    WavefrontReduction,
    /// Passed the convergence check as the last candidate ratio (line 10's
    /// `t = 1` arm: minimize sparsification error).
    LastRatio,
    /// Every ratio failed the convergence check; the most aggressive ratio
    /// was chosen for per-iteration speed (line 6).
    ConvergenceFallback,
    /// Loop fell through (custom ratio lists only); the most aggressive
    /// ratio was returned (line 14).
    Fallthrough,
}

/// Record of one candidate evaluation inside Algorithm 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateTrace {
    /// Ratio tried, percent.
    pub ratio: f64,
    /// Indicator value for this candidate.
    pub indicator: IndicatorValue,
    /// Whether the indicator passed τ.
    pub passed_convergence: bool,
    /// Wavefronts of the candidate (only computed when convergence passed).
    pub wavefronts: Option<usize>,
    /// Reduction vs the original, Equation 7 normalization (percent).
    pub reduction_percent: Option<f64>,
}

/// The decision made by Algorithm 2 for one matrix.
#[derive(Debug, Clone)]
pub struct SparsifyDecision<T: Scalar> {
    /// The selected decomposition.
    pub sparsified: Sparsified<T>,
    /// The ratio that was selected (percent).
    pub chosen_ratio: f64,
    /// Why it was selected.
    pub reason: SelectionReason,
    /// Wavefronts of the original matrix (`w_A`).
    pub wavefronts_original: usize,
    /// Wavefronts of the selected `Â`.
    pub wavefronts_sparsified: usize,
    /// Evaluation trace of every candidate that was examined.
    pub trace: Vec<CandidateTrace>,
}

impl<T: Scalar> SparsifyDecision<T> {
    /// Wavefront reduction of the selected candidate, Equation 7 (percent).
    pub fn wavefront_reduction(&self) -> f64 {
        wavefront_reduction_percent(self.wavefronts_original, self.wavefronts_sparsified)
    }
}

/// Runs Algorithm 2 on `a`, returning the chosen `Â` (plus `S` and a full
/// decision trace).
pub fn wavefront_aware_sparsify<T: Scalar>(
    a: &CsrMatrix<T>,
    params: &SparsifyParams,
) -> SparsifyDecision<T> {
    wavefront_aware_sparsify_probed(a, params, &mut NoProbe)
}

/// [`wavefront_aware_sparsify`] with an observability [`Probe`]: the whole
/// selection loop is bracketed in a `Span::Sparsify`, every candidate
/// evaluation (lines 3–12) in a `Span::CandidateEval`, and the number of
/// candidates examined is reported via `Counter::CandidatesEvaluated`.
pub fn wavefront_aware_sparsify_probed<T: Scalar, P: Probe>(
    a: &CsrMatrix<T>,
    params: &SparsifyParams,
    probe: &mut P,
) -> SparsifyDecision<T> {
    probe.span_begin(Span::Sparsify);
    let decision = sparsify_candidates(a, params, probe);
    probe.counter(Counter::CandidatesEvaluated, decision.trace.len() as u64);
    probe.span_end(Span::Sparsify);
    decision
}

fn sparsify_candidates<T: Scalar, P: Probe>(
    a: &CsrMatrix<T>,
    params: &SparsifyParams,
    probe: &mut P,
) -> SparsifyDecision<T> {
    assert!(!params.ratios.is_empty(), "at least one candidate ratio required");
    // Line 1: w_A
    let w_a = wavefront_count(a);
    let mut trace = Vec::with_capacity(params.ratios.len());
    let most_aggressive = params.ratios[0];

    let finalize = |sparsified: Sparsified<T>,
                    chosen_ratio: f64,
                    reason: SelectionReason,
                    w_hat: Option<usize>,
                    trace: Vec<CandidateTrace>| {
        let w_hat = w_hat.unwrap_or_else(|| wavefront_count(&sparsified.a_hat));
        SparsifyDecision {
            sparsified,
            chosen_ratio,
            reason,
            wavefronts_original: w_a,
            wavefronts_sparsified: w_hat,
            trace,
        }
    };

    for (idx, &t) in params.ratios.iter().enumerate() {
        let is_last = idx + 1 == params.ratios.len();
        probe.span_begin(Span::CandidateEval);
        // Line 3: Â_t = A − S_t
        let cand = sparsify_by_magnitude(a, t);
        // Lines 4–5: indicator test
        let ind = convergence_indicator(&cand.a_hat, &cand.s, &params.estimator);
        let passed = ind.passes(params.tau);
        if !passed {
            trace.push(CandidateTrace {
                ratio: t,
                indicator: ind,
                passed_convergence: false,
                wavefronts: None,
                reduction_percent: None,
            });
            probe.span_end(Span::CandidateEval);
            if is_last {
                // Line 6: no ratio is safe — return the most aggressive.
                let fallback = sparsify_by_magnitude(a, most_aggressive);
                return finalize(
                    fallback,
                    most_aggressive,
                    SelectionReason::ConvergenceFallback,
                    None,
                    trace,
                );
            }
            continue; // line 7
        }
        // Lines 9–12: wavefront-reduction test. Line 10 of the paper
        // normalizes by the *sparsified* count.
        let w_hat = wavefront_count(&cand.a_hat);
        let reduction_line10 =
            if w_hat == 0 { 0.0 } else { 100.0 * (w_a as f64 - w_hat as f64) / w_hat as f64 };
        trace.push(CandidateTrace {
            ratio: t,
            indicator: ind,
            passed_convergence: true,
            wavefronts: Some(w_hat),
            reduction_percent: Some(wavefront_reduction_percent(w_a, w_hat)),
        });
        probe.span_end(Span::CandidateEval);
        if reduction_line10 >= params.omega {
            return finalize(cand, t, SelectionReason::WavefrontReduction, Some(w_hat), trace);
        }
        if is_last {
            return finalize(cand, t, SelectionReason::LastRatio, Some(w_hat), trace);
        }
    }

    // Line 14 (only reachable with custom ratio lists whose last candidate
    // neither passed-and-returned nor failed-as-last — defensive).
    let fallback = sparsify_by_magnitude(a, most_aggressive);
    finalize(fallback, most_aggressive, SelectionReason::Fallthrough, None, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};

    fn spread(n: usize) -> CsrMatrix<f64> {
        with_magnitude_spread(&poisson_2d(n, n), 8.0, 11)
    }

    #[test]
    fn default_params_match_paper() {
        let p = SparsifyParams::default();
        assert_eq!(p.ratios, vec![10.0, 5.0, 1.0]);
        assert_eq!(p.tau, 1.0);
        assert_eq!(p.omega, 10.0);
    }

    #[test]
    fn well_conditioned_matrix_gets_aggressive_ratio() {
        // A strongly diagonally dominant matrix: ‖Â⁻¹‖ is small, so the
        // indicator passes at τ = 1 and the 10% candidate is examined for
        // wavefront reduction.
        let base = spread(16);
        let shift = spcg_sparse::CsrMatrix::<f64>::identity(base.n_rows()).map_values(|v| v * 8.0);
        let a = base.add(&shift).unwrap();
        let d = wavefront_aware_sparsify(&a, &SparsifyParams::default());
        assert!(d.trace[0].passed_convergence, "indicator: {:?}", d.trace[0].indicator);
        assert!(d.wavefronts_sparsified <= d.wavefronts_original);
        assert!(!d.trace.is_empty());
    }

    #[test]
    fn tiny_tau_forces_convergence_fallback() {
        let a = spread(12);
        let params = SparsifyParams { tau: 1e-30, ..Default::default() };
        let d = wavefront_aware_sparsify(&a, &params);
        assert_eq!(d.reason, SelectionReason::ConvergenceFallback);
        assert_eq!(d.chosen_ratio, 10.0); // line 6: most aggressive
        assert_eq!(d.trace.len(), 3);
        assert!(d.trace.iter().all(|t| !t.passed_convergence));
    }

    #[test]
    fn huge_omega_selects_last_ratio() {
        let a = spread(12);
        let params = SparsifyParams { omega: 1e9, tau: 1e9, ..Default::default() };
        let d = wavefront_aware_sparsify(&a, &params);
        assert_eq!(d.reason, SelectionReason::LastRatio);
        assert_eq!(d.chosen_ratio, 1.0); // minimize sparsification error
    }

    #[test]
    fn zero_omega_accepts_first_passing_ratio() {
        let a = spread(12);
        let params = SparsifyParams { omega: 0.0, tau: 1e9, ..Default::default() };
        let d = wavefront_aware_sparsify(&a, &params);
        assert_eq!(d.chosen_ratio, 10.0);
        assert_eq!(d.reason, SelectionReason::WavefrontReduction);
        assert_eq!(d.trace.len(), 1);
    }

    #[test]
    fn decomposition_invariant_holds_for_any_decision() {
        let a = spread(10);
        for tau in [1e-30, 1.0, 1e9] {
            let params = SparsifyParams { tau, ..Default::default() };
            let d = wavefront_aware_sparsify(&a, &params);
            let sum = d.sparsified.a_hat.add(&d.sparsified.s).unwrap().prune_zeros();
            assert_eq!(sum, a.prune_zeros(), "tau={tau}");
        }
    }

    #[test]
    fn custom_single_ratio_list() {
        let a = spread(10);
        let params =
            SparsifyParams { ratios: vec![5.0], tau: 1e9, omega: 1e9, ..Default::default() };
        let d = wavefront_aware_sparsify(&a, &params);
        assert_eq!(d.chosen_ratio, 5.0);
        assert_eq!(d.reason, SelectionReason::LastRatio);
    }

    #[test]
    fn reduction_metric_consistency() {
        let a = spread(14);
        let d = wavefront_aware_sparsify(&a, &SparsifyParams::default());
        let eq7 = d.wavefront_reduction();
        assert!((-100.0..=100.0).contains(&eq7));
        if let Some(tr) = d.trace.iter().find(|t| t.ratio == d.chosen_ratio) {
            if let Some(rp) = tr.reduction_percent {
                assert!((rp - eq7).abs() < 1e-9);
            }
        }
    }
}
