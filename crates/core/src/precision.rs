//! The mixed-precision execution tier (paper §6.2): reduced-precision
//! factor storage and triangular solves under a full-precision outer PCG
//! recurrence with iterative refinement.
//!
//! The triangular solves that dominate a preconditioned iteration are
//! memory-bound, so storing the factors in [`Scalar::Lower`] (`f32` for
//! `f64` solves) halves exactly the bytes the hot path streams. PCG
//! tolerates the inexact application — it only changes the effective
//! operator `M⁻¹A` — and when the reduced-precision application *stalls*
//! the recurrence, the outer iterative-refinement loop restarts it on the
//! exact full-precision residual (see
//! [`pcg_refined_in_place_probed`](spcg_solver::pcg_refined_in_place_probed)).
//!
//! [`PrecisionPolicy`] selects the tier per plan; `Auto` applies a cheap,
//! deterministic representability rule to the factored matrix. The policy
//! is an analysis-time decision: [`SpcgPlan`](crate::SpcgPlan) resolves it
//! at `build` time and stores the demoted factor image alongside the full
//! factors, so the resilient ladder can promote a stalled mixed solve back
//! to full precision without refactoring.

use serde::{Deserialize, Serialize};
use spcg_sparse::Scalar;

/// Which precision tier the preconditioner application runs in.
///
/// The outer PCG recurrence (SpMV, dot products, vector updates) always
/// runs in the solve's full scalar type `T`; the policy only governs the
/// factor storage and the triangular sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrecisionPolicy {
    /// Factors stored and applied in `T` (the default; bitwise-identical
    /// to the pre-mixed-precision pipeline).
    #[default]
    Full,
    /// Factors stored and applied in [`Scalar::Lower`] (`f32` for `f64`
    /// solves), under the iterative-refinement outer loop. For an `f32`
    /// solve the lower type is `f32` itself, so the tier degenerates to
    /// `Full` exactly.
    MixedF32,
    /// Choose per plan: `MixedF32` when every factored-matrix value is
    /// comfortably representable in `f32` (see
    /// [`fits_lower_precision`]), `Full` otherwise.
    Auto,
}

/// Magnitude head-room demanded by the `Auto` rule: values must sit at
/// least this factor inside the `f32` normal range on both ends, so the
/// demoted factors can neither overflow nor flush to zero during the
/// reduced-precision sweeps.
const AUTO_RANGE_MARGIN: f64 = 256.0;

impl PrecisionPolicy {
    /// Short stable label (also the CLI spelling).
    pub fn label(&self) -> &'static str {
        match self {
            PrecisionPolicy::Full => "full",
            PrecisionPolicy::MixedF32 => "mixed",
            PrecisionPolicy::Auto => "auto",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "full" => Some(PrecisionPolicy::Full),
            "mixed" => Some(PrecisionPolicy::MixedF32),
            "auto" => Some(PrecisionPolicy::Auto),
            _ => None,
        }
    }

    /// Stable small integer for hash mixing (cache shard selection).
    pub fn tag(&self) -> u64 {
        match self {
            PrecisionPolicy::Full => 0,
            PrecisionPolicy::MixedF32 => 1,
            PrecisionPolicy::Auto => 2,
        }
    }
}

impl std::fmt::Display for PrecisionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The `Auto` representability rule: `true` when every value is zero or
/// has magnitude at least `AUTO_RANGE_MARGIN` (×256) inside the `f32` normal
/// range on both ends — so demotion to [`Scalar::Lower`] can neither
/// overflow to infinity nor flush to zero (the two ways a reduced-precision
/// triangular sweep collapses). Deterministic, one `O(len)` pass, no
/// factorization or trial solve.
pub fn fits_lower_precision<T: Scalar>(values: &[T]) -> bool {
    let hi = f32::MAX as f64 / AUTO_RANGE_MARGIN;
    let lo = f32::MIN_POSITIVE as f64 * AUTO_RANGE_MARGIN;
    values.iter().all(|&v| {
        let m = v.to_f64().abs();
        m == 0.0 || (m.is_finite() && (lo..=hi).contains(&m))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_parse_round_trip() {
        for p in [PrecisionPolicy::Full, PrecisionPolicy::MixedF32, PrecisionPolicy::Auto] {
            assert_eq!(PrecisionPolicy::parse(p.label()), Some(p));
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(PrecisionPolicy::parse("half"), None);
        assert_eq!(PrecisionPolicy::default(), PrecisionPolicy::Full);
    }

    #[test]
    fn tags_are_distinct() {
        let tags: Vec<u64> =
            [PrecisionPolicy::Full, PrecisionPolicy::MixedF32, PrecisionPolicy::Auto]
                .iter()
                .map(PrecisionPolicy::tag)
                .collect();
        assert_eq!(tags, vec![0, 1, 2]);
    }

    #[test]
    fn representability_rule() {
        assert!(fits_lower_precision(&[0.0f64, 1.0, -4.5, 1e10, 1e-10]));
        // Overflows f32 entirely.
        assert!(!fits_lower_precision(&[1.0f64, 1e200]));
        // Inside f32 range but without the demanded head-room.
        assert!(!fits_lower_precision(&[f32::MAX as f64 / 2.0]));
        // Would flush to zero (or subnormal) in f32.
        assert!(!fits_lower_precision(&[1.0f64, 1e-40]));
        // Non-finite values are never demoted.
        assert!(!fits_lower_precision(&[f64::NAN]));
        assert!(fits_lower_precision::<f64>(&[]));
    }
}
