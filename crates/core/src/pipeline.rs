//! The SPCG pipeline of Figure 2: sparsify `A` → factor `Â` with
//! ILU(0)/ILU(K) → run PCG on the *original* `A` with the sparsified
//! preconditioner.

use crate::algorithm2::{SparsifyDecision, SparsifyParams};
use crate::plan::SpcgPlan;
use crate::precision::PrecisionPolicy;
use crate::reorder::OrderingKind;
use serde::{Deserialize, Serialize};
use spcg_precond::{ilu0_probed, iluk_probed, ExecutionStrategy, IluFactors, SaiPattern};
use spcg_probe::{NoProbe, Probe};
use spcg_solver::{SolveResult, SolveWorkspace, SolverConfig};
use spcg_sparse::{CsrMatrix, Result, Scalar};
use std::time::Duration;

/// Which incomplete factorization backs the sparsified-ILU preconditioner
/// (the fill selector within [`PrecondKind::IluSparsified`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IluFill {
    /// ILU with zero fill (SPCG-ILU(0)).
    Ilu0,
    /// ILU with level-of-fill K (SPCG-ILU(K)).
    Iluk(usize),
}

impl IluFill {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            IluFill::Ilu0 => "ILU(0)".to_string(),
            IluFill::Iluk(k) => format!("ILU({k})"),
        }
    }
}

/// Which preconditioner *family* the plan uses — the axis Algorithm 2's
/// planner can now search jointly with (ratio × ordering).
///
/// The triangular-sweep family ([`IluSparsified`](PrecondKind::IluSparsified))
/// pays per-apply synchronization (level barriers or block releases); the
/// level-free family (FSAI / SPAI / Jacobi) applies as pure SpMV or
/// elementwise traffic with `Syncs == 0` per application. [`Auto`]
/// prices both under the plan's execution strategy and keeps whichever
/// wins end to end.
///
/// [`Auto`]: PrecondKind::Auto
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrecondKind {
    /// Sparsified incomplete factorization (the paper's pipeline):
    /// triangular sweeps on the wavefront schedules, fill selected by
    /// [`SpcgOptions::ilu_fill`].
    IluSparsified,
    /// Factored sparse approximate inverse `M⁻¹ = GᵀG` — SPD-preserving,
    /// applies as two SpMVs, zero synchronization.
    Fsai,
    /// Static-pattern sparse approximate inverse minimizing `‖I − MA‖_F` —
    /// applies as one SpMV, zero synchronization.
    Spai,
    /// Diagonal (Jacobi) preconditioner — the cheapest, weakest member.
    Jacobi,
    /// Search the kind space: price a sparsified-ILU iteration against the
    /// level-free candidates and keep the cheaper end-to-end plan, guarded
    /// so a weak inverse can't win on an ill-conditioned system.
    Auto,
}

impl PrecondKind {
    /// Short stable label ("ilu" / "fsai" / "spai" / "jacobi" / "auto").
    pub fn label(&self) -> &'static str {
        match self {
            PrecondKind::IluSparsified => "ilu",
            PrecondKind::Fsai => "fsai",
            PrecondKind::Spai => "spai",
            PrecondKind::Jacobi => "jacobi",
            PrecondKind::Auto => "auto",
        }
    }

    /// Parses a CLI-style label (the inverse of [`label`](Self::label)).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ilu" => Some(PrecondKind::IluSparsified),
            "fsai" => Some(PrecondKind::Fsai),
            "spai" => Some(PrecondKind::Spai),
            "jacobi" => Some(PrecondKind::Jacobi),
            "auto" => Some(PrecondKind::Auto),
            _ => None,
        }
    }

    /// Numeric tag carried by the `precond.kind` probe counter
    /// (`Auto` never tags — plans record the *resolved* kind).
    pub fn tag(&self) -> u64 {
        match self {
            PrecondKind::IluSparsified => 1,
            PrecondKind::Fsai => 2,
            PrecondKind::Spai => 3,
            PrecondKind::Jacobi => 4,
            PrecondKind::Auto => 0,
        }
    }

    /// Whether this kind applies without any per-apply synchronization
    /// (no triangular sweeps, so no level barriers or block releases).
    pub fn is_level_free(&self) -> bool {
        matches!(self, PrecondKind::Fsai | PrecondKind::Spai | PrecondKind::Jacobi)
    }
}

/// Options for one SPCG (or baseline PCG) run.
#[derive(Debug, Clone)]
pub struct SpcgOptions {
    /// Sparsification parameters; `None` runs the non-sparsified baseline.
    /// Only consulted by the sparsified-ILU kind — level-free plans never
    /// sparsify (there is no triangular sweep to shorten).
    pub sparsify: Option<SparsifyParams>,
    /// Preconditioner family: sparsified ILU (the default), a level-free
    /// approximate inverse (FSAI/SPAI/Jacobi), or `Auto` to search the
    /// kind space by priced end-to-end time.
    pub precond: PrecondKind,
    /// Fill level of the incomplete factorization backing the
    /// sparsified-ILU kind.
    pub ilu_fill: IluFill,
    /// Pattern of the SPAI approximate inverse (`A` or `A²`).
    pub spai_pattern: SaiPattern,
    /// Contraction-estimate ceiling the τ-style quality guard applies to
    /// level-free candidates under [`PrecondKind::Auto`]: a kind whose
    /// estimated stationary contraction factor ρ exceeds this bound is
    /// rejected regardless of its priced per-iteration cost, so a
    /// cheap-but-weak inverse can't be selected on an ill-conditioned
    /// system. `1.0` would accept anything short of divergence.
    pub ainv_rho_max: f64,
    /// Triangular-solve execution strategy.
    pub exec: ExecutionStrategy,
    /// PCG configuration.
    pub solver: SolverConfig,
    /// Symmetric ordering applied before sparsification/factorization.
    /// `Natural` (the default) leaves the pipeline bitwise-identical to the
    /// pre-reordering behaviour; `Auto` searches the joint
    /// ordering × sparsify-ratio space (see [`crate::reorder`]).
    pub ordering: OrderingKind,
    /// Minimum percent reduction in cost-model-priced triangular-sweep
    /// time a non-natural ordering must deliver for `Auto` to accept it
    /// (the ordering analogue of Algorithm 2's ω). Priced under this
    /// options struct's [`ExecutionStrategy`], so an ordering is only
    /// credited for launch overhead the chosen executor would actually pay.
    pub ordering_omega: f64,
    /// Precision tier of the preconditioner application. `Full` (the
    /// default) keeps the pipeline bitwise-identical to the pre-mixed
    /// behaviour; `MixedF32` stores and applies the factors in
    /// reduced precision under an iterative-refinement outer loop; `Auto`
    /// picks per plan via a representability rule (see [`crate::precision`]).
    pub precision: PrecisionPolicy,
    /// Slack multiplier on τ applied by [`SpcgPlan::refresh_values`] when it
    /// re-evaluates the convergence indicator on refreshed values: the
    /// refreshed split is kept while `‖Â⁻¹‖·‖S‖ ≤ τ · refresh_drift`, and a
    /// full re-plan runs otherwise. `1.0` (the default) holds refreshed
    /// plans to exactly the build-time guard.
    pub refresh_drift: f64,
}

impl Default for SpcgOptions {
    fn default() -> Self {
        Self {
            sparsify: Some(SparsifyParams::default()),
            precond: PrecondKind::IluSparsified,
            ilu_fill: IluFill::Ilu0,
            spai_pattern: SaiPattern::OfA,
            ainv_rho_max: 0.98,
            exec: ExecutionStrategy::Sequential,
            solver: SolverConfig::default(),
            ordering: OrderingKind::Natural,
            ordering_omega: 10.0,
            precision: PrecisionPolicy::Full,
            refresh_drift: 1.0,
        }
    }
}

impl SpcgOptions {
    /// Replaces the sparsification parameters wholesale; `None` selects the
    /// non-sparsified baseline.
    pub fn with_sparsify(mut self, sparsify: Option<SparsifyParams>) -> Self {
        self.sparsify = sparsify;
        self
    }

    /// Sets the convergence threshold τ, enabling sparsification with
    /// default parameters first if it was off.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.sparsify.get_or_insert_with(SparsifyParams::default).tau = tau;
        self
    }

    /// Sets the wavefront-reduction threshold ω (percent), enabling
    /// sparsification with default parameters first if it was off.
    pub fn with_omega(mut self, omega: f64) -> Self {
        self.sparsify.get_or_insert_with(SparsifyParams::default).omega = omega;
        self
    }

    /// Sets the candidate drop ratios (percent, most aggressive first),
    /// enabling sparsification with default parameters first if it was off.
    pub fn with_ratios(mut self, ratios: Vec<f64>) -> Self {
        self.sparsify.get_or_insert_with(SparsifyParams::default).ratios = ratios;
        self
    }

    /// Selects the preconditioner family (kind).
    pub fn with_precond(mut self, precond: PrecondKind) -> Self {
        self.precond = precond;
        self
    }

    /// Selects the fill level of the sparsified-ILU factorization.
    pub fn with_ilu_fill(mut self, ilu_fill: IluFill) -> Self {
        self.ilu_fill = ilu_fill;
        self
    }

    /// Selects the SPAI approximate-inverse pattern.
    pub fn with_spai_pattern(mut self, pattern: SaiPattern) -> Self {
        self.spai_pattern = pattern;
        self
    }

    /// Sets the contraction ceiling of the level-free quality guard used
    /// by [`PrecondKind::Auto`].
    pub fn with_ainv_rho_max(mut self, rho: f64) -> Self {
        self.ainv_rho_max = rho;
        self
    }

    /// Selects the triangular-solve execution strategy.
    pub fn with_exec(mut self, exec: ExecutionStrategy) -> Self {
        self.exec = exec;
        self
    }

    /// Replaces the PCG configuration.
    pub fn with_solver(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// Selects the symmetric ordering applied before analysis.
    pub fn with_ordering(mut self, ordering: OrderingKind) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets the minimum percent level reduction `Auto` demands before it
    /// accepts a non-natural ordering.
    pub fn with_ordering_omega(mut self, omega: f64) -> Self {
        self.ordering_omega = omega;
        self
    }

    /// Selects the precision tier of the preconditioner application.
    pub fn with_precision(mut self, precision: PrecisionPolicy) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the staleness slack [`refresh_drift`](Self::refresh_drift) used
    /// by value-only plan refreshes.
    pub fn with_refresh_drift(mut self, refresh_drift: f64) -> Self {
        self.refresh_drift = refresh_drift;
        self
    }
}

/// Borrowed options convert by cloning, so call sites holding a long-lived
/// `SpcgOptions` can pass `&opts` to [`SpcgPlan::build`] unchanged.
impl From<&SpcgOptions> for SpcgOptions {
    fn from(opts: &SpcgOptions) -> Self {
        opts.clone()
    }
}

/// Everything produced by one pipeline run.
#[derive(Debug)]
pub struct SpcgOutcome<T: Scalar> {
    /// PCG result (iterations, residuals, solve-phase timings).
    pub result: SolveResult<T>,
    /// Sparsification decision (absent for the baseline).
    pub decision: Option<SparsifyDecision<T>>,
    /// The factors used as the preconditioner.
    pub factors: IluFactors<T>,
    /// Wall-clock time of the sparsification step.
    pub sparsify_time: Duration,
    /// Wall-clock time of the factorization step.
    pub factorization_time: Duration,
}

impl<T: Scalar> SpcgOutcome<T> {
    /// End-to-end time: sparsify + factorize + solve.
    pub fn end_to_end(&self) -> Duration {
        self.sparsify_time + self.factorization_time + self.result.timings.total
    }
}

/// Builds the configured incomplete factorization of `m`.
pub fn build_preconditioner<T: Scalar>(
    m: &CsrMatrix<T>,
    kind: IluFill,
    exec: ExecutionStrategy,
) -> Result<IluFactors<T>> {
    build_preconditioner_probed(m, kind, exec, &mut NoProbe)
}

/// [`build_preconditioner`] with an observability [`Probe`]: the numeric
/// sweep reports a `Span::Factorize`, level-schedule construction a
/// `Span::LevelBuild`, and a `Counter::Factorizations` event fires on
/// success.
pub fn build_preconditioner_probed<T: Scalar, P: Probe>(
    m: &CsrMatrix<T>,
    kind: IluFill,
    exec: ExecutionStrategy,
    probe: &mut P,
) -> Result<IluFactors<T>> {
    match kind {
        IluFill::Ilu0 => ilu0_probed(m, exec, probe),
        IluFill::Iluk(k) => iluk_probed(m, k, exec, probe),
    }
}

/// Runs the full pipeline: sparsify (optional) → factor → PCG.
///
/// One-shot convenience over [`SpcgPlan`]: builds a plan, solves once, and
/// decomposes the plan into the outcome. Amortize the analysis over many
/// right-hand sides by holding the plan instead.
///
/// PCG always solves the ORIGINAL system `A x = b` (Figure 2): only the
/// preconditioner sees `Â`.
#[deprecated(
    since = "0.1.0",
    note = "build an `SpcgPlan` and call `solve` (then `into_outcome` if the \
            legacy `SpcgOutcome` is needed); the plan amortizes analysis \
            across right-hand sides and exposes the probed/resilient tiers"
)]
pub fn spcg_solve<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    opts: &SpcgOptions,
) -> Result<SpcgOutcome<T>> {
    let plan = SpcgPlan::build(a, opts)?;
    let result =
        plan.solve(b).map_err(|e| spcg_sparse::SparseError::DimensionMismatch(e.to_string()))?;
    Ok(plan.into_outcome(result))
}

/// The paper's K-selection procedure (§3.3): run baseline PCG-ILU(K) for
/// each candidate and keep the best-converging K (fewest iterations among
/// converged runs; smallest final residual otherwise). The same K is then
/// used for both PCG and SPCG.
#[deprecated(
    since = "0.1.0",
    note = "loop over candidate K values with `SpcgPlan::build` + \
            `solve_in_place` (this function is a thin wrapper around \
            exactly that sweep) so the selection policy stays visible at \
            the call site"
)]
pub fn select_best_k<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    candidates: &[usize],
    exec: ExecutionStrategy,
    solver: &SolverConfig,
) -> Result<usize> {
    assert!(!candidates.is_empty(), "need at least one K candidate");
    // The candidates share everything except the factorization: one
    // workspace serves every trial solve, and the allocation-free in-place
    // path keeps the sweep cheap.
    let mut ws: Option<SolveWorkspace<T>> = None;
    let mut best: Option<(usize, bool, usize, f64)> = None; // (k, converged, iters, resid)
    for &k in candidates {
        let opts = SpcgOptions {
            sparsify: None,
            ilu_fill: IluFill::Iluk(k),
            exec,
            solver: solver.clone(),
            ..Default::default()
        };
        let Ok(plan) = SpcgPlan::build(a, &opts) else { continue }; // breakdown: skip K
        let ws = ws.get_or_insert_with(|| plan.make_workspace());
        let Ok(stats) = plan.solve_in_place(b, ws) else { continue };
        let conv = stats.converged();
        let iters = stats.iterations;
        let resid = stats.final_residual;
        let better = match &best {
            None => true,
            Some((_, bconv, biters, bresid)) => {
                let (bconv, biters, bresid) = (*bconv, *biters, *bresid);
                (conv && !bconv)
                    || (conv == bconv && conv && iters < biters)
                    || (conv == bconv && !conv && resid < bresid)
            }
        };
        if better {
            best = Some((k, conv, iters, resid));
        }
    }
    best.map(|(k, _, _, _)| k).ok_or_else(|| {
        spcg_sparse::SparseError::InvalidStructure(
            "no candidate K produced a usable factorization".into(),
        )
    })
}

#[cfg(test)]
#[allow(deprecated)] // the legacy one-shot entry points are exactly what is under test
mod tests {
    use super::*;
    use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};
    use spcg_sparse::Rng;

    fn system(n: usize) -> (CsrMatrix<f64>, Vec<f64>) {
        let a = with_magnitude_spread(&poisson_2d(n, n), 6.0, 21);
        let mut rng = Rng::new(77);
        let b = (0..n * n).map(|_| rng.range(-1.0, 1.0)).collect();
        (a, b)
    }

    #[test]
    fn baseline_and_spcg_both_converge() {
        let (a, b) = system(14);
        let solver = SolverConfig::default().with_tol(1e-10);
        let base = spcg_solve(
            &a,
            &b,
            &SpcgOptions { sparsify: None, solver: solver.clone(), ..Default::default() },
        )
        .unwrap();
        let spcg = spcg_solve(&a, &b, &SpcgOptions { solver, ..Default::default() }).unwrap();
        assert!(base.result.converged());
        assert!(spcg.result.converged(), "SPCG stop: {:?}", spcg.result.stop);
        assert!(base.decision.is_none());
        assert!(spcg.decision.is_some());
    }

    #[test]
    fn spcg_solution_solves_original_system() {
        let (a, b) = system(12);
        let out = spcg_solve(
            &a,
            &b,
            &SpcgOptions { solver: SolverConfig::default().with_tol(1e-11), ..Default::default() },
        )
        .unwrap();
        assert!(out.result.converged());
        let ax = spcg_sparse::spmv::spmv_alloc(&a, &out.result.x);
        let err: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        assert!(err < 1e-7, "residual vs ORIGINAL A too large: {err}");
    }

    #[test]
    fn sparsified_preconditioner_has_no_more_wavefronts() {
        let (a, b) = system(16);
        let base =
            spcg_solve(&a, &b, &SpcgOptions { sparsify: None, ..Default::default() }).unwrap();
        let spcg = spcg_solve(&a, &b, &SpcgOptions::default()).unwrap();
        assert!(
            spcg.factors.total_wavefronts() <= base.factors.total_wavefronts(),
            "sparsification must not add ILU(0) wavefronts: {} vs {}",
            spcg.factors.total_wavefronts(),
            base.factors.total_wavefronts()
        );
    }

    #[test]
    fn iluk_pipeline_runs() {
        let (a, b) = system(10);
        let out = spcg_solve(
            &a,
            &b,
            &SpcgOptions {
                ilu_fill: IluFill::Iluk(2),
                solver: SolverConfig::default().with_tol(1e-10),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.result.converged());
        assert_eq!(IluFill::Iluk(2).label(), "ILU(2)");
    }

    #[test]
    fn best_k_prefers_fewer_iterations() {
        let (a, b) = system(10);
        let k = select_best_k(
            &a,
            &b,
            &[0, 2],
            ExecutionStrategy::Sequential,
            &SolverConfig::default().with_tol(1e-10),
        )
        .unwrap();
        // more fill ⇒ fewer iterations on this well-behaved system
        assert_eq!(k, 2);
    }

    #[test]
    fn end_to_end_time_is_sum_of_phases() {
        let (a, b) = system(8);
        let out = spcg_solve(&a, &b, &SpcgOptions::default()).unwrap();
        let e2e = out.end_to_end();
        assert!(e2e >= out.result.timings.total);
        assert!(e2e >= out.factorization_time);
    }
}
