//! The adaptive de-sparsification fallback ladder: breakdown-resilient
//! solves on top of [`SpcgPlan`].
//!
//! Sparsification trades preconditioner quality for parallelism, and the
//! trade can go wrong: an aggressively sparsified `Â` may factor into
//! indefinite or near-singular factors that break PCG down at runtime.
//! The solver's per-iteration guards *detect* that (classifying the
//! failure into a [`BreakdownKind`]); this module *recovers* from it by
//! climbing down a ladder of progressively more conservative
//! preconditioners, rebuilding only the preconditioner — never the
//! system — and reusing the solve workspace across rungs:
//!
//! 1. [`FallbackRung::Planned`] — the plan's own factors, exactly as
//!    [`SpcgPlan::solve_with_workspace`] would use them (bitwise
//!    identical when nothing breaks); for mixed-precision plans this is
//!    the reduced-precision apply under the refinement loop, and a
//!    [`FallbackRung::PromotePrecision`] rung follows — the resident
//!    full-precision factors, zero extra factorizations;
//! 2. [`FallbackRung::Resparsify`] — re-sparsify at a less aggressive
//!    drop ratio (e.g. 10% → 5% → 1%) and refactor;
//! 3. [`FallbackRung::Unsparsified`] — factor the full `A`;
//! 4. [`FallbackRung::Shifted`] — pivot-shifted refactorization of `A`
//!    (`A + αI` with escalating `α`, Manteuffel's cure);
//! 5. [`FallbackRung::Fsai`] — the factored sparse approximate inverse
//!    `GᵀG`, a *different family*: when every incomplete factorization of
//!    the matrix breaks down, a level-free SPD-preserving inverse often
//!    still exists (skipped when the plan is already level-free — retrying
//!    the same family would be a no-op);
//! 6. [`FallbackRung::Jacobi`] — the diagonal preconditioner, which
//!    cannot break down on any matrix with a nonzero diagonal.
//!
//! Every attempt is recorded in a [`RecoveryReport`] (rung, stop
//! classification, iterations, residual, factorization count), so callers
//! and cost models can see exactly what the recovery cost. Deterministic
//! fault injection ([`FaultInjection`]) forces each failure mode on
//! demand, which is how the test suite proves every rung both fires and
//! terminates.

use crate::pipeline::{build_preconditioner_probed, IluFill};
use crate::plan::SpcgPlan;
use crate::sparsify::sparsify_by_magnitude;
use spcg_precond::{
    shifted_factorization_probed, AinvPreconditioner, FactorKind, FsaiPreconditioner,
    JacobiPreconditioner, Preconditioner, ShiftPolicy,
};
use spcg_probe::{NoProbe, Probe, ProbeStop, RungEvent, RungKind, Span};
use spcg_solver::{
    pcg_with_workspace_probed, BreakdownKind, SolveFault, SolveResult, SolveWorkspace, SolverError,
    StopReason,
};
use spcg_sparse::Scalar;

/// One rung of the fallback ladder, from most to least aggressive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FallbackRung {
    /// The plan's own preconditioner (attempt 0). For a mixed-precision
    /// plan this is the reduced-precision apply under the refinement loop.
    Planned,
    /// The plan's full-precision factors, promoted from a stalled
    /// mixed-precision tier. Costs zero factorizations — the full factors
    /// are already resident on every mixed plan. Only present on the
    /// ladder of mixed plans.
    PromotePrecision,
    /// Re-sparsified at the given (less aggressive) drop ratio, percent.
    Resparsify(f64),
    /// Factorization of the full, unsparsified `A`.
    Unsparsified,
    /// Pivot-shifted refactorization `A + αI` of the full matrix.
    Shifted,
    /// Factored sparse approximate inverse `GᵀG` — a level-free family
    /// switch for matrices no incomplete factorization survives on.
    Fsai,
    /// Diagonal (Jacobi) preconditioner — the unconditional safety net.
    Jacobi,
}

impl FallbackRung {
    /// The probe-layer classification of this rung plus its ratio payload
    /// (0 for rungs without one).
    fn probe_kind(&self) -> (RungKind, f64) {
        match self {
            FallbackRung::Planned => (RungKind::Planned, 0.0),
            FallbackRung::PromotePrecision => (RungKind::PromotePrecision, 0.0),
            FallbackRung::Resparsify(t) => (RungKind::Resparsify, *t),
            FallbackRung::Unsparsified => (RungKind::Unsparsified, 0.0),
            FallbackRung::Shifted => (RungKind::Shifted, 0.0),
            FallbackRung::Fsai => (RungKind::Fsai, 0.0),
            FallbackRung::Jacobi => (RungKind::Jacobi, 0.0),
        }
    }
}

impl std::fmt::Display for FallbackRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackRung::Planned => write!(f, "planned"),
            FallbackRung::PromotePrecision => write!(f, "promote-precision"),
            FallbackRung::Resparsify(t) => write!(f, "resparsify({t}%)"),
            FallbackRung::Unsparsified => write!(f, "unsparsified"),
            FallbackRung::Shifted => write!(f, "shifted"),
            FallbackRung::Fsai => write!(f, "fsai"),
            FallbackRung::Jacobi => write!(f, "jacobi"),
        }
    }
}

/// Deterministic faults for resilience testing, applied to the first
/// `applies_to_attempts` ladder attempts.
///
/// Three failure modes cover the ladder's trigger surface: a NaN poisoned
/// into the iteration (kernel fault), a zeroed pivot (factorization
/// collapse), and a scaled factor entry (corrupted memory). Jacobi rungs
/// only see the solve-loop fault — the factor corruptions have no factors
/// to corrupt there, which is exactly why Jacobi is the terminal rung.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjection {
    /// Poison the PCG loop itself (NaN at a chosen iteration).
    pub solve_fault: Option<SolveFault>,
    /// Zero the U pivot of this row in the attempt's factors.
    pub zero_pivot_row: Option<usize>,
    /// Scale the stored factor entry `(row, col)` by the factor.
    pub scale_entry: Option<(usize, usize, f64)>,
    /// How many leading attempts the fault applies to (1 = only the
    /// planned attempt; larger values force the ladder deeper).
    pub applies_to_attempts: usize,
}

impl FaultInjection {
    /// NaN injected into the residual at iteration `k`.
    pub fn nan_at(k: usize) -> Self {
        Self {
            solve_fault: Some(SolveFault::nan_at(k)),
            zero_pivot_row: None,
            scale_entry: None,
            applies_to_attempts: 1,
        }
    }

    /// Collapsed preconditioned residual at iteration `k` — the way a
    /// reduced-precision (f32) preconditioner application stalls when its
    /// values underflow or flush to zero. The `rᵀz ≤ 0` guard classifies
    /// it as Indefinite, and a mixed plan recovers through the
    /// [`FallbackRung::PromotePrecision`] rung.
    pub fn stall_at(k: usize) -> Self {
        Self {
            solve_fault: Some(SolveFault::stall_at(k)),
            zero_pivot_row: None,
            scale_entry: None,
            applies_to_attempts: 1,
        }
    }

    /// Zeroed U pivot at `row`.
    pub fn zeroed_pivot(row: usize) -> Self {
        Self {
            solve_fault: None,
            zero_pivot_row: Some(row),
            scale_entry: None,
            applies_to_attempts: 1,
        }
    }

    /// Stored factor entry `(row, col)` multiplied by `scale`.
    pub fn corrupted_entry(row: usize, col: usize, scale: f64) -> Self {
        Self {
            solve_fault: None,
            zero_pivot_row: None,
            scale_entry: Some((row, col, scale)),
            applies_to_attempts: 1,
        }
    }

    /// Keeps the fault active for the first `n` attempts, forcing the
    /// ladder at least `n` rungs deep.
    pub fn persist_for(mut self, n: usize) -> Self {
        self.applies_to_attempts = n;
        self
    }

    fn active_for(&self, attempt: usize) -> bool {
        attempt < self.applies_to_attempts
    }
}

/// Configuration of the fallback ladder.
#[derive(Debug, Clone)]
pub struct ResilienceOptions {
    /// De-escalation drop ratios (percent) to retry, tried in order; only
    /// ratios strictly less aggressive than the plan's chosen ratio are
    /// used. Values outside `(0, 100)` are ignored.
    pub ratios: Vec<f64>,
    /// Shift escalation policy for the [`FallbackRung::Shifted`] rung.
    pub shift_policy: ShiftPolicy,
    /// Deterministic fault injection (testing only; `None` in production).
    pub fault: Option<FaultInjection>,
}

impl Default for ResilienceOptions {
    fn default() -> Self {
        Self { ratios: vec![5.0, 1.0], shift_policy: ShiftPolicy::default(), fault: None }
    }
}

/// Record of one ladder attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryAttempt {
    /// Which rung ran.
    pub rung: FallbackRung,
    /// How the solve stopped (carries the [`BreakdownKind`] on failure).
    pub stop: StopReason,
    /// Iterations the attempt performed.
    pub iterations: usize,
    /// Final residual norm of the attempt.
    pub final_residual: f64,
    /// Factorizations performed to build this rung's preconditioner
    /// (0 for the planned factors and Jacobi, ≥ 1 otherwise; the shifted
    /// rung counts every escalation attempt).
    pub factorizations: usize,
    /// Diagonal shift used by this rung's factorization (0 unless shifted).
    pub alpha: f64,
}

impl RecoveryAttempt {
    /// `true` when this attempt converged.
    pub fn converged(&self) -> bool {
        self.stop == StopReason::Converged
    }
}

/// The full story of a resilient solve: every attempt, in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// Attempts in execution order; the last one produced the returned
    /// result.
    pub attempts: Vec<RecoveryAttempt>,
}

impl RecoveryReport {
    /// `true` when the final attempt converged.
    pub fn recovered(&self) -> bool {
        self.attempts.last().is_some_and(RecoveryAttempt::converged)
    }

    /// `true` when recovery needed no fallback (the planned attempt
    /// converged directly).
    pub fn clean(&self) -> bool {
        self.attempts.len() == 1 && self.recovered()
    }

    /// The rung sequence that was executed.
    pub fn rungs(&self) -> Vec<FallbackRung> {
        self.attempts.iter().map(|a| a.rung).collect()
    }

    /// Classification of the original failure — the breakdown kind of the
    /// first attempt (`None` when the planned attempt succeeded or failed
    /// without a breakdown classification).
    pub fn cause(&self) -> Option<BreakdownKind> {
        self.attempts.first().and_then(|a| a.stop.breakdown_kind())
    }

    /// Iterations summed over every attempt.
    pub fn total_iterations(&self) -> usize {
        self.attempts.iter().map(|a| a.iterations).sum()
    }

    /// Factorizations summed over every attempt.
    pub fn total_factorizations(&self) -> usize {
        self.attempts.iter().map(|a| a.factorizations).sum()
    }
}

/// Result of a resilient solve: the solution (from the first converged
/// attempt, or the best-residual attempt when nothing converged) plus the
/// recovery report.
#[derive(Debug, Clone)]
pub struct ResilientSolve<T: Scalar> {
    /// The solve result handed back to the caller.
    pub result: SolveResult<T>,
    /// What it took to get there.
    pub report: RecoveryReport,
}

impl<T: Scalar> ResilientSolve<T> {
    /// `true` when the returned result converged.
    pub fn converged(&self) -> bool {
        self.result.stop == StopReason::Converged
    }
}

/// Outcome of building one rung's preconditioner.
struct RungPrecond<T: Scalar> {
    factors: RungFactors<T>,
    factorizations: usize,
    alpha: f64,
}

enum RungFactors<T: Scalar> {
    // Boxed: `IluFactors` (two CSR matrices + two schedules) dwarfs the
    // Jacobi variant, and a rung is built at most once per attempt.
    Ilu(Box<spcg_precond::IluFactors<T>>),
    /// Reduced-precision factors, solved through the iterative-refinement
    /// driver (the planned attempt of a mixed plan).
    Mixed(Box<spcg_precond::MixedPrecisionIlu<T>>),
    /// A level-free approximate inverse — the planned preconditioner of a
    /// level-free plan, or a freshly built FSAI on the family-switch rung.
    Ainv(Box<AinvPreconditioner<T>>),
    Jacobi(JacobiPreconditioner<T>),
}

impl<T: Scalar> SpcgPlan<T> {
    /// [`solve`](SpcgPlan::solve) with the default fallback ladder: on a
    /// runtime breakdown, the preconditioner is rebuilt progressively more
    /// conservatively until the solve converges or the ladder is
    /// exhausted.
    pub fn solve_resilient(&self, b: &[T]) -> std::result::Result<ResilientSolve<T>, SolverError> {
        let mut ws = self.make_workspace();
        self.solve_resilient_with_workspace(b, &ResilienceOptions::default(), &mut ws)
    }

    /// The full-control resilient solve: explicit ladder options and a
    /// reusable workspace. The workspace is shared by every rung (the
    /// buffers only ever grow), so a recovery costs no steady-state
    /// allocations beyond the fallback factorizations themselves.
    ///
    /// With no fault injected and a healthy plan, the result is bitwise
    /// identical to [`solve_with_workspace`](SpcgPlan::solve_with_workspace)
    /// and the report shows a single clean [`FallbackRung::Planned`]
    /// attempt.
    pub fn solve_resilient_with_workspace(
        &self,
        b: &[T],
        opts: &ResilienceOptions,
        ws: &mut SolveWorkspace<T>,
    ) -> std::result::Result<ResilientSolve<T>, SolverError> {
        self.solve_resilient_with_workspace_probed(b, opts, ws, &mut NoProbe)
    }

    /// [`solve_resilient_with_workspace`](SpcgPlan::solve_resilient_with_workspace)
    /// with an observability [`Probe`]: every ladder attempt is bracketed in
    /// a `Span::LadderAttempt` (containing the rung's rebuild factorization
    /// spans and its solve loop) and reported as a [`RungEvent`] carrying
    /// the rung kind, ratio/shift payloads, and stop classification —
    /// including [`ProbeStop::Skipped`] events for rungs that could not be
    /// built on this matrix.
    pub fn solve_resilient_with_workspace_probed<P: Probe>(
        &self,
        b: &[T],
        opts: &ResilienceOptions,
        ws: &mut SolveWorkspace<T>,
        probe: &mut P,
    ) -> std::result::Result<ResilientSolve<T>, SolverError> {
        // The ladder works entirely in the plan's operator space: for a
        // reordered plan, permute `b` once on the way in and the final
        // iterate once on the way out — every rung (which refactors from
        // the permuted system) then agrees with the planned factors about
        // which ordering it lives in.
        let Some(perm) = self.permutation() else {
            return self.resilient_ladder_probed(b, opts, ws, probe);
        };
        let n = self.n();
        if b.len() != n {
            // Let the inner solver surface its canonical dimension error.
            return self.resilient_ladder_probed(b, opts, ws, probe);
        }
        let mut buf = ws.take_staging(n);
        for (k, &old) in perm.iter().enumerate() {
            buf[k] = b[old];
        }
        let result = self.resilient_ladder_probed(&buf, opts, ws, probe).map(|mut s| {
            for (k, &old) in perm.iter().enumerate() {
                buf[old] = s.result.x[k];
            }
            std::mem::swap(&mut s.result.x, &mut buf);
            s
        });
        ws.restore_staging(buf);
        result
    }

    /// The ladder itself, in operator space (`b` and the returned iterate
    /// are in the plan's factoring ordering; the public wrapper maps them
    /// to and from the caller's ordering for reordered plans).
    fn resilient_ladder_probed<P: Probe>(
        &self,
        b: &[T],
        opts: &ResilienceOptions,
        ws: &mut SolveWorkspace<T>,
        probe: &mut P,
    ) -> std::result::Result<ResilientSolve<T>, SolverError> {
        let config = &self.options().solver;
        let mut report = RecoveryReport::default();
        // Track the best non-converged outcome so an exhausted ladder still
        // returns the least-bad iterate (degraded, never garbage).
        let mut best: Option<SolveResult<T>> = None;

        for rung in self.ladder(opts) {
            let attempt_idx = report.attempts.len();
            let (kind, ratio) = rung.probe_kind();
            let fault = opts.fault.filter(|f| f.active_for(attempt_idx));
            probe.span_begin(Span::LadderAttempt);
            let Some(precond) = self.build_rung(rung, opts, fault, probe) else {
                probe.rung(RungEvent {
                    attempt: attempt_idx,
                    rung: kind,
                    ratio,
                    shift: 0.0,
                    outcome: ProbeStop::Skipped,
                });
                probe.span_end(Span::LadderAttempt);
                continue; // rung unbuildable on this matrix: climb down
            };
            let solve_fault = fault.and_then(|f| f.solve_fault);
            let solved = match &precond.factors {
                RungFactors::Ilu(f) => pcg_with_workspace_probed(
                    self.operator(),
                    f.as_ref(),
                    b,
                    config,
                    solve_fault,
                    ws,
                    probe,
                ),
                RungFactors::Mixed(m) => self
                    .solve_mixed_in_place_probed(
                        self.operator(),
                        m,
                        b,
                        solve_fault,
                        usize::MAX,
                        ws,
                        probe,
                    )
                    .map(|refined| SolveResult {
                        x: ws.solution().to_vec(),
                        iterations: refined.stats.iterations,
                        final_residual: refined.stats.final_residual,
                        stop: refined.stats.stop,
                        residual_history: ws.history().to_vec(),
                        timings: refined.stats.timings,
                    }),
                RungFactors::Ainv(a) => pcg_with_workspace_probed(
                    self.operator(),
                    a.as_ref(),
                    b,
                    config,
                    solve_fault,
                    ws,
                    probe,
                ),
                RungFactors::Jacobi(j) => {
                    pcg_with_workspace_probed(self.operator(), j, b, config, solve_fault, ws, probe)
                }
            };
            let result = match solved {
                Ok(r) => r,
                Err(e) => {
                    probe.span_end(Span::LadderAttempt);
                    return Err(e);
                }
            };
            probe.rung(RungEvent {
                attempt: attempt_idx,
                rung: kind,
                ratio,
                shift: precond.alpha,
                outcome: result.stop.as_probe_stop(),
            });
            probe.span_end(Span::LadderAttempt);
            report.attempts.push(RecoveryAttempt {
                rung,
                stop: result.stop,
                iterations: result.iterations,
                final_residual: result.final_residual,
                factorizations: precond.factorizations,
                alpha: precond.alpha,
            });
            if result.stop == StopReason::Converged {
                return Ok(ResilientSolve { result, report });
            }
            let better = match &best {
                None => true,
                Some(b) => {
                    !b.final_residual.is_finite()
                        || (result.final_residual.is_finite()
                            && result.final_residual < b.final_residual)
                }
            };
            if better {
                best = Some(result);
            }
        }

        let result = best.expect("ladder always executes at least the Jacobi rung");
        Ok(ResilientSolve { result, report })
    }

    /// Batched resilient solves: each right-hand side runs the ladder
    /// independently (one breakdown or malformed `b` never aborts the
    /// batch), in parallel, with one workspace per worker. Results are in
    /// input order.
    pub fn solve_many_resilient<B: AsRef<[T]> + Sync>(
        &self,
        rhs: &[B],
        opts: &ResilienceOptions,
    ) -> Vec<std::result::Result<ResilientSolve<T>, SolverError>> {
        if rhs.is_empty() {
            return Vec::new();
        }
        let workers = rayon::current_num_threads().clamp(1, rhs.len());
        let chunk_len = rhs.len().div_ceil(workers);
        type Slot<T> = Option<std::result::Result<ResilientSolve<T>, SolverError>>;
        let mut out: Vec<Slot<T>> = (0..rhs.len()).map(|_| None).collect();
        rayon::scope(|s| {
            for (slot, chunk) in out.chunks_mut(chunk_len).zip(rhs.chunks(chunk_len)) {
                s.spawn(move |_| {
                    let mut ws = self.make_workspace();
                    for (cell, b) in slot.iter_mut().zip(chunk) {
                        *cell =
                            Some(self.solve_resilient_with_workspace(b.as_ref(), opts, &mut ws));
                    }
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("solve_many_resilient worker left a slot unfilled"))
            .collect()
    }

    /// The rung sequence this plan would climb: planned factors (followed
    /// by precision promotion for mixed plans), then each configured ratio
    /// strictly less aggressive than the plan's, then the unsparsified
    /// factorization (when the plan sparsified at all), the shifted
    /// refactorization, and finally Jacobi.
    pub fn ladder(&self, opts: &ResilienceOptions) -> Vec<FallbackRung> {
        let mut rungs = vec![FallbackRung::Planned];
        if self.is_mixed() {
            // The cheapest de-escalation on a mixed plan: the resident
            // full-precision factors, no refactorization. Full plans skip
            // the rung entirely — their ladder is unchanged.
            rungs.push(FallbackRung::PromotePrecision);
        }
        if let Some(d) = self.decision() {
            for &t in &opts.ratios {
                if t < d.chosen_ratio && t > 0.0 && t < 100.0 {
                    rungs.push(FallbackRung::Resparsify(t));
                }
            }
            rungs.push(FallbackRung::Unsparsified);
        }
        rungs.push(FallbackRung::Shifted);
        if !self.is_level_free() {
            // Family switch before the terminal diagonal: a matrix that
            // breaks every incomplete factorization often still admits an
            // SPD-preserving approximate inverse. A plan that is already
            // level-free skips it — rebuilding the same family changes
            // nothing.
            rungs.push(FallbackRung::Fsai);
        }
        rungs.push(FallbackRung::Jacobi);
        rungs
    }

    /// Builds the preconditioner for one rung, applying any active factor
    /// corruption. Returns `None` when the rung cannot be built on this
    /// matrix (the ladder then skips to the next rung).
    fn build_rung<P: Probe>(
        &self,
        rung: FallbackRung,
        opts: &ResilienceOptions,
        fault: Option<FaultInjection>,
        probe: &mut P,
    ) -> Option<RungPrecond<T>> {
        let kind = self.options().ilu_fill;
        let exec = self.options().exec;
        let built = match rung {
            FallbackRung::Planned => match (self.ainv(), self.mixed_factors()) {
                // A level-free plan's own preconditioner is the resident
                // approximate inverse.
                (Some(ainv), _) => RungPrecond {
                    factors: RungFactors::Ainv(Box::new(ainv.clone())),
                    factorizations: 0,
                    alpha: 0.0,
                },
                // A mixed plan's own preconditioner is the reduced-precision
                // apply (under refinement) — that is what attempt 0 retries.
                (None, Some(m)) => RungPrecond {
                    factors: RungFactors::Mixed(Box::new(m.clone())),
                    factorizations: 0,
                    alpha: 0.0,
                },
                (None, None) => RungPrecond {
                    factors: RungFactors::Ilu(Box::new(self.factors().clone())),
                    factorizations: 0,
                    alpha: 0.0,
                },
            },
            FallbackRung::PromotePrecision => RungPrecond {
                // The full factors are resident on every mixed plan:
                // promotion costs zero factorizations.
                factors: RungFactors::Ilu(Box::new(self.factors().clone())),
                factorizations: 0,
                alpha: 0.0,
            },
            FallbackRung::Resparsify(t) => {
                let a_hat = sparsify_by_magnitude(self.operator(), t).a_hat;
                let f = build_preconditioner_probed(&a_hat, kind, exec, probe).ok()?;
                RungPrecond {
                    factors: RungFactors::Ilu(Box::new(f)),
                    factorizations: 1,
                    alpha: 0.0,
                }
            }
            FallbackRung::Unsparsified => {
                let f = build_preconditioner_probed(self.operator(), kind, exec, probe).ok()?;
                RungPrecond {
                    factors: RungFactors::Ilu(Box::new(f)),
                    factorizations: 1,
                    alpha: 0.0,
                }
            }
            FallbackRung::Shifted => {
                let fk = match kind {
                    IluFill::Ilu0 => FactorKind::Ilu0,
                    IluFill::Iluk(k) => FactorKind::Iluk(k),
                };
                let s = shifted_factorization_probed(
                    self.operator(),
                    fk,
                    exec,
                    &opts.shift_policy,
                    probe,
                )
                .ok()?;
                RungPrecond {
                    factors: RungFactors::Ilu(Box::new(s.factors)),
                    factorizations: s.attempts,
                    alpha: s.alpha,
                }
            }
            FallbackRung::Fsai => {
                let f = FsaiPreconditioner::new(self.operator()).ok()?;
                RungPrecond {
                    factors: RungFactors::Ainv(Box::new(AinvPreconditioner::Fsai(f))),
                    factorizations: 1,
                    alpha: 0.0,
                }
            }
            FallbackRung::Jacobi => {
                let j = JacobiPreconditioner::new(self.operator()).ok()?;
                RungPrecond { factors: RungFactors::Jacobi(j), factorizations: 0, alpha: 0.0 }
            }
        };
        Some(self.corrupt(built, fault))
    }

    /// Applies active factor-corruption faults to a built rung. Corruption
    /// only targets stored entries; faults aimed at absent entries (or at
    /// the factor-free Jacobi rung) are no-ops.
    fn corrupt(&self, mut built: RungPrecond<T>, fault: Option<FaultInjection>) -> RungPrecond<T> {
        let Some(f) = fault else { return built };
        built.factors = match built.factors {
            RungFactors::Ilu(boxed) => {
                let mut factors = *boxed;
                if let Some(row) = f.zero_pivot_row {
                    if row < factors.dim() {
                        factors = factors.with_zeroed_pivot(row);
                    }
                }
                if let Some((row, col, scale)) = f.scale_entry {
                    let present = row < factors.dim()
                        && if col < row {
                            factors.l().get(row, col).is_some()
                        } else {
                            factors.u().get(row, col).is_some()
                        };
                    if present {
                        factors = factors.with_scaled_entry(row, col, scale);
                    }
                }
                RungFactors::Ilu(Box::new(factors))
            }
            // Factor corruption targets full-precision stored entries; the
            // mixed rung is poisoned through the solve fault instead, and
            // Jacobi has no factors to corrupt.
            other => other,
        };
        built
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SpcgOptions;
    use spcg_solver::SolverConfig;
    use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};
    use spcg_sparse::{CsrMatrix, Rng};

    fn system(n: usize) -> (CsrMatrix<f64>, Vec<f64>) {
        let a = with_magnitude_spread(&poisson_2d(n, n), 6.0, 21);
        let mut rng = Rng::new(77);
        let b = (0..n * n).map(|_| rng.range(-1.0, 1.0)).collect();
        (a, b)
    }

    fn opts() -> SpcgOptions {
        SpcgOptions {
            solver: SolverConfig::default().with_tol(1e-10).with_history(true),
            ..Default::default()
        }
    }

    #[test]
    fn clean_solve_is_bitwise_identical_to_plain() {
        let (a, b) = system(12);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let mut ws = plan.make_workspace();
        let plain = plan.solve_with_workspace(&b, &mut ws).unwrap();
        let resilient = plan
            .solve_resilient_with_workspace(&b, &ResilienceOptions::default(), &mut ws)
            .unwrap();
        assert_eq!(plain.x, resilient.result.x);
        assert_eq!(plain.residual_history, resilient.result.residual_history);
        assert_eq!(plain.iterations, resilient.result.iterations);
        assert!(resilient.report.clean());
        assert_eq!(resilient.report.rungs(), vec![FallbackRung::Planned]);
        assert_eq!(resilient.report.cause(), None);
    }

    #[test]
    fn nan_fault_recovers_on_the_next_rung() {
        let (a, b) = system(12);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let ropts =
            ResilienceOptions { fault: Some(FaultInjection::nan_at(2)), ..Default::default() };
        let mut ws = plan.make_workspace();
        let r = plan.solve_resilient_with_workspace(&b, &ropts, &mut ws).unwrap();
        assert!(r.converged(), "ladder must recover: {:?}", r.report);
        assert_eq!(r.report.cause(), Some(BreakdownKind::Nan));
        assert_eq!(r.report.attempts.len(), 2, "one retry: {:?}", r.report.rungs());
        assert_eq!(r.report.attempts[0].rung, FallbackRung::Planned);
        assert_eq!(r.report.attempts[0].iterations, 2, "fault fired at iteration 2");
        assert!(r.report.recovered());
    }

    #[test]
    fn zeroed_pivot_is_detected_and_recovered() {
        let (a, b) = system(10);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let ropts = ResilienceOptions {
            fault: Some(FaultInjection::zeroed_pivot(5)),
            ..Default::default()
        };
        let r =
            plan.solve_resilient_with_workspace(&b, &ropts, &mut plan.make_workspace()).unwrap();
        assert!(r.converged(), "report: {:?}", r.report);
        assert!(r.report.attempts.len() >= 2);
        assert!(
            r.report.cause().is_some(),
            "a zeroed pivot must classify as a breakdown, got {:?}",
            r.report.attempts[0].stop
        );
    }

    #[test]
    fn corrupted_factor_entry_recovers() {
        let (a, b) = system(10);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        // Scaling a pivot by a huge factor wrecks the preconditioner badly
        // enough to stall or break the solve.
        let ropts = ResilienceOptions {
            fault: Some(FaultInjection::corrupted_entry(7, 7, 1e12)),
            ..Default::default()
        };
        let r =
            plan.solve_resilient_with_workspace(&b, &ropts, &mut plan.make_workspace()).unwrap();
        assert!(r.converged(), "report: {:?}", r.report);
    }

    #[test]
    fn persistent_fault_forces_the_ladder_to_the_bottom() {
        let (a, b) = system(10);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let n_rungs = plan.ladder(&ResilienceOptions::default()).len();
        // The solve fault poisons every rung except the last.
        let ropts = ResilienceOptions {
            fault: Some(FaultInjection::nan_at(0).persist_for(n_rungs - 1)),
            ..Default::default()
        };
        let r =
            plan.solve_resilient_with_workspace(&b, &ropts, &mut plan.make_workspace()).unwrap();
        assert!(r.converged(), "report: {:?}", r.report);
        assert_eq!(r.report.attempts.len(), n_rungs);
        assert_eq!(r.report.attempts.last().unwrap().rung, FallbackRung::Jacobi);
        // Every poisoned attempt classified as NaN.
        for a in &r.report.attempts[..n_rungs - 1] {
            assert_eq!(a.stop.breakdown_kind(), Some(BreakdownKind::Nan));
        }
    }

    #[test]
    fn ladder_terminates_even_when_every_rung_is_poisoned() {
        let (a, b) = system(8);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let ropts = ResilienceOptions {
            fault: Some(FaultInjection::nan_at(0).persist_for(usize::MAX)),
            ..Default::default()
        };
        let r =
            plan.solve_resilient_with_workspace(&b, &ropts, &mut plan.make_workspace()).unwrap();
        assert!(!r.converged());
        assert!(!r.report.recovered());
        let bound = plan.ladder(&ropts).len();
        assert!(r.report.attempts.len() <= bound, "ladder must be bounded");
        // Degraded but defined: a result is still returned.
        assert_eq!(r.result.x.len(), b.len());
    }

    #[test]
    fn ladder_shape_follows_the_plan() {
        let (a, _) = system(10);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let rungs = plan.ladder(&ResilienceOptions::default());
        assert_eq!(rungs.first(), Some(&FallbackRung::Planned));
        assert_eq!(rungs.last(), Some(&FallbackRung::Jacobi));
        assert!(rungs.contains(&FallbackRung::Shifted));
        if plan.is_sparsified() {
            assert!(rungs.contains(&FallbackRung::Unsparsified));
            // Every resparsify rung is strictly less aggressive than the
            // plan's chosen ratio.
            let chosen = plan.decision().unwrap().chosen_ratio;
            for r in &rungs {
                if let FallbackRung::Resparsify(t) = r {
                    assert!(*t < chosen);
                }
            }
        }
        // Baseline (unsparsified) plans get a shorter ladder.
        let base = SpcgPlan::build(&a, &SpcgOptions { sparsify: None, ..opts() }).unwrap();
        let base_rungs = base.ladder(&ResilienceOptions::default());
        assert_eq!(
            base_rungs,
            vec![
                FallbackRung::Planned,
                FallbackRung::Shifted,
                FallbackRung::Fsai,
                FallbackRung::Jacobi
            ]
        );
    }

    #[test]
    fn solve_many_resilient_isolates_failures() {
        let (a, b) = system(9);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        // Batch of three: healthy, wrong length, healthy.
        let rhs: Vec<Vec<f64>> = vec![b.clone(), vec![1.0; 3], b.clone()];
        let out = plan.solve_many_resilient(&rhs, &ResilienceOptions::default());
        assert_eq!(out.len(), 3);
        assert!(out[0].as_ref().unwrap().converged());
        assert!(out[1].is_err(), "malformed rhs must fail alone");
        assert!(out[2].as_ref().unwrap().converged());
    }

    #[test]
    fn report_accounting_sums_attempts() {
        let (a, b) = system(10);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let ropts = ResilienceOptions {
            fault: Some(FaultInjection::nan_at(3).persist_for(2)),
            ..Default::default()
        };
        let r =
            plan.solve_resilient_with_workspace(&b, &ropts, &mut plan.make_workspace()).unwrap();
        assert!(r.converged());
        assert_eq!(r.report.attempts.len(), 3);
        let total: usize = r.report.attempts.iter().map(|a| a.iterations).sum();
        assert_eq!(r.report.total_iterations(), total);
        assert!(r.report.total_factorizations() >= 1, "fallback rungs refactor");
        assert_eq!(&r.report.rungs()[..1], &[FallbackRung::Planned]);
    }

    #[test]
    fn rung_display_labels() {
        assert_eq!(FallbackRung::Planned.to_string(), "planned");
        assert_eq!(FallbackRung::PromotePrecision.to_string(), "promote-precision");
        assert_eq!(FallbackRung::Resparsify(5.0).to_string(), "resparsify(5%)");
        assert_eq!(FallbackRung::Unsparsified.to_string(), "unsparsified");
        assert_eq!(FallbackRung::Shifted.to_string(), "shifted");
        assert_eq!(FallbackRung::Fsai.to_string(), "fsai");
        assert_eq!(FallbackRung::Jacobi.to_string(), "jacobi");
    }

    #[test]
    fn fsai_rung_fires_between_shifted_and_jacobi() {
        let (a, b) = system(10);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let ladder = plan.ladder(&ResilienceOptions::default());
        let fsai_pos = ladder.iter().position(|r| *r == FallbackRung::Fsai).unwrap();
        assert_eq!(ladder[fsai_pos - 1], FallbackRung::Shifted);
        assert_eq!(ladder[fsai_pos + 1], FallbackRung::Jacobi);
        // Poison every rung before FSAI: recovery must land exactly there,
        // demonstrating the family switch rescues a solve the whole
        // factorization ladder could not.
        let ropts = ResilienceOptions {
            fault: Some(FaultInjection::nan_at(0).persist_for(fsai_pos)),
            ..Default::default()
        };
        let r =
            plan.solve_resilient_with_workspace(&b, &ropts, &mut plan.make_workspace()).unwrap();
        assert!(r.converged(), "report: {:?}", r.report);
        assert_eq!(r.report.attempts.last().unwrap().rung, FallbackRung::Fsai);
        assert_eq!(r.report.attempts.last().unwrap().factorizations, 1);
    }

    #[test]
    fn level_free_plans_skip_the_fsai_rung() {
        use crate::pipeline::PrecondKind;
        let (a, b) = system(10);
        let plan = SpcgPlan::build(&a, opts().with_precond(PrecondKind::Fsai)).unwrap();
        assert!(plan.is_level_free());
        let ladder = plan.ladder(&ResilienceOptions::default());
        assert!(
            !ladder.contains(&FallbackRung::Fsai),
            "retrying the resident family is a no-op: {ladder:?}"
        );
        // An injected FSAI breakdown climbs to the terminal Jacobi rung.
        let ropts = ResilienceOptions {
            fault: Some(FaultInjection::nan_at(0).persist_for(ladder.len() - 1)),
            ..Default::default()
        };
        let r =
            plan.solve_resilient_with_workspace(&b, &ropts, &mut plan.make_workspace()).unwrap();
        assert!(r.converged(), "report: {:?}", r.report);
        assert_eq!(r.report.attempts.first().unwrap().rung, FallbackRung::Planned);
        assert_eq!(r.report.attempts.last().unwrap().rung, FallbackRung::Jacobi);
    }

    #[test]
    fn mixed_ladder_gains_the_promote_rung() {
        use crate::precision::PrecisionPolicy;
        let (a, _) = system(10);
        let mixed = SpcgPlan::build(&a, opts().with_precision(PrecisionPolicy::MixedF32)).unwrap();
        let rungs = mixed.ladder(&ResilienceOptions::default());
        assert_eq!(rungs[0], FallbackRung::Planned);
        assert_eq!(
            rungs[1],
            FallbackRung::PromotePrecision,
            "promotion must be the first de-escalation on a mixed plan"
        );
        assert_eq!(rungs.last(), Some(&FallbackRung::Jacobi));
        // Full plans never see the rung.
        let full = SpcgPlan::build(&a, opts()).unwrap();
        assert!(!full
            .ladder(&ResilienceOptions::default())
            .contains(&FallbackRung::PromotePrecision));
    }

    #[test]
    fn stalled_mixed_precond_promotes_precision() {
        use crate::precision::PrecisionPolicy;
        let (a, b) = system(12);
        let plan = SpcgPlan::build(&a, opts().with_precision(PrecisionPolicy::MixedF32)).unwrap();
        let ropts =
            ResilienceOptions { fault: Some(FaultInjection::stall_at(2)), ..Default::default() };
        let mut ws = plan.make_workspace();
        let r = plan.solve_resilient_with_workspace(&b, &ropts, &mut ws).unwrap();
        assert!(r.converged(), "report: {:?}", r.report);
        assert_eq!(
            r.report.cause(),
            Some(BreakdownKind::Indefinite),
            "the collapsed rᵀz must classify as Indefinite"
        );
        assert_eq!(
            r.report.rungs(),
            vec![FallbackRung::Planned, FallbackRung::PromotePrecision],
            "recovery must go through precision promotion"
        );
        assert_eq!(
            r.report.total_factorizations(),
            0,
            "promotion reuses the resident full factors"
        );
    }

    #[test]
    fn clean_mixed_resilient_solve_matches_the_plain_mixed_tier() {
        use crate::precision::PrecisionPolicy;
        let (a, b) = system(10);
        let plan = SpcgPlan::build(&a, opts().with_precision(PrecisionPolicy::MixedF32)).unwrap();
        let mut ws = plan.make_workspace();
        let plain = plan.solve_with_workspace(&b, &mut ws).unwrap();
        let resilient = plan
            .solve_resilient_with_workspace(&b, &ResilienceOptions::default(), &mut ws)
            .unwrap();
        assert_eq!(plain.x, resilient.result.x);
        assert!(resilient.report.clean());
        assert_eq!(resilient.report.rungs(), vec![FallbackRung::Planned]);
    }
}
