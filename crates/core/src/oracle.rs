//! The "Oracle" of §4.4: for each matrix, the best-performing fixed
//! sparsification ratio among {1, 5, 10}% under a caller-supplied cost
//! metric (measured wall-clock or simulated GPU time). The oracle bounds
//! what the wavefront-aware heuristic could achieve.

use crate::sparsify::{sparsify_by_magnitude, Sparsified};
use spcg_sparse::{CsrMatrix, Scalar};

/// Result of an oracle sweep.
#[derive(Debug, Clone)]
pub struct OracleChoice<T: Scalar> {
    /// The winning ratio (percent).
    pub ratio: f64,
    /// Its decomposition.
    pub sparsified: Sparsified<T>,
    /// Cost of the winner (same units as the cost function).
    pub cost: f64,
    /// `(ratio, cost)` for every candidate, in sweep order.
    pub sweep: Vec<(f64, f64)>,
}

/// Evaluates `cost` for every candidate ratio and returns the cheapest.
///
/// `cost` receives the candidate decomposition and returns a positive
/// figure of merit (lower is better) — e.g. simulated per-iteration time or
/// measured end-to-end seconds. Non-finite costs mark a candidate invalid.
pub fn oracle_select<T: Scalar>(
    a: &CsrMatrix<T>,
    ratios: &[f64],
    mut cost: impl FnMut(&Sparsified<T>) -> f64,
) -> Option<OracleChoice<T>> {
    assert!(!ratios.is_empty(), "oracle needs at least one ratio");
    let mut best: Option<OracleChoice<T>> = None;
    let mut sweep = Vec::with_capacity(ratios.len());
    for &r in ratios {
        let cand = sparsify_by_magnitude(a, r);
        let c = cost(&cand);
        sweep.push((r, c));
        if !c.is_finite() {
            continue;
        }
        let better = best.as_ref().map(|b| c < b.cost).unwrap_or(true);
        if better {
            best = Some(OracleChoice { ratio: r, sparsified: cand, cost: c, sweep: Vec::new() });
        }
    }
    best.map(|mut b| {
        b.sweep = sweep;
        b
    })
}

/// The paper's oracle ratio set.
pub const ORACLE_RATIOS: [f64; 3] = [1.0, 5.0, 10.0];

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};
    use spcg_wavefront::wavefront_count;

    #[test]
    fn picks_minimum_cost() {
        let a = with_magnitude_spread(&poisson_2d(10, 10), 5.0, 9);
        // Cost = number of wavefronts of Â: more aggressive sparsification
        // can only help, so 10% must win (ties go to the first seen).
        let choice =
            oracle_select(&a, &ORACLE_RATIOS, |sp| wavefront_count(&sp.a_hat) as f64).unwrap();
        let w10 = choice.sweep.iter().find(|&&(r, _)| r == 10.0).unwrap().1;
        assert_eq!(choice.cost, choice.sweep.iter().map(|&(_, c)| c).fold(f64::MAX, f64::min));
        assert!(choice.cost <= w10);
        assert_eq!(choice.sweep.len(), 3);
    }

    #[test]
    fn non_finite_candidates_are_skipped() {
        let a = poisson_2d(6, 6);
        let choice = oracle_select(&a, &[1.0, 5.0, 10.0], |sp| {
            if sp.requested_percent == 5.0 {
                1.0
            } else {
                f64::NAN
            }
        })
        .unwrap();
        assert_eq!(choice.ratio, 5.0);
    }

    #[test]
    fn all_invalid_returns_none() {
        let a = poisson_2d(4, 4);
        assert!(oracle_select(&a, &[1.0], |_| f64::INFINITY).is_none());
    }
}
