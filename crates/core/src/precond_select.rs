//! Joint preconditioner-*kind* selection: the third axis of Algorithm 2's
//! planner search, alongside drop ratio and ordering.
//!
//! The sparsified-ILU pipeline shortens triangular sweeps; the level-free
//! approximate-inverse family (FSAI, static-pattern SPAI) eliminates them —
//! an application is pure SpMV traffic with zero synchronization, at the
//! price of a weaker preconditioner that needs more iterations. Which side
//! wins is a property of the matrix: wavefront-poor structures (long
//! dependency chains, near-sequential level schedules) pay so much per
//! sweep that a cheap-but-weak inverse crosses over; wavefront-rich grids
//! amortize their sweeps and keep the stronger factorization.
//!
//! [`PrecondKind::Auto`] resolves that trade by *priced end-to-end time*,
//! the same currency the executor and ordering searches use:
//!
//! ```text
//! total(kind) = setup(kind) + est_iters(kind) × per_iter(kind)
//! ```
//!
//! * `per_iter` prices one PCG iteration under the wavefront
//!   [`ExecCostModel`]: `spmv(A)` plus the preconditioner application —
//!   level/block triangular sweeps for ILU, SpMVs over the stored inverse
//!   factors for the level-free kinds. The BLAS-1 tail (dots and axpys) is
//!   identical across kinds and cancels out of the argmin, so it is
//!   deliberately omitted.
//! * `est_iters` comes from a deterministic contraction estimate: a short
//!   probe PCG run against a seeded right-hand side measures the
//!   per-iteration residual reduction rate ρ, and the iteration count to
//!   reach the solver tolerance is `⌈ln tol / ln ρ⌉`. The same estimator
//!   prices every candidate, so modelling error largely cancels in the
//!   comparison.
//! * A τ-style quality guard ([`SpcgOptions::ainv_rho_max`]) rejects
//!   level-free candidates whose ρ estimate is non-finite or above the
//!   ceiling, so a cheap inverse can never be selected on a system it
//!   barely contracts.
//!
//! The ILU candidate is always admissible, which gives `Auto` its safety
//! property by construction: the chosen kind's priced total is never worse
//! than the forced-ILU total.

use crate::pipeline::{PrecondKind, SpcgOptions};
use serde::{Deserialize, Serialize};
use spcg_precond::{
    AinvPreconditioner, ExecutionStrategy, FsaiPreconditioner, IluFactors, Preconditioner,
    SaiPreconditioner,
};
use spcg_probe::{NoProbe, Probe};
use spcg_solver::{pcg_in_place_probed, SolveWorkspace};
use spcg_sparse::{CsrMatrix, Rng, Scalar};
use spcg_wavefront::ExecCostModel;

/// Iterations of the probe PCG run the contraction estimator performs.
/// Enough for the asymptotic per-iteration rate to emerge on every fixture
/// in the suite; kept small because the probe runs once per candidate at
/// plan time.
const RATE_PROBE_ITERS: usize = 12;

/// Seed of the estimator's probe right-hand side — fixed so the whole
/// kind search is deterministic (same matrix, same options ⇒ same
/// decision).
const RHO_SEED: u64 = 0x51c9;

/// One priced candidate of the kind search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KindCandidate {
    /// The concrete kind priced (never `Auto`).
    pub kind: PrecondKind,
    /// Measured per-iteration PCG residual reduction rate ρ from the probe
    /// solve, `(‖r_k‖/‖r_0‖)^{1/k}` (`f64::INFINITY` when the probe broke
    /// down or produced non-finite residuals).
    pub rho: f64,
    /// Estimated iterations to the solver tolerance, `⌈ln tol / ln ρ⌉`
    /// clamped to `[1, max_iters]`.
    pub est_iters: usize,
    /// Priced cost of one PCG iteration under this kind, µs.
    pub per_iter_us: f64,
    /// Modelled one-time construction cost, µs.
    pub setup_us: f64,
    /// `setup_us + est_iters × per_iter_us`.
    pub total_us: f64,
    /// Whether the quality guard admitted the candidate (always `true` for
    /// ILU; level-free kinds require a finite ρ ≤
    /// [`SpcgOptions::ainv_rho_max`]).
    pub guard_passed: bool,
}

/// The recorded outcome of one kind search, kept on the plan for
/// diagnostics (mirroring [`ReorderDecision`](crate::ReorderDecision) on
/// the ordering axis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KindDecision {
    /// What the caller asked for (`Auto` when the search ran; an explicit
    /// kind when the decision merely records a forced choice).
    pub requested: PrecondKind,
    /// The winning kind (never `Auto`).
    pub chosen: PrecondKind,
    /// Every candidate the search priced, in evaluation order
    /// (ILU first, then FSAI, then SPAI).
    pub candidates: Vec<KindCandidate>,
}

impl KindDecision {
    /// The record of the chosen candidate.
    pub fn winner(&self) -> Option<&KindCandidate> {
        self.candidates.iter().find(|c| c.kind == self.chosen)
    }

    /// The record of the always-admissible ILU candidate.
    pub fn ilu(&self) -> Option<&KindCandidate> {
        self.candidates.iter().find(|c| c.kind == PrecondKind::IluSparsified)
    }
}

/// What `select_kind_probed` hands back to the plan builder: the decision
/// record plus the constructed approximate inverse when a level-free kind
/// won (the search had to build it to estimate ρ, so the winner is reused
/// rather than rebuilt).
pub(crate) struct KindSearch<T: Scalar> {
    pub decision: KindDecision,
    pub ainv: Option<AinvPreconditioner<T>>,
}

/// Deterministic estimate of the preconditioned contraction rate ρ: a
/// short probe PCG run (fixed seeded right-hand side, fixed iteration
/// budget) measures the geometric-mean residual reduction per iteration,
/// `(‖r_k‖/‖r_0‖)^{1/k}`. Running the real solver — rather than power
/// iteration on `I − M⁻¹A` — captures exactly what the kind decision
/// pays for: PCG's Krylov acceleration and eigenvalue clustering, which a
/// stationary-iteration bound systematically misranks. `INFINITY` signals
/// a breakdown or non-finite residual (the guard then rejects the
/// candidate); `0.0` means the probe converged outright.
pub(crate) fn contraction_rho<T: Scalar, M: Preconditioner<T> + ?Sized>(
    a: &CsrMatrix<T>,
    m: &M,
) -> f64 {
    let n = a.n_rows();
    if n == 0 {
        return 0.0;
    }
    let mut rng = Rng::new(RHO_SEED);
    let b: Vec<T> = (0..n).map(|_| T::from_f64(rng.range(-1.0, 1.0))).collect();
    // An unreachable absolute tolerance: the probe always spends its whole
    // iteration budget (or stops on a guard, which the rate then reflects).
    let config = spcg_solver::SolverConfig::default()
        .with_tol(1e-300)
        .with_tol_mode(spcg_solver::ToleranceMode::Absolute)
        .with_max_iters(RATE_PROBE_ITERS)
        .with_history(true);
    let mut ws = SolveWorkspace::for_preconditioner(n, m);
    let Ok(stats) = pcg_in_place_probed(a, m, &b, &config, None, &mut ws, &mut NoProbe) else {
        return f64::INFINITY;
    };
    let history = ws.history();
    let (Some(&r0), Some(&rk)) = (history.first(), history.last()) else {
        return f64::INFINITY;
    };
    if !rk.is_finite() || stats.final_residual.is_nan() {
        return f64::INFINITY;
    }
    if r0 == 0.0 || rk == 0.0 {
        return 0.0;
    }
    let steps = history.len().saturating_sub(1).max(1);
    let rate = (rk / r0).powf(1.0 / steps as f64);
    if rate.is_finite() {
        rate
    } else {
        f64::INFINITY
    }
}

/// `⌈ln tol / ln ρ⌉` clamped to `[1, max_iters]`; a non-contracting
/// estimate (ρ ≥ 1 or non-finite) prices at the full iteration cap.
pub(crate) fn estimate_iters(rho: f64, tol: f64, max_iters: usize) -> usize {
    let cap = max_iters.max(1);
    if rho.is_nan() || rho <= 0.0 {
        return 1;
    }
    if rho >= 1.0 || !rho.is_finite() {
        return cap;
    }
    let tol = if tol > 0.0 && tol < 1.0 { tol } else { 1e-10 };
    let est = (tol.ln() / rho.ln()).ceil();
    if !est.is_finite() {
        return cap;
    }
    (est as usize).clamp(1, cap)
}

/// Bytes of traffic per stored entry a setup pass moves (value plus
/// index).
const SETUP_BYTES_PER_ENTRY: f64 = 12.0;

/// One GPU-parallel setup pass, µs: a kernel launch plus the larger of the
/// memory-traffic and arithmetic roofs. Both construction passes (ILU's
/// numeric sweep, the per-row dense solves of an approximate inverse) are
/// embarrassingly row-parallel on the device, so pricing them serially
/// would wildly overstate setup and bury every crossover under a phantom
/// millisecond bill.
fn gpu_pass_us(model: &ExecCostModel, bytes: f64, flops: f64) -> f64 {
    let mem_us = bytes / (model.mem_bandwidth_gbps * 1e3);
    let flop_us = flops / (model.peak_gflops * 1e3);
    model.launch_overhead_us + mem_us.max(flop_us)
}

/// Priced cost of one ILU-preconditioned PCG iteration: `spmv(A)` plus one
/// triangular sweep of each factor under the resolved executor.
pub(crate) fn ilu_per_iter_us<T: Scalar>(
    model: &ExecCostModel,
    operator: &CsrMatrix<T>,
    factors: &IluFactors<T>,
) -> f64 {
    let sweep = |m: &CsrMatrix<T>,
                 lvl: &spcg_wavefront::LevelSchedule,
                 blk: &spcg_wavefront::BlockSchedule| {
        match factors.exec() {
            ExecutionStrategy::LevelBarrier => model.level_time_us(m, lvl),
            ExecutionStrategy::DependencyBlocks => model.block_time_us(m, blk),
            ExecutionStrategy::Sequential | ExecutionStrategy::Auto => {
                model.level_time_us(m, lvl).min(model.block_time_us(m, blk))
            }
        }
    };
    model.spmv_time_us(operator)
        + sweep(factors.l(), factors.l_schedule(), factors.l_blocks())
        + sweep(factors.u(), factors.u_schedule(), factors.u_blocks())
}

/// Priced cost of one level-free PCG iteration: `spmv(A)` plus one SpMV
/// per stored inverse factor (`[G, Gᵀ]` for FSAI, `[M]` for SPAI). No
/// levels, no barriers — `Syncs == 0` by construction.
pub(crate) fn ainv_per_iter_us<T: Scalar>(
    model: &ExecCostModel,
    operator: &CsrMatrix<T>,
    ainv: &AinvPreconditioner<T>,
) -> f64 {
    model.spmv_time_us(operator)
        + ainv.factor_matrices().iter().map(|m| model.spmv_time_us(m)).sum::<f64>()
}

/// Modelled construction cost of an approximate inverse: every row solves
/// an independent dense system of order `k` (its stored support), so one
/// GPU pass gathers `k²` entries per row and spends `(2/3)k³` flops per
/// row on the factorizations — all rows in parallel.
fn ainv_setup_us<T: Scalar>(model: &ExecCostModel, ainv: &AinvPreconditioner<T>) -> f64 {
    let (bytes, flops) = ainv
        .factor_matrices()
        .first()
        .map(|g| {
            (0..g.n_rows()).fold((0.0, 0.0), |(b, f), r| {
                let k = g.row_nnz(r) as f64;
                (b + k * k * SETUP_BYTES_PER_ENTRY, f + 2.0 / 3.0 * k * k * k)
            })
        })
        .unwrap_or((0.0, 0.0));
    gpu_pass_us(model, bytes, flops)
}

/// Builds the approximate inverse for an *explicitly requested* level-free
/// kind (no search, no guard — the caller asked for exactly this family).
pub(crate) fn build_ainv_probed<T: Scalar, P: Probe>(
    operator: &CsrMatrix<T>,
    kind: PrecondKind,
    opts: &SpcgOptions,
    probe: &mut P,
) -> spcg_sparse::Result<AinvPreconditioner<T>> {
    match kind {
        PrecondKind::Fsai => {
            Ok(AinvPreconditioner::Fsai(FsaiPreconditioner::new_probed(operator, probe)?))
        }
        PrecondKind::Spai => Ok(AinvPreconditioner::Spai(SaiPreconditioner::new_probed(
            operator,
            opts.spai_pattern,
            probe,
        )?)),
        PrecondKind::Jacobi => {
            Ok(AinvPreconditioner::Jacobi(spcg_precond::JacobiPreconditioner::new(operator)?))
        }
        PrecondKind::IluSparsified | PrecondKind::Auto => {
            unreachable!("build_ainv_probed is only called for explicit level-free kinds")
        }
    }
}

/// Runs the kind search for [`PrecondKind::Auto`]: prices the
/// already-built ILU candidate against freshly-constructed FSAI and SPAI
/// on the same operator, applies the ρ quality guard, and picks the
/// cheapest admissible total. Construction failures (FSAI breakdown on a
/// non-SPD-like row, SPAI rank deficiency) silently drop the candidate —
/// ILU remains, so the search always produces a winner.
pub(crate) fn select_kind_probed<T: Scalar, P: Probe>(
    operator: &CsrMatrix<T>,
    factors: &IluFactors<T>,
    opts: &SpcgOptions,
    probe: &mut P,
) -> KindSearch<T> {
    let model = ExecCostModel::default();
    let tol = opts.solver.tol;
    let cap = opts.solver.max_iters;
    let mut candidates = Vec::with_capacity(3);

    let ilu_rho = contraction_rho(operator, factors);
    let ilu_entries = (factors.l().nnz() + factors.u().nnz()) as f64;
    let ilu_setup = gpu_pass_us(&model, ilu_entries * SETUP_BYTES_PER_ENTRY, 2.0 * ilu_entries);
    let ilu_iters = estimate_iters(ilu_rho, tol, cap);
    let ilu_per = ilu_per_iter_us(&model, operator, factors);
    candidates.push(KindCandidate {
        kind: PrecondKind::IluSparsified,
        rho: ilu_rho,
        est_iters: ilu_iters,
        per_iter_us: ilu_per,
        setup_us: ilu_setup,
        total_us: ilu_setup + ilu_iters as f64 * ilu_per,
        guard_passed: true,
    });

    let mut built: Vec<(PrecondKind, AinvPreconditioner<T>)> = Vec::with_capacity(2);
    if let Ok(f) = FsaiPreconditioner::new_probed(operator, probe) {
        built.push((PrecondKind::Fsai, AinvPreconditioner::Fsai(f)));
    }
    if let Ok(s) = SaiPreconditioner::new_probed(operator, opts.spai_pattern, probe) {
        built.push((PrecondKind::Spai, AinvPreconditioner::Spai(s)));
    }
    let mut winners: Vec<(PrecondKind, AinvPreconditioner<T>)> = Vec::new();
    for (kind, ainv) in built {
        let rho = contraction_rho(operator, &ainv);
        let guard_passed = rho.is_finite() && rho <= opts.ainv_rho_max;
        let iters = estimate_iters(rho, tol, cap);
        let per = ainv_per_iter_us(&model, operator, &ainv);
        let setup = ainv_setup_us(&model, &ainv);
        candidates.push(KindCandidate {
            kind,
            rho,
            est_iters: iters,
            per_iter_us: per,
            setup_us: setup,
            total_us: setup + iters as f64 * per,
            guard_passed,
        });
        if guard_passed {
            winners.push((kind, ainv));
        }
    }

    let chosen = candidates
        .iter()
        .filter(|c| c.guard_passed)
        .min_by(|x, y| x.total_us.total_cmp(&y.total_us))
        .map(|c| c.kind)
        .unwrap_or(PrecondKind::IluSparsified);
    let ainv = winners.into_iter().find(|(k, _)| *k == chosen).map(|(_, a)| a);
    KindSearch { decision: KindDecision { requested: PrecondKind::Auto, chosen, candidates }, ainv }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::ilu0;
    use spcg_sparse::generators::poisson_2d;
    use spcg_sparse::CooMatrix;

    /// A pathologically wavefront-poor SPD matrix: a tridiagonal chain
    /// whose lower factor has one level per row, so every triangular sweep
    /// pays the full barrier cascade.
    fn chain(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.5).unwrap();
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                coo.push(i - 1, i, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn rho_contracts_for_a_real_preconditioner() {
        let a = poisson_2d(10, 10);
        let f = ilu0(&a, spcg_precond::ExecutionStrategy::Sequential).unwrap();
        let rho = contraction_rho(&a, &f);
        assert!(rho.is_finite() && rho < 1.0, "ILU(0) must contract Poisson: rho={rho}");
        // Determinism: same inputs, same estimate, bit for bit.
        assert_eq!(rho, contraction_rho(&a, &f));
    }

    #[test]
    fn estimate_iters_clamps_and_monotone() {
        assert_eq!(estimate_iters(0.0, 1e-10, 1000), 1);
        assert_eq!(estimate_iters(1.0, 1e-10, 1000), 1000);
        assert_eq!(estimate_iters(f64::INFINITY, 1e-10, 1000), 1000);
        let tight = estimate_iters(0.9, 1e-10, 1000);
        let loose = estimate_iters(0.5, 1e-10, 1000);
        assert!(tight > loose, "weaker contraction must price more iterations");
        assert!(estimate_iters(0.999_999, 1e-10, 50) <= 50);
    }

    #[test]
    fn auto_picks_level_free_on_a_banded_chain_and_never_prices_worse_than_ilu() {
        // A moderately wide random band at partial density: every row
        // depends on earlier rows inside the band, so the triangular
        // sweeps are near-sequential (wavefront-poor), while the holes in
        // the band make ILU(0) drop fill and lose its exactness edge.
        let a = spcg_sparse::generators::banded_spd(600, 12, 0.5, 1.05, 7);
        let opts = SpcgOptions::default();
        let factors = ilu0(&a, spcg_precond::ExecutionStrategy::Auto).unwrap();
        let search = select_kind_probed(&a, &factors, &opts, &mut spcg_probe::NoProbe);
        let d = &search.decision;
        assert!(
            d.chosen.is_level_free(),
            "a near-serial band must cross over to a level-free kind: {:?}",
            d.candidates
        );
        assert!(search.ainv.is_some());
        let ilu_total = d.ilu().unwrap().total_us;
        let win_total = d.winner().unwrap().total_us;
        assert!(
            win_total <= ilu_total,
            "Auto must never price worse than forced ILU: {win_total} vs {ilu_total}"
        );
    }

    #[test]
    fn guard_ceiling_zero_forces_ilu() {
        let a = chain(200);
        let opts = SpcgOptions::default().with_ainv_rho_max(0.0);
        let factors = ilu0(&a, spcg_precond::ExecutionStrategy::Auto).unwrap();
        let search = select_kind_probed(&a, &factors, &opts, &mut spcg_probe::NoProbe);
        assert_eq!(search.decision.chosen, PrecondKind::IluSparsified);
        assert!(search.ainv.is_none());
        // The rejected candidates are still recorded, marked inadmissible.
        assert!(search
            .decision
            .candidates
            .iter()
            .filter(|c| c.kind.is_level_free())
            .all(|c| !c.guard_passed));
    }

    #[test]
    fn strongly_anisotropic_grid_keeps_ilu() {
        // Strong directional coupling is where an incomplete factorization
        // shines (it resolves the stiff lines like a line relaxation) and
        // sparse approximate inverses struggle: ILU's iteration advantage
        // (~20×) dwarfs its per-iteration sweep premium, so Auto keeps it.
        let a = spcg_sparse::generators::anisotropic_2d(48, 48, 1e-3);
        let opts = SpcgOptions::default();
        let factors = ilu0(&a, spcg_precond::ExecutionStrategy::Auto).unwrap();
        let search = select_kind_probed(&a, &factors, &opts, &mut spcg_probe::NoProbe);
        assert_eq!(
            search.decision.chosen,
            PrecondKind::IluSparsified,
            "candidates: {:?}",
            search.decision.candidates
        );
        // The level-free candidates were admissible — ILU won on price, not
        // by guard default.
        assert!(search
            .decision
            .candidates
            .iter()
            .any(|c| c.kind.is_level_free() && c.guard_passed));
    }
}
