//! The convergence-safety indicator of Equation 6: `‖Â⁻¹‖ · ‖S‖ < τ`.
//!
//! Computing `‖Â⁻¹‖` exactly is as hard as solving the system, so the paper
//! (§3.2.2) approximates the condition number of `Â` by
//! `‖Â‖_∞ / min_i |â_ii|` and derives `‖Â⁻¹‖ ≈ κ(Â)/‖Â‖₂`. The §3.2.3
//! ablation compares that against an "exact" estimator; both are available
//! here.

use serde::{Deserialize, Serialize};
use spcg_sparse::cond::{approx_inv_norm, condition_2norm_est, lambda_min_est, SpectralOptions};
use spcg_sparse::norms::matrix_norm_inf;
use spcg_sparse::{CsrMatrix, Scalar};

/// Which `‖Â⁻¹‖` estimator the indicator uses.
#[derive(Debug, Clone, Default)]
pub enum CondEstimator {
    /// The paper's O(nnz) approximation (inf-norm over min diagonal).
    #[default]
    PaperApprox,
    /// Spectral estimate: `‖Â⁻¹‖₂ = 1/λ_min(Â)` via inverse power iteration
    /// (the "exact condition number" arm of §3.2.3).
    Spectral(SpectralOptions),
}

/// One evaluation of the indicator for a candidate sparsification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndicatorValue {
    /// Estimated `‖Â⁻¹‖`.
    pub inv_norm: f64,
    /// `‖S‖_∞`.
    pub s_norm: f64,
    /// The product compared against τ.
    pub product: f64,
}

impl IndicatorValue {
    /// `true` when the sparsification passes the safety check
    /// (`product ≤ τ`).
    pub fn passes(&self, tau: f64) -> bool {
        self.product.is_finite() && self.product <= tau
    }
}

/// Evaluates `‖Â⁻¹‖ · ‖S‖` for a candidate decomposition.
pub fn convergence_indicator<T: Scalar>(
    a_hat: &CsrMatrix<T>,
    s: &CsrMatrix<T>,
    estimator: &CondEstimator,
) -> IndicatorValue {
    let inv_norm = match estimator {
        CondEstimator::PaperApprox => approx_inv_norm(a_hat),
        CondEstimator::Spectral(opts) => match lambda_min_est(a_hat, opts) {
            Some(lmin) if lmin > 0.0 => 1.0 / lmin,
            _ => f64::INFINITY,
        },
    };
    let s_norm = matrix_norm_inf(s).to_f64();
    IndicatorValue { inv_norm, s_norm, product: inv_norm * s_norm }
}

/// Condition number of `Â` under the chosen estimator, for §5.4-style
/// analyses.
pub fn condition_estimate<T: Scalar>(a: &CsrMatrix<T>, estimator: &CondEstimator) -> f64 {
    match estimator {
        CondEstimator::PaperApprox => spcg_sparse::cond::approx_condition(a),
        CondEstimator::Spectral(opts) => condition_2norm_est(a, opts).unwrap_or(f64::INFINITY),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsify::sparsify_by_magnitude;
    use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};

    #[test]
    fn zero_residual_gives_zero_product() {
        let a = poisson_2d(6, 6);
        let sp = sparsify_by_magnitude(&a, 0.0);
        let v = convergence_indicator(&sp.a_hat, &sp.s, &CondEstimator::PaperApprox);
        assert_eq!(v.s_norm, 0.0);
        assert_eq!(v.product, 0.0);
        assert!(v.passes(1.0));
    }

    #[test]
    fn product_grows_with_sparsification_ratio() {
        let a = with_magnitude_spread(&poisson_2d(10, 10), 6.0, 7);
        let mut last = -1.0;
        for pct in [1.0, 5.0, 10.0, 30.0] {
            let sp = sparsify_by_magnitude(&a, pct);
            let v = convergence_indicator(&sp.a_hat, &sp.s, &CondEstimator::PaperApprox);
            assert!(
                v.product >= last,
                "indicator should be monotone-ish in ratio: pct={pct} gives {} < {last}",
                v.product
            );
            last = v.product;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn paper_and_spectral_agree_on_scale() {
        let a = with_magnitude_spread(&poisson_2d(8, 8), 4.0, 3);
        let sp = sparsify_by_magnitude(&a, 10.0);
        let approx = convergence_indicator(&sp.a_hat, &sp.s, &CondEstimator::PaperApprox);
        let exact = convergence_indicator(
            &sp.a_hat,
            &sp.s,
            &CondEstimator::Spectral(SpectralOptions::default()),
        );
        // Same S-norm, inverse-norm estimates within two orders of
        // magnitude of each other (§3.2.3 found them interchangeable).
        assert_eq!(approx.s_norm, exact.s_norm);
        let ratio = approx.inv_norm / exact.inv_norm;
        assert!(ratio > 1e-2 && ratio < 1e2, "ratio {ratio}");
    }

    #[test]
    fn missing_diagonal_fails_safely() {
        let mut coo = spcg_sparse::CooMatrix::<f64>::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push_sym(0, 1, 0.5).unwrap();
        // (1,1) missing: paper estimator must return an infinite product,
        // which never passes.
        let a = coo.to_csr();
        let s = spcg_sparse::CooMatrix::<f64>::new(2, 2).to_csr();
        let sp = sparsify_by_magnitude(&a, 40.0);
        let _ = s;
        let v = convergence_indicator(&a, &sp.s, &CondEstimator::PaperApprox);
        assert!(!v.passes(f64::MAX));
    }

    #[test]
    fn condition_estimate_modes() {
        let a = poisson_2d(6, 6);
        let approx = condition_estimate(&a, &CondEstimator::PaperApprox);
        let exact = condition_estimate(&a, &CondEstimator::Spectral(SpectralOptions::default()));
        assert!(approx.is_finite() && approx >= 1.0);
        assert!(exact.is_finite() && exact >= 1.0);
    }
}
