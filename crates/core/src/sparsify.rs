//! Magnitude-based symmetric sparsification: `A = Â + S`.
//!
//! Given a ratio `t` (percent), the `t%` smallest-absolute-magnitude
//! off-diagonal nonzeros of `A` are moved into the residual matrix `S`
//! while diagonal entries are always preserved (§3.2.2). Off-diagonal
//! entries are dropped in symmetric pairs so `Â` stays symmetric whenever
//! `A` is.

use serde::{Deserialize, Serialize};
use spcg_sparse::{CsrMatrix, Scalar};

/// The decomposition `A = Â + S` produced by one sparsification step.
#[derive(Debug, Clone)]
pub struct Sparsified<T: Scalar> {
    /// The sparsified matrix `Â` (kept entries).
    pub a_hat: CsrMatrix<T>,
    /// The residual matrix `S` (dropped entries), same shape as `A`.
    pub s: CsrMatrix<T>,
    /// Number of entries moved into `S`.
    pub dropped_nnz: usize,
    /// The requested drop ratio in percent.
    pub requested_percent: f64,
}

impl<T: Scalar> Sparsified<T> {
    /// Achieved drop ratio in percent of the original nnz.
    pub fn achieved_percent(&self) -> f64 {
        let total = self.a_hat.nnz() + self.dropped_nnz;
        if total == 0 {
            0.0
        } else {
            100.0 * self.dropped_nnz as f64 / total as f64
        }
    }
}

/// Summary statistics of a sparsification for reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SparsifyStats {
    /// Requested percent.
    pub requested_percent: f64,
    /// Achieved percent.
    pub achieved_percent: f64,
    /// Entries dropped.
    pub dropped_nnz: usize,
    /// Entries kept.
    pub kept_nnz: usize,
}

impl<T: Scalar> From<&Sparsified<T>> for SparsifyStats {
    fn from(s: &Sparsified<T>) -> Self {
        Self {
            requested_percent: s.requested_percent,
            achieved_percent: s.achieved_percent(),
            dropped_nnz: s.dropped_nnz,
            kept_nnz: s.a_hat.nnz(),
        }
    }
}

/// Sparsifies `a` by dropping the `percent`% smallest-magnitude off-diagonal
/// entries (in symmetric pairs), producing `Â = A − S`.
///
/// Deterministic: ties are broken by `(row, col)` order. The achieved ratio
/// can undershoot by one pair when the target is odd.
pub fn sparsify_by_magnitude<T: Scalar>(a: &CsrMatrix<T>, percent: f64) -> Sparsified<T> {
    assert!(a.is_square(), "sparsification expects a square (SPD) matrix");
    assert!((0.0..100.0).contains(&percent), "percent must be in [0, 100)");

    let target = ((percent / 100.0) * a.nnz() as f64).floor() as usize;

    // Candidate upper-triangle entries sorted by magnitude (then position).
    let mut candidates: Vec<(usize, usize, f64)> =
        a.iter().filter(|&(r, c, _)| r < c).map(|(r, c, v)| (r, c, v.to_f64().abs())).collect();
    candidates.sort_by(|x, y| {
        x.2.partial_cmp(&y.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.0.cmp(&y.0))
            .then(x.1.cmp(&y.1))
    });

    // Greedily mark pairs until the target entry count is met. A pair costs
    // 2 entries when the mirror exists, 1 otherwise (structurally
    // unsymmetric input degrades gracefully).
    let mut dropped = 0usize;
    let mut drop_set: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for (r, c, _) in candidates {
        if dropped >= target {
            break;
        }
        let pair = usize::from(a.get(c, r).is_some());
        let cost = 1 + pair;
        if dropped + cost > target {
            continue; // try a later (possibly unpaired) candidate
        }
        drop_set.insert((r, c));
        if pair == 1 {
            drop_set.insert((c, r));
        }
        dropped += cost;
    }

    let a_hat = a.filter(|r, c, _| r == c || !drop_set.contains(&(r, c)));
    let s = a.filter(|r, c, _| r != c && drop_set.contains(&(r, c)));

    Sparsified { a_hat, s, dropped_nnz: dropped, requested_percent: percent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};

    fn spread_poisson(n: usize) -> CsrMatrix<f64> {
        with_magnitude_spread(&poisson_2d(n, n), 8.0, 42)
    }

    #[test]
    fn decomposition_is_exact() {
        let a = spread_poisson(8);
        let sp = sparsify_by_magnitude(&a, 10.0);
        let sum = sp.a_hat.add(&sp.s).unwrap().prune_zeros();
        assert_eq!(sum, a.prune_zeros());
    }

    #[test]
    fn diagonal_is_always_preserved() {
        let a = spread_poisson(8);
        let sp = sparsify_by_magnitude(&a, 50.0);
        for i in 0..a.n_rows() {
            assert_eq!(sp.a_hat.get(i, i), a.get(i, i));
        }
        // S has no diagonal entries
        for (r, c, _) in sp.s.iter() {
            assert_ne!(r, c);
        }
    }

    #[test]
    fn symmetry_is_preserved() {
        let a = spread_poisson(10);
        assert!(a.is_symmetric(0.0));
        for pct in [1.0, 5.0, 10.0, 30.0] {
            let sp = sparsify_by_magnitude(&a, pct);
            assert!(sp.a_hat.is_symmetric(0.0), "pct={pct}");
            assert!(sp.s.is_symmetric(0.0), "pct={pct}");
        }
    }

    #[test]
    fn achieved_ratio_close_to_requested() {
        // Figure 3: 10% requested drops 10.00% of nonzeros.
        let a = spread_poisson(16);
        let sp = sparsify_by_magnitude(&a, 10.0);
        let achieved = sp.achieved_percent();
        assert!((achieved - 10.0).abs() < 0.5, "achieved {achieved}% too far from requested 10%");
    }

    #[test]
    fn smallest_magnitudes_are_dropped_first() {
        let a = spread_poisson(10);
        let sp = sparsify_by_magnitude(&a, 10.0);
        let max_dropped = sp.s.values().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        // Entries kept off-diagonal with magnitude strictly below the
        // largest dropped magnitude should be rare; with distinct values
        // produced by the spread there should be none.
        let violations =
            sp.a_hat.iter().filter(|&(r, c, v)| r != c && v.abs() < max_dropped - 1e-15).count();
        assert_eq!(violations, 0);
    }

    #[test]
    fn zero_percent_is_identity() {
        let a = spread_poisson(6);
        let sp = sparsify_by_magnitude(&a, 0.0);
        assert_eq!(sp.a_hat, a);
        assert_eq!(sp.s.nnz(), 0);
        assert_eq!(sp.dropped_nnz, 0);
        assert_eq!(sp.achieved_percent(), 0.0);
    }

    #[test]
    fn stats_conversion() {
        let a = spread_poisson(6);
        let sp = sparsify_by_magnitude(&a, 5.0);
        let st = SparsifyStats::from(&sp);
        assert_eq!(st.dropped_nnz + st.kept_nnz, a.nnz());
        assert_eq!(st.requested_percent, 5.0);
    }

    #[test]
    fn figure1_example_drops_f() {
        // The motivating example: sparsifying the symmetric version of
        // Figure 1's matrix should remove weakest couplings first.
        let mut coo = spcg_sparse::CooMatrix::<f64>::new(4, 4);
        coo.push(0, 0, 10.0).unwrap();
        coo.push(1, 1, 10.0).unwrap();
        coo.push(2, 2, 10.0).unwrap();
        coo.push(3, 3, 10.0).unwrap();
        coo.push_sym(2, 0, 3.0).unwrap(); // c
        coo.push_sym(3, 0, 5.0).unwrap(); // e
        coo.push_sym(3, 2, 0.1).unwrap(); // f -- weakest
        let a = coo.to_csr();
        // 20% of 10 nnz = 2 entries = exactly the (3,2)/(2,3) pair.
        let sp = sparsify_by_magnitude(&a, 20.0);
        assert_eq!(sp.dropped_nnz, 2);
        assert_eq!(sp.a_hat.get(3, 2), None);
        assert_eq!(sp.a_hat.get(2, 3), None);
        assert_eq!(sp.a_hat.get(3, 0), Some(5.0));
    }

    #[test]
    fn deterministic() {
        let a = spread_poisson(12);
        let s1 = sparsify_by_magnitude(&a, 10.0);
        let s2 = sparsify_by_magnitude(&a, 10.0);
        assert_eq!(s1.a_hat, s2.a_hat);
        assert_eq!(s1.s, s2.s);
    }
}
