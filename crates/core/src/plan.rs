//! The plan/execute split: [`SpcgPlan`] performs the one-time analysis of
//! the Figure-2 pipeline — sparsify `A`, factor `Â`, build the wavefront
//! level schedules — and can then execute any number of solves against it.
//!
//! This is the inspector–executor pattern applied to the whole pipeline:
//! the expensive, matrix-dependent work is done once at `build` time and
//! amortized over every subsequent right-hand side, exactly the regime the
//! paper targets (time-stepping and optimization loops re-solving with the
//! same operator). The execute half reuses a [`SolveWorkspace`] so the PCG
//! iteration loop performs no heap allocation.

use crate::algorithm2::{wavefront_aware_sparsify_probed, SparsifyDecision};
use crate::indicator::convergence_indicator;
use crate::pipeline::{build_preconditioner_probed, PrecondKind, SpcgOptions, SpcgOutcome};
use crate::precision::{fits_lower_precision, PrecisionPolicy};
use crate::precond_select::{build_ainv_probed, select_kind_probed, KindDecision};
use crate::reorder::{select_ordering_probed, ReorderDecision, ReorderOutcome};
use crate::sparsify::Sparsified;
use spcg_precond::{
    ilu_refresh_probed, AinvPreconditioner, IluFactors, MixedPrecisionIlu, Preconditioner,
};
use spcg_probe::{Counter, NoProbe, Probe, Span};
use spcg_solver::{
    pcg_in_place_probed, pcg_in_place_warm_probed, pcg_refined_in_place_probed, RefinedStats,
    SolveFault, SolveResult, SolveStats, SolveWorkspace, SolverError,
};
use spcg_sparse::{CsrMatrix, Result, Scalar, SparseError};
use std::time::{Duration, Instant};

/// Iterative-refinement restarts a mixed-precision solve may attempt
/// before handing the (still-unconverged) result back to the caller or
/// the fallback ladder.
pub(crate) const MAX_REFINE_RESTARTS: usize = 4;

/// Stagnation window the mixed tier enables when the caller left the
/// guard off: a reduced-precision preconditioner can pin the recurrence at
/// its rounding floor, and refinement can only trigger once the stall is
/// *detected*. Full-precision plans never override the caller's config.
pub(crate) const MIXED_STAGNATION_WINDOW: usize = 25;

/// A fully-analyzed SPCG pipeline, ready to solve repeatedly.
///
/// Owns the system matrix, the sparsification decision, the incomplete
/// factors (with their precomputed level schedules), and the analysis-phase
/// timings. Build once with [`SpcgPlan::build`] (or
/// [`build_probed`](SpcgPlan::build_probed) to trace the analysis), then
/// pick a solve tier:
///
/// * [`solve`](SpcgPlan::solve) — owned result, fresh workspace per call;
/// * [`solve_with_workspace`](SpcgPlan::solve_with_workspace) — owned
///   result, caller-provided workspace, allocation-free iteration loop;
/// * [`solve_in_place`](SpcgPlan::solve_in_place) — fully allocation-free:
///   the iterate stays in the workspace, only `Copy` stats come back;
/// * [`solve_many`](SpcgPlan::solve_many) — batched independent right-hand
///   sides fanned across rayon workers;
/// * [`solve_resilient`](SpcgPlan::solve_resilient) and friends
///   (`resilient` module) — the breakdown-recovery fallback ladder on top
///   of any of the above.
///
/// Every tier has a `*_probed` twin taking a [`Probe`] that observes
/// spans, counters, and per-iteration events without changing numerics.
///
/// The plan is immutable after construction (`&self` solves), so one plan
/// can serve many threads concurrently; [`solve_many`](SpcgPlan::solve_many)
/// exploits this by fanning independent right-hand sides across workers.
#[derive(Debug)]
pub struct SpcgPlan<T: Scalar> {
    a: CsrMatrix<T>,
    opts: SpcgOptions,
    decision: Option<SparsifyDecision<T>>,
    /// Explicit record of the matrix handed to the factorization, for
    /// plans whose analysis ran outside [`SpcgPlan::build`] (the decision
    /// carries it otherwise).
    factored: Option<CsrMatrix<T>>,
    /// The incomplete factors, present exactly when the resolved kind is
    /// the sparsified-ILU family (`ainv` is present otherwise).
    factors: Option<IluFactors<T>>,
    /// The level-free approximate inverse, present exactly when the
    /// resolved kind is FSAI/SPAI/Jacobi.
    ainv: Option<AinvPreconditioner<T>>,
    /// The concrete preconditioner kind the plan executes (never `Auto`:
    /// the kind search resolves at build time).
    precond: PrecondKind,
    /// Record of the kind search (`Some` exactly when the request was
    /// `Auto`).
    kind_decision: Option<KindDecision>,
    /// Reduced-precision image of `factors`, present exactly when the
    /// resolved precision tier is mixed. The full factors are kept
    /// alongside so the resilient ladder can promote a stalled mixed solve
    /// back to full precision without refactoring.
    mixed: Option<MixedPrecisionIlu<T>>,
    /// The concrete precision tier the plan executes (never `Auto`:
    /// resolution happens at build time).
    precision: PrecisionPolicy,
    /// Outcome of the ordering selection pass (`None` when the request was
    /// `Natural` — the default pipeline records nothing).
    reorder: Option<ReorderDecision>,
    /// `perm[new] = old` of the chosen ordering; present only when a
    /// non-natural ordering was chosen, in which case the plan factors (and
    /// PCG iterates) in permuted space while `b`/`x` are permuted at the
    /// solve boundary.
    perm: Option<Vec<usize>>,
    /// The permuted system `P A Pᵀ`, present exactly when `perm` is.
    a_permuted: Option<CsrMatrix<T>>,
    sparsify_time: Duration,
    factorization_time: Duration,
    reorder_time: Duration,
}

impl<T: Scalar> SpcgPlan<T> {
    /// Runs the analysis phase: sparsify (when configured), factor the
    /// result, and build the triangular-solve level schedules.
    ///
    /// Accepts the options by value, by reference (cloned), or as anything
    /// else convertible into [`SpcgOptions`] — so both
    /// `SpcgPlan::build(&a, SpcgOptions::default().with_tau(2.0))` and the
    /// long-standing `SpcgPlan::build(&a, &opts)` compile.
    pub fn build(a: &CsrMatrix<T>, opts: impl Into<SpcgOptions>) -> Result<Self> {
        Self::build_probed(a, opts, &mut NoProbe)
    }

    /// [`build`](SpcgPlan::build) with an observability [`Probe`]: the
    /// whole analysis is bracketed in a `Span::PlanBuild` containing the
    /// `Span::Sparsify` candidate loop (when sparsification is on) and the
    /// `Span::Factorize` / `Span::LevelBuild` factorization phases.
    pub fn build_probed<P: Probe>(
        a: &CsrMatrix<T>,
        opts: impl Into<SpcgOptions>,
        probe: &mut P,
    ) -> Result<Self> {
        let opts = opts.into();
        if !a.is_square() {
            return Err(SparseError::NotSquare { n_rows: a.n_rows(), n_cols: a.n_cols() });
        }
        probe.span_begin(Span::PlanBuild);
        let t = Instant::now();
        let ReorderOutcome { decision: reorder, perm, permuted, sparsify: reused } =
            select_ordering_probed(a, &opts, probe);
        let reorder_time = if reorder.is_some() { t.elapsed() } else { Duration::ZERO };
        // All downstream analysis works in permuted space when an ordering
        // was chosen; the solve boundary maps back to the caller's order.
        let operator = permuted.as_ref().unwrap_or(a);
        if opts.precond.is_level_free() {
            // An explicitly level-free plan never sparsifies: there is no
            // triangular sweep to shorten, so Algorithm 2's ratio search
            // would optimize a quantity the plan never pays.
            let t = Instant::now();
            probe.span_begin(Span::PlanAinv);
            let ainv = build_ainv_probed(operator, opts.precond, &opts, probe);
            probe.span_end(Span::PlanAinv);
            let kind = opts.precond;
            probe.counter(Counter::PrecondKind, kind.tag());
            probe.span_end(Span::PlanBuild);
            let ainv = ainv?;
            let factorization_time = t.elapsed();
            return Ok(Self {
                a: a.clone(),
                opts,
                decision: None,
                factored: None,
                factors: None,
                ainv: Some(ainv),
                precond: kind,
                kind_decision: None,
                mixed: None,
                // Approximate-inverse applies have no mixed tier yet: the
                // plan always executes in full precision.
                precision: PrecisionPolicy::Full,
                reorder,
                perm,
                a_permuted: permuted,
                sparsify_time: Duration::ZERO,
                factorization_time,
                reorder_time,
            });
        }
        let (decision, sparsify_time) = match &opts.sparsify {
            // The `Auto` joint search already ran Algorithm 2 on the winning
            // ordering — reuse its decision (the cost is accounted to the
            // reorder phase) instead of sparsifying the same matrix twice.
            Some(_) if reused.is_some() => (reused, Duration::ZERO),
            Some(params) => {
                let t = Instant::now();
                let d = wavefront_aware_sparsify_probed(operator, params, probe);
                (Some(d), t.elapsed())
            }
            None => (None, Duration::ZERO),
        };
        let m = decision.as_ref().map_or(operator, |d| &d.sparsified.a_hat);
        let t = Instant::now();
        let factors = build_preconditioner_probed(m, opts.ilu_fill, opts.exec, probe);
        let factorization_time = t.elapsed();
        // `Auto` searches the kind axis jointly with the (already chosen)
        // ratio × ordering: the sparsified-ILU candidate just built is
        // priced end-to-end against FSAI/SPAI on the same operator.
        let (kind, kind_decision, ainv) = match (&factors, opts.precond) {
            (Ok(f), PrecondKind::Auto) => {
                probe.span_begin(Span::PlanAinv);
                let search = select_kind_probed(operator, f, &opts, probe);
                probe.span_end(Span::PlanAinv);
                (search.decision.chosen, Some(search.decision), search.ainv)
            }
            _ => (PrecondKind::IluSparsified, None, None),
        };
        probe.counter(Counter::PrecondKind, kind.tag());
        probe.span_end(Span::PlanBuild);
        let factors = factors?;
        if let Some(ainv) = ainv {
            // The search crossed over: the level-free winner becomes the
            // plan's preconditioner and the ILU artifacts are dropped (a
            // level-free plan records no sparsify decision — it never uses
            // `Â`). The measured sparsify/factorization time is kept: the
            // search really did pay it.
            return Ok(Self {
                a: a.clone(),
                opts,
                decision: None,
                factored: None,
                factors: None,
                ainv: Some(ainv),
                precond: kind,
                kind_decision,
                mixed: None,
                precision: PrecisionPolicy::Full,
                reorder,
                perm,
                a_permuted: permuted,
                sparsify_time,
                factorization_time,
                reorder_time,
            });
        }
        let (precision, mixed) = resolve_precision(opts.precision, &factors);
        Ok(Self {
            a: a.clone(),
            opts,
            decision,
            factored: None,
            factors: Some(factors),
            ainv: None,
            precond: kind,
            kind_decision,
            mixed,
            precision,
            reorder,
            perm,
            a_permuted: permuted,
            sparsify_time,
            factorization_time,
            reorder_time,
        })
    }

    /// Wraps externally-built factors (e.g. a fill-capped ILU(K) from the
    /// bench harness) into a plan over `a`. No sparsification decision is
    /// recorded and analysis timings are zero — the caller did that work.
    pub fn from_factors(
        a: CsrMatrix<T>,
        factors: IluFactors<T>,
        opts: SpcgOptions,
    ) -> Result<Self> {
        if a.n_rows() != factors.dim() {
            return Err(SparseError::DimensionMismatch(format!(
                "factor dimension {} does not match system dimension {}",
                factors.dim(),
                a.n_rows()
            )));
        }
        let (precision, mixed) = resolve_precision(opts.precision, &factors);
        Ok(Self {
            a,
            opts,
            decision: None,
            factored: None,
            factors: Some(factors),
            ainv: None,
            precond: PrecondKind::IluSparsified,
            kind_decision: None,
            mixed,
            precision,
            reorder: None,
            perm: None,
            a_permuted: None,
            sparsify_time: Duration::ZERO,
            factorization_time: Duration::ZERO,
            reorder_time: Duration::ZERO,
        })
    }

    /// Rebuilds the plan for a matrix with **identical sparsity structure**
    /// but new values — the time-varying-system fast path.
    ///
    /// The expensive analysis artifacts are all reused: the ordering
    /// decision and its permutation, the sparsify split (`a_new` is
    /// re-split along the recorded `S` pattern, not re-analyzed), the
    /// symbolic factor structure, and the triangular-solve level schedules.
    /// Only the numeric factorization sweep re-runs. A refresh is therefore
    /// dramatically cheaper than [`build`](Self::build) — no wavefront
    /// inspection, no candidate search, no schedule construction.
    ///
    /// **Staleness guard.** For sparsified plans the Equation-6 indicator
    /// `‖Â⁻¹‖·‖S‖` is re-evaluated on the refreshed split. While it stays
    /// within `τ · refresh_drift` (see
    /// [`SpcgOptions::refresh_drift`]) the reused split is sound; once the
    /// values have drifted past that bound the refresh falls back to a full
    /// [`build`](Self::build) so the plan never silently degrades.
    ///
    /// Errors with [`SparseError::InvalidStructure`] when `a_new`'s pattern
    /// differs from the planned matrix (build a new plan for structural
    /// changes) or when the plan wraps externally-built factors
    /// ([`from_factors`](Self::from_factors) plans record no derivation to
    /// replay).
    pub fn refresh_values(&self, a_new: &CsrMatrix<T>) -> Result<Self> {
        self.refresh_values_probed(a_new, &mut NoProbe)
    }

    /// [`refresh_values`](Self::refresh_values) with an observability
    /// [`Probe`]: the refresh is bracketed in a `Span::PlanRefresh`
    /// containing only the numeric `Span::Factorize` — no `Span::Sparsify`,
    /// `Span::Reorder`, or `Span::LevelBuild` ever fires on the happy path,
    /// which is the observable proof that the analysis was reused. A
    /// staleness fallback emits `Counter::PlanRefreshFallback` and then the
    /// full `Span::PlanBuild` cascade.
    pub fn refresh_values_probed<P: Probe>(
        &self,
        a_new: &CsrMatrix<T>,
        probe: &mut P,
    ) -> Result<Self> {
        if self.factored.is_some() {
            return Err(SparseError::InvalidStructure(
                "externally-factored plans record no derivation from A to the factored matrix, \
                 so their values cannot be refreshed; rebuild via from_factors"
                    .into(),
            ));
        }
        if a_new.n_rows() != self.a.n_rows()
            || a_new.n_cols() != self.a.n_cols()
            || a_new.row_ptr() != self.a.row_ptr()
            || a_new.col_idx() != self.a.col_idx()
        {
            return Err(SparseError::InvalidStructure(
                "refresh_values requires the exact sparsity structure of the planned matrix; \
                 build a new plan for structural changes"
                    .into(),
            ));
        }
        probe.span_begin(Span::PlanRefresh);
        let t = Instant::now();
        // Reuse the ordering: the recorded permutation stays valid for an
        // identical structure, so only the values are re-permuted.
        let permuted_new = self
            .perm
            .as_deref()
            .map(|p| a_new.permute_sym(p).expect("recorded permutation fits identical structure"));
        let operator_new = permuted_new.as_ref().unwrap_or(a_new);
        if self.ainv.is_some() {
            // Level-free plans carry no split or factor structure to
            // replay: a refresh is a numeric rebuild of the approximate
            // inverse on the re-permuted values (ordering and kind decision
            // carry over; a value-only refresh never re-runs the kind
            // search).
            probe.span_begin(Span::PlanAinv);
            let ainv = build_ainv_probed(operator_new, self.precond, &self.opts, probe);
            probe.span_end(Span::PlanAinv);
            let factorization_time = t.elapsed();
            probe.span_end(Span::PlanRefresh);
            let ainv = ainv?;
            return Ok(Self {
                a: a_new.clone(),
                opts: self.opts.clone(),
                decision: None,
                factored: None,
                factors: None,
                ainv: Some(ainv),
                precond: self.precond,
                kind_decision: self.kind_decision.clone(),
                mixed: None,
                precision: PrecisionPolicy::Full,
                reorder: self.reorder.clone(),
                perm: self.perm.clone(),
                a_permuted: permuted_new,
                sparsify_time: Duration::ZERO,
                factorization_time,
                reorder_time: Duration::ZERO,
            });
        }
        // Reuse the sparsify decision: re-split the new values along the
        // recorded S pattern instead of re-running the candidate search.
        let split = match &self.decision {
            Some(d) => {
                let s_old = &d.sparsified.s;
                let in_s = |r: usize, c: usize| s_old.row_cols(r).binary_search(&c).is_ok();
                let a_hat = operator_new.filter(|r, c, _| r == c || !in_s(r, c));
                let s = operator_new.filter(|r, c, _| r != c && in_s(r, c));
                if let Some(params) = &self.opts.sparsify {
                    let v = convergence_indicator(&a_hat, &s, &params.estimator);
                    if !v.passes(params.tau * self.opts.refresh_drift) {
                        // The values drifted past the staleness bound: the
                        // reused split is no longer trustworthy. Fall back
                        // to a full re-plan.
                        probe.counter(Counter::PlanRefreshFallback, 1);
                        probe.span_end(Span::PlanRefresh);
                        return Self::build_probed(a_new, self.opts.clone(), probe);
                    }
                }
                Some((a_hat, s))
            }
            None => None,
        };
        let m_new = split.as_ref().map_or(operator_new, |(a_hat, _)| a_hat);
        let old_factors = self.factors.as_ref().expect("non-level-free plans always carry factors");
        let factors = ilu_refresh_probed(m_new, old_factors, probe);
        let factorization_time = t.elapsed();
        probe.span_end(Span::PlanRefresh);
        let factors = factors?;
        let (precision, mixed) = resolve_precision(self.opts.precision, &factors);
        let decision = self.decision.as_ref().zip(split).map(|(d, (a_hat, s))| SparsifyDecision {
            sparsified: Sparsified {
                a_hat,
                s,
                dropped_nnz: d.sparsified.dropped_nnz,
                requested_percent: d.sparsified.requested_percent,
            },
            chosen_ratio: d.chosen_ratio,
            reason: d.reason,
            wavefronts_original: d.wavefronts_original,
            wavefronts_sparsified: d.wavefronts_sparsified,
            trace: d.trace.clone(),
        });
        Ok(Self {
            a: a_new.clone(),
            opts: self.opts.clone(),
            decision,
            factored: None,
            factors: Some(factors),
            ainv: None,
            precond: self.precond,
            kind_decision: self.kind_decision.clone(),
            mixed,
            precision,
            reorder: self.reorder.clone(),
            perm: self.perm.clone(),
            a_permuted: permuted_new,
            sparsify_time: Duration::ZERO,
            factorization_time,
            reorder_time: Duration::ZERO,
        })
    }

    /// Records which matrix the external analysis factored (for cost models
    /// and wavefront accounting on [`from_factors`](SpcgPlan::from_factors)
    /// plans).
    pub fn with_factored_matrix(mut self, m: CsrMatrix<T>) -> Result<Self> {
        let dim = self.factors.as_ref().map_or_else(|| self.n(), |f| f.dim());
        if m.n_rows() != dim {
            return Err(SparseError::DimensionMismatch(format!(
                "factored matrix dimension {} does not match factor dimension {dim}",
                m.n_rows(),
            )));
        }
        self.factored = Some(m);
        Ok(self)
    }

    /// The system matrix the plan solves against, in the caller's ordering.
    pub fn a(&self) -> &CsrMatrix<T> {
        &self.a
    }

    /// The matrix PCG actually iterates on: the permuted system `P A Pᵀ`
    /// for reordered plans, [`a`](SpcgPlan::a) itself otherwise. Cost
    /// models should price this matrix — its level structure is what the
    /// triangular solves see.
    pub fn operator(&self) -> &CsrMatrix<T> {
        self.a_permuted.as_ref().unwrap_or(&self.a)
    }

    /// The ordering selection decision (`None` for natural-ordering plans,
    /// which skip the selection pass entirely).
    pub fn reorder(&self) -> Option<&ReorderDecision> {
        self.reorder.as_ref()
    }

    /// The chosen permutation (`perm[new] = old`), when a non-natural
    /// ordering was chosen.
    pub fn permutation(&self) -> Option<&[usize]> {
        self.perm.as_deref()
    }

    /// `true` when the plan factors in a permuted ordering (and therefore
    /// permutes `b`/`x` at the solve boundary).
    pub fn is_reordered(&self) -> bool {
        self.perm.is_some()
    }

    /// Options the plan was built with.
    pub fn options(&self) -> &SpcgOptions {
        &self.opts
    }

    /// The sparsification decision (None for the baseline or
    /// [`from_factors`](SpcgPlan::from_factors) plans).
    pub fn decision(&self) -> Option<&SparsifyDecision<T>> {
        self.decision.as_ref()
    }

    /// The incomplete factors applied as the preconditioner.
    ///
    /// # Panics
    ///
    /// Panics on a level-free plan (FSAI/SPAI/Jacobi), which has no
    /// triangular factors — check [`is_level_free`](Self::is_level_free)
    /// or use [`ilu_factors`](Self::ilu_factors) when the kind is not
    /// known statically. Kept infallible because the overwhelming majority
    /// of call sites (cost models, benches, the resilient ladder's ILU
    /// rungs) are only ever reached with factored plans.
    pub fn factors(&self) -> &IluFactors<T> {
        self.factors.as_ref().expect("level-free plan has no triangular factors")
    }

    /// The incomplete factors, or `None` for a level-free plan.
    pub fn ilu_factors(&self) -> Option<&IluFactors<T>> {
        self.factors.as_ref()
    }

    /// The approximate inverse, or `None` for a factored (ILU) plan.
    pub fn ainv(&self) -> Option<&AinvPreconditioner<T>> {
        self.ainv.as_ref()
    }

    /// The concrete preconditioner kind the plan executes. `Auto` requests
    /// resolve at build time, so this is never `Auto`.
    pub fn precond_kind(&self) -> PrecondKind {
        self.precond
    }

    /// The record of the kind search (`Some` exactly when the plan was
    /// built with [`PrecondKind::Auto`]).
    pub fn kind_decision(&self) -> Option<&KindDecision> {
        self.kind_decision.as_ref()
    }

    /// `true` when the preconditioner applies without triangular sweeps
    /// (FSAI/SPAI/Jacobi) — every application is pure SpMV/elementwise
    /// traffic with zero synchronization.
    pub fn is_level_free(&self) -> bool {
        self.ainv.is_some()
    }

    /// The matrix that was handed to the factorization: `Â` when the plan
    /// sparsified (in permuted space for reordered plans), the
    /// explicitly-recorded matrix for external analyses, the (possibly
    /// permuted) system otherwise.
    pub fn factored_matrix(&self) -> &CsrMatrix<T> {
        if let Some(m) = &self.factored {
            return m;
        }
        self.decision.as_ref().map(|d| &d.sparsified.a_hat).unwrap_or_else(|| self.operator())
    }

    /// `true` when the preconditioner was built from a sparsified matrix.
    pub fn is_sparsified(&self) -> bool {
        self.decision.is_some()
    }

    /// The concrete precision tier the plan executes. `Auto` requests are
    /// resolved at build time, so this is always `Full` or `MixedF32`.
    pub fn precision(&self) -> PrecisionPolicy {
        self.precision
    }

    /// `true` when the preconditioner application runs in reduced
    /// precision (under the iterative-refinement outer loop).
    pub fn is_mixed(&self) -> bool {
        self.mixed.is_some()
    }

    /// The reduced-precision factor image, present exactly when the plan
    /// is mixed.
    pub fn mixed_factors(&self) -> Option<&MixedPrecisionIlu<T>> {
        self.mixed.as_ref()
    }

    /// Bytes per stored factor value on the tier the plan executes:
    /// `size_of::<T::Lower>()` for mixed plans, `size_of::<T>()` otherwise.
    /// Cost models price the triangular-solve traffic with this width.
    pub fn factor_value_bytes(&self) -> usize {
        match &self.mixed {
            Some(m) => m.value_bytes(),
            None => std::mem::size_of::<T>(),
        }
    }

    /// Wall-clock time of the sparsification step.
    pub fn sparsify_time(&self) -> Duration {
        self.sparsify_time
    }

    /// Wall-clock time of the factorization step.
    pub fn factorization_time(&self) -> Duration {
        self.factorization_time
    }

    /// Wall-clock time of the ordering selection pass (zero for natural
    /// plans). For `Auto` with sparsification on this includes the joint
    /// search's Algorithm 2 runs, and the reused winning decision reports a
    /// zero [`sparsify_time`](SpcgPlan::sparsify_time).
    pub fn reorder_time(&self) -> Duration {
        self.reorder_time
    }

    /// System dimension.
    pub fn n(&self) -> usize {
        self.a.n_rows()
    }

    /// A workspace sized for this plan's system and preconditioner.
    /// Reordered plans also pre-size the boundary staging buffer so the
    /// gather/scatter at the solve boundary stays allocation-free.
    pub fn make_workspace(&self) -> SolveWorkspace<T> {
        let mut ws = match &self.ainv {
            Some(ainv) => SolveWorkspace::for_preconditioner(self.n(), ainv),
            None => SolveWorkspace::for_preconditioner(self.n(), self.factors()),
        };
        if self.perm.is_some() {
            ws.reserve_staging(self.n());
        }
        if let Some(m) = &self.mixed {
            // Mixed solves stage the down/upcast through the workspace and
            // may refine; pre-size both so warm solves stay allocation-free.
            ws.reserve_staging_lo(m.staging_len());
            ws.reserve_refine(self.n());
        }
        ws
    }

    /// Estimated heap footprint of the plan in bytes: the system matrix,
    /// the factored matrix (when stored separately), both triangular
    /// factors, and their level *and* dependency-block schedules. Used by
    /// plan caches to enforce a byte budget; it is an estimate (container
    /// headers and small side arrays are ignored), not an exact accounting.
    pub fn approx_bytes(&self) -> usize {
        let value_bytes = std::mem::size_of::<T>();
        let usize_bytes = std::mem::size_of::<usize>();
        let csr = |m: &CsrMatrix<T>| m.storage_bytes(value_bytes);
        let schedule = |s: &spcg_wavefront::LevelSchedule| {
            // row->level map + flattened level lists (n rows total) + one
            // header word per level.
            (2 * s.n_rows() + s.n_levels()) * usize_bytes
        };
        let mut total = csr(&self.a);
        if let Some(d) = &self.decision {
            total += csr(&d.sparsified.a_hat);
        }
        if let Some(ap) = &self.a_permuted {
            total += csr(ap);
        }
        if let Some(m) = &self.factored {
            total += csr(m);
        }
        if let Some(f) = &self.factors {
            total += csr(f.l()) + csr(f.u());
            total += schedule(f.l_schedule()) + schedule(f.u_schedule());
            total += f.l_blocks().approx_bytes() + f.u_blocks().approx_bytes();
        }
        if let Some(ainv) = &self.ainv {
            // The stored inverse factors are the plan's whole
            // preconditioner footprint.
            total += ainv.approx_bytes();
        }
        if let Some(m) = &self.mixed {
            // The demoted factor image is resident alongside the full one.
            let lower = std::mem::size_of::<T::Lower>();
            total += m.inner().l().storage_bytes(lower) + m.inner().u().storage_bytes(lower);
            total += schedule(m.inner().l_schedule()) + schedule(m.inner().u_schedule());
            total += m.inner().l_blocks().approx_bytes() + m.inner().u_blocks().approx_bytes();
        }
        total
    }

    /// Solves `A x = b`, allocating a fresh workspace for this call.
    /// Results are identical to [`solve_with_workspace`](Self::solve_with_workspace).
    pub fn solve(&self, b: &[T]) -> std::result::Result<SolveResult<T>, SolverError> {
        let mut ws = self.make_workspace();
        self.solve_with_workspace(b, &mut ws)
    }

    /// Solves `A x = b` reusing `ws`, returning an owned result. The
    /// iteration loop allocates nothing once `ws` is warm.
    pub fn solve_with_workspace(
        &self,
        b: &[T],
        ws: &mut SolveWorkspace<T>,
    ) -> std::result::Result<SolveResult<T>, SolverError> {
        self.solve_with_workspace_probed(b, ws, &mut NoProbe)
    }

    /// [`solve_with_workspace`](Self::solve_with_workspace) with an
    /// observability [`Probe`]: the PCG loop reports a `Span::SolveLoop`
    /// with nested `Spmv`/`PrecondApply`/`Blas` spans and one
    /// [`IterationEvent`](spcg_probe::IterationEvent) per iteration.
    /// Numerics are bitwise identical for any probe.
    pub fn solve_with_workspace_probed<P: Probe>(
        &self,
        b: &[T],
        ws: &mut SolveWorkspace<T>,
        probe: &mut P,
    ) -> std::result::Result<SolveResult<T>, SolverError> {
        // The in-place tier does all the work (including the permuted
        // boundary gather/scatter and the precision dispatch); this tier
        // only copies the iterate and history out of the workspace.
        let stats = self.solve_in_place_probed(b, ws, probe)?;
        Ok(SolveResult {
            x: ws.solution().to_vec(),
            iterations: stats.iterations,
            final_residual: stats.final_residual,
            stop: stats.stop,
            residual_history: ws.history().to_vec(),
            timings: stats.timings,
        })
    }

    /// [`solve_with_workspace_probed`](Self::solve_with_workspace_probed)
    /// under a per-request iteration budget (see
    /// [`solve_in_place_deadline_probed`](Self::solve_in_place_deadline_probed)).
    /// Returns [`SolverError::DeadlineExceeded`] when the budget expires
    /// before convergence.
    pub fn solve_with_workspace_deadline_probed<P: Probe>(
        &self,
        b: &[T],
        deadline_iters: usize,
        ws: &mut SolveWorkspace<T>,
        probe: &mut P,
    ) -> std::result::Result<SolveResult<T>, SolverError> {
        let stats = self.solve_in_place_deadline_probed(b, deadline_iters, ws, probe)?;
        Ok(SolveResult {
            x: ws.solution().to_vec(),
            iterations: stats.iterations,
            final_residual: stats.final_residual,
            stop: stats.stop,
            residual_history: ws.history().to_vec(),
            timings: stats.timings,
        })
    }

    /// The fully allocation-free solve: the iterate stays in
    /// `ws.solution()` and only `Copy` statistics are returned.
    pub fn solve_in_place(
        &self,
        b: &[T],
        ws: &mut SolveWorkspace<T>,
    ) -> std::result::Result<SolveStats, SolverError> {
        self.solve_in_place_probed(b, ws, &mut NoProbe)
    }

    /// [`solve_in_place`](Self::solve_in_place) with an observability
    /// [`Probe`]. The zero-allocation guarantee holds whenever the probe
    /// itself does not allocate ([`NoProbe`] never does).
    pub fn solve_in_place_probed<P: Probe>(
        &self,
        b: &[T],
        ws: &mut SolveWorkspace<T>,
        probe: &mut P,
    ) -> std::result::Result<SolveStats, SolverError> {
        self.solve_in_place_deadline_probed(b, usize::MAX, ws, probe)
    }

    /// [`solve_in_place_probed`](Self::solve_in_place_probed) under a
    /// per-request iteration budget: the plan's configured solver settings
    /// apply, except `deadline_iters` is overridden for this call. Serving
    /// layers derive the budget from a wall-clock deadline via the gpusim
    /// cost model (`spcg_gpusim::iteration_budget`). With `usize::MAX` the
    /// behaviour — and the trajectory — is identical to the plain entry.
    /// For mixed-precision plans the budget applies to each refinement
    /// inner run, not their sum: refinement restarts re-arm the watchdog.
    pub fn solve_in_place_deadline_probed<P: Probe>(
        &self,
        b: &[T],
        deadline_iters: usize,
        ws: &mut SolveWorkspace<T>,
        probe: &mut P,
    ) -> std::result::Result<SolveStats, SolverError> {
        let Some(perm) = self.perm.as_deref() else {
            return self.pcg_tier_probed(&self.a, b, deadline_iters, ws, probe);
        };
        let n = self.n();
        if b.len() != n {
            // Let the inner solver surface its canonical dimension error.
            return self.pcg_tier_probed(self.operator(), b, deadline_iters, ws, probe);
        }
        let mut buf = ws.take_staging(n);
        for (k, &old) in perm.iter().enumerate() {
            buf[k] = b[old];
        }
        let stats = self.pcg_tier_probed(self.operator(), &buf, deadline_iters, ws, probe);
        if stats.is_ok() {
            // The iterate sits in the workspace in permuted order; scatter
            // it back through the staging buffer so `ws.solution()` is in
            // the caller's ordering, like every other tier.
            let x = ws.solution_mut();
            for (k, &old) in perm.iter().enumerate() {
                buf[old] = x[k];
            }
            x.copy_from_slice(&buf);
        }
        ws.restore_staging(buf);
        stats
    }

    /// Warm-started allocation-free solve: PCG is seeded from the
    /// workspace-resident previous solution (`x₀ = ws.solution()`) instead
    /// of zero. For a sequence of slowly drifting systems this converts the
    /// previous step's solution directly into iteration savings; on a
    /// freshly-zeroed workspace it is bitwise identical to
    /// [`solve_in_place`](Self::solve_in_place), because
    /// `r₀ = b − A·0 = b` exactly.
    pub fn solve_from(
        &self,
        b: &[T],
        ws: &mut SolveWorkspace<T>,
    ) -> std::result::Result<SolveStats, SolverError> {
        self.solve_from_probed(b, ws, &mut NoProbe)
    }

    /// [`solve_from`](Self::solve_from) with an observability [`Probe`].
    pub fn solve_from_probed<P: Probe>(
        &self,
        b: &[T],
        ws: &mut SolveWorkspace<T>,
        probe: &mut P,
    ) -> std::result::Result<SolveStats, SolverError> {
        self.solve_from_deadline_probed(b, usize::MAX, ws, probe)
    }

    /// [`solve_from_probed`](Self::solve_from_probed) under a per-request
    /// iteration budget (see
    /// [`solve_in_place_deadline_probed`](Self::solve_in_place_deadline_probed)).
    ///
    /// Mixed-precision plans run the cold refinement driver — the outer
    /// loop re-derives its restart iterates, so a warm seed has no variant
    /// there yet; results stay correct, just without the iteration savings.
    /// For reordered plans the resident iterate (kept in the caller's
    /// ordering) is gathered into permuted space before seeding; a
    /// workspace whose resident iterate does not match this system's
    /// dimension seeds from zero.
    pub fn solve_from_deadline_probed<P: Probe>(
        &self,
        b: &[T],
        deadline_iters: usize,
        ws: &mut SolveWorkspace<T>,
        probe: &mut P,
    ) -> std::result::Result<SolveStats, SolverError> {
        let Some(perm) = self.perm.as_deref() else {
            return self.pcg_tier_warm_probed(&self.a, b, deadline_iters, ws, probe);
        };
        let n = self.n();
        if b.len() != n {
            // Let the inner solver surface its canonical dimension error.
            return self.pcg_tier_warm_probed(self.operator(), b, deadline_iters, ws, probe);
        }
        let mut buf = ws.take_staging(n);
        if ws.solution().len() == n {
            // The resident iterate is in the caller's ordering (every solve
            // tier scatters back on success); gather it into permuted space
            // so the warm seed matches the operator PCG iterates on.
            let x = ws.solution_mut();
            for (k, &old) in perm.iter().enumerate() {
                buf[k] = x[old];
            }
            x.copy_from_slice(&buf);
        }
        for (k, &old) in perm.iter().enumerate() {
            buf[k] = b[old];
        }
        let stats = self.pcg_tier_warm_probed(self.operator(), &buf, deadline_iters, ws, probe);
        if stats.is_ok() {
            let x = ws.solution_mut();
            for (k, &old) in perm.iter().enumerate() {
                buf[old] = x[k];
            }
            x.copy_from_slice(&buf);
        }
        ws.restore_staging(buf);
        stats
    }

    /// The warm-start analogue of [`pcg_tier_probed`](Self::pcg_tier_probed):
    /// full plans seed PCG from the workspace-resident iterate; mixed plans
    /// fall back to the cold refinement driver (see
    /// [`solve_from_deadline_probed`](Self::solve_from_deadline_probed)).
    fn pcg_tier_warm_probed<P: Probe>(
        &self,
        operator: &CsrMatrix<T>,
        b: &[T],
        deadline_iters: usize,
        ws: &mut SolveWorkspace<T>,
        probe: &mut P,
    ) -> std::result::Result<SolveStats, SolverError> {
        let config = self.opts.solver.clone().with_deadline_iters(deadline_iters);
        if let Some(ainv) = &self.ainv {
            return pcg_in_place_warm_probed(operator, ainv, b, &config, None, ws, probe);
        }
        let Some(mixed) = &self.mixed else {
            return pcg_in_place_warm_probed(operator, self.factors(), b, &config, None, ws, probe);
        };
        self.solve_mixed_in_place_probed(operator, mixed, b, None, deadline_iters, ws, probe)
            .map(|r| r.stats)
    }

    /// The precision-tier dispatch, in operator space: full plans run the
    /// plain PCG loop (bitwise identical to the pre-mixed pipeline); mixed
    /// plans run the reduced-precision apply under the full-precision
    /// iterative-refinement outer loop.
    fn pcg_tier_probed<P: Probe>(
        &self,
        operator: &CsrMatrix<T>,
        b: &[T],
        deadline_iters: usize,
        ws: &mut SolveWorkspace<T>,
        probe: &mut P,
    ) -> std::result::Result<SolveStats, SolverError> {
        // SolverConfig is stack-only, so the budgeted clone stays on the
        // zero-allocation path.
        let config = self.opts.solver.clone().with_deadline_iters(deadline_iters);
        if let Some(ainv) = &self.ainv {
            // Level-free tier: the generic PCG loop with the approximate
            // inverse as its `Preconditioner` — no sweeps, no precision
            // dispatch (ainv plans are always full precision).
            return pcg_in_place_probed(operator, ainv, b, &config, None, ws, probe);
        }
        let Some(mixed) = &self.mixed else {
            return pcg_in_place_probed(operator, self.factors(), b, &config, None, ws, probe);
        };
        self.solve_mixed_in_place_probed(operator, mixed, b, None, deadline_iters, ws, probe)
            .map(|r| r.stats)
    }

    /// The solver configuration the mixed tier runs under: the caller's
    /// config, with the stagnation guard enabled (window
    /// [`MIXED_STAGNATION_WINDOW`]) when it was left off — a stalled
    /// reduced-precision recurrence must be *detected* before refinement
    /// can restart it. Stack-only: `SolverConfig` holds no heap data.
    pub(crate) fn mixed_solver_config(&self) -> spcg_solver::SolverConfig {
        let config = self.opts.solver.clone();
        if config.stagnation_window == 0 {
            config.with_stagnation_window(MIXED_STAGNATION_WINDOW)
        } else {
            config
        }
    }

    /// One mixed-tier solve (reduced-precision apply + refinement outer
    /// loop) with precision counters: `precision.mixed_applies` (one apply
    /// per iteration plus the initial apply of each inner run),
    /// `precision.refine_restarts`, and `precision.bytes_saved` (factor
    /// bytes the reduced storage avoided streaming per sweep). Shared by
    /// the plain solve tiers and the resilient ladder's planned attempt.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve_mixed_in_place_probed<P: Probe>(
        &self,
        operator: &CsrMatrix<T>,
        mixed: &MixedPrecisionIlu<T>,
        b: &[T],
        fault: Option<SolveFault>,
        deadline_iters: usize,
        ws: &mut SolveWorkspace<T>,
        probe: &mut P,
    ) -> std::result::Result<RefinedStats, SolverError> {
        let config = self.mixed_solver_config().with_deadline_iters(deadline_iters);
        let refined = pcg_refined_in_place_probed(
            operator,
            mixed,
            b,
            &config,
            fault,
            MAX_REFINE_RESTARTS,
            ws,
            probe,
        )?;
        probe.counter(
            Counter::PrecisionMixedApplies,
            (refined.stats.iterations + 1 + refined.restarts) as u64,
        );
        if refined.restarts > 0 {
            probe.counter(Counter::PrecisionRefineRestarts, refined.restarts as u64);
        }
        probe.counter(Counter::PrecisionBytesSaved, mixed.bytes_saved() as u64);
        Ok(refined)
    }

    /// Solves the same operator against many independent right-hand sides,
    /// in parallel, with one reusable workspace per worker. Results are
    /// returned in input order and are identical to calling
    /// [`solve`](SpcgPlan::solve) on each `b` sequentially. Each right-hand
    /// side fails or succeeds independently: one malformed `b` (or one
    /// breakdown, reported via its result's stop reason) never aborts the
    /// rest of the batch.
    pub fn solve_many<B: AsRef<[T]> + Sync>(
        &self,
        rhs: &[B],
    ) -> Vec<std::result::Result<SolveResult<T>, SolverError>> {
        if rhs.is_empty() {
            return Vec::new();
        }
        let workers = rayon::current_num_threads().clamp(1, rhs.len());
        let chunk_len = rhs.len().div_ceil(workers);
        type Slot<T> = Option<std::result::Result<SolveResult<T>, SolverError>>;
        let mut out: Vec<Slot<T>> = (0..rhs.len()).map(|_| None).collect();
        rayon::scope(|s| {
            for (slot, chunk) in out.chunks_mut(chunk_len).zip(rhs.chunks(chunk_len)) {
                s.spawn(move |_| {
                    let mut ws = self.make_workspace();
                    for (cell, b) in slot.iter_mut().zip(chunk) {
                        *cell = Some(self.solve_with_workspace(b.as_ref(), &mut ws));
                    }
                });
            }
        });
        out.into_iter().map(|r| r.expect("solve_many worker left a slot unfilled")).collect()
    }

    /// Sequential [`solve_many`](SpcgPlan::solve_many): every right-hand
    /// side is solved on the calling thread through the one provided
    /// workspace, in order. Results are identical to `solve_many` (and to
    /// independent [`solve`](SpcgPlan::solve) calls); use this variant when
    /// the caller owns the parallelism — e.g. a worker pool where nested
    /// data-parallel fan-out would oversubscribe the machine — or when the
    /// batch must stay allocation-free past the first warm solve.
    pub fn solve_many_with_workspace<B: AsRef<[T]>>(
        &self,
        rhs: &[B],
        ws: &mut SolveWorkspace<T>,
    ) -> Vec<std::result::Result<SolveResult<T>, SolverError>> {
        rhs.iter().map(|b| self.solve_with_workspace(b.as_ref(), ws)).collect()
    }

    /// Decomposes the plan into the legacy [`SpcgOutcome`], attaching the
    /// result of a solve. Moves the factors and decision — no clone.
    ///
    /// # Panics
    ///
    /// Panics on a level-free plan: the legacy outcome predates the
    /// approximate-inverse family and carries `IluFactors` by value.
    pub fn into_outcome(self, result: SolveResult<T>) -> SpcgOutcome<T> {
        SpcgOutcome {
            result,
            decision: self.decision,
            factors: self
                .factors
                .expect("into_outcome is ILU-only; level-free plans have no factors"),
            sparsify_time: self.sparsify_time,
            factorization_time: self.factorization_time,
        }
    }
}

/// Resolves a requested [`PrecisionPolicy`] against freshly-built factors:
/// `Auto` demotes only when every stored factor value passes the
/// representability rule ([`fits_lower_precision`]), and a mixed tier
/// always materializes the demoted factor image eagerly (build time, not
/// solve time). The returned policy is never `Auto`.
fn resolve_precision<T: Scalar>(
    policy: PrecisionPolicy,
    factors: &IluFactors<T>,
) -> (PrecisionPolicy, Option<MixedPrecisionIlu<T>>) {
    let mixed = match policy {
        PrecisionPolicy::Full => false,
        PrecisionPolicy::MixedF32 => true,
        PrecisionPolicy::Auto => {
            fits_lower_precision(factors.l().values()) && fits_lower_precision(factors.u().values())
        }
    };
    if mixed {
        (PrecisionPolicy::MixedF32, Some(MixedPrecisionIlu::from_full(factors)))
    } else {
        (PrecisionPolicy::Full, None)
    }
}

#[cfg(test)]
#[allow(deprecated)] // bitwise-equivalence tests pin the legacy one-shot path
mod tests {
    use super::*;
    use crate::pipeline::{build_preconditioner, spcg_solve};
    use spcg_solver::SolverConfig;
    use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};
    use spcg_sparse::Rng;

    fn system(n: usize) -> (CsrMatrix<f64>, Vec<f64>) {
        let a = with_magnitude_spread(&poisson_2d(n, n), 6.0, 21);
        let mut rng = Rng::new(77);
        let b = (0..n * n).map(|_| rng.range(-1.0, 1.0)).collect();
        (a, b)
    }

    fn opts() -> SpcgOptions {
        SpcgOptions {
            solver: SolverConfig::default().with_tol(1e-10).with_history(true),
            ..Default::default()
        }
    }

    #[test]
    fn plan_solve_matches_pipeline_solve_bitwise() {
        let (a, b) = system(12);
        let o = opts();
        let plan = SpcgPlan::build(&a, &o).unwrap();
        let from_plan = plan.solve(&b).unwrap();
        let from_pipeline = spcg_solve(&a, &b, &o).unwrap();
        assert_eq!(from_plan.x, from_pipeline.result.x);
        assert_eq!(from_plan.residual_history, from_pipeline.result.residual_history);
        assert_eq!(from_plan.iterations, from_pipeline.result.iterations);
    }

    #[test]
    fn auto_exec_resolves_to_blocks_on_deep_plans_and_solves_bitwise() {
        let (a, b) = system(32);
        let plan =
            SpcgPlan::build(&a, opts().with_exec(spcg_precond::ExecutionStrategy::Auto)).unwrap();
        // A deep Poisson schedule prices cheaper under dependency blocks,
        // and `Auto` is never stored on the factors.
        assert_eq!(plan.factors().exec(), spcg_precond::ExecutionStrategy::DependencyBlocks);
        // The executor swap must not perturb the trajectory.
        let seq = SpcgPlan::build(&a, opts()).unwrap().solve(&b).unwrap();
        let blk = plan.solve(&b).unwrap();
        assert_eq!(seq.x, blk.x);
        assert_eq!(seq.residual_history, blk.residual_history);
        // And the block schedules are part of the plan's byte estimate.
        let bytes = plan.approx_bytes();
        let blocks_bytes =
            plan.factors().l_blocks().approx_bytes() + plan.factors().u_blocks().approx_bytes();
        assert!(blocks_bytes > 0);
        assert!(bytes > blocks_bytes);
    }

    #[test]
    fn deadline_budget_threads_through_the_plan_tiers() {
        let (a, b) = system(12);
        // Force a hopeless tolerance so the budget always fires, and a
        // reordered plan so the permuted gather/scatter path is exercised.
        let o = SpcgOptions {
            solver: SolverConfig::default()
                .with_tol(1e-300)
                .with_tol_mode(spcg_solver::ToleranceMode::Absolute),
            ordering: crate::OrderingKind::Rcm,
            ..Default::default()
        };
        let plan = SpcgPlan::build(&a, &o).unwrap();
        let mut ws = plan.make_workspace();
        let err = plan
            .solve_with_workspace_deadline_probed(&b, 4, &mut ws, &mut spcg_probe::NoProbe)
            .unwrap_err();
        match err {
            SolverError::DeadlineExceeded { iterations, best_residual } => {
                assert_eq!(iterations, 4);
                assert!(best_residual.is_finite());
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // usize::MAX is bitwise-identical to the plain entry.
        let o = opts();
        let plan = SpcgPlan::build(&a, &o).unwrap();
        let mut ws = plan.make_workspace();
        let plain = plan.solve_with_workspace(&b, &mut ws).unwrap();
        let budgeted = plan
            .solve_with_workspace_deadline_probed(&b, usize::MAX, &mut ws, &mut spcg_probe::NoProbe)
            .unwrap();
        assert_eq!(plain.x, budgeted.x);
        assert_eq!(plain.residual_history, budgeted.residual_history);
    }

    #[test]
    fn one_plan_solves_many_distinct_rhs() {
        let (a, _) = system(10);
        let o = opts();
        let plan = SpcgPlan::build(&a, &o).unwrap();
        let mut rng = Rng::new(5);
        let rhs: Vec<Vec<f64>> =
            (0..4).map(|_| (0..a.n_rows()).map(|_| rng.range(-2.0, 2.0)).collect()).collect();
        let mut ws = plan.make_workspace();
        for b in &rhs {
            let r = plan.solve_with_workspace(b, &mut ws).unwrap();
            assert!(r.converged(), "stop {:?}", r.stop);
            // Each result equals a one-shot solve of the same rhs.
            assert_eq!(r.x, plan.solve(b).unwrap().x);
        }
    }

    #[test]
    fn solve_many_matches_independent_solves() {
        let (a, _) = system(9);
        let o = opts();
        let plan = SpcgPlan::build(&a, &o).unwrap();
        let mut rng = Rng::new(9);
        let rhs: Vec<Vec<f64>> =
            (0..7).map(|_| (0..a.n_rows()).map(|_| rng.range(-1.0, 1.0)).collect()).collect();
        let batched = plan.solve_many(&rhs);
        assert_eq!(batched.len(), rhs.len());
        for (i, (batch, b)) in batched.iter().zip(&rhs).enumerate() {
            let batch = batch.as_ref().unwrap();
            let single = plan.solve(b).unwrap();
            assert_eq!(batch.x, single.x, "rhs {i} diverged from independent solve");
            assert_eq!(batch.iterations, single.iterations);
        }
    }

    #[test]
    fn solve_many_handles_empty_and_singleton() {
        let (a, b) = system(8);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        assert!(plan.solve_many(&Vec::<Vec<f64>>::new()).is_empty());
        let one = plan.solve_many(std::slice::from_ref(&b));
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].as_ref().unwrap().x, plan.solve(&b).unwrap().x);
    }

    #[test]
    fn solve_many_with_workspace_matches_parallel_batch() {
        let (a, _) = system(9);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let mut rng = Rng::new(3);
        let rhs: Vec<Vec<f64>> =
            (0..5).map(|_| (0..a.n_rows()).map(|_| rng.range(-1.0, 1.0)).collect()).collect();
        let mut ws = plan.make_workspace();
        let sequential = plan.solve_many_with_workspace(&rhs, &mut ws);
        let parallel = plan.solve_many(&rhs);
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.as_ref().unwrap().x, p.as_ref().unwrap().x);
        }
    }

    #[test]
    fn approx_bytes_tracks_storage() {
        let (a, _) = system(10);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let bytes = plan.approx_bytes();
        // At minimum the system matrix and both factors are resident.
        let floor = a.storage_bytes(8)
            + plan.factors().l().storage_bytes(8)
            + plan.factors().u().storage_bytes(8);
        assert!(bytes >= floor, "{bytes} < floor {floor}");
        // A bigger system yields a bigger estimate.
        let (big, _) = system(20);
        let big_plan = SpcgPlan::build(&big, opts()).unwrap();
        assert!(big_plan.approx_bytes() > bytes);
    }

    #[test]
    fn baseline_plan_skips_sparsification() {
        let (a, b) = system(8);
        let o = SpcgOptions { sparsify: None, ..opts() };
        let plan = SpcgPlan::build(&a, &o).unwrap();
        assert!(!plan.is_sparsified());
        assert!(plan.decision().is_none());
        assert_eq!(plan.sparsify_time(), Duration::ZERO);
        assert!(std::ptr::eq(plan.factored_matrix(), plan.a()));
        assert!(plan.solve(&b).unwrap().converged());
    }

    #[test]
    fn from_factors_wraps_external_analysis() {
        let (a, b) = system(8);
        let o = SpcgOptions { sparsify: None, ..opts() };
        let factors = build_preconditioner(&a, o.ilu_fill, o.exec).unwrap();
        let plan = SpcgPlan::from_factors(a.clone(), factors, o.clone()).unwrap();
        let direct = SpcgPlan::build(&a, &o).unwrap();
        assert_eq!(plan.solve(&b).unwrap().x, direct.solve(&b).unwrap().x);
    }

    #[test]
    fn mixed_plan_converges_and_tracks_full_solution() {
        let (a, b) = system(12);
        let full = SpcgPlan::build(&a, opts()).unwrap();
        let mixed = SpcgPlan::build(&a, opts().with_precision(PrecisionPolicy::MixedF32)).unwrap();
        assert!(mixed.is_mixed());
        assert!(!full.is_mixed());
        assert_eq!(mixed.precision(), PrecisionPolicy::MixedF32);
        assert_eq!(full.precision(), PrecisionPolicy::Full);
        assert_eq!(mixed.factor_value_bytes(), 4);
        assert_eq!(full.factor_value_bytes(), 8);
        let rf = full.solve(&b).unwrap();
        let rm = mixed.solve(&b).unwrap();
        assert!(rm.converged(), "mixed stop: {:?}", rm.stop);
        // The f64 outer recurrence drives both to the same threshold; the
        // iterates agree within the mixed tolerance band.
        let scale = rf.x.iter().fold(0f64, |m, &v| m.max(v.abs())).max(1.0);
        for (x1, x2) in rf.x.iter().zip(&rm.x) {
            assert!((x1 - x2).abs() <= 1e-6 * scale, "drift: {x1} vs {x2}");
        }
    }

    #[test]
    fn mixed_workspace_is_presized_for_staging_and_refinement() {
        let (a, b) = system(10);
        let mixed = SpcgPlan::build(&a, opts().with_precision(PrecisionPolicy::MixedF32)).unwrap();
        let mut ws = mixed.make_workspace();
        // Warm solves must not grow anything (the zero-alloc suite pins
        // this with a counting allocator; here we pin convergence through
        // the pre-sized workspace).
        for _ in 0..2 {
            let stats = mixed.solve_in_place(&b, &mut ws).unwrap();
            assert!(stats.converged(), "stop {:?}", stats.stop);
        }
    }

    #[test]
    fn auto_precision_follows_representability() {
        let (a, _) = system(8);
        let auto = SpcgPlan::build(&a, opts().with_precision(PrecisionPolicy::Auto)).unwrap();
        assert_eq!(
            auto.precision(),
            PrecisionPolicy::MixedF32,
            "well-scaled factors must resolve to the mixed tier"
        );
        // Values far beyond f32 range: Auto must stay full.
        let huge = a.map_values(|v| v * 1e250);
        let o = SpcgOptions { sparsify: None, ..opts() }.with_precision(PrecisionPolicy::Auto);
        let full = SpcgPlan::build(&huge, &o).unwrap();
        assert_eq!(full.precision(), PrecisionPolicy::Full);
        assert!(!full.is_mixed());
    }

    #[test]
    fn mixed_approx_bytes_counts_the_demoted_image() {
        let (a, _) = system(10);
        let full = SpcgPlan::build(&a, opts()).unwrap();
        let mixed = SpcgPlan::build(&a, opts().with_precision(PrecisionPolicy::MixedF32)).unwrap();
        assert!(
            mixed.approx_bytes() > full.approx_bytes(),
            "the resident demoted factors must be accounted"
        );
    }

    #[test]
    fn refresh_with_unchanged_values_is_bitwise_identical() {
        let (a, b) = system(12);
        for o in [opts(), SpcgOptions { sparsify: None, ..opts() }] {
            let plan = SpcgPlan::build(&a, &o).unwrap();
            let refreshed = plan.refresh_values(&a).unwrap();
            assert_eq!(refreshed.factors().l().values(), plan.factors().l().values());
            assert_eq!(refreshed.factors().u().values(), plan.factors().u().values());
            assert_eq!(refreshed.is_sparsified(), plan.is_sparsified());
            let rx = refreshed.solve(&b).unwrap();
            let px = plan.solve(&b).unwrap();
            assert_eq!(rx.x, px.x);
            assert_eq!(rx.residual_history, px.residual_history);
        }
    }

    #[test]
    fn refresh_reuses_analysis_without_sparsify_reorder_or_levelbuild() {
        use spcg_probe::RecordingProbe;
        let (a, b) = system(12);
        let o = opts().with_ordering(crate::OrderingKind::Rcm);
        let plan = SpcgPlan::build(&a, &o).unwrap();
        // Mild value drift: small enough to stay within the τ guard.
        let a_new = a.map_values(|v| v * 1.001);
        let mut probe = RecordingProbe::new();
        let refreshed = plan.refresh_values_probed(&a_new, &mut probe).unwrap();
        let trace = probe.finish();
        let spans: Vec<Span> = trace.span_records().unwrap().iter().map(|r| r.span).collect();
        assert!(spans.contains(&Span::PlanRefresh));
        assert!(spans.contains(&Span::Factorize), "the numeric sweep must re-run");
        for forbidden in [Span::Sparsify, Span::Reorder, Span::LevelBuild, Span::PlanBuild] {
            assert!(!spans.contains(&forbidden), "refresh must not re-run {forbidden:?}");
        }
        assert_eq!(trace.counter_total(Counter::PlanRefreshFallback), 0);
        // The reused analysis is carried over verbatim.
        assert_eq!(refreshed.permutation(), plan.permutation());
        assert_eq!(
            refreshed.factors().total_wavefronts(),
            plan.factors().total_wavefronts(),
            "cloned schedules must match"
        );
        // The refreshed plan still solves ITS OWN system.
        let r = refreshed.solve(&b).unwrap();
        assert!(r.converged(), "stop {:?}", r.stop);
        let ax = spcg_sparse::spmv::spmv_alloc(&a_new, &r.x);
        let err: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        assert!(err < 1e-6, "residual vs refreshed A too large: {err}");
    }

    #[test]
    fn refresh_falls_back_to_full_replan_past_the_drift_bound() {
        use spcg_probe::RecordingProbe;
        let (a, b) = system(12);
        // refresh_drift = 0 makes the guard unsatisfiable for any plan with
        // a non-empty S, forcing the fallback deterministically.
        let o = opts().with_refresh_drift(0.0);
        let plan = SpcgPlan::build(&a, &o).unwrap();
        assert!(plan.is_sparsified());
        let a_new = a.map_values(|v| v * 1.001);
        let mut probe = RecordingProbe::new();
        let refreshed = plan.refresh_values_probed(&a_new, &mut probe).unwrap();
        let trace = probe.finish();
        assert_eq!(trace.counter_total(Counter::PlanRefreshFallback), 1);
        let spans: Vec<Span> = trace.span_records().unwrap().iter().map(|r| r.span).collect();
        assert!(spans.contains(&Span::PlanBuild), "fallback must run the full analysis");
        // The fallback is a fresh build: bitwise identical to building from
        // scratch with the same options.
        let direct = SpcgPlan::build(&a_new, &o).unwrap();
        assert_eq!(refreshed.factors().l().values(), direct.factors().l().values());
        assert_eq!(refreshed.solve(&b).unwrap().x, direct.solve(&b).unwrap().x);
    }

    #[test]
    fn refresh_rejects_structural_change_and_external_factors() {
        let (a, _) = system(8);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        // Same nnz budget, different pattern: drop one off-diagonal entry.
        let mut dropped = false;
        let other = a.filter(|r, c, _| {
            if !dropped && r != c {
                dropped = true;
                false
            } else {
                true
            }
        });
        assert!(plan.refresh_values(&other).is_err());
        let o = SpcgOptions { sparsify: None, ..opts() };
        let factors = build_preconditioner(&a, o.ilu_fill, o.exec).unwrap();
        let external = SpcgPlan::from_factors(a.clone(), factors, o.clone())
            .unwrap()
            .with_factored_matrix(a.clone())
            .unwrap();
        assert!(external.refresh_values(&a).is_err());
    }

    #[test]
    fn refresh_preserves_the_mixed_tier() {
        let (a, b) = system(10);
        let plan = SpcgPlan::build(&a, opts().with_precision(PrecisionPolicy::MixedF32)).unwrap();
        let a_new = a.map_values(|v| v * 1.01);
        let refreshed = plan.refresh_values(&a_new).unwrap();
        assert!(refreshed.is_mixed());
        assert_eq!(refreshed.precision(), PrecisionPolicy::MixedF32);
        assert!(refreshed.solve(&b).unwrap().converged());
    }

    #[test]
    fn warm_solve_on_zeroed_workspace_matches_cold_even_reordered() {
        let (a, b) = system(12);
        let o = opts().with_ordering(crate::OrderingKind::Rcm);
        let plan = SpcgPlan::build(&a, &o).unwrap();
        let mut cold_ws = plan.make_workspace();
        let cold = plan.solve_in_place(&b, &mut cold_ws).unwrap();
        let mut warm_ws = plan.make_workspace();
        let warm = plan.solve_from(&b, &mut warm_ws).unwrap();
        assert_eq!(cold.iterations, warm.iterations);
        assert_eq!(cold_ws.solution(), warm_ws.solution());
    }

    #[test]
    fn warm_solve_reuses_the_resident_solution() {
        let (a, b) = system(12);
        for o in [opts(), opts().with_ordering(crate::OrderingKind::Rcm)] {
            let plan = SpcgPlan::build(&a, &o).unwrap();
            let mut ws = plan.make_workspace();
            let cold = plan.solve_in_place(&b, &mut ws).unwrap();
            assert!(cold.converged());
            // Same rhs again: the resident solution is already converged.
            let warm = plan.solve_from(&b, &mut ws).unwrap();
            assert!(warm.converged(), "stop {:?}", warm.stop);
            assert_eq!(warm.iterations, 0, "resident solution must satisfy the threshold");
            // A drifted rhs still needs fewer iterations than a cold start.
            let b2: Vec<f64> =
                b.iter().enumerate().map(|(i, &v)| v * (1.0 + 1e-3 * (i % 7) as f64)).collect();
            let warm2 = plan.solve_from(&b2, &mut ws).unwrap();
            let cold2 = plan.solve(&b2).unwrap();
            assert!(warm2.converged());
            assert!(
                warm2.iterations < cold2.iterations,
                "warm {} vs cold {}",
                warm2.iterations,
                cold2.iterations
            );
            // Both end at the caller-ordering solution of the same system.
            let ax = spcg_sparse::spmv::spmv_alloc(&a, ws.solution());
            let err: f64 = ax.iter().zip(&b2).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
            assert!(err < 1e-6, "warm solution residual too large: {err}");
        }
    }

    #[test]
    fn refresh_plus_warm_solve_tracks_a_drifting_sequence() {
        let (a, b) = system(12);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let mut ws = plan.make_workspace();
        let mut current = plan;
        let mut a_t = a;
        for step in 1..=3 {
            a_t = a_t.map_values(|v| v * (1.0 + 2e-3));
            current = current.refresh_values(&a_t).unwrap();
            let stats = current.solve_from(&b, &mut ws).unwrap();
            assert!(stats.converged(), "step {step} stop {:?}", stats.stop);
            let ax = spcg_sparse::spmv::spmv_alloc(&a_t, ws.solution());
            let err: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
            assert!(err < 1e-6, "step {step} residual {err}");
        }
    }

    #[test]
    fn into_outcome_preserves_analysis() {
        let (a, b) = system(8);
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let wavefronts = plan.factors().total_wavefronts();
        let result = plan.solve(&b).unwrap();
        let outcome = plan.into_outcome(result);
        assert!(outcome.decision.is_some());
        assert_eq!(outcome.factors.total_wavefronts(), wavefronts);
        assert!(outcome.result.converged());
    }
}
