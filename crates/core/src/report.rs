//! Serializable run reports: one record per (matrix, method) pair, the unit
//! the benchmark harness aggregates into the paper's tables and figures.

use crate::algorithm2::{SelectionReason, SparsifyDecision};
use crate::pipeline::SpcgOutcome;
use serde::{Deserialize, Serialize};
use spcg_solver::StopReason;
use spcg_sparse::Scalar;

/// A flattened, serializable summary of one SPCG/PCG run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Matrix name (from the suite) or caller-chosen label.
    pub matrix: String,
    /// Method label, e.g. `"SPCG-ILU(0)"` or `"PCG-ILU(K=2)"`.
    pub method: String,
    /// Matrix dimension.
    pub n: usize,
    /// Matrix nonzeros.
    pub nnz: usize,
    /// Whether sparsification ran, and the chosen ratio if so.
    pub sparsify_ratio: Option<f64>,
    /// Why the ratio was selected.
    pub selection_reason: Option<String>,
    /// Wavefronts before sparsification.
    pub wavefronts_before: Option<usize>,
    /// Wavefronts after sparsification.
    pub wavefronts_after: Option<usize>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the run converged.
    pub converged: bool,
    /// Final `‖r‖₂`.
    pub final_residual: f64,
    /// Solve-loop seconds.
    pub solve_seconds: f64,
    /// Factorization seconds.
    pub factorization_seconds: f64,
    /// Sparsification seconds.
    pub sparsify_seconds: f64,
    /// Preconditioner nonzeros (L + U).
    pub precond_nnz: usize,
    /// Wavefronts of the preconditioner (L levels + U levels).
    pub precond_wavefronts: usize,
}

fn reason_str(r: SelectionReason) -> &'static str {
    match r {
        SelectionReason::WavefrontReduction => "wavefront-reduction",
        SelectionReason::LastRatio => "last-ratio",
        SelectionReason::ConvergenceFallback => "convergence-fallback",
        SelectionReason::Fallthrough => "fallthrough",
    }
}

impl RunReport {
    /// Builds a report from a pipeline outcome.
    pub fn from_outcome<T: Scalar>(
        matrix: impl Into<String>,
        method: impl Into<String>,
        n: usize,
        nnz: usize,
        out: &SpcgOutcome<T>,
    ) -> Self {
        use spcg_precond::Preconditioner;
        let dec: Option<&SparsifyDecision<T>> = out.decision.as_ref();
        Self {
            matrix: matrix.into(),
            method: method.into(),
            n,
            nnz,
            sparsify_ratio: dec.map(|d| d.chosen_ratio),
            selection_reason: dec.map(|d| reason_str(d.reason).to_string()),
            wavefronts_before: dec.map(|d| d.wavefronts_original),
            wavefronts_after: dec.map(|d| d.wavefronts_sparsified),
            iterations: out.result.iterations,
            converged: out.result.stop == StopReason::Converged,
            final_residual: out.result.final_residual,
            solve_seconds: out.result.timings.total.as_secs_f64(),
            factorization_seconds: out.factorization_time.as_secs_f64(),
            sparsify_seconds: out.sparsify_time.as_secs_f64(),
            precond_nnz: Preconditioner::<T>::nnz(&out.factors),
            precond_wavefronts: out.factors.total_wavefronts(),
        }
    }

    /// Mean solve seconds per iteration.
    pub fn seconds_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.solve_seconds / self.iterations as f64
        }
    }

    /// End-to-end seconds.
    pub fn end_to_end_seconds(&self) -> f64 {
        self.sparsify_seconds + self.factorization_seconds + self.solve_seconds
    }
}

#[cfg(test)]
#[allow(deprecated)] // reports are built from the legacy outcome on purpose
mod tests {
    use super::*;
    use crate::pipeline::{spcg_solve, SpcgOptions};
    use spcg_sparse::generators::poisson_2d;

    #[test]
    fn report_roundtrips_through_json() {
        let a = poisson_2d(8, 8);
        let b = vec![1.0; 64];
        let out = spcg_solve(&a, &b, &SpcgOptions::default()).unwrap();
        let rep = RunReport::from_outcome("p8", "SPCG-ILU(0)", 64, a.nnz(), &out);
        assert_eq!(rep.matrix, "p8");
        assert!(rep.sparsify_ratio.is_some());
        assert!(rep.precond_nnz > 0);
        let json = serde_json::to_string(&rep).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.iterations, rep.iterations);
        assert_eq!(back.method, "SPCG-ILU(0)");
    }

    #[test]
    fn derived_metrics() {
        let a = poisson_2d(8, 8);
        let b = vec![1.0; 64];
        let out = spcg_solve(&a, &b, &SpcgOptions::default()).unwrap();
        let rep = RunReport::from_outcome("p8", "m", 64, a.nnz(), &out);
        assert!(rep.end_to_end_seconds() >= rep.solve_seconds);
        if rep.iterations > 0 {
            assert!(rep.seconds_per_iteration() > 0.0);
        }
    }
}
