//! Property-based tests of the breakdown-resilience layer: the fallback
//! ladder must be bounded, invisible when nothing breaks, and the shifted
//! refactorization must hand back structurally sound factors whatever the
//! operator.

use proptest::prelude::*;
use spcg_core::pipeline::{IluFill, SpcgOptions};
use spcg_core::{FaultInjection, ResilienceOptions, SpcgPlan};
use spcg_precond::{shifted_factorization, ExecutionStrategy, FactorKind, ShiftPolicy};
use spcg_solver::SolverConfig;
use spcg_sparse::generators::{random_spd, with_magnitude_spread};
use spcg_sparse::Rng;

fn random_system(n: usize, seed: u64) -> (spcg_sparse::CsrMatrix<f64>, Vec<f64>) {
    let a = with_magnitude_spread(&random_spd(n, 4, 1.5, seed), 5.0, seed ^ 3);
    let mut rng = Rng::new(seed ^ 0xb0b);
    let b = (0..n).map(|_| rng.range(-1.0, 1.0)).collect();
    (a, b)
}

fn options(sparsify: bool, k: usize) -> SpcgOptions {
    SpcgOptions {
        sparsify: if sparsify { Some(Default::default()) } else { None },
        ilu_fill: if k == 0 { IluFill::Ilu0 } else { IluFill::Iluk(k) },
        solver: SolverConfig::default().with_tol(1e-9).with_history(true),
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// With no fault injected, `solve_resilient_with_workspace` is bitwise
    /// identical to `solve_with_workspace` on every healthy operator: the
    /// guards are comparisons only and attempt 0 uses the plan's own
    /// factors.
    #[test]
    fn faults_off_resilient_is_bitwise_identical(
        n in 20usize..70,
        seed in 0u64..250,
        sparsify in any::<bool>(),
        k in 0usize..3,
    ) {
        let (a, b) = random_system(n, seed);
        let plan = SpcgPlan::build(&a, options(sparsify, k)).unwrap();
        let mut ws = plan.make_workspace();
        let plain = plan.solve_with_workspace(&b, &mut ws).unwrap();
        let resilient = plan
            .solve_resilient_with_workspace(&b, &ResilienceOptions::default(), &mut ws)
            .unwrap();
        prop_assert_eq!(&plain.x, &resilient.result.x);
        prop_assert_eq!(&plain.residual_history, &resilient.result.residual_history);
        prop_assert_eq!(plain.iterations, resilient.result.iterations);
        prop_assert_eq!(plain.stop, resilient.result.stop);
        prop_assert!(resilient.report.clean());
    }

    /// The ladder always terminates within its published bound, whatever
    /// fault is active and however long it persists — and the executed
    /// rungs are always a leading prefix of the published ladder.
    #[test]
    fn ladder_terminates_within_bound(
        n in 16usize..50,
        seed in 0u64..200,
        sparsify in any::<bool>(),
        persist in 0usize..12,
        fault_kind in 0usize..3,
        fault_at in 0usize..6,
    ) {
        let (a, b) = random_system(n, seed);
        let plan = SpcgPlan::build(&a, options(sparsify, 0)).unwrap();
        let fault = match fault_kind {
            0 => FaultInjection::nan_at(fault_at),
            1 => FaultInjection::zeroed_pivot(fault_at % n),
            _ => FaultInjection::corrupted_entry(fault_at % n, fault_at % n, 1e14),
        }
        .persist_for(persist);
        let ropts = ResilienceOptions { fault: Some(fault), ..Default::default() };
        let bound = plan.ladder(&ropts).len();
        let mut ws = plan.make_workspace();
        let r = plan.solve_resilient_with_workspace(&b, &ropts, &mut ws).unwrap();
        prop_assert!(!r.report.attempts.is_empty());
        prop_assert!(
            r.report.attempts.len() <= bound,
            "{} attempts exceed the {}-rung ladder", r.report.attempts.len(), bound
        );
        let ladder = plan.ladder(&ropts);
        let executed = r.report.rungs();
        prop_assert_eq!(executed.as_slice(), &ladder[..r.report.attempts.len()]);
        // Once the fault expires, the next rung is healthy: any persistence
        // shorter than the ladder must still converge.
        if persist < bound {
            prop_assert!(r.converged(), "expired fault must recover: {:?}", r.report);
        }
    }

    /// Shifted refactorization hands back structurally sound factors on
    /// every operator it accepts: square factors of the system's dimension,
    /// all stored values finite, every pivot nonzero, and the reported
    /// attempt count within the policy bound. An unshifted success must
    /// report `alpha == 0`.
    #[test]
    fn shifted_factors_preserve_invariants(
        n in 10usize..60,
        seed in 0u64..300,
        k in 0usize..3,
        initial_shift in 1e-4f64..1e-1,
    ) {
        let (a, _) = random_system(n, seed);
        let policy = ShiftPolicy { initial_shift, ..Default::default() };
        let kind = if k == 0 { FactorKind::Ilu0 } else { FactorKind::Iluk(k) };
        let s = shifted_factorization(&a, kind, ExecutionStrategy::Sequential, &policy).unwrap();
        prop_assert!(s.attempts >= 1 && s.attempts <= policy.max_attempts);
        prop_assert!(s.alpha >= 0.0);
        prop_assert_eq!(s.is_unshifted(), s.alpha == 0.0);
        let (l, u) = (s.factors.l(), s.factors.u());
        prop_assert_eq!(l.n_rows(), n);
        prop_assert_eq!(u.n_rows(), n);
        prop_assert!(l.is_square() && u.is_square());
        for (r, c, v) in l.iter() {
            prop_assert!(c <= r, "L must be lower triangular");
            prop_assert!(v.is_finite());
            if c == r {
                prop_assert_eq!(v, 1.0, "L carries a unit diagonal");
            }
        }
        let mut pivots = 0usize;
        for (r, c, v) in u.iter() {
            prop_assert!(c >= r, "U must be upper triangular");
            prop_assert!(v.is_finite());
            if c == r {
                prop_assert!(v != 0.0, "pivot must be nonzero after shifting");
                pivots += 1;
            }
        }
        prop_assert_eq!(pivots, n, "every row needs a stored pivot");
    }
}
