//! Property-based tests of the sparsification core on randomized inputs.

use proptest::prelude::*;
use spcg_core::{
    sparsify_by_magnitude, wavefront_aware_sparsify, CondEstimator, SelectionReason, SparsifyParams,
};
use spcg_sparse::generators::{banded_spd, layered_poisson_2d, random_spd, with_magnitude_spread};
use spcg_wavefront::wavefront_count;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The decomposition A = Â + S holds exactly for every family/ratio,
    /// and S contains only off-diagonal entries.
    #[test]
    fn decomposition_exact_everywhere(
        n in 15usize..90,
        pct in 0.0f64..45.0,
        seed in 0u64..400,
    ) {
        let a = with_magnitude_spread(&random_spd(n, 4, 1.5, seed), 5.0, seed ^ 7);
        let sp = sparsify_by_magnitude(&a, pct);
        let sum = sp.a_hat.add(&sp.s).unwrap().prune_zeros();
        prop_assert_eq!(sum, a.prune_zeros());
        prop_assert!(sp.s.iter().all(|(r, c, _)| r != c));
        prop_assert_eq!(sp.a_hat.diag(), a.diag());
        // achieved ratio never exceeds requested
        prop_assert!(sp.achieved_percent() <= pct + 1e-9);
    }

    /// Dropped entries are dominated in magnitude: every entry of S is ≤
    /// every *off-diagonal* entry of Â that shares no tie.
    #[test]
    fn dropped_entries_are_smallest(n in 15usize..60, seed in 0u64..200) {
        let a = with_magnitude_spread(&banded_spd(n, 4, 0.9, 1.6, seed), 6.0, seed);
        let sp = sparsify_by_magnitude(&a, 10.0);
        let max_dropped = sp.s.values().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let min_kept_off = sp
            .a_hat
            .iter()
            .filter(|&(r, c, _)| r != c)
            .map(|(_, _, v)| v.abs())
            .fold(f64::MAX, f64::min);
        // Pair-granularity means one marginal pair can be skipped; allow
        // equality but not strict inversion beyond ties.
        prop_assert!(max_dropped <= min_kept_off + 1e-12,
            "dropped {max_dropped} > kept {min_kept_off}");
    }

    /// Algorithm 2 always returns one of its candidate ratios and the
    /// decision is internally consistent.
    #[test]
    fn algorithm2_invariants(
        nx in 8usize..24,
        tau in 0.001f64..100.0,
        omega in 0.0f64..60.0,
        seed in 0u64..100,
    ) {
        let _ = seed;
        let a = layered_poisson_2d(nx, nx, 4, 0.02);
        let params = SparsifyParams {
            tau,
            omega,
            estimator: CondEstimator::PaperApprox,
            ..Default::default()
        };
        let d = wavefront_aware_sparsify(&a, &params);
        prop_assert!([10.0, 5.0, 1.0].contains(&d.chosen_ratio));
        prop_assert!(d.wavefronts_original >= d.wavefronts_sparsified
            || d.reason == SelectionReason::ConvergenceFallback);
        prop_assert_eq!(d.wavefronts_original, wavefront_count(&a));
        prop_assert_eq!(d.wavefronts_sparsified, wavefront_count(&d.sparsified.a_hat));
        // trace ratios are a prefix of the candidate list
        for (t, &expect) in d.trace.iter().zip(&[10.0, 5.0, 1.0]) {
            prop_assert_eq!(t.ratio, expect);
        }
    }

    /// Tightening τ can only make the selection more conservative (the
    /// chosen ratio under a smaller τ is never more aggressive, except via
    /// the explicit line-6 fallback to 10%).
    #[test]
    fn tau_monotonicity(nx in 8usize..20, seed in 0u64..50) {
        let _ = seed;
        let a = layered_poisson_2d(nx, nx, 4, 0.02);
        let run = |tau: f64| {
            wavefront_aware_sparsify(
                &a,
                &SparsifyParams { tau, ..Default::default() },
            )
        };
        let loose = run(1e6);
        let tight = run(1e-2);
        if tight.reason != SelectionReason::ConvergenceFallback {
            prop_assert!(tight.chosen_ratio <= loose.chosen_ratio,
                "tight tau chose {} > loose {}", tight.chosen_ratio, loose.chosen_ratio);
        } else {
            prop_assert_eq!(tight.chosen_ratio, 10.0);
        }
    }
}
