//! The fault-injection acceptance harness: deterministic faults driven
//! through real suite matrices must (a) be *classified* correctly,
//! (b) climb the fallback ladder in exactly the order the plan predicts,
//! and (c) recover to convergence — and the whole public solve surface
//! must degrade into typed errors, never panics, on malformed input.

use spcg_core::{FallbackRung, FaultInjection, ResilienceOptions, SpcgOptions, SpcgPlan};
use spcg_solver::{BreakdownKind, SolverConfig, SolverError, StopReason};
use spcg_sparse::{CooMatrix, CsrMatrix};
use spcg_suite::fast_collection;

/// A handful of real suite matrices, small enough to ladder through
/// repeatedly but drawn from distinct categories.
fn suite_systems(limit: usize) -> Vec<(String, CsrMatrix<f64>, Vec<f64>)> {
    let mut systems: Vec<_> = fast_collection()
        .into_iter()
        .filter_map(|spec| {
            let a = spec.build();
            (a.n_rows() <= 2_500).then(|| {
                let b = (0..a.n_rows()).map(|i| ((i % 13) as f64 - 6.0) / 6.0).collect();
                (spec.name, a, b)
            })
        })
        .take(limit.max(4))
        .collect();
    assert!(systems.len() >= 3, "need at least three suite matrices for the acceptance bar");
    systems.truncate(limit);
    systems
}

fn opts() -> SpcgOptions {
    SpcgOptions { solver: SolverConfig::default().with_tol(1e-9), ..Default::default() }
}

/// The executed rung sequence must be *exactly* the leading prefix of the
/// ladder the plan publishes — no rung skipped, none reordered.
fn assert_rungs_are_ladder_prefix(
    name: &str,
    plan: &SpcgPlan<f64>,
    ropts: &ResilienceOptions,
    executed: &[FallbackRung],
) {
    let ladder = plan.ladder(ropts);
    assert!(
        executed.len() <= ladder.len(),
        "{name}: executed more rungs than the ladder has ({executed:?} vs {ladder:?})"
    );
    assert_eq!(
        executed,
        &ladder[..executed.len()],
        "{name}: rung order must match the published ladder"
    );
}

#[test]
fn nan_fault_recovers_across_suite_matrices() {
    for (name, a, b) in suite_systems(4) {
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let ropts =
            ResilienceOptions { fault: Some(FaultInjection::nan_at(1)), ..Default::default() };
        let mut ws = plan.make_workspace();
        let r = plan.solve_resilient_with_workspace(&b, &ropts, &mut ws).unwrap();
        assert!(r.converged(), "{name}: must recover from a NaN fault: {:?}", r.report);
        assert_eq!(r.report.cause(), Some(BreakdownKind::Nan), "{name}");
        assert_eq!(r.report.attempts.len(), 2, "{name}: one fallback suffices");
        assert_rungs_are_ladder_prefix(&name, &plan, &ropts, &r.report.rungs());
    }
}

#[test]
fn zeroed_pivot_recovers_across_suite_matrices() {
    for (name, a, b) in suite_systems(3) {
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let row = a.n_rows() / 2;
        let ropts = ResilienceOptions {
            fault: Some(FaultInjection::zeroed_pivot(row)),
            ..Default::default()
        };
        let mut ws = plan.make_workspace();
        let r = plan.solve_resilient_with_workspace(&b, &ropts, &mut ws).unwrap();
        assert!(r.converged(), "{name}: must recover from a zeroed pivot: {:?}", r.report);
        assert!(r.report.attempts.len() >= 2, "{name}: the fault must actually bite");
        assert!(
            r.report.cause().is_some(),
            "{name}: a zeroed pivot must classify as a breakdown, got {:?}",
            r.report.attempts[0].stop
        );
        assert_rungs_are_ladder_prefix(&name, &plan, &ropts, &r.report.rungs());
    }
}

#[test]
fn corrupted_factor_entry_recovers_across_suite_matrices() {
    for (name, a, b) in suite_systems(3) {
        let plan = SpcgPlan::build(&a, opts()).unwrap();
        let row = a.n_rows() / 3;
        let ropts = ResilienceOptions {
            fault: Some(FaultInjection::corrupted_entry(row, row, 1e12)),
            ..Default::default()
        };
        let mut ws = plan.make_workspace();
        let r = plan.solve_resilient_with_workspace(&b, &ropts, &mut ws).unwrap();
        assert!(r.converged(), "{name}: must recover from a corrupted pivot: {:?}", r.report);
        assert_rungs_are_ladder_prefix(&name, &plan, &ropts, &r.report.rungs());
    }
}

#[test]
fn persistent_fault_descends_to_jacobi_and_recovers() {
    let (name, a, b) = suite_systems(1).remove(0);
    let plan = SpcgPlan::build(&a, opts()).unwrap();
    let n_rungs = plan.ladder(&ResilienceOptions::default()).len();
    let ropts = ResilienceOptions {
        fault: Some(FaultInjection::nan_at(0).persist_for(n_rungs - 1)),
        ..Default::default()
    };
    let mut ws = plan.make_workspace();
    let r = plan.solve_resilient_with_workspace(&b, &ropts, &mut ws).unwrap();
    assert!(r.converged(), "{name}: the Jacobi rung must still converge: {:?}", r.report);
    assert_eq!(r.report.rungs(), plan.ladder(&ropts), "{name}: full descent, in order");
    assert_eq!(r.report.attempts.last().unwrap().rung, FallbackRung::Jacobi, "{name}");
    for attempt in &r.report.attempts[..n_rungs - 1] {
        assert_eq!(attempt.stop.breakdown_kind(), Some(BreakdownKind::Nan), "{name}");
    }
}

#[test]
fn stalled_mixed_precond_promotes_precision_across_suite_matrices() {
    // The mixed tier's dedicated failure mode: the reduced-precision apply
    // stalls the recurrence (modeled by the stall fault zeroing the
    // preconditioned direction). Recovery must climb exactly one rung — the
    // promote-precision rung, which swaps in the resident full-width
    // factors without refactoring — and converge there.
    use spcg_core::{FallbackRung, PrecisionPolicy};

    for (name, a, b) in suite_systems(3) {
        let plan = SpcgPlan::build(&a, opts().with_precision(PrecisionPolicy::MixedF32)).unwrap();
        assert!(plan.is_mixed(), "{name}: MixedF32 must resolve mixed");
        let ropts =
            ResilienceOptions { fault: Some(FaultInjection::stall_at(1)), ..Default::default() };
        let mut ws = plan.make_workspace();
        let r = plan.solve_resilient_with_workspace(&b, &ropts, &mut ws).unwrap();
        assert!(r.converged(), "{name}: must recover from a precision stall: {:?}", r.report);
        assert_eq!(
            r.report.rungs(),
            vec![FallbackRung::Planned, FallbackRung::PromotePrecision],
            "{name}: a stall promotes precision, nothing more"
        );
        assert_eq!(
            r.report.total_factorizations(),
            0,
            "{name}: promotion reuses the resident full factors"
        );
        assert_rungs_are_ladder_prefix(&name, &plan, &ropts, &r.report.rungs());

        // The promoted solution matches a clean full-precision solve.
        let full = SpcgPlan::build(&a, opts()).unwrap().solve(&b).unwrap();
        let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let diff: Vec<f64> = full.x.iter().zip(&r.result.x).map(|(c, f)| c - f).collect();
        assert!(
            norm(&diff) <= 1e-6 * norm(&full.x).max(1.0),
            "{name}: promoted solution drifted from the full-precision one"
        );
    }
}

#[test]
fn recovered_solution_matches_the_clean_one() {
    // Recovery is not just "Converged": the recovered iterate solves the
    // same system to the same tolerance as a never-faulted solve.
    let (name, a, b) = suite_systems(1).remove(0);
    let plan = SpcgPlan::build(&a, opts()).unwrap();
    let clean = plan.solve(&b).unwrap();
    let ropts = ResilienceOptions { fault: Some(FaultInjection::nan_at(1)), ..Default::default() };
    let mut ws = plan.make_workspace();
    let r = plan.solve_resilient_with_workspace(&b, &ropts, &mut ws).unwrap();
    let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
    let diff: Vec<f64> = clean.x.iter().zip(&r.result.x).map(|(c, f)| c - f).collect();
    assert!(
        norm(&diff) <= 1e-6 * norm(&clean.x).max(1.0),
        "{name}: recovered solution drifted from the clean one"
    );
}

// ---------------------------------------------------------------------------
// Malformed input: every public solve entry point returns a typed error.
// ---------------------------------------------------------------------------

#[test]
fn malformed_inputs_error_instead_of_panicking() {
    let (_, a, b) = suite_systems(1).remove(0);
    let plan = SpcgPlan::build(&a, opts()).unwrap();
    let short = vec![1.0; a.n_rows() - 1];

    assert!(matches!(plan.solve(&short), Err(SolverError::RhsLength { .. })));
    assert!(matches!(plan.solve(&[]), Err(SolverError::RhsLength { .. })));
    assert!(plan.solve_resilient(&short).is_err());
    assert!(plan.solve_resilient(&[]).is_err());
    let mut ws = plan.make_workspace();
    assert!(plan.solve_with_workspace(&short, &mut ws).is_err());
    assert!(plan.solve_in_place(&short, &mut ws).is_err());
    assert!(plan
        .solve_resilient_with_workspace(&short, &ResilienceOptions::default(), &mut ws)
        .is_err());

    // Batched: the bad entry fails alone, its neighbours still solve.
    let out = plan.solve_many(&[b.clone(), short.clone(), b.clone()]);
    assert!(out[0].is_ok() && out[1].is_err() && out[2].is_ok());
    let out =
        plan.solve_many_resilient(&[b.clone(), short, b.clone()], &ResilienceOptions::default());
    assert!(out[0].is_ok() && out[1].is_err() && out[2].is_ok());

    // Non-square operators are rejected at plan-build time.
    let mut coo = CooMatrix::new(2, 3);
    for (r, c, v) in [(0, 0, 1.0), (1, 1, 1.0), (1, 2, 0.5)] {
        coo.push(r, c, v).unwrap();
    }
    let rect: CsrMatrix<f64> = coo.to_csr();
    assert!(SpcgPlan::build(&rect, opts()).is_err());
}

#[test]
fn non_finite_rhs_is_reported_not_propagated_silently() {
    let (name, a, _) = suite_systems(1).remove(0);
    let plan = SpcgPlan::build(&a, opts()).unwrap();
    let mut bad = vec![1.0; a.n_rows()];
    bad[0] = f64::NAN;
    // A NaN right-hand side cannot converge; the guards must stop the
    // solve with a NaN breakdown instead of looping to max_iters.
    let r = plan.solve(&bad).unwrap();
    assert_eq!(
        r.stop,
        StopReason::Breakdown(BreakdownKind::Nan),
        "{name}: NaN input must classify as a NaN breakdown"
    );
    // And the resilient path gives up cleanly: every rung sees the same
    // poisoned rhs, the ladder stays bounded, and a report comes back.
    let solve = plan.solve_resilient(&bad).unwrap();
    assert!(!solve.converged());
    assert!(!solve.report.recovered());
}
