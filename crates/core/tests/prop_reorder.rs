//! Property-based tests of the reordering layer: a reordered plan is the
//! *same solver* viewed through a permutation. Explicit orderings must be
//! bitwise-reproducible from the unpermuted pipeline plus a hand-applied
//! permutation, full PCG solves must agree with the natural plan within
//! oracle tolerance, and `auto` must never pick an ordering that prices
//! worse than the candidates it searched.

use proptest::prelude::*;
use spcg_core::pipeline::SpcgOptions;
use spcg_core::{OrderingKind, SpcgPlan};
use spcg_solver::SolverConfig;
use spcg_sparse::generators::{random_spd, with_magnitude_spread};
use spcg_sparse::permute::reverse_cuthill_mckee;
use spcg_sparse::Rng;

fn random_system(n: usize, seed: u64) -> (spcg_sparse::CsrMatrix<f64>, Vec<f64>) {
    let a = with_magnitude_spread(&random_spd(n, 4, 1.5, seed), 5.0, seed ^ 3);
    let mut rng = Rng::new(seed ^ 0xb0b);
    let b = (0..n).map(|_| rng.range(-1.0, 1.0)).collect();
    (a, b)
}

fn options(sparsify: bool, ordering: OrderingKind) -> SpcgOptions {
    SpcgOptions {
        sparsify: if sparsify { Some(Default::default()) } else { None },
        solver: SolverConfig::default().with_tol(1e-9).with_history(true),
        ..Default::default()
    }
    .with_ordering(ordering)
}

fn residual_norm(a: &spcg_sparse::CsrMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
    let ax = spcg_sparse::spmv::spmv_alloc(a, x);
    ax.iter().zip(b).map(|(ai, bi)| (ai - bi) * (ai - bi)).sum::<f64>().sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// An explicit-RCM plan is *exactly* the natural pipeline run in the
    /// permuted space: permuting A and b by hand, building a natural plan
    /// on the permuted system, and un-permuting its iterate reproduces the
    /// reordered plan's answer bit for bit — same trajectory, same
    /// iteration count, same sparsify decision.
    #[test]
    fn rcm_plan_is_bitwise_the_permuted_natural_plan(
        n in 20usize..70,
        seed in 0u64..250,
        sparsify in any::<bool>(),
    ) {
        let (a, b) = random_system(n, seed);
        let reordered = SpcgPlan::build(&a, options(sparsify, OrderingKind::Rcm)).unwrap();
        prop_assert!(reordered.is_reordered());
        let via_plan = reordered.solve(&b).unwrap();

        // Reference: the same solve with the permutation applied by hand.
        let perm = reverse_cuthill_mckee(&a);
        prop_assert_eq!(reordered.permutation().unwrap(), &perm[..]);
        let ap = a.permute_sym(&perm).unwrap();
        let natural = SpcgPlan::build(&ap, options(sparsify, OrderingKind::Natural)).unwrap();
        let bp: Vec<f64> = perm.iter().map(|&old| b[old]).collect();
        let hat = natural.solve(&bp).unwrap();
        let mut x = vec![0.0; n];
        for (k, &old) in perm.iter().enumerate() {
            x[old] = hat.x[k];
        }

        prop_assert_eq!(&via_plan.x, &x);
        prop_assert_eq!(via_plan.iterations, hat.iterations);
        prop_assert_eq!(&via_plan.residual_history, &hat.residual_history);
        prop_assert_eq!(
            reordered.decision().map(|d| d.chosen_ratio),
            natural.decision().map(|d| d.chosen_ratio)
        );
    }

    /// Every ordering solves the *original* system: whatever permutation
    /// the plan works in internally, the returned iterate must satisfy
    /// `Ax = b` to the same oracle tolerance as the natural plan, and the
    /// two iterates must agree within a loose band.
    #[test]
    fn all_orderings_solve_the_original_system(
        n in 20usize..70,
        seed in 0u64..250,
        sparsify in any::<bool>(),
        which in 0usize..3,
    ) {
        let ordering = [OrderingKind::Rcm, OrderingKind::Coloring, OrderingKind::Auto][which];
        let (a, b) = random_system(n, seed);
        let natural = SpcgPlan::build(&a, options(sparsify, OrderingKind::Natural))
            .unwrap()
            .solve(&b)
            .unwrap();
        let reordered = SpcgPlan::build(&a, options(sparsify, ordering))
            .unwrap()
            .solve(&b)
            .unwrap();

        let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
        prop_assert!(
            residual_norm(&a, &reordered.x, &b) <= 1e-6 * b_norm,
            "{ordering} iterate does not solve the original system"
        );
        let x_norm = natural.x.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
        let diff = natural
            .x
            .iter()
            .zip(&reordered.x)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        prop_assert!(
            diff <= 1e-5 * x_norm,
            "{ordering} iterate drifted from natural: rel diff {}",
            diff / x_norm
        );
    }

    /// `auto` is monotone in its priced-time objective: it never commits
    /// to an ordering that prices worse than natural under the plan's
    /// execution strategy, and with ω = 0 it picks the cheapest-priced
    /// candidate among everything the joint search admitted. (Level counts
    /// are recorded but are no longer the objective — a flatter schedule
    /// may lose on priced time once block execution amortizes launches.)
    #[test]
    fn auto_never_prices_worse_than_natural(
        n in 20usize..70,
        seed in 0u64..250,
        sparsify in any::<bool>(),
        zero_omega in any::<bool>(),
    ) {
        let (a, _) = random_system(n, seed);
        let omega = if zero_omega { 0.0 } else { 10.0 };
        let opts = options(sparsify, OrderingKind::Auto).with_ordering_omega(omega);
        let plan = SpcgPlan::build(&a, &opts).unwrap();
        let d = plan.reorder().expect("auto always records a decision");

        let natural = d
            .trace
            .iter()
            .find(|c| c.ordering == OrderingKind::Natural)
            .expect("natural is always in the trace");
        let chosen = d
            .trace
            .iter()
            .find(|c| c.ordering == d.chosen)
            .expect("chosen candidate is in the trace");
        prop_assert!(
            chosen.priced_us <= natural.priced_us + 1e-9,
            "auto chose {} priced at {}µs but natural priced {}µs",
            d.chosen, chosen.priced_us, natural.priced_us
        );
        if zero_omega {
            for c in &d.trace {
                if c.guard_passed {
                    prop_assert!(
                        chosen.priced_us <= c.priced_us + 1e-9,
                        "ω=0 auto chose {}µs but admissible {} priced {}µs",
                        chosen.priced_us, c.ordering, c.priced_us
                    );
                }
            }
        }
    }
}
