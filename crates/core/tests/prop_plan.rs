//! Property-based tests of the plan/execute split: a reusable [`SpcgPlan`]
//! must be an exact drop-in for the one-shot pipeline on randomized
//! operators, options, and right-hand sides.

// The whole point of this suite is to pin the deprecated one-shot path
// against the plan API bit for bit.
#![allow(deprecated)]

use proptest::prelude::*;
use spcg_core::pipeline::{spcg_solve, IluFill, SpcgOptions};
use spcg_core::SpcgPlan;
use spcg_solver::SolverConfig;
use spcg_sparse::generators::{random_spd, with_magnitude_spread};
use spcg_sparse::Rng;

fn random_system(n: usize, seed: u64) -> (spcg_sparse::CsrMatrix<f64>, Vec<f64>) {
    let a = with_magnitude_spread(&random_spd(n, 4, 1.5, seed), 5.0, seed ^ 3);
    let mut rng = Rng::new(seed ^ 0xb0b);
    let b = (0..n).map(|_| rng.range(-1.0, 1.0)).collect();
    (a, b)
}

fn options(sparsify: bool, k: usize, history: bool) -> SpcgOptions {
    SpcgOptions {
        sparsify: if sparsify { Some(Default::default()) } else { None },
        ilu_fill: if k == 0 { IluFill::Ilu0 } else { IluFill::Iluk(k) },
        solver: SolverConfig::default().with_tol(1e-9).with_history(history),
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// `SpcgPlan::build` + `solve` is bitwise identical to the legacy
    /// one-shot `spcg_solve` — same iterate, same residual trajectory, same
    /// analysis decision — for every operator/options combination.
    #[test]
    fn plan_solve_is_bitwise_identical_to_spcg_solve(
        n in 20usize..80,
        seed in 0u64..300,
        sparsify in any::<bool>(),
        k in 0usize..3,
    ) {
        let (a, b) = random_system(n, seed);
        let opts = options(sparsify, k, true);
        let legacy = spcg_solve(&a, &b, &opts).unwrap();
        let plan = SpcgPlan::build(&a, &opts).unwrap();
        let result = plan.solve(&b).unwrap();
        prop_assert_eq!(&legacy.result.x, &result.x);
        prop_assert_eq!(&legacy.result.residual_history, &result.residual_history);
        prop_assert_eq!(legacy.result.iterations, result.iterations);
        prop_assert_eq!(legacy.result.stop, result.stop);
        prop_assert_eq!(
            legacy.decision.map(|d| d.chosen_ratio),
            plan.decision().map(|d| d.chosen_ratio)
        );
    }

    /// One plan solving a batch of right-hand sides via `solve_many` gives
    /// exactly the N results of N independent solves, in input order.
    #[test]
    fn solve_many_matches_n_independent_solves(
        n in 20usize..60,
        seed in 0u64..200,
        n_rhs in 1usize..6,
        sparsify in any::<bool>(),
    ) {
        let (a, _) = random_system(n, seed);
        let opts = options(sparsify, 0, false);
        let plan = SpcgPlan::build(&a, &opts).unwrap();
        let mut rng = Rng::new(seed ^ 0xfeed);
        let rhs: Vec<Vec<f64>> = (0..n_rhs)
            .map(|_| (0..n).map(|_| rng.range(-2.0, 2.0)).collect())
            .collect();
        let batched: Vec<_> = plan.solve_many(&rhs).into_iter().map(|r| r.unwrap()).collect();
        prop_assert_eq!(batched.len(), n_rhs);
        for (i, b) in rhs.iter().enumerate() {
            let solo = plan.solve(b).unwrap();
            prop_assert_eq!(&batched[i].x, &solo.x, "rhs {} iterate differs", i);
            prop_assert_eq!(batched[i].iterations, solo.iterations);
            prop_assert_eq!(batched[i].stop, solo.stop);
        }
        // ...and each matches the legacy one-shot pipeline too.
        let solo_legacy = spcg_solve(&a, &rhs[0], &opts).unwrap();
        prop_assert_eq!(&batched[0].x, &solo_legacy.result.x);
    }

    /// `refresh_values` with the *unchanged* matrix is a bitwise no-op: the
    /// refreshed plan reproduces the original's iterate, residual
    /// trajectory, iteration count, and stop reason exactly — and a
    /// `solve_from` warm start on a zeroed workspace equals the cold solve.
    #[test]
    fn refresh_with_unchanged_values_is_bitwise_identical(
        n in 20usize..80,
        seed in 0u64..300,
        sparsify in any::<bool>(),
        k in 0usize..3,
    ) {
        let (a, b) = random_system(n, seed);
        let opts = options(sparsify, k, true);
        let plan = SpcgPlan::build(&a, &opts).unwrap();
        let refreshed = plan.refresh_values(&a).unwrap();
        let base = plan.solve(&b).unwrap();
        let re = refreshed.solve(&b).unwrap();
        prop_assert_eq!(&base.x, &re.x);
        prop_assert_eq!(&base.residual_history, &re.residual_history);
        prop_assert_eq!(base.iterations, re.iterations);
        prop_assert_eq!(base.stop, re.stop);
        // A fresh workspace holds x0 = 0, so the "warm" start from it must
        // be the cold solve, bit for bit.
        let mut ws = refreshed.make_workspace();
        let stats = refreshed.solve_from(&b, &mut ws).unwrap();
        prop_assert_eq!(ws.solution(), &re.x[..]);
        prop_assert_eq!(stats.iterations, re.iterations);
    }

    /// A reused workspace never contaminates later solves: interleaving
    /// systems of different sizes through one workspace reproduces the
    /// fresh-workspace results exactly.
    #[test]
    fn workspace_reuse_across_plans_is_exact(
        n1 in 16usize..40,
        n2 in 41usize..80,
        seed in 0u64..100,
    ) {
        let (a1, b1) = random_system(n1, seed);
        let (a2, b2) = random_system(n2, seed ^ 1);
        let opts = options(true, 0, true);
        let p1 = SpcgPlan::build(&a1, &opts).unwrap();
        let p2 = SpcgPlan::build(&a2, &opts).unwrap();
        let mut ws = p1.make_workspace();
        // small -> large -> small through ONE workspace
        let r1 = p1.solve_with_workspace(&b1, &mut ws).unwrap();
        let r2 = p2.solve_with_workspace(&b2, &mut ws).unwrap();
        let r1_again = p1.solve_with_workspace(&b1, &mut ws).unwrap();
        prop_assert_eq!(&p1.solve(&b1).unwrap().x, &r1.x);
        prop_assert_eq!(&p2.solve(&b2).unwrap().x, &r2.x);
        prop_assert_eq!(&r1.x, &r1_again.x);
        prop_assert_eq!(r1.x.len(), n1);
        prop_assert_eq!(r2.x.len(), n2);
    }
}
