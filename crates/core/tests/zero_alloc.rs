//! Proof that the PCG hot path is allocation-free: a counting global
//! allocator wraps the system allocator, and after one warm-up solve every
//! further in-place solve on the same plan must perform **zero** heap
//! allocations — across the whole iteration loop, the triangular
//! preconditioner applications, and residual-history recording.
//!
//! This lives in its own integration-test binary so the `#[global_allocator]`
//! does not interfere with any other test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use spcg_core::{SpcgOptions, SpcgPlan};
use spcg_solver::SolverConfig;
use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};
use spcg_sparse::Rng;

/// Counts every allocation request routed through the global allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn warm_in_place_solves_do_not_allocate() {
    // Sparsified plan, sequential triangular solves (the level-parallel
    // path hands work to a thread pool, which is outside the allocation
    // contract), history recording ON so the push path is exercised too.
    let a = with_magnitude_spread(&poisson_2d(24, 24), 5.0, 11);
    let opts = SpcgOptions {
        solver: SolverConfig::default().with_tol(1e-10).with_history(true),
        ..Default::default()
    };
    let plan = SpcgPlan::build(&a, &opts).expect("plan builds");
    let mut ws = plan.make_workspace();

    // All right-hand sides are materialized before the measured region.
    let mut rng = Rng::new(42);
    let rhs: Vec<Vec<f64>> =
        (0..4).map(|_| (0..a.n_rows()).map(|_| rng.range(-1.0, 1.0)).collect()).collect();

    // Warm-up: sizes every buffer and reserves the history capacity.
    let warm = plan.solve_in_place(&rhs[0], &mut ws).expect("well-formed system");
    assert!(warm.converged(), "warm-up failed: {:?}", warm.stop);

    let before = allocation_count();
    for b in &rhs {
        // `SolveStats` and `SolverError` are both `Copy`: unwrapping the
        // result stays allocation-free.
        let stats = plan.solve_in_place(b, &mut ws).expect("well-formed system");
        assert!(stats.converged(), "solve failed: {:?}", stats.stop);
        assert!(stats.iterations > 0, "trivial solve would not exercise the loop");
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm PCG solves allocated {} time(s); the hot path must be allocation-free",
        after - before
    );
}

#[test]
fn warm_reordered_solves_do_not_allocate() {
    // Reordering must not cost the hot path its allocation-freedom: the
    // boundary permutation (gather b, scatter x) stages through a
    // workspace buffer that `make_workspace` pre-sizes, so a warm in-place
    // solve on a reordered plan is as allocation-free as a natural one.
    use spcg_core::OrderingKind;

    let a = with_magnitude_spread(&poisson_2d(24, 24), 5.0, 11);
    let opts = SpcgOptions {
        solver: SolverConfig::default().with_tol(1e-10).with_history(true),
        ..Default::default()
    }
    .with_ordering(OrderingKind::Coloring);
    let plan = SpcgPlan::build(&a, &opts).expect("plan builds");
    assert!(plan.is_reordered(), "coloring must actually permute");
    let mut ws = plan.make_workspace();

    let mut rng = Rng::new(23);
    let rhs: Vec<Vec<f64>> =
        (0..4).map(|_| (0..a.n_rows()).map(|_| rng.range(-1.0, 1.0)).collect()).collect();

    let warm = plan.solve_in_place(&rhs[0], &mut ws).expect("well-formed system");
    assert!(warm.converged(), "warm-up failed: {:?}", warm.stop);

    let before = allocation_count();
    for b in &rhs {
        let stats = plan.solve_in_place(b, &mut ws).expect("well-formed system");
        assert!(stats.converged(), "reordered solve failed: {:?}", stats.stop);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm reordered solves allocated {} time(s); the permuted hot path must stay \
         allocation-free",
        after - before
    );
}

#[test]
fn warm_dependency_block_solves_do_not_allocate() {
    // The dependency-block executor's warm path must match the sequential
    // contract: the block schedule (and its pooled release counters) is
    // built once at plan time, so a warm in-place solve performs zero heap
    // allocations. At this size the executor takes its inline path — the
    // threaded path hands work to spawned workers, which (like the
    // level-parallel executor) sits outside the allocation contract.
    use spcg_core::ExecutionStrategy;

    let a = with_magnitude_spread(&poisson_2d(20, 20), 5.0, 11);
    let opts = SpcgOptions {
        solver: SolverConfig::default().with_tol(1e-10).with_history(true),
        ..Default::default()
    }
    .with_exec(ExecutionStrategy::DependencyBlocks);
    let plan = SpcgPlan::build(&a, &opts).expect("plan builds");
    let mut ws = plan.make_workspace();

    let mut rng = Rng::new(37);
    let rhs: Vec<Vec<f64>> =
        (0..4).map(|_| (0..a.n_rows()).map(|_| rng.range(-1.0, 1.0)).collect()).collect();

    let warm = plan.solve_in_place(&rhs[0], &mut ws).expect("well-formed system");
    assert!(warm.converged(), "warm-up failed: {:?}", warm.stop);

    let before = allocation_count();
    for b in &rhs {
        let stats = plan.solve_in_place(b, &mut ws).expect("well-formed system");
        assert!(stats.converged(), "dependency-block solve failed: {:?}", stats.stop);
        assert!(stats.iterations > 0, "trivial solve would not exercise the loop");
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm dependency-block solves allocated {} time(s); the block schedule and its \
         counters must be resident from plan time",
        after - before
    );
}

#[test]
fn warm_mixed_precision_solves_do_not_allocate() {
    // The mixed tier adds an f32 staging buffer (down/upcast at the apply
    // boundary) and the iterative-refinement accumulators; `make_workspace`
    // pre-sizes all of them, so a warm mixed solve — demotion staging,
    // narrow triangular sweeps, refinement bookkeeping included — must be
    // exactly as allocation-free as the full-precision path.
    use spcg_core::PrecisionPolicy;

    let a = with_magnitude_spread(&poisson_2d(24, 24), 5.0, 11);
    let opts = SpcgOptions {
        solver: SolverConfig::default().with_tol(1e-8).with_history(true),
        ..Default::default()
    }
    .with_precision(PrecisionPolicy::MixedF32);
    let plan = SpcgPlan::build(&a, &opts).expect("plan builds");
    assert!(plan.is_mixed(), "MixedF32 must resolve to the mixed tier");
    let mut ws = plan.make_workspace();

    let mut rng = Rng::new(31);
    let rhs: Vec<Vec<f64>> =
        (0..4).map(|_| (0..a.n_rows()).map(|_| rng.range(-1.0, 1.0)).collect()).collect();

    let warm = plan.solve_in_place(&rhs[0], &mut ws).expect("well-formed system");
    assert!(warm.converged(), "warm-up failed: {:?}", warm.stop);

    let before = allocation_count();
    for b in &rhs {
        let stats = plan.solve_in_place(b, &mut ws).expect("well-formed system");
        assert!(stats.converged(), "mixed solve failed: {:?}", stats.stop);
        assert!(stats.iterations > 0, "trivial solve would not exercise the loop");
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm mixed-precision solves allocated {} time(s); staging and refinement buffers \
         must be pre-sized by make_workspace",
        after - before
    );
}

#[test]
fn warm_served_solves_do_not_allocate() {
    // The same contract, one layer up: a request through the solve
    // service's cached hot path — fingerprint, sharded-LRU hit (tick-stamp
    // bump, no list reshuffle), `Arc` clone, in-place PCG — must be
    // allocation-free once the plan is cached and the workspace is warm.
    use spcg_serve::{ServiceConfig, SolveService};

    let a = with_magnitude_spread(&poisson_2d(20, 20), 5.0, 13);
    let service: SolveService = SolveService::new(ServiceConfig {
        workers: 1,
        options: SpcgOptions {
            solver: SolverConfig::default().with_tol(1e-10).with_history(true),
            ..Default::default()
        },
        ..ServiceConfig::default()
    });
    let mut rng = Rng::new(17);
    let rhs: Vec<Vec<f64>> =
        (0..4).map(|_| (0..a.n_rows()).map(|_| rng.range(-1.0, 1.0)).collect()).collect();
    let mut ws = service.plan_for(&a).expect("plan builds").make_workspace();

    // Warm-up: builds and caches the plan, sizes the workspace.
    let warm = service.solve_in_place(&a, &rhs[0], &mut ws).expect("well-formed system");
    assert!(warm.converged(), "warm-up failed: {:?}", warm.stop);

    let before = allocation_count();
    for b in &rhs {
        let stats = service.solve_in_place(&a, b, &mut ws).expect("well-formed system");
        assert!(stats.converged(), "served solve failed: {:?}", stats.stop);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm served solves allocated {} time(s); the cached hot path must be allocation-free",
        after - before
    );
    let stats = service.stats();
    assert_eq!(stats.cache.hits, 5, "warm-up plus four measured solves hit the cache");
}

#[test]
fn warm_session_steps_do_not_allocate() {
    // The sequence-session contract: once a session's plan is resident and
    // its workspace warm, a step whose matrix values are *unchanged* does
    // no heap allocation — fingerprinting the matrix, recognizing the
    // value digest, and warm-starting PCG from the previous solution all
    // run in place. (A drifted step refreshes the factorization and is
    // allowed to allocate; that path is measured by the benches instead.)
    use spcg_serve::{ServiceConfig, SolveService};

    let a = with_magnitude_spread(&poisson_2d(20, 20), 5.0, 13);
    let service: SolveService = SolveService::new(ServiceConfig {
        workers: 1,
        options: SpcgOptions {
            solver: SolverConfig::default().with_tol(1e-10).with_history(true),
            ..Default::default()
        },
        ..ServiceConfig::default()
    });
    let mut rng = Rng::new(29);
    let rhs: Vec<Vec<f64>> =
        (0..4).map(|_| (0..a.n_rows()).map(|_| rng.range(-1.0, 1.0)).collect()).collect();

    let mut session = service.open_session(&a).expect("plan builds");
    // Warm-up step: sizes every buffer, leaves a resident solution.
    let warm = session.step(&a, &rhs[0]).expect("well-formed system");
    assert!(warm.converged(), "warm-up failed: {:?}", warm.stop);

    let before = allocation_count();
    for b in &rhs {
        let stats = session.step(&a, b).expect("well-formed system");
        assert!(stats.converged(), "session step failed: {:?}", stats.stop);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "warm session steps allocated {} time(s); an unchanged-values step must be \
         allocation-free",
        after - before
    );
}

#[test]
fn workspace_growth_allocates_then_settles() {
    // Growing to a larger system allocates (by design), but once grown the
    // workspace serves both sizes allocation-free.
    let small = poisson_2d(8, 8);
    let large = poisson_2d(16, 16);
    let opts = SpcgOptions { sparsify: None, ..Default::default() };
    let plan_s = SpcgPlan::build(&small, &opts).expect("small plan");
    let plan_l = SpcgPlan::build(&large, &opts).expect("large plan");
    let b_s = vec![1.0f64; small.n_rows()];
    let b_l = vec![1.0f64; large.n_rows()];

    let mut ws = plan_s.make_workspace();
    plan_s.solve_in_place(&b_s, &mut ws).unwrap();

    // First visit to the larger system must grow the buffers.
    let before_growth = allocation_count();
    plan_l.solve_in_place(&b_l, &mut ws).unwrap();
    assert!(allocation_count() > before_growth, "growth should allocate");

    // From here on, alternating sizes stays allocation-free.
    let before = allocation_count();
    plan_s.solve_in_place(&b_s, &mut ws).unwrap();
    plan_l.solve_in_place(&b_l, &mut ws).unwrap();
    plan_s.solve_in_place(&b_s, &mut ws).unwrap();
    assert_eq!(allocation_count() - before, 0, "alternating warm solves allocated");
}
