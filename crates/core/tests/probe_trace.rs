//! Golden-trace and property tests of the probe layer wired through the
//! plan pipeline: span nesting on real suite matrices, the iteration-count
//! invariant, bitwise identity of probed vs. unprobed solves, and JSON
//! round-tripping of recorded traces.

use proptest::prelude::*;
use spcg_core::pipeline::SpcgOptions;
use spcg_core::{ResilienceOptions, SpcgPlan};
use spcg_probe::{Counter, ProbeStop, RecordingProbe, RunTrace, RungKind, Span, SpanRecord};
use spcg_solver::{SolveResult, SolverConfig};
use spcg_sparse::generators::{random_spd, with_magnitude_spread};
use spcg_sparse::{CsrMatrix, Rng};
use spcg_suite::fast_collection;

fn random_system(n: usize, seed: u64) -> (CsrMatrix<f64>, Vec<f64>) {
    let a = with_magnitude_spread(&random_spd(n, 4, 1.5, seed), 5.0, seed ^ 3);
    let mut rng = Rng::new(seed ^ 0xb0b);
    let b = (0..n).map(|_| rng.range(-1.0, 1.0)).collect();
    (a, b)
}

/// Records one full pipeline run — analysis and solve — through a single
/// probe, so the trace covers every phase end to end.
fn record_run(
    a: &CsrMatrix<f64>,
    b: &[f64],
    opts: &SpcgOptions,
) -> (SpcgPlan<f64>, SolveResult<f64>, RunTrace) {
    let mut probe = RecordingProbe::new();
    let plan = SpcgPlan::build_probed(a, opts, &mut probe).expect("plan build");
    let mut ws = plan.make_workspace();
    let result = plan.solve_with_workspace_probed(b, &mut ws, &mut probe).expect("solve");
    (plan, result, probe.finish())
}

fn records_of(trace: &RunTrace, span: Span) -> Vec<SpanRecord> {
    trace.span_records().unwrap().into_iter().filter(|r| r.span == span).collect()
}

#[test]
fn golden_trace_spans_on_suite_matrices() {
    for spec in fast_collection().into_iter().step_by(7) {
        let a = spec.build();
        let b = spec.rhs(a.n_rows());
        let opts = SpcgOptions::default()
            .with_solver(SolverConfig::default().with_tol(1e-9).with_max_iters(600));
        let (plan, result, trace) = record_run(&a, &b, &opts);
        trace.validate_nesting().unwrap_or_else(|e| panic!("{}: {e}", spec.name));

        // Exactly one top-level analysis span and one top-level solve span,
        // in that order, never overlapping.
        let build = records_of(&trace, Span::PlanBuild);
        let solve = records_of(&trace, Span::SolveLoop);
        assert_eq!(build.len(), 1, "{}: PlanBuild spans", spec.name);
        assert_eq!(solve.len(), 1, "{}: SolveLoop spans", spec.name);
        assert_eq!(build[0].depth, 0, "{}", spec.name);
        assert_eq!(solve[0].depth, 0, "{}", spec.name);
        assert!(build[0].end_ns <= solve[0].start_ns, "{}: phases overlap", spec.name);

        // The analysis span contains the Algorithm 2 sweep (with one
        // CandidateEval per trace row) and the factorization.
        let sparsify = records_of(&trace, Span::Sparsify);
        assert_eq!(sparsify.len(), 1, "{}", spec.name);
        assert!(sparsify[0].depth >= 1 && sparsify[0].start_ns >= build[0].start_ns);
        let decision = plan.decision().expect("sparsification ran");
        let candidates = records_of(&trace, Span::CandidateEval);
        assert_eq!(candidates.len(), decision.trace.len(), "{}", spec.name);
        assert_eq!(
            trace.counter_total(Counter::CandidatesEvaluated),
            decision.trace.len() as u64,
            "{}",
            spec.name
        );
        assert_eq!(records_of(&trace, Span::Factorize).len(), 1, "{}", spec.name);

        // Per-iteration kernel spans live inside the solve loop.
        for kernel in [Span::Spmv, Span::PrecondApply, Span::Blas] {
            let recs = records_of(&trace, kernel);
            assert!(!recs.is_empty(), "{}: no {kernel} spans", spec.name);
            for r in &recs {
                assert!(
                    r.start_ns >= solve[0].start_ns && r.end_ns <= solve[0].end_ns,
                    "{}: {kernel} escaped the solve loop",
                    spec.name
                );
            }
        }
        // Triangular sweeps nest inside preconditioner applications.
        let lower = records_of(&trace, Span::TriangularLower);
        let upper = records_of(&trace, Span::TriangularUpper);
        assert_eq!(lower.len(), upper.len(), "{}", spec.name);
        assert!(lower.iter().all(|r| r.depth >= 2), "{}", spec.name);

        // The run is fully attributed: top-level spans cover (almost) the
        // whole wall time, and the iteration invariant holds.
        assert!(trace.coverage() >= 0.95, "{}: coverage {}", spec.name, trace.coverage());
        assert_eq!(trace.iterations(), result.iterations, "{}", spec.name);
    }
}

#[test]
fn guard_exit_is_recorded_once_with_its_classification() {
    let spec = &fast_collection()[0];
    let a = spec.build();
    let b = spec.rhs(a.n_rows());
    let opts = SpcgOptions::default().with_solver(SolverConfig::default().with_tol(1e-10));
    let (_, result, trace) = record_run(&a, &b, &opts);
    assert!(result.converged());
    let exits: Vec<ProbeStop> = trace
        .events
        .iter()
        .filter_map(|ev| match ev {
            spcg_probe::TraceEvent::Iteration { event, .. }
                if event.guard != ProbeStop::Running =>
            {
                Some(event.guard)
            }
            _ => None,
        })
        .collect();
    assert_eq!(exits, vec![ProbeStop::Converged]);
}

#[test]
fn recorded_trace_round_trips_through_json() {
    let spec = &fast_collection()[0];
    let a = spec.build();
    let b = spec.rhs(a.n_rows());
    let (_, _, trace) = record_run(&a, &b, &SpcgOptions::default());
    let json = serde_json::to_string(&trace).unwrap();
    let back: RunTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(back, trace);
    assert!(!trace.events.is_empty());
    assert!(trace.phase_table().contains("plan.build"));
    assert!(trace.phase_table().contains("solve.loop"));
}

#[test]
fn resilient_ladder_emits_rung_events() {
    let (a, b) = random_system(60, 9);
    let plan = SpcgPlan::build(&a, SpcgOptions::default()).unwrap();
    let mut ws = plan.make_workspace();
    let mut probe = RecordingProbe::new();
    let solve = plan
        .solve_resilient_with_workspace_probed(
            &b,
            &ResilienceOptions::default(),
            &mut ws,
            &mut probe,
        )
        .unwrap();
    assert!(solve.result.converged());
    let trace = probe.finish();
    trace.validate_nesting().unwrap();
    assert_eq!(records_of(&trace, Span::LadderAttempt).len(), 1);
    let rungs: Vec<_> = trace
        .events
        .iter()
        .filter_map(|ev| match ev {
            spcg_probe::TraceEvent::Rung { event, .. } => Some(*event),
            _ => None,
        })
        .collect();
    assert_eq!(rungs.len(), 1);
    assert_eq!(rungs[0].rung, RungKind::Planned);
    assert_eq!(rungs[0].attempt, 0);
    assert_eq!(rungs[0].outcome, ProbeStop::Converged);
}

#[test]
fn mixed_solve_emits_precision_counters() {
    use spcg_core::PrecisionPolicy;
    let (a, b) = random_system(80, 5);
    let opts = SpcgOptions::default()
        .with_solver(SolverConfig::default().with_tol(1e-8))
        .with_precision(PrecisionPolicy::MixedF32);
    let (plan, result, trace) = record_run(&a, &b, &opts);
    assert!(plan.is_mixed());
    assert!(result.converged());
    trace.validate_nesting().unwrap();
    // One narrow apply per iteration plus the initial residual application.
    assert_eq!(trace.counter_total(Counter::PrecisionMixedApplies), result.iterations as u64 + 1);
    // 4 bytes saved per stored factor entry (f64 → f32).
    let nnz = (plan.factors().l().nnz() + plan.factors().u().nnz()) as u64;
    assert_eq!(trace.counter_total(Counter::PrecisionBytesSaved), 4 * nnz);
    // A clean converging solve never restarts, and the counters render in
    // the phase table under their `precision.*` labels.
    assert_eq!(trace.counter_total(Counter::PrecisionRefineRestarts), 0);
    assert!(trace.phase_table().contains("precision.mixed_applies"));
    // A full-precision run emits none of them.
    let (_, _, full_trace) = record_run(&a, &b, &SpcgOptions::default());
    assert_eq!(full_trace.counter_total(Counter::PrecisionMixedApplies), 0);
    assert_eq!(full_trace.counter_total(Counter::PrecisionBytesSaved), 0);
}

#[test]
fn starved_mixed_solve_records_refine_restarts() {
    use spcg_core::PrecisionPolicy;
    // Starve the inner loop so iterative refinement must restart on the
    // exact f64 residual: the restarts surface both as a counter and as
    // timestamped Refine events in the trace.
    let (a, b) = random_system(90, 21);
    let reference = SpcgPlan::build(
        &a,
        SpcgOptions::default().with_solver(SolverConfig::default().with_tol(1e-9)),
    )
    .unwrap()
    .solve(&b)
    .unwrap();
    assert!(reference.converged());
    let starved_iters = (reference.iterations / 2).max(4);
    let opts = SpcgOptions::default()
        .with_solver(SolverConfig::default().with_tol(1e-9).with_max_iters(starved_iters))
        .with_precision(PrecisionPolicy::MixedF32);
    let (_, result, trace) = record_run(&a, &b, &opts);
    let restarts = trace.counter_total(Counter::PrecisionRefineRestarts);
    assert!(restarts >= 1, "a starved inner loop must refine at least once");
    let refine_events: Vec<_> = trace
        .events
        .iter()
        .filter_map(|ev| match ev {
            spcg_probe::TraceEvent::Refine { event, .. } => Some(*event),
            _ => None,
        })
        .collect();
    assert_eq!(refine_events.len(), restarts as usize);
    for (i, ev) in refine_events.iter().enumerate() {
        assert_eq!(ev.restart, i + 1, "restarts are numbered from 1 in order");
        assert!(ev.residual.is_finite());
    }
    // Refinement accumulates across restarts, so the solve still converges.
    assert!(result.converged(), "refinement must rescue the starved solve: {:?}", result.stop);
    trace.validate_nesting().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The number of healthy iteration events a probe records equals the
    /// iteration count the solver reports — on arbitrary operators.
    #[test]
    fn recorded_iterations_match_solve_result(
        n in 20usize..80,
        seed in 0u64..300,
        sparsify in any::<bool>(),
    ) {
        let (a, b) = random_system(n, seed);
        let opts = SpcgOptions::default()
            .with_sparsify(sparsify.then(Default::default))
            .with_solver(SolverConfig::default().with_tol(1e-9));
        let (_, result, trace) = record_run(&a, &b, &opts);
        prop_assert_eq!(trace.iterations(), result.iterations);
        trace.validate_nesting().unwrap();
    }

    /// Observation is free in the numeric sense too: a probed solve returns
    /// bitwise the same iterate and history as the unprobed one.
    #[test]
    fn probed_solve_is_bitwise_identical_to_unprobed(
        n in 20usize..80,
        seed in 0u64..300,
    ) {
        let (a, b) = random_system(n, seed);
        let opts = SpcgOptions::default()
            .with_solver(SolverConfig::default().with_tol(1e-9).with_history(true));
        let plain_plan = SpcgPlan::build(&a, &opts).unwrap();
        let plain = plain_plan.solve(&b).unwrap();
        let (_, probed, _) = record_run(&a, &b, &opts);
        prop_assert_eq!(&plain.x, &probed.x);
        prop_assert_eq!(&plain.residual_history, &probed.residual_history);
        prop_assert_eq!(plain.iterations, probed.iterations);
        prop_assert_eq!(plain.stop, probed.stop);
    }
}
