//! Simulated profiler counters — the §5.3 "Nsight Compute" substitute.
//!
//! Utilization is derived from the same byte/FLOP counters the cost model
//! produced: DRAM utilization is achieved bandwidth over peak, compute
//! utilization is achieved FLOP rate over peak, and the bound classification
//! follows whichever roofline leg the kernels sat on.

use crate::device::DeviceSpec;
use crate::kernel::KernelCost;
use serde::{Deserialize, Serialize};

/// Whether a run was limited by memory or by compute/latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Boundedness {
    /// Memory path is the longer roofline leg.
    MemoryBound,
    /// Compute/latency path is the longer leg.
    ComputeBound,
    /// Neither dominates: launch latency is the main cost.
    LatencyBound,
}

/// Profiler readout for one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Device profiled.
    pub device: String,
    /// Achieved DRAM utilization, percent of peak bandwidth.
    pub dram_utilization_pct: f64,
    /// Achieved compute utilization, percent of peak FLOP rate.
    pub compute_utilization_pct: f64,
    /// Fraction of time spent in launch overhead, percent.
    pub launch_fraction_pct: f64,
    /// Classification.
    pub bound: Boundedness,
}

/// Profiles an aggregated kernel cost on `device`.
pub fn profile(device: &DeviceSpec, cost: &KernelCost) -> ProfileReport {
    let time_s = (cost.time_us * 1e-6).max(1e-30);
    let dram = cost.bytes / time_s / (device.mem_bandwidth_gbps * 1e9) * 100.0;
    let compute = cost.flops / time_s / (device.peak_gflops * 1e9) * 100.0;
    let launch_frac = cost.launch_us / cost.time_us.max(1e-30) * 100.0;
    let bound = if launch_frac > 50.0 {
        Boundedness::LatencyBound
    } else if cost.mem_us >= cost.compute_us {
        Boundedness::MemoryBound
    } else {
        Boundedness::ComputeBound
    };
    ProfileReport {
        device: device.name.clone(),
        dram_utilization_pct: dram,
        compute_utilization_pct: compute,
        launch_fraction_pct: launch_frac,
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::spmv_cost;
    use crate::pcg::pcg_iteration_cost;
    use spcg_precond::{ilu0, ExecutionStrategy};
    use spcg_sparse::generators::poisson_2d;

    #[test]
    fn utilizations_are_bounded() {
        let d = DeviceSpec::a100();
        let a = poisson_2d(50, 50);
        let p = profile(&d, &spmv_cost(&d, &a));
        assert!(p.dram_utilization_pct > 0.0 && p.dram_utilization_pct <= 100.0 + 1e-9);
        assert!(p.compute_utilization_pct >= 0.0 && p.compute_utilization_pct <= 100.0 + 1e-9);
    }

    /// The §5.3 storyline: wavefront-limited preconditioner kernels are
    /// latency/launch dominated, with single-digit DRAM utilization.
    #[test]
    fn trisolve_heavy_iteration_is_launch_dominated() {
        let d = DeviceSpec::a100();
        let a = poisson_2d(40, 40);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let c = pcg_iteration_cost(&d, &a, &f).aggregate();
        let p = profile(&d, &c);
        assert!(p.dram_utilization_pct < 20.0, "dram {}", p.dram_utilization_pct);
        assert_eq!(p.bound, Boundedness::LatencyBound);
    }

    #[test]
    fn big_streaming_kernel_is_memory_bound() {
        let d = DeviceSpec::a100();
        let k = crate::kernel::KernelCost::assemble(&d, 1e9, 1e6, 0.0);
        let p = profile(&d, &k);
        assert_eq!(p.bound, Boundedness::MemoryBound);
        assert!(p.dram_utilization_pct > 90.0);
    }

    #[test]
    fn flop_heavy_kernel_is_compute_bound() {
        let d = DeviceSpec::a100();
        let k = crate::kernel::KernelCost::assemble(&d, 1e3, 1e12, 0.0);
        let p = profile(&d, &k);
        assert_eq!(p.bound, Boundedness::ComputeBound);
    }
}
