//! Execution-time model of the ILU factorization phase (Figure 6 of the
//! paper studies exactly this: sparsified factorization speedup).
//!
//! Rows factor in wavefront order of the matrix's lower-triangular
//! dependence DAG; each level is one sweep with a barrier. Per-row work is
//! the IKJ update count: for every eliminated column `k < i`, one division
//! plus up to `2·nnz_U(k)` multiply-adds.

use crate::device::DeviceSpec;
use crate::kernel::{value_bytes_of, KernelCost, IDX_BYTES};
use spcg_sparse::{CsrMatrix, Scalar};
use spcg_wavefront::{LevelSchedule, Triangle};

/// Per-row factorization workload: (flops, entries touched).
fn row_work<T: Scalar>(a: &CsrMatrix<T>, upper_nnz: &[usize], i: usize) -> (f64, f64) {
    let mut flops = 0.0;
    let mut touched = a.row_nnz(i) as f64;
    for &k in a.row_cols(i) {
        if k >= i {
            break;
        }
        flops += 1.0 + 2.0 * upper_nnz[k] as f64;
        touched += upper_nnz[k] as f64;
    }
    (flops, touched)
}

/// Prices a full numeric ILU sweep over the (possibly fill-padded) pattern
/// of `a` on `device`. For ILU(0) pass `a` itself (or the sparsified `Â`);
/// for ILU(K) pass the fill-padded pattern matrix from
/// `spcg_precond::iluk_pattern_matrix`.
pub fn ilu_factorization_cost<T: Scalar>(device: &DeviceSpec, a: &CsrMatrix<T>) -> KernelCost {
    let n = a.n_rows();
    // Upper-part sizes per row (entries with col >= row, excluding none).
    let mut upper_nnz = vec![0usize; n];
    for (i, u) in upper_nnz.iter_mut().enumerate() {
        *u = a.row_cols(i).iter().filter(|&&c| c > i).count();
    }
    let schedule = LevelSchedule::build(a, Triangle::Lower);

    let mut total = KernelCost::default();
    for level in schedule.levels() {
        let mut flops = 0.0;
        let mut touched = 0.0;
        let mut max_row_flops: f64 = 0.0;
        for &i in level {
            let (f, t) = row_work(a, &upper_nnz, i);
            flops += f;
            touched += t;
            max_row_flops = max_row_flops.max(f);
        }
        let bytes = touched * (value_bytes_of::<T>() + IDX_BYTES);
        let rows = level.len() as f64;
        let waves = (rows / device.parallel_rows() as f64).ceil().max(1.0);
        let serial_us = waves * device.serial_entry_time_us(max_row_flops / 2.0);
        total = total.add(&KernelCost::assemble(device, bytes, flops, serial_us));
    }
    total
}

/// Serial (SuperLU-style) factorization cost on a CPU: the paper computes
/// ILU(K) factors on the host because the fill's changing dependences
/// defeat a direct CUDA port (§3.3). No wavefront parallelism: one core
/// streams the whole IKJ sweep, plus a symbolic-analysis pass over the
/// fill pattern.
pub fn ilu_factorization_cost_serial<T: Scalar>(
    device: &DeviceSpec,
    a: &CsrMatrix<T>,
) -> KernelCost {
    let n = a.n_rows();
    let mut upper_nnz = vec![0usize; n];
    for (i, u) in upper_nnz.iter_mut().enumerate() {
        *u = a.row_cols(i).iter().filter(|&&c| c > i).count();
    }
    let mut flops = 0.0;
    let mut touched = 0.0;
    for i in 0..n {
        let mut f = 0.0;
        let mut t = a.row_nnz(i) as f64;
        for &k in a.row_cols(i) {
            if k >= i {
                break;
            }
            f += 1.0 + 2.0 * upper_nnz[k] as f64;
            t += upper_nnz[k] as f64;
        }
        flops += f;
        touched += t;
    }
    let bytes = touched * (value_bytes_of::<T>() + IDX_BYTES);
    // Sustained sparse single-core throughput ~3 GFLOP/s; symbolic
    // analysis ~50 ns per pattern entry (SPARSKIT/SuperLU-like).
    let compute_us = flops / 3_000.0;
    let symbolic_us = 0.05 * a.nnz() as f64;
    let mem_us = device.mem_time_us(bytes) * 8.0; // single core: ~1/8 of socket BW
    KernelCost {
        time_us: symbolic_us + compute_us.max(mem_us),
        launch_us: 0.0,
        mem_us,
        compute_us: compute_us + symbolic_us,
        bytes,
        flops,
    }
}

/// Serial cost of a **value-only numeric re-sweep** over an
/// already-analyzed pattern: the
/// [`ilu_factorization_cost_serial`] IKJ sweep with the symbolic-analysis
/// pass removed — a refresh scatters new values onto the cached pattern,
/// so no dependence discovery runs.
pub fn ilu_refresh_cost_serial<T: Scalar>(device: &DeviceSpec, a: &CsrMatrix<T>) -> KernelCost {
    let full = ilu_factorization_cost_serial(device, a);
    let symbolic_us = 0.05 * a.nnz() as f64;
    KernelCost {
        time_us: full.time_us - symbolic_us,
        compute_us: full.compute_us - symbolic_us,
        ..full
    }
}

/// Host-side inspector cost: building the dependence levels. Modeled as a
/// linear scan of the structure plus per-level bookkeeping.
pub fn inspector_cost_us<T: Scalar>(a: &CsrMatrix<T>, n_levels: usize) -> f64 {
    0.002 * a.nnz() as f64 + 0.1 * n_levels as f64
}

/// Device-side sparsification cost: a radix select over the off-diagonal
/// magnitudes plus one compaction pass — linear in nnz with a small
/// constant (thrust-style `nth_element` + `copy_if`).
pub fn sparsify_cost_us(nnz: usize) -> f64 {
    2.0 + 0.0004 * nnz as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::iluk_pattern_matrix;
    use spcg_sparse::generators::poisson_2d;

    #[test]
    fn factorization_cost_scales_with_size() {
        let d = DeviceSpec::a100();
        let small = ilu_factorization_cost(&d, &poisson_2d(10, 10));
        let large = ilu_factorization_cost(&d, &poisson_2d(60, 60));
        assert!(large.time_us > small.time_us);
        assert!(large.flops > small.flops);
    }

    /// Sparsifying before factorization must never increase the simulated
    /// factorization time (Figure 6's premise).
    #[test]
    fn sparsified_factorization_is_cheaper() {
        let d = DeviceSpec::a100();
        let a = spcg_sparse::generators::with_magnitude_spread(&poisson_2d(24, 24), 6.0, 3);
        let sp = spcg_core_sparsify(&a, 10.0);
        let full = ilu_factorization_cost(&d, &a);
        let slim = ilu_factorization_cost(&d, &sp);
        assert!(slim.time_us <= full.time_us, "{} > {}", slim.time_us, full.time_us);
    }

    // Minimal local sparsifier to avoid a dev-dependency cycle with
    // spcg-core: drop the 10% smallest off-diagonal entries (pairs).
    fn spcg_core_sparsify(
        a: &spcg_sparse::CsrMatrix<f64>,
        pct: f64,
    ) -> spcg_sparse::CsrMatrix<f64> {
        let mut offs: Vec<(usize, usize, f64)> =
            a.iter().filter(|&(r, c, _)| r < c).map(|(r, c, v)| (r, c, v.abs())).collect();
        offs.sort_by(|x, y| x.2.partial_cmp(&y.2).unwrap());
        let target = ((pct / 100.0) * a.nnz() as f64) as usize / 2;
        let drop: std::collections::HashSet<(usize, usize)> =
            offs.into_iter().take(target).map(|(r, c, _)| (r, c)).collect();
        a.filter(|r, c, _| r == c || !(drop.contains(&(r, c)) || drop.contains(&(c, r))))
    }

    /// ILU(K) fill makes factorization cost grow with K.
    #[test]
    fn fill_increases_cost() {
        let d = DeviceSpec::a100();
        let a = poisson_2d(16, 16);
        let (p0, _) = iluk_pattern_matrix(&a, 0).unwrap();
        let (p2, _) = iluk_pattern_matrix(&a, 2).unwrap();
        let c0 = ilu_factorization_cost(&d, &p0);
        let c2 = ilu_factorization_cost(&d, &p2);
        assert!(c2.time_us > c0.time_us);
    }

    #[test]
    fn host_costs_are_monotone() {
        assert!(sparsify_cost_us(10_000) > sparsify_cost_us(1_000));
        let a = poisson_2d(10, 10);
        assert!(inspector_cost_us(&a, 20) > inspector_cost_us(&a, 2));
    }
}
