//! Simulated timing of a full PCG run: per-iteration cost assembled from the
//! kernel primitives, plus end-to-end composition (sparsify + inspector +
//! factorization + iterations × per-iteration).
//!
//! Numerics (iteration counts, convergence) come from the *real* solver in
//! `spcg-solver`; only wall-clock time is simulated. That split is what lets
//! a CPU-only reproduction preserve the paper's speedup structure.

use crate::device::DeviceSpec;
use crate::ilu::{ilu_factorization_cost, inspector_cost_us, sparsify_cost_us};
use crate::kernel::{dot_cost, elementwise_cost, spmv_cost, value_bytes_of, KernelCost};
use crate::trisolve::{trisolve_block_cost, trisolve_cost, BlockWorkload, TrisolveWorkload};
use serde::{Deserialize, Serialize};
use spcg_precond::{AinvPreconditioner, ExecutionStrategy, IluFactors};
use spcg_sparse::{CsrMatrix, Scalar};

/// Cost breakdown of one PCG iteration on a device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationCost {
    /// SpMV `w = A p` (line 9).
    pub spmv: KernelCost,
    /// Forward solve with `L` (half of line 13).
    pub lower: KernelCost,
    /// Backward solve with `U` (other half of line 13).
    pub upper: KernelCost,
    /// Dots + axpy updates (lines 10–12, 14–15).
    pub blas: KernelCost,
}

impl IterationCost {
    /// Total microseconds per iteration.
    pub fn total_us(&self) -> f64 {
        self.spmv.time_us + self.lower.time_us + self.upper.time_us + self.blas.time_us
    }

    /// Component-wise aggregate (for the profiler).
    pub fn aggregate(&self) -> KernelCost {
        self.spmv.add(&self.lower).add(&self.upper).add(&self.blas)
    }

    /// Synchronizations per iteration (kernel launches).
    pub fn launches(&self) -> f64 {
        self.aggregate().launch_us
    }
}

/// Prices one PCG iteration given the system matrix and the preconditioner
/// factors (with their level schedules). Factor traffic is priced at `T`'s
/// own width; for demoted factors use
/// [`pcg_iteration_cost_with_factor_bytes`].
pub fn pcg_iteration_cost<T: Scalar>(
    device: &DeviceSpec,
    a: &CsrMatrix<T>,
    factors: &IluFactors<T>,
) -> IterationCost {
    pcg_iteration_cost_with_factor_bytes(device, a, factors, value_bytes_of::<T>())
}

/// Prices one PCG iteration whose preconditioner apply runs at
/// `factor_value_bytes` per stored value (4.0 for f32-demoted factors under
/// an f64 outer loop — the triangular solves stage their vectors narrow
/// too, so the whole apply moves narrow values). SpMV and the BLAS-1 tail
/// stay at the outer loop's full width.
///
/// The triangular sweeps are priced under the factors' own
/// [`ExecutionStrategy`]: barrier-per-level for `Sequential`/`LevelBarrier`
/// (the launch term the paper attacks), one release per block for
/// `DependencyBlocks`.
pub fn pcg_iteration_cost_with_factor_bytes<T: Scalar>(
    device: &DeviceSpec,
    a: &CsrMatrix<T>,
    factors: &IluFactors<T>,
    factor_value_bytes: f64,
) -> IterationCost {
    let n = a.n_rows();
    let spmv = spmv_cost(device, a);
    let blocked = factors.exec() == ExecutionStrategy::DependencyBlocks;
    let (lower, upper) = if blocked {
        let lw = BlockWorkload::new(factors.l(), factors.l_blocks())
            .with_value_bytes(factor_value_bytes);
        let uw = BlockWorkload::new(factors.u(), factors.u_blocks())
            .with_value_bytes(factor_value_bytes);
        (trisolve_block_cost(device, &lw), trisolve_block_cost(device, &uw))
    } else {
        let lw = TrisolveWorkload::new(factors.l(), factors.l_schedule())
            .with_value_bytes(factor_value_bytes);
        let uw = TrisolveWorkload::new(factors.u(), factors.u_schedule())
            .with_value_bytes(factor_value_bytes);
        (trisolve_cost(device, &lw), trisolve_cost(device, &uw))
    };
    // 2 dots + 3 three-stream vector updates per iteration.
    let blas = dot_cost::<T>(device, n)
        .add(&dot_cost::<T>(device, n))
        .add(&elementwise_cost::<T>(device, n, 3.0))
        .add(&elementwise_cost::<T>(device, n, 3.0))
        .add(&elementwise_cost::<T>(device, n, 3.0));
    IterationCost { spmv, lower, upper, blas }
}

/// Prices one PCG iteration under a *level-free* (approximate-inverse)
/// preconditioner: the triangular-solve slots of [`IterationCost`] hold
/// plain SpMVs over the stored inverse factors (`G` then `Gᵀ` for FSAI,
/// the single `M` for SPAI — the unused slot stays zero), and Jacobi's
/// diagonal scale prices as one two-stream elementwise kernel. No level
/// barriers, no block releases: each apply is ordinary launch-plus-roofline
/// SpMV traffic, which is the whole point of the family.
pub fn ainv_iteration_cost<T: Scalar>(
    device: &DeviceSpec,
    a: &CsrMatrix<T>,
    ainv: &AinvPreconditioner<T>,
) -> IterationCost {
    let n = a.n_rows();
    let spmv = spmv_cost(device, a);
    let factors = ainv.factor_matrices();
    let lower = factors
        .first()
        .map_or_else(|| elementwise_cost::<T>(device, n, 2.0), |m| spmv_cost(device, m));
    let upper = factors.get(1).map(|m| spmv_cost(device, m)).unwrap_or_default();
    let blas = dot_cost::<T>(device, n)
        .add(&dot_cost::<T>(device, n))
        .add(&elementwise_cost::<T>(device, n, 3.0))
        .add(&elementwise_cost::<T>(device, n, 3.0))
        .add(&elementwise_cost::<T>(device, n, 3.0));
    IterationCost { spmv, lower, upper, blas }
}

/// Simulated construction cost of an approximate inverse: every row of the
/// first stored factor solves an independent dense system of order `k`
/// (its stored support), so one device pass gathers `k²` entries per row
/// and spends `(2/3)k³` flops per row on the factorizations, all rows in
/// parallel. Mirrors the plan-time pricing in `spcg-core`'s kind search.
pub fn ainv_setup_cost<T: Scalar>(device: &DeviceSpec, ainv: &AinvPreconditioner<T>) -> KernelCost {
    let entry_bytes = value_bytes_of::<T>() + crate::kernel::IDX_BYTES;
    let (bytes, flops) = ainv
        .factor_matrices()
        .first()
        .map(|g| {
            (0..g.n_rows()).fold((0.0, 0.0), |(b, f), r| {
                let k = g.row_nnz(r) as f64;
                (b + k * k * entry_bytes, f + 2.0 / 3.0 * k * k * k)
            })
        })
        .unwrap_or((0.0, 0.0));
    KernelCost::assemble(device, bytes, flops, 0.0)
}

/// Simulated end-to-end time of one solver configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EndToEndCost {
    /// Host sparsification time, µs (0 for the baseline).
    pub sparsify_us: f64,
    /// Host inspector (level-schedule construction), µs.
    pub inspector_us: f64,
    /// Device factorization time, µs.
    pub factorization_us: f64,
    /// Device per-iteration time, µs.
    pub per_iteration_us: f64,
    /// Iterations executed (from the real solver).
    pub iterations: usize,
}

impl EndToEndCost {
    /// Total microseconds.
    pub fn total_us(&self) -> f64 {
        self.sparsify_us
            + self.inspector_us
            + self.factorization_us
            + self.per_iteration_us * self.iterations as f64
    }
}

/// Assembles the end-to-end cost for a run that factored `pattern` (the
/// matrix handed to ILU — `A`, `Â`, or a fill-padded pattern), used
/// `factors` inside PCG on system `a`, and took `iterations` iterations.
///
/// `sparsified` controls whether the host sparsification cost is included.
pub fn end_to_end_cost<T: Scalar>(
    device: &DeviceSpec,
    a: &CsrMatrix<T>,
    pattern: &CsrMatrix<T>,
    factors: &IluFactors<T>,
    iterations: usize,
    sparsified: bool,
) -> EndToEndCost {
    let iter = pcg_iteration_cost(device, a, factors);
    let fact = ilu_factorization_cost(device, pattern);
    let n_levels = factors.l_schedule().n_levels() + factors.u_schedule().n_levels();
    EndToEndCost {
        sparsify_us: if sparsified { sparsify_cost_us(a.nnz()) } else { 0.0 },
        inspector_us: inspector_cost_us(pattern, n_levels),
        factorization_us: fact.time_us,
        per_iteration_us: iter.total_us(),
        iterations,
    }
}

/// GFLOP/s achieved by a simulated iteration, priced with the *baseline*
/// FLOP count per the paper's methodology ("compute the theoretical FLOPs
/// of the non-sparsified baseline and reuse it for all methods").
pub fn iteration_gflops(baseline_flops: f64, per_iteration_us: f64) -> f64 {
    if per_iteration_us <= 0.0 {
        0.0
    } else {
        baseline_flops / (per_iteration_us * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::{ilu0, ExecutionStrategy};
    use spcg_sparse::generators::poisson_2d;

    fn setup(n: usize) -> (CsrMatrix<f64>, IluFactors<f64>) {
        let a = poisson_2d(n, n);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        (a, f)
    }

    #[test]
    fn iteration_cost_is_positive_and_decomposes() {
        let (a, f) = setup(20);
        let d = DeviceSpec::a100();
        let c = pcg_iteration_cost(&d, &a, &f);
        assert!(c.total_us() > 0.0);
        let agg = c.aggregate();
        assert!((agg.time_us - c.total_us()).abs() < 1e-9);
        // triangular solves dominate a wavefront-limited matrix on GPU
        assert!(c.lower.time_us + c.upper.time_us > c.spmv.time_us);
    }

    /// Fewer wavefronts in the factors ⇒ cheaper iteration. This is the
    /// monotonicity property the whole paper rests on.
    #[test]
    fn fewer_wavefronts_cheaper_iteration() {
        let (a, f) = setup(24);
        let d = DeviceSpec::a100();
        let full = pcg_iteration_cost(&d, &a, &f);
        // Identity factors: single wavefront each.
        let ident = IluFactors::new(
            CsrMatrix::<f64>::identity(a.n_rows()),
            CsrMatrix::<f64>::identity(a.n_rows()),
            ExecutionStrategy::Sequential,
            "identity".into(),
        );
        let cheap = pcg_iteration_cost(&d, &a, &ident);
        assert!(cheap.total_us() < full.total_us());
        assert!(cheap.launches() < full.launches());
    }

    #[test]
    fn end_to_end_composition() {
        let (a, f) = setup(16);
        let d = DeviceSpec::a100();
        let e = end_to_end_cost(&d, &a, &a, &f, 50, true);
        assert!(e.sparsify_us > 0.0);
        let base = end_to_end_cost(&d, &a, &a, &f, 50, false);
        assert_eq!(base.sparsify_us, 0.0);
        assert!((e.total_us() - base.total_us() - e.sparsify_us).abs() < 1e-9);
        assert!(e.total_us() > e.per_iteration_us * 50.0);
    }

    #[test]
    fn a100_beats_v100_on_bandwidth_bound_spmv() {
        let (a, f) = setup(64);
        let ca = pcg_iteration_cost(&DeviceSpec::a100(), &a, &f);
        let cv = pcg_iteration_cost(&DeviceSpec::v100(), &a, &f);
        assert!(ca.spmv.time_us < cv.spmv.time_us);
    }

    #[test]
    fn gflops_formula() {
        assert_eq!(iteration_gflops(2e6, 1000.0), 2.0);
        assert_eq!(iteration_gflops(1.0, 0.0), 0.0);
    }

    /// Switching the same factors to dependency-block execution cuts the
    /// iteration's launch term (1 launch + cheap releases per sweep instead
    /// of a launch per level) while moving the same bytes and flops.
    #[test]
    fn dependency_blocks_cut_the_iteration_launch_term() {
        let (a, f) = setup(32);
        let d = DeviceSpec::a100();
        let barrier = pcg_iteration_cost(&d, &a, &f);
        let blocked =
            pcg_iteration_cost(&d, &a, &f.clone().with_exec(ExecutionStrategy::DependencyBlocks));
        assert!(blocked.launches() < barrier.launches());
        assert!(blocked.total_us() < barrier.total_us());
        assert_eq!(blocked.spmv, barrier.spmv);
        assert_eq!(blocked.blas, barrier.blas);
        let agg_b = blocked.aggregate();
        let agg_l = barrier.aggregate();
        assert!((agg_b.bytes - agg_l.bytes).abs() < 1e-9);
        assert_eq!(agg_b.flops, agg_l.flops);
    }

    /// Auto resolves to whichever parallel strategy prices cheaper — on a
    /// deep Poisson schedule that is the dependency blocks.
    #[test]
    fn auto_resolves_to_blocks_on_deep_schedules() {
        let a = poisson_2d(32, 32);
        let f = ilu0(&a, ExecutionStrategy::Auto).unwrap();
        assert_eq!(f.exec(), ExecutionStrategy::DependencyBlocks);
    }

    /// Demoted factors shrink only the preconditioner-apply traffic: the
    /// SpMV and BLAS-1 tail are untouched, and the trisolve byte counts
    /// drop by the value-width ratio less the index residue.
    #[test]
    fn demoted_factor_bytes_cut_only_the_apply() {
        let (a, f) = setup(24);
        let d = DeviceSpec::a100();
        let full = pcg_iteration_cost(&d, &a, &f);
        let mixed = pcg_iteration_cost_with_factor_bytes(&d, &a, &f, 4.0);
        assert_eq!(full.spmv, mixed.spmv);
        assert_eq!(full.blas, mixed.blas);
        let apply_ratio =
            (full.lower.bytes + full.upper.bytes) / (mixed.lower.bytes + mixed.upper.bytes);
        assert!(apply_ratio >= 1.5, "trisolve bytes ratio {apply_ratio} < 1.5");
        assert!(mixed.total_us() <= full.total_us());
    }
}
