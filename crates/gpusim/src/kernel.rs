//! Cost primitives of the execution model.
//!
//! Every kernel is priced as
//! `launch_overhead + max(memory_time, compute_time)` — the classic
//! roofline with a fixed launch latency. The returned [`KernelCost`] keeps
//! the components so the profiler can attribute utilization.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};
use spcg_sparse::{CsrMatrix, Scalar};

/// Cost breakdown of one simulated kernel (all microseconds, plus the raw
/// byte/FLOP counters the times were derived from).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Total time, µs.
    pub time_us: f64,
    /// Launch/barrier overhead, µs.
    pub launch_us: f64,
    /// Memory component, µs.
    pub mem_us: f64,
    /// Compute component, µs.
    pub compute_us: f64,
    /// Bytes moved.
    pub bytes: f64,
    /// FLOPs executed.
    pub flops: f64,
}

impl KernelCost {
    /// Rooflined total from components.
    pub fn assemble(device: &DeviceSpec, bytes: f64, flops: f64, serial_us: f64) -> Self {
        let mem_us = device.mem_time_us(bytes);
        let compute_us = (flops * device.us_per_flop()).max(serial_us);
        let launch_us = device.launch_overhead_us;
        Self {
            time_us: launch_us + mem_us.max(compute_us),
            launch_us,
            mem_us,
            compute_us,
            bytes,
            flops,
        }
    }

    /// Component-wise sum (launches accumulate too).
    pub fn add(&self, other: &KernelCost) -> KernelCost {
        KernelCost {
            time_us: self.time_us + other.time_us,
            launch_us: self.launch_us + other.launch_us,
            mem_us: self.mem_us + other.mem_us,
            compute_us: self.compute_us + other.compute_us,
            bytes: self.bytes + other.bytes,
            flops: self.flops + other.flops,
        }
    }
}

/// Stored-value size in bytes for the scalar type being simulated. The
/// model prices memory traffic by the width actually moved, so f64 systems
/// pay twice the bandwidth of f32 — and demoted f32 factors inside an f64
/// solve pay half the factor traffic of full-precision ones.
pub fn value_bytes_of<T: Scalar>() -> f64 {
    std::mem::size_of::<T>() as f64
}

/// Index size in bytes (cuSPARSE uses 32-bit indices).
pub const IDX_BYTES: f64 = 4.0;

/// Cost of an elementwise vector kernel over `n` lanes of `T` touching
/// `streams` vectors (axpy: 3 streams — read x, read+write y).
pub fn elementwise_cost<T: Scalar>(device: &DeviceSpec, n: usize, streams: f64) -> KernelCost {
    let bytes = n as f64 * value_bytes_of::<T>() * streams;
    let flops = 2.0 * n as f64;
    KernelCost::assemble(device, bytes, flops, 0.0)
}

/// Cost of a dot-product over `n` lanes of `T` (two reads, tree reduction
/// ⇒ one extra launch's worth of latency folded into compute).
pub fn dot_cost<T: Scalar>(device: &DeviceSpec, n: usize) -> KernelCost {
    let bytes = n as f64 * value_bytes_of::<T>() * 2.0;
    let flops = 2.0 * n as f64;
    let reduction_us = (n as f64).log2().max(1.0) * 0.02;
    KernelCost::assemble(device, bytes, flops, reduction_us)
}

/// Cost of CSR SpMV `y = A x` with one thread per row.
pub fn spmv_cost<T: Scalar>(device: &DeviceSpec, a: &CsrMatrix<T>) -> KernelCost {
    let n = a.n_rows() as f64;
    let nnz = a.nnz() as f64;
    let val = value_bytes_of::<T>();
    // values + column indices once, row pointers, x gathered (approximate
    // as nnz reads through cache at half cost), y written.
    let bytes = nnz * (val + IDX_BYTES) + (n + 1.0) * IDX_BYTES + 0.5 * nnz * val + n * val;
    let flops = 2.0 * nnz;
    // longest row serializes its thread; rows beyond the device width queue
    let waves = (n / device.parallel_rows() as f64).ceil().max(1.0);
    let max_row = (0..a.n_rows()).map(|r| a.row_nnz(r)).max().unwrap_or(0) as f64;
    let serial_us = waves * device.serial_entry_time_us(max_row);
    KernelCost::assemble(device, bytes, flops, serial_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::poisson_2d;

    #[test]
    fn roofline_takes_max_of_components() {
        let d = DeviceSpec::a100();
        let k = KernelCost::assemble(&d, 1e6, 1e3, 0.0);
        assert!(k.mem_us > k.compute_us);
        assert!((k.time_us - (k.launch_us + k.mem_us)).abs() < 1e-12);
        let k2 = KernelCost::assemble(&d, 10.0, 1e9, 0.0);
        assert!(k2.compute_us > k2.mem_us);
        assert!((k2.time_us - (k2.launch_us + k2.compute_us)).abs() < 1e-12);
    }

    #[test]
    fn add_accumulates_components() {
        let d = DeviceSpec::a100();
        let a = elementwise_cost::<f64>(&d, 1000, 3.0);
        let b = dot_cost::<f64>(&d, 1000);
        let s = a.add(&b);
        assert!((s.time_us - (a.time_us + b.time_us)).abs() < 1e-12);
        assert!((s.bytes - (a.bytes + b.bytes)).abs() < 1e-9);
        assert!((s.launch_us - 2.0 * d.launch_overhead_us).abs() < 1e-12);
    }

    #[test]
    fn spmv_cost_scales_with_nnz() {
        let d = DeviceSpec::a100();
        let small = spmv_cost(&d, &poisson_2d(10, 10));
        let large = spmv_cost(&d, &poisson_2d(100, 100));
        assert!(large.time_us > small.time_us);
        assert!(large.bytes > 90.0 * small.bytes / 2.0);
    }

    #[test]
    fn launch_dominates_tiny_kernels() {
        let d = DeviceSpec::a100();
        let k = elementwise_cost::<f64>(&d, 16, 3.0);
        assert!(k.launch_us / k.time_us > 0.9);
    }

    #[test]
    fn cpu_vs_gpu_launch() {
        let a100 = DeviceSpec::a100();
        let cpu = DeviceSpec::epyc_7413();
        let g = elementwise_cost::<f64>(&a100, 1 << 20, 3.0);
        let c = elementwise_cost::<f64>(&cpu, 1 << 20, 3.0);
        // Big streaming kernels favour GPU bandwidth.
        assert!(g.time_us < c.time_us);
    }

    /// The pricing rule the mixed-precision tier leans on: the bandwidth
    /// term of every vector kernel scales with the element width, so f64
    /// traffic costs exactly twice f32 traffic.
    #[test]
    fn f64_bandwidth_term_is_twice_f32() {
        let d = DeviceSpec::a100();
        let n = 1 << 18;
        for (wide, narrow) in [
            (dot_cost::<f64>(&d, n), dot_cost::<f32>(&d, n)),
            (elementwise_cost::<f64>(&d, n, 3.0), elementwise_cost::<f32>(&d, n, 3.0)),
        ] {
            assert!((wide.bytes - 2.0 * narrow.bytes).abs() < 1e-9);
            assert!((wide.mem_us - 2.0 * narrow.mem_us).abs() < 1e-12);
            // Flop counts are width-independent; only bandwidth doubles.
            assert_eq!(wide.flops, narrow.flops);
        }
    }
}
