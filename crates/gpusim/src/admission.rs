//! Structure-only cost estimates for admission control.
//!
//! The serve layer decides admit/downgrade/shed *before* any work starts.
//! On a plan-cache hit it prices the actual plan
//! ([`crate::plan_iteration_cost`]); on a miss no factors or level
//! schedules exist yet, so this module prices a prospective ILU(0)-style
//! solve from the only two numbers the fingerprint gives us: the dimension
//! `n` and the nonzero count `nnz`. The estimate reuses the same roofline
//! primitives as the full model (launch + max(bytes/bw, flops/peak)) with
//! two structural assumptions, both stated inline: the factor pattern
//! matches the operator pattern (exact for ILU(0)), and the triangular
//! wavefront count is ~√n (exact for 2D grid operators, a usable upper
//! bound for the banded and graph-Laplacian generators the bench uses).

use crate::device::DeviceSpec;
use crate::ilu::sparsify_cost_us;
use crate::kernel::IDX_BYTES;

/// A structure-only price for one prospective solve: what the plan build
/// will cost, and what each PCG iteration will cost once built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveCostEstimate {
    /// One-time plan construction (sparsify scan + numeric factorization +
    /// level-schedule inspector), µs.
    pub build_us: f64,
    /// One PCG iteration (SpMV + two triangular sweeps + BLAS-1), µs.
    pub per_iteration_us: f64,
}

impl SolveCostEstimate {
    /// Total estimated time for a solve expected to run `iterations`
    /// iterations, including the build.
    pub fn total_us(&self, iterations: usize) -> f64 {
        self.build_us + iterations as f64 * self.per_iteration_us
    }
}

/// Convert a remaining wall-clock budget into an iteration-count deadline
/// for `SolverConfig::deadline_iters`.
///
/// Returns 0 when the budget is already spent and `usize::MAX` (watchdog
/// disabled) when the per-iteration price is degenerate — a broken estimate
/// must never spuriously kill solves.
pub fn iteration_budget(remaining_us: f64, per_iteration_us: f64) -> usize {
    if per_iteration_us.is_nan() || per_iteration_us <= 0.0 || !remaining_us.is_finite() {
        return usize::MAX;
    }
    if remaining_us <= 0.0 {
        return 0;
    }
    let budget = (remaining_us / per_iteration_us).floor();
    if budget >= usize::MAX as f64 {
        usize::MAX
    } else {
        budget as usize
    }
}

/// Price a prospective ILU(0)-preconditioned PCG solve of an `n × n` system
/// with `nnz` stored entries of `value_bytes`-wide scalars, with no plan in
/// hand.
pub fn estimate_from_structure(
    device: &DeviceSpec,
    n: usize,
    nnz: usize,
    value_bytes: f64,
) -> SolveCostEstimate {
    let nf = n as f64;
    let nnzf = nnz as f64;
    let vb = value_bytes;
    // Wavefront count of the triangular factors: √n levels, exact for the
    // 2D-grid dependence DAG and a workable stand-in elsewhere.
    let levels = nf.sqrt().ceil().max(1.0);

    let roofline = |bytes: f64, flops: f64, launches: f64| -> f64 {
        launches * device.launch_overhead_us
            + device.mem_time_us(bytes).max(flops * device.us_per_flop())
    };

    // SpMV: values + column indices + row pointers + cached x gather + y.
    let spmv_bytes = nnzf * (vb + IDX_BYTES) + (nf + 1.0) * IDX_BYTES + 0.5 * nnzf * vb + nf * vb;
    let spmv_us = roofline(spmv_bytes, 2.0 * nnzf, 1.0);

    // Two triangular sweeps over factors with the operator's pattern
    // (ILU(0) adds no fill): each moves half the factor entries plus the
    // in/out vectors, and pays one launch per wavefront level.
    let sweep_bytes = 0.5 * nnzf * (vb + IDX_BYTES) + 2.0 * nf * vb;
    let trisolve_us = 2.0 * roofline(sweep_bytes, nnzf, levels);

    // BLAS-1: two dots (2 streams each) + three axpy-like updates
    // (3 streams each), 10·n flops total.
    let blas_us = roofline(nf * vb * 13.0, 10.0 * nf, 5.0);

    // Build: sparsify scan + level-schedule inspector + numeric ILU(0)
    // sweep. IKJ flops ≈ Σ_i Σ_{k<i} (1 + 2·|U(k)|) ≈ (nnz/2)(1 + nnz/n);
    // the sweep runs one kernel per wavefront level.
    let factor_flops = 0.5 * nnzf * (1.0 + nnzf / nf.max(1.0));
    let factor_bytes = 2.0 * nnzf * (vb + IDX_BYTES);
    let factor_us = roofline(factor_bytes, factor_flops, levels);
    let inspector_us = 0.002 * nnzf + 0.1 * levels * 2.0;
    let build_us = sparsify_cost_us(nnz) + inspector_us + factor_us;

    SolveCostEstimate { build_us, per_iteration_us: spmv_us + trisolve_us + blas_us }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan_iteration_cost;
    use spcg_core::{SpcgOptions, SpcgPlan};
    use spcg_sparse::generators::poisson_2d;

    #[test]
    fn estimate_scales_with_structure() {
        let d = DeviceSpec::a100();
        let small = estimate_from_structure(&d, 1_000, 5_000, 8.0);
        let large = estimate_from_structure(&d, 100_000, 500_000, 8.0);
        assert!(large.per_iteration_us > small.per_iteration_us);
        assert!(large.build_us > small.build_us);
        assert!(small.per_iteration_us > 0.0 && small.build_us > 0.0);
    }

    #[test]
    fn estimate_tracks_the_priced_plan_within_an_order_of_magnitude() {
        // The structure estimate stands in for the real plan price on cache
        // misses; it must be the same order of magnitude or admission
        // decisions are garbage.
        let d = DeviceSpec::a100();
        let a = poisson_2d(48, 48);
        let plan = SpcgPlan::build(&a, SpcgOptions::default()).unwrap();
        let priced = plan_iteration_cost(&d, &plan).total_us();
        let est = estimate_from_structure(&d, a.n_rows(), a.nnz(), 8.0).per_iteration_us;
        assert!(est > 0.1 * priced && est < 10.0 * priced, "est {est} vs priced {priced}");
    }

    #[test]
    fn iteration_budget_conversion() {
        assert_eq!(iteration_budget(1000.0, 10.0), 100);
        assert_eq!(iteration_budget(5.0, 10.0), 0);
        assert_eq!(iteration_budget(-3.0, 10.0), 0);
        assert_eq!(iteration_budget(1000.0, 0.0), usize::MAX, "degenerate price disables");
        assert_eq!(iteration_budget(f64::INFINITY, 10.0), usize::MAX);
        assert_eq!(iteration_budget(f64::NAN, 10.0), usize::MAX);
    }

    #[test]
    fn total_includes_build_once() {
        let e = SolveCostEstimate { build_us: 100.0, per_iteration_us: 2.0 };
        assert_eq!(e.total_us(0), 100.0);
        assert_eq!(e.total_us(50), 200.0);
    }
}
