//! Bridge from the analytic execution model to the probe layer: synthesize
//! a [`RunTrace`] whose spans carry the *simulated* per-phase times and
//! whose counters carry the model's byte/FLOP/launch attribution.
//!
//! A synthesized trace uses the same [`Span`] vocabulary as a real
//! [`RecordingProbe`](spcg_probe::RecordingProbe) capture, so both render
//! through the same phase-table readout (`RunTrace::phase_table`) and the
//! simulated device picture can be laid directly beside the measured one.

use crate::device::DeviceSpec;
use crate::kernel::KernelCost;
use crate::pcg::pcg_iteration_cost;
use spcg_precond::IluFactors;
use spcg_probe::{Counter, RunTrace, Span, TraceEvent};
use spcg_sparse::{CsrMatrix, Scalar};

/// Converts a model time in microseconds to trace nanoseconds, keeping
/// sub-microsecond structure and never rounding a nonzero cost to zero.
fn us_to_ns(us: f64) -> u64 {
    let ns = (us * 1e3).round();
    if ns <= 0.0 {
        if us > 0.0 {
            1
        } else {
            0
        }
    } else {
        ns as u64
    }
}

/// Synthesizes the trace of `iterations` PCG iterations as the execution
/// model prices them on `device`: one aggregate span per kernel class
/// (SpMV, lower/upper triangular solves under a preconditioner-apply span,
/// BLAS-1 tail) nested in a single `Span::SolveLoop`, with
/// [`Counter::SimBytes`], [`Counter::SimFlops`], and
/// [`Counter::SimLaunches`] events attributing the model's roofline inputs
/// to each span.
///
/// Timestamps are synthetic model time (ns), not wall clock; the trace
/// validates, covers 100% of its own wall time, and serializes exactly like
/// a recorded one.
pub fn simulated_solve_trace<T: Scalar>(
    device: &DeviceSpec,
    a: &CsrMatrix<T>,
    factors: &IluFactors<T>,
    iterations: usize,
) -> RunTrace {
    let iter = pcg_iteration_cost(device, a, factors);
    let iters = iterations as f64;
    let lower_launches = factors.l_schedule().n_levels() as u64;
    let upper_launches = factors.u_schedule().n_levels() as u64;

    let mut trace = RunTrace::new();
    let mut t = 0u64;
    trace.push(TraceEvent::SpanBegin { span: Span::SolveLoop, t_ns: t });

    leaf(&mut trace, &mut t, Span::Spmv, &iter.spmv, iters, iterations as u64);

    trace.push(TraceEvent::SpanBegin { span: Span::PrecondApply, t_ns: t });
    leaf(
        &mut trace,
        &mut t,
        Span::TriangularLower,
        &iter.lower,
        iters,
        lower_launches * iterations as u64,
    );
    leaf(
        &mut trace,
        &mut t,
        Span::TriangularUpper,
        &iter.upper,
        iters,
        upper_launches * iterations as u64,
    );
    trace.push(TraceEvent::SpanEnd { span: Span::PrecondApply, t_ns: t });

    // 2 dots + 3 axpy-style updates per iteration.
    leaf(&mut trace, &mut t, Span::Blas, &iter.blas, iters, 5 * iterations as u64);

    trace.push(TraceEvent::SpanEnd { span: Span::SolveLoop, t_ns: t });
    trace
}

/// Emits one aggregate kernel span at the timeline cursor `t`, attributing
/// the model's bytes/FLOPs/launches to it, and advances the cursor.
fn leaf(
    trace: &mut RunTrace,
    t: &mut u64,
    span: Span,
    cost: &KernelCost,
    iters: f64,
    launches: u64,
) {
    trace.push(TraceEvent::SpanBegin { span, t_ns: *t });
    let dur = us_to_ns(cost.time_us * iters);
    let mid = *t + dur / 2;
    trace.push(TraceEvent::Count {
        counter: Counter::SimBytes,
        value: (cost.bytes * iters).round() as u64,
        t_ns: mid,
    });
    trace.push(TraceEvent::Count {
        counter: Counter::SimFlops,
        value: (cost.flops * iters).round() as u64,
        t_ns: mid,
    });
    trace.push(TraceEvent::Count { counter: Counter::SimLaunches, value: launches, t_ns: mid });
    *t += dur;
    trace.push(TraceEvent::SpanEnd { span, t_ns: *t });
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_precond::{ilu0, ExecutionStrategy};
    use spcg_sparse::generators::poisson_2d;

    fn setup(n: usize) -> (CsrMatrix<f64>, IluFactors<f64>) {
        let a = poisson_2d(n, n);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        (a, f)
    }

    #[test]
    fn synthesized_trace_validates_and_covers_everything() {
        let (a, f) = setup(16);
        let t = simulated_solve_trace(&DeviceSpec::a100(), &a, &f, 40);
        t.validate_nesting().unwrap();
        assert!((t.coverage() - 1.0).abs() < 1e-9, "coverage {}", t.coverage());
        let records = t.span_records().unwrap();
        assert_eq!(records[0].span, Span::SolveLoop);
        // The nested spans partition the loop exactly.
        let loop_ns = records[0].duration_ns();
        let depth1: u64 = records.iter().filter(|r| r.depth == 1).map(|r| r.duration_ns()).sum();
        assert_eq!(loop_ns, depth1);
    }

    #[test]
    fn counters_scale_with_iterations() {
        let (a, f) = setup(12);
        let d = DeviceSpec::a100();
        let one = simulated_solve_trace(&d, &a, &f, 1);
        let many = simulated_solve_trace(&d, &a, &f, 10);
        for c in [Counter::SimBytes, Counter::SimFlops, Counter::SimLaunches] {
            assert!(one.counter_total(c) > 0, "{c} must be attributed");
            let ratio = many.counter_total(c) as f64 / one.counter_total(c) as f64;
            assert!((ratio - 10.0).abs() < 0.01, "{c} ratio {ratio}");
        }
    }

    #[test]
    fn simulated_launches_track_wavefronts() {
        let (a, f) = setup(14);
        let d = DeviceSpec::a100();
        let t = simulated_solve_trace(&d, &a, &f, 1);
        let wavefronts = (f.l_schedule().n_levels() + f.u_schedule().n_levels()) as u64;
        // spmv (1) + trisolve wavefronts + blas (5)
        assert_eq!(t.counter_total(Counter::SimLaunches), 1 + wavefronts + 5);
    }

    #[test]
    fn trace_round_trips_through_json() {
        let (a, f) = setup(8);
        let t = simulated_solve_trace(&DeviceSpec::v100(), &a, &f, 3);
        let json = serde_json::to_string_pretty(&t).unwrap();
        let back: RunTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn phase_table_renders_simulated_spans() {
        let (a, f) = setup(10);
        let t = simulated_solve_trace(&DeviceSpec::a100(), &a, &f, 5);
        let table = t.phase_table();
        for label in ["solve.loop", "solve.spmv", "solve.tri_lower", "sim.bytes"] {
            assert!(table.contains(label), "missing {label} in:\n{table}");
        }
    }
}
