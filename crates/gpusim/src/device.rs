//! Device descriptions for the analytic execution model.
//!
//! Numbers come from public datasheets (A100 SXM4 80GB, V100 SXM2 32GB,
//! EPYC 7413 with 8-channel DDR4-3200). The model only relies on *relative*
//! magnitudes: launch latency per synchronization, sustained memory
//! bandwidth, and peak arithmetic throughput.

use serde::{Deserialize, Serialize};

/// A device the cost model can simulate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: String,
    /// Streaming multiprocessors (GPU) or cores (CPU).
    pub sm_count: usize,
    /// Rows that can be in flight concurrently per SM/core in the
    /// one-row-per-thread triangular kernels.
    pub rows_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Sustained memory bandwidth, GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Peak single-precision throughput, GFLOP/s.
    pub peak_gflops: f64,
    /// Cost of one kernel launch / level barrier, microseconds. This is the
    /// term wavefront reduction attacks.
    pub launch_overhead_us: f64,
    /// Average cycles a thread spends per stored entry in the sparse
    /// kernels (irregular-gather penalty folded in).
    pub cycles_per_nnz: f64,
    /// Cost of releasing one dependency block under the counter-release
    /// executor, microseconds. An atomic countdown in device memory — far
    /// cheaper than a kernel launch, which is the whole point of the
    /// dependency-block strategy.
    pub block_release_us: f64,
}

impl DeviceSpec {
    /// NVIDIA A100 (SXM4 80 GB): 108 SMs, 1555 GB/s HBM2e, 19.5 TFLOP/s FP32.
    pub fn a100() -> Self {
        Self {
            name: "A100".into(),
            sm_count: 108,
            rows_per_sm: 1024,
            clock_ghz: 1.41,
            mem_bandwidth_gbps: 1555.0,
            peak_gflops: 19_500.0,
            launch_overhead_us: 3.0,
            cycles_per_nnz: 8.0,
            block_release_us: 0.05,
        }
    }

    /// NVIDIA V100 (SXM2 32 GB): 80 SMs, 900 GB/s HBM2, 15.7 TFLOP/s FP32.
    pub fn v100() -> Self {
        Self {
            name: "V100".into(),
            sm_count: 80,
            rows_per_sm: 1024,
            clock_ghz: 1.53,
            mem_bandwidth_gbps: 900.0,
            peak_gflops: 15_700.0,
            launch_overhead_us: 3.5,
            cycles_per_nnz: 8.0,
            block_release_us: 0.06,
        }
    }

    /// AMD EPYC 7413-class CPU as configured in the paper (40 hardware
    /// threads at 2.65 GHz base). Barriers are cheap relative to a GPU
    /// kernel launch; bandwidth is an order of magnitude lower.
    pub fn epyc_7413() -> Self {
        Self {
            name: "EPYC-7413".into(),
            sm_count: 40,
            rows_per_sm: 1,
            clock_ghz: 2.65,
            mem_bandwidth_gbps: 205.0,
            peak_gflops: 1_700.0,
            launch_overhead_us: 0.4,
            cycles_per_nnz: 4.0,
            block_release_us: 0.01,
        }
    }

    /// Maximum rows concurrently in flight.
    pub fn parallel_rows(&self) -> usize {
        self.sm_count * self.rows_per_sm
    }

    /// Seconds per FLOP at peak (µs per FLOP × 10⁻⁶).
    pub fn us_per_flop(&self) -> f64 {
        1.0 / (self.peak_gflops * 1e3)
    }

    /// Microseconds to move `bytes` at sustained bandwidth.
    pub fn mem_time_us(&self, bytes: f64) -> f64 {
        bytes / (self.mem_bandwidth_gbps * 1e3)
    }

    /// Microseconds for one thread to touch `nnz` entries serially.
    pub fn serial_entry_time_us(&self, nnz: f64) -> f64 {
        nnz * self.cycles_per_nnz / (self.clock_ghz * 1e3)
    }

    /// This device's constants as the wavefront crate's executor cost
    /// model, so plan-side `Auto` resolution and simulator pricing agree.
    pub fn exec_cost_model(&self) -> spcg_wavefront::ExecCostModel {
        spcg_wavefront::ExecCostModel {
            launch_overhead_us: self.launch_overhead_us,
            block_release_us: self.block_release_us,
            parallel_rows: self.parallel_rows(),
            mem_bandwidth_gbps: self.mem_bandwidth_gbps,
            peak_gflops: self.peak_gflops,
            clock_ghz: self.clock_ghz,
            cycles_per_nnz: self.cycles_per_nnz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let a = DeviceSpec::a100();
        let v = DeviceSpec::v100();
        let c = DeviceSpec::epyc_7413();
        assert!(a.mem_bandwidth_gbps > v.mem_bandwidth_gbps);
        assert!(v.mem_bandwidth_gbps > c.mem_bandwidth_gbps);
        assert!(a.sm_count > v.sm_count);
        assert!(a.parallel_rows() > c.parallel_rows());
        // GPU launches are much more expensive than CPU barriers.
        assert!(a.launch_overhead_us > 5.0 * c.launch_overhead_us);
        // Releasing a block must be far cheaper than a launch on every
        // device, or the dependency-block strategy has no reason to exist.
        for d in [&a, &v, &c] {
            assert!(d.block_release_us * 10.0 < d.launch_overhead_us, "{}", d.name);
        }
    }

    /// The plan-side `Auto` resolver defaults to A100 constants; this pin
    /// keeps the two models from drifting apart.
    #[test]
    fn a100_exec_cost_model_is_the_wavefront_default() {
        assert_eq!(DeviceSpec::a100().exec_cost_model(), spcg_wavefront::ExecCostModel::default());
    }

    /// The kind-crossover search prices level-free applies with the
    /// wavefront model's `spmv_time_us`; this pin keeps it equal to the
    /// simulator's `spmv_cost` so both sides of the crossover agree.
    #[test]
    fn spmv_pricing_matches_the_wavefront_model() {
        let a = spcg_sparse::generators::poisson_2d(20, 20);
        let d = DeviceSpec::a100();
        let sim = crate::kernel::spmv_cost(&d, &a).time_us;
        let model = d.exec_cost_model().spmv_time_us(&a);
        assert!((sim - model).abs() < 1e-9, "sim {sim} vs model {model}");
    }

    #[test]
    fn unit_conversions() {
        let a = DeviceSpec::a100();
        // 1555 GB/s -> 1 GB in ~643 µs
        let t = a.mem_time_us(1e9);
        assert!((t - 1e9 / (1555.0 * 1e3)).abs() < 1e-9);
        // us_per_flop at 19.5 TFLOPs
        assert!((a.us_per_flop() - 1.0 / 19.5e6).abs() < 1e-18);
        // serial entries scale linearly
        assert!(a.serial_entry_time_us(100.0) > a.serial_entry_time_us(10.0));
    }
}
