//! Execution-time model of a level-scheduled sparse triangular solve.
//!
//! Each wavefront is one kernel launch: rows inside the level run one
//! thread per row, the level's time is the roofline max of its memory
//! traffic and its longest serial row chain, and launch overhead is paid
//! per level. This is exactly the structure whose level count
//! sparsification reduces — the paper's central mechanism.

use crate::device::DeviceSpec;
use crate::kernel::{value_bytes_of, KernelCost, IDX_BYTES};
use serde::{Deserialize, Serialize};
use spcg_sparse::{CsrMatrix, Scalar};
use spcg_wavefront::{BlockSchedule, LevelSchedule};

/// Pre-extracted per-level workload statistics, reusable across devices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrisolveWorkload {
    /// (rows, nnz, max_row_nnz) per level.
    pub levels: Vec<(usize, usize, usize)>,
    /// Total rows.
    pub n_rows: usize,
    /// Total stored entries.
    pub nnz: usize,
    /// Stored-value width in bytes. Defaults to the width of the matrix's
    /// scalar type; a mixed-precision solve overrides it to the demoted
    /// width via [`TrisolveWorkload::with_value_bytes`].
    pub value_bytes: f64,
}

impl TrisolveWorkload {
    /// Extracts the workload of `m` under `schedule`.
    pub fn new<T: Scalar>(m: &CsrMatrix<T>, schedule: &LevelSchedule) -> Self {
        assert_eq!(m.n_rows(), schedule.n_rows(), "schedule/matrix mismatch");
        let levels = schedule
            .levels()
            .iter()
            .map(|rows| {
                let mut nnz = 0usize;
                let mut max_row = 0usize;
                for &r in rows {
                    let c = m.row_nnz(r);
                    nnz += c;
                    max_row = max_row.max(c);
                }
                (rows.len(), nnz, max_row)
            })
            .collect();
        Self { levels, n_rows: m.n_rows(), nnz: m.nnz(), value_bytes: value_bytes_of::<T>() }
    }

    /// Reprices the solve's values at `bytes` per entry (4.0 for demoted
    /// f32 factors under an f64 outer loop). A mixed-precision apply stages
    /// its vectors in the lower precision too — the whole triangular solve
    /// runs narrow, with only the O(n) boundary casts at full width — so
    /// one width covers factor entries, gathered x, and the level's rhs/x
    /// traffic alike.
    pub fn with_value_bytes(mut self, bytes: f64) -> Self {
        self.value_bytes = bytes;
        self
    }

    /// Number of wavefronts.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }
}

/// Prices one triangular solve on `device`.
pub fn trisolve_cost(device: &DeviceSpec, w: &TrisolveWorkload) -> KernelCost {
    let mut total = KernelCost::default();
    for &(rows, nnz, max_row) in &w.levels {
        let rows_f = rows as f64;
        let nnz_f = nnz as f64;
        // factor row data + rhs/x traffic for the rows of this level
        let bytes = nnz_f * (w.value_bytes + IDX_BYTES)
            + rows_f * (IDX_BYTES + 2.0 * w.value_bytes)
            + 0.5 * nnz_f * w.value_bytes;
        let flops = 2.0 * nnz_f;
        let waves = (rows_f / device.parallel_rows() as f64).ceil().max(1.0);
        let serial_us = waves * device.serial_entry_time_us(max_row as f64);
        total = total.add(&KernelCost::assemble(device, bytes, flops, serial_us));
    }
    total
}

/// Convenience: build the workload and price it in one call.
pub fn trisolve_cost_of<T: Scalar>(
    device: &DeviceSpec,
    m: &CsrMatrix<T>,
    schedule: &LevelSchedule,
) -> KernelCost {
    trisolve_cost(device, &TrisolveWorkload::new(m, schedule))
}

/// Pre-extracted workload of one dependency-block triangular sweep,
/// reusable across devices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockWorkload {
    /// Blocks in the schedule — one counter release each.
    pub n_blocks: usize,
    /// Total rows.
    pub n_rows: usize,
    /// Total stored entries.
    pub nnz: usize,
    /// Stored entries along the heaviest chain through the block graph —
    /// the sweep's serial floor.
    pub critical_nnz: usize,
    /// Stored-value width in bytes (see [`TrisolveWorkload::value_bytes`]).
    pub value_bytes: f64,
}

impl BlockWorkload {
    /// Extracts the workload of `m` under `schedule`.
    pub fn new<T: Scalar>(m: &CsrMatrix<T>, schedule: &BlockSchedule) -> Self {
        assert_eq!(m.n_rows(), schedule.n_rows(), "schedule/matrix mismatch");
        Self {
            n_blocks: schedule.n_blocks(),
            n_rows: m.n_rows(),
            nnz: m.nnz(),
            critical_nnz: schedule.critical_path_nnz(),
            value_bytes: value_bytes_of::<T>(),
        }
    }

    /// Reprices the solve's values at `bytes` per entry (see
    /// [`TrisolveWorkload::with_value_bytes`]).
    pub fn with_value_bytes(mut self, bytes: f64) -> Self {
        self.value_bytes = bytes;
        self
    }
}

/// Prices one dependency-block triangular solve on `device`: a single
/// kernel launch, one counter release per block instead of a barrier per
/// level, and the same total memory traffic as the level-scheduled sweep —
/// serialized only by the heaviest chain through the block graph.
pub fn trisolve_block_cost(device: &DeviceSpec, w: &BlockWorkload) -> KernelCost {
    if w.n_blocks == 0 {
        return KernelCost::default();
    }
    let rows_f = w.n_rows as f64;
    let nnz_f = w.nnz as f64;
    let bytes = nnz_f * (w.value_bytes + IDX_BYTES)
        + rows_f * (IDX_BYTES + 2.0 * w.value_bytes)
        + 0.5 * nnz_f * w.value_bytes;
    let flops = 2.0 * nnz_f;
    let serial_us = device.serial_entry_time_us(w.critical_nnz as f64);
    let mut cost = KernelCost::assemble(device, bytes, flops, serial_us);
    let release_us = w.n_blocks as f64 * device.block_release_us;
    cost.launch_us += release_us;
    cost.time_us += release_us;
    cost
}

/// Convenience: build the block workload and price it in one call.
pub fn trisolve_block_cost_of<T: Scalar>(
    device: &DeviceSpec,
    m: &CsrMatrix<T>,
    schedule: &BlockSchedule,
) -> KernelCost {
    trisolve_block_cost(device, &BlockWorkload::new(m, schedule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::poisson_2d;
    use spcg_wavefront::Triangle;

    fn workload(n: usize) -> TrisolveWorkload {
        let a = poisson_2d(n, n);
        let l = a.lower();
        let s = LevelSchedule::build(&l, Triangle::Lower);
        TrisolveWorkload::new(&l, &s)
    }

    #[test]
    fn workload_totals_match_matrix() {
        let a = poisson_2d(8, 8);
        let l = a.lower();
        let s = LevelSchedule::build(&l, Triangle::Lower);
        let w = TrisolveWorkload::new(&l, &s);
        let rows: usize = w.levels.iter().map(|&(r, _, _)| r).sum();
        let nnz: usize = w.levels.iter().map(|&(_, z, _)| z).sum();
        assert_eq!(rows, 64);
        assert_eq!(nnz, l.nnz());
        assert_eq!(w.n_levels(), s.n_levels());
    }

    /// The core property sparsification exploits: with work held roughly
    /// constant, more levels ⇒ strictly more time (launch overhead).
    #[test]
    fn more_levels_cost_more() {
        let d = DeviceSpec::a100();
        // Same total rows/nnz, split into 2 vs 8 levels.
        let w2 = TrisolveWorkload {
            levels: vec![(512, 2048, 4), (512, 2048, 4)],
            n_rows: 1024,
            nnz: 4096,
            value_bytes: 8.0,
        };
        let w8 = TrisolveWorkload {
            levels: (0..8).map(|_| (128, 512, 4)).collect(),
            n_rows: 1024,
            nnz: 4096,
            value_bytes: 8.0,
        };
        let c2 = trisolve_cost(&d, &w2);
        let c8 = trisolve_cost(&d, &w8);
        assert!(c8.time_us > c2.time_us, "{} !> {}", c8.time_us, c2.time_us);
        assert!((c8.launch_us - 8.0 * d.launch_overhead_us).abs() < 1e-9);
    }

    #[test]
    fn fewer_nnz_never_cost_more() {
        let d = DeviceSpec::a100();
        let full = workload(40);
        // Same level structure, 20% fewer nnz per level.
        let slim = TrisolveWorkload {
            levels: full.levels.iter().map(|&(r, z, m)| (r, z * 8 / 10, m)).collect(),
            n_rows: full.n_rows,
            nnz: full.nnz * 8 / 10,
            value_bytes: full.value_bytes,
        };
        let cf = trisolve_cost(&d, &full);
        let cs = trisolve_cost(&d, &slim);
        assert!(cs.time_us <= cf.time_us);
    }

    #[test]
    fn launch_overhead_dominates_many_small_levels_on_gpu_not_cpu() {
        let w = workload(64); // 127 levels, ~64 rows each
        let gpu = trisolve_cost(&DeviceSpec::a100(), &w);
        let cpu = trisolve_cost(&DeviceSpec::epyc_7413(), &w);
        let gpu_launch_frac = gpu.launch_us / gpu.time_us;
        let cpu_launch_frac = cpu.launch_us / cpu.time_us;
        assert!(gpu_launch_frac > 0.8, "gpu launch fraction {gpu_launch_frac}");
        assert!(cpu_launch_frac < gpu_launch_frac);
    }

    #[test]
    fn deterministic() {
        let d = DeviceSpec::v100();
        let w = workload(16);
        assert_eq!(trisolve_cost(&d, &w), trisolve_cost(&d, &w));
    }

    /// The tentpole claim the bench gate enforces: on a deep schedule the
    /// dependency-block sweep pays far fewer synchronizations (blocks vs
    /// levels) and prices strictly below barrier-per-level.
    #[test]
    fn block_sweep_prices_below_level_barriers() {
        let d = DeviceSpec::a100();
        let a = poisson_2d(40, 40);
        let l = a.lower();
        let levels = LevelSchedule::build(&l, Triangle::Lower);
        let blocks = BlockSchedule::from_levels(&l, &levels);
        assert!(blocks.n_blocks() < levels.n_levels());
        let lvl = trisolve_cost_of(&d, &l, &levels);
        let blk = trisolve_block_cost_of(&d, &l, &blocks);
        assert!(blk.time_us < lvl.time_us, "{} !< {}", blk.time_us, lvl.time_us);
        // Same total data moved and arithmetic done — the win is all in
        // launch/release overhead.
        assert!((blk.bytes - lvl.bytes).abs() < 1e-9);
        assert_eq!(blk.flops, lvl.flops);
        assert!(blk.launch_us < lvl.launch_us);
        let release_us = blocks.n_blocks() as f64 * d.block_release_us;
        assert!((blk.launch_us - (d.launch_overhead_us + release_us)).abs() < 1e-9);
    }

    #[test]
    fn block_cost_is_deterministic_and_respects_value_width() {
        let d = DeviceSpec::a100();
        let a = poisson_2d(24, 24);
        let l = a.lower();
        let blocks = BlockSchedule::build(&l, Triangle::Lower);
        let w = BlockWorkload::new(&l, &blocks);
        assert_eq!(trisolve_block_cost(&d, &w), trisolve_block_cost(&d, &w));
        let narrow = w.clone().with_value_bytes(4.0);
        let cf = trisolve_block_cost(&d, &w);
        let cn = trisolve_block_cost(&d, &narrow);
        assert!(cn.bytes < cf.bytes);
        assert_eq!(cn.flops, cf.flops);
    }

    #[test]
    fn empty_block_workload_is_free() {
        let d = DeviceSpec::a100();
        let w = BlockWorkload { n_blocks: 0, n_rows: 0, nnz: 0, critical_nnz: 0, value_bytes: 8.0 };
        assert_eq!(trisolve_block_cost(&d, &w), KernelCost::default());
    }

    /// Demoting the factors halves exactly the value-byte term: the index
    /// traffic is untouched, so total bytes shrink but by less than 2×.
    #[test]
    fn narrower_values_shrink_only_the_value_traffic() {
        let d = DeviceSpec::a100();
        let full = workload(32);
        assert_eq!(full.value_bytes, 8.0, "f64 workload prices 8-byte values");
        let narrow = full.clone().with_value_bytes(4.0);
        let cf = trisolve_cost(&d, &full);
        let cn = trisolve_cost(&d, &narrow);
        let ratio = cf.bytes / cn.bytes;
        assert!(ratio > 1.4 && ratio < 2.0, "bytes ratio {ratio}");
        // Value traffic is exactly half; the residue is index traffic.
        let idx_bytes = cf.bytes - 2.0 * (cf.bytes - cn.bytes);
        assert!(idx_bytes > 0.0);
        assert_eq!(cf.flops, cn.flops);
    }
}
