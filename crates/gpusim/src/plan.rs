//! Cost-model entry points over [`SpcgPlan`]: price a fully-analyzed plan
//! on a simulated device without re-deriving which matrix was factored,
//! whether sparsification ran, or what the factor schedules look like —
//! the plan already knows.

use crate::device::DeviceSpec;
use crate::pcg::{end_to_end_cost, pcg_iteration_cost, EndToEndCost, IterationCost};
use spcg_core::SpcgPlan;
use spcg_sparse::Scalar;

/// Prices one PCG iteration of `plan` on `device`.
pub fn plan_iteration_cost<T: Scalar>(device: &DeviceSpec, plan: &SpcgPlan<T>) -> IterationCost {
    pcg_iteration_cost(device, plan.a(), plan.factors())
}

/// Prices a whole run of `plan` that took `iterations` iterations:
/// sparsification (when the plan sparsified) + inspector + factorization +
/// iterations × per-iteration.
///
/// The factorization is priced on the matrix the plan actually factored
/// (`Â` or `A`). For fill-capped ILU(K) patterns built outside the plan,
/// price the pattern explicitly with
/// [`end_to_end_cost`](crate::pcg::end_to_end_cost).
pub fn plan_end_to_end_cost<T: Scalar>(
    device: &DeviceSpec,
    plan: &SpcgPlan<T>,
    iterations: usize,
) -> EndToEndCost {
    end_to_end_cost(
        device,
        plan.a(),
        plan.factored_matrix(),
        plan.factors(),
        iterations,
        plan.is_sparsified(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_core::{SpcgOptions, SpcgPlan};
    use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};

    fn plan(sparsify: bool) -> SpcgPlan<f64> {
        let a = with_magnitude_spread(&poisson_2d(16, 16), 6.0, 7);
        let opts = if sparsify {
            SpcgOptions::default()
        } else {
            SpcgOptions { sparsify: None, ..Default::default() }
        };
        SpcgPlan::build(&a, &opts).unwrap()
    }

    #[test]
    fn plan_cost_matches_explicit_pricing() {
        let p = plan(true);
        let d = DeviceSpec::a100();
        let via_plan = plan_iteration_cost(&d, &p);
        let explicit = pcg_iteration_cost(&d, p.a(), p.factors());
        assert_eq!(via_plan.total_us(), explicit.total_us());
        let e_plan = plan_end_to_end_cost(&d, &p, 40);
        let e_explicit = end_to_end_cost(&d, p.a(), p.factored_matrix(), p.factors(), 40, true);
        assert_eq!(e_plan.total_us(), e_explicit.total_us());
        assert!(e_plan.sparsify_us > 0.0);
    }

    #[test]
    fn baseline_plan_has_no_sparsify_cost() {
        let p = plan(false);
        let e = plan_end_to_end_cost(&DeviceSpec::v100(), &p, 25);
        assert_eq!(e.sparsify_us, 0.0);
        assert_eq!(e.iterations, 25);
        assert!(e.total_us() > 0.0);
    }

    /// The mechanism the paper rests on, stated at plan level: a sparsified
    /// plan's iteration is never costlier than the baseline plan's.
    #[test]
    fn sparsified_plan_iteration_is_no_costlier() {
        let d = DeviceSpec::a100();
        let spcg = plan_iteration_cost(&d, &plan(true));
        let base = plan_iteration_cost(&d, &plan(false));
        assert!(spcg.total_us() <= base.total_us());
    }
}
