//! Cost-model entry points over [`SpcgPlan`]: price a fully-analyzed plan
//! on a simulated device without re-deriving which matrix was factored,
//! whether sparsification ran, or what the factor schedules look like —
//! the plan already knows.

use crate::device::DeviceSpec;
use crate::ilu::ilu_factorization_cost;
use crate::pcg::{
    ainv_iteration_cost, ainv_setup_cost, end_to_end_cost, pcg_iteration_cost_with_factor_bytes,
    EndToEndCost, IterationCost,
};
use spcg_core::{RecoveryReport, SpcgPlan};
use spcg_sparse::Scalar;

/// Prices one PCG iteration of `plan` on `device`.
///
/// Reordered plans are priced on the permuted operator: its level
/// structure is what the device's triangular solves see, which is exactly
/// the point of reordering. Mixed-precision plans price their triangular
/// solves at the demoted factor width (`plan.factor_value_bytes()`), so
/// the simulated apply traffic reflects what the f32 tier actually moves.
/// Level-free plans (FSAI/SPAI/Jacobi) price their apply as plain SpMVs
/// over the stored inverse factors — no levels, no barriers.
pub fn plan_iteration_cost<T: Scalar>(device: &DeviceSpec, plan: &SpcgPlan<T>) -> IterationCost {
    if let Some(ainv) = plan.ainv() {
        return ainv_iteration_cost(device, plan.operator(), ainv);
    }
    pcg_iteration_cost_with_factor_bytes(
        device,
        plan.operator(),
        plan.factors(),
        plan.factor_value_bytes() as f64,
    )
}

/// Prices a whole run of `plan` that took `iterations` iterations:
/// sparsification (when the plan sparsified) + inspector + factorization +
/// iterations × per-iteration.
///
/// The factorization is priced on the matrix the plan actually factored
/// (`Â` or `A`). For fill-capped ILU(K) patterns built outside the plan,
/// price the pattern explicitly with
/// [`end_to_end_cost`].
pub fn plan_end_to_end_cost<T: Scalar>(
    device: &DeviceSpec,
    plan: &SpcgPlan<T>,
    iterations: usize,
) -> EndToEndCost {
    if let Some(ainv) = plan.ainv() {
        // Level-free plans never sparsify and build no level schedules, so
        // the only setup is the inverse construction itself.
        return EndToEndCost {
            sparsify_us: 0.0,
            inspector_us: 0.0,
            factorization_us: ainv_setup_cost(device, ainv).time_us,
            per_iteration_us: ainv_iteration_cost(device, plan.operator(), ainv).total_us(),
            iterations,
        };
    }
    let mut cost = end_to_end_cost(
        device,
        plan.operator(),
        plan.factored_matrix(),
        plan.factors(),
        iterations,
        plan.is_sparsified(),
    );
    // Mixed plans iterate with demoted factor traffic; the factorization
    // itself always runs (and is priced) at full width before demotion.
    cost.per_iteration_us = plan_iteration_cost(device, plan).total_us();
    cost
}

/// Simulated time (µs) of the full analysis for `plan`: sparsification
/// (when the plan sparsified) + level-schedule inspector + factorization.
///
/// The factorization is priced on the **host path**
/// ([`ilu_factorization_cost_serial`](crate::ilu::ilu_factorization_cost_serial)):
/// a structural (re)build has no cached level schedules, so its sweep must
/// discover the fill's dependences as it goes — the reason the paper
/// computes fresh ILU factors on the CPU. This is what a structural change
/// costs, and the baseline a value-only refresh is measured against.
pub fn plan_rebuild_cost_us<T: Scalar>(device: &DeviceSpec, plan: &SpcgPlan<T>) -> f64 {
    if let Some(ainv) = plan.ainv() {
        // A level-free rebuild is the inverse construction again: no
        // sparsify search, no inspector, no host-path sweep.
        return ainv_setup_cost(device, ainv).time_us;
    }
    let e = plan_end_to_end_cost(device, plan, 0);
    let fact_us = crate::ilu::ilu_factorization_cost_serial(device, plan.factored_matrix()).time_us;
    e.sparsify_us + e.inspector_us + fact_us
}

/// Simulated time (µs) of a value-only refresh
/// ([`SpcgPlan::refresh_values`]): the numeric re-sweep on the plan's
/// factored matrix priced on the same host path as the rebuild, minus the
/// symbolic-analysis pass the cached pattern makes unnecessary
/// ([`ilu_refresh_cost_serial`](crate::ilu::ilu_refresh_cost_serial)).
/// The sparsify candidate search and the inspector are reused, not
/// re-run; the linear value re-permute/re-split passes are
/// bandwidth-trivial next to the sweep and are not modeled.
pub fn plan_refresh_cost_us<T: Scalar>(device: &DeviceSpec, plan: &SpcgPlan<T>) -> f64 {
    if let Some(ainv) = plan.ainv() {
        // A value-only refresh re-gathers and re-solves the per-row dense
        // systems on the cached pattern; only the pattern discovery (not
        // separately modeled) is saved, so it prices as the setup pass.
        return ainv_setup_cost(device, ainv).time_us;
    }
    crate::ilu::ilu_refresh_cost_serial(device, plan.factored_matrix()).time_us
}

/// Simulated device-time breakdown of a resilient solve's recovery work.
///
/// Produced by [`plan_recovery_cost`] from the [`RecoveryReport`] a
/// resilient solve returns: every fallback rung that refactored pays one
/// device factorization, and every iteration executed on any rung —
/// including the aborted attempts — pays the per-iteration cost.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryCost {
    /// Device time spent refactorizing on fallback rungs, µs.
    pub refactorization_us: f64,
    /// Device time spent iterating across *all* attempts, µs.
    pub iteration_us: f64,
    /// Number of solve attempts the ladder executed.
    pub attempts: usize,
}

impl RecoveryCost {
    /// Total recovery time, µs.
    pub fn total_us(&self) -> f64 {
        self.refactorization_us + self.iteration_us
    }
}

/// Prices the recovery work recorded in `report` on `device`.
///
/// Refactorizations are priced on the plan's full operator (the permuted
/// system for reordered plans): the fallback rungs that refactor (milder
/// re-sparsification, unsparsified, shifted) all work on patterns at least
/// as dense as the plan's `Â`, and the full operator is the common upper
/// envelope the paper prices factorization against.
/// Iterations are priced at the plan's per-iteration cost. A clean solve
/// (one attempt, no extra factorization) therefore prices identically to
/// `iterations ×` [`plan_iteration_cost`].
pub fn plan_recovery_cost<T: Scalar>(
    device: &DeviceSpec,
    plan: &SpcgPlan<T>,
    report: &RecoveryReport,
) -> RecoveryCost {
    let fact_us = ilu_factorization_cost(device, plan.operator()).time_us;
    let iter_us = plan_iteration_cost(device, plan).total_us();
    RecoveryCost {
        refactorization_us: fact_us * report.total_factorizations() as f64,
        iteration_us: iter_us * report.total_iterations() as f64,
        attempts: report.attempts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_core::{SpcgOptions, SpcgPlan};
    use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};

    fn plan(sparsify: bool) -> SpcgPlan<f64> {
        let a = with_magnitude_spread(&poisson_2d(16, 16), 6.0, 7);
        let opts = if sparsify {
            SpcgOptions::default()
        } else {
            SpcgOptions { sparsify: None, ..Default::default() }
        };
        SpcgPlan::build(&a, &opts).unwrap()
    }

    #[test]
    fn plan_cost_matches_explicit_pricing() {
        use crate::pcg::pcg_iteration_cost;
        let p = plan(true);
        let d = DeviceSpec::a100();
        let via_plan = plan_iteration_cost(&d, &p);
        let explicit = pcg_iteration_cost(&d, p.a(), p.factors());
        assert_eq!(via_plan.total_us(), explicit.total_us());
        let e_plan = plan_end_to_end_cost(&d, &p, 40);
        let e_explicit = end_to_end_cost(&d, p.a(), p.factored_matrix(), p.factors(), 40, true);
        assert_eq!(e_plan.total_us(), e_explicit.total_us());
        assert!(e_plan.sparsify_us > 0.0);
    }

    #[test]
    fn baseline_plan_has_no_sparsify_cost() {
        let p = plan(false);
        let e = plan_end_to_end_cost(&DeviceSpec::v100(), &p, 25);
        assert_eq!(e.sparsify_us, 0.0);
        assert_eq!(e.iterations, 25);
        assert!(e.total_us() > 0.0);
    }

    /// Ordering is the second lever: flattening levels with a coloring
    /// permutation makes the simulated triangular solves cheaper, and the
    /// cost model must see that through the plan.
    #[test]
    fn colored_plan_iteration_is_no_costlier_than_natural() {
        use spcg_core::OrderingKind;
        let a = with_magnitude_spread(&poisson_2d(16, 16), 6.0, 7);
        let d = DeviceSpec::a100();
        let natural = SpcgPlan::build(&a, SpcgOptions::default()).unwrap();
        let colored =
            SpcgPlan::build(&a, SpcgOptions::default().with_ordering(OrderingKind::Coloring))
                .unwrap();
        assert!(colored.is_reordered());
        let nat_cost = plan_iteration_cost(&d, &natural).total_us();
        let col_cost = plan_iteration_cost(&d, &colored).total_us();
        assert!(
            col_cost <= nat_cost,
            "coloring flattens levels, so simulated iterations must not get \
             costlier: {col_cost} vs {nat_cost}"
        );
    }

    /// The mechanism the paper rests on, stated at plan level: a sparsified
    /// plan's iteration is never costlier than the baseline plan's.
    #[test]
    fn sparsified_plan_iteration_is_no_costlier() {
        let d = DeviceSpec::a100();
        let spcg = plan_iteration_cost(&d, &plan(true));
        let base = plan_iteration_cost(&d, &plan(false));
        assert!(spcg.total_us() <= base.total_us());
    }

    /// A mixed plan's simulated apply moves at least 1.5× fewer bytes than
    /// the full plan's — the storage win the mixed tier exists to buy —
    /// while the SpMV traffic (outer-loop width) is identical.
    #[test]
    fn mixed_plan_apply_bytes_beat_full_by_at_least_1_5x() {
        use spcg_core::PrecisionPolicy;
        let a = with_magnitude_spread(&poisson_2d(16, 16), 6.0, 7);
        let d = DeviceSpec::a100();
        let full = SpcgPlan::build(&a, SpcgOptions::default()).unwrap();
        let mixed =
            SpcgPlan::build(&a, SpcgOptions::default().with_precision(PrecisionPolicy::MixedF32))
                .unwrap();
        assert!(mixed.is_mixed());
        let cf = plan_iteration_cost(&d, &full);
        let cm = plan_iteration_cost(&d, &mixed);
        let ratio = (cf.lower.bytes + cf.upper.bytes) / (cm.lower.bytes + cm.upper.bytes);
        assert!(ratio >= 1.5, "apply bytes ratio {ratio} < 1.5");
        assert_eq!(cf.spmv, cm.spmv);
        assert!(cm.total_us() <= cf.total_us());
        // End-to-end pricing picks up the cheaper iteration too.
        let ef = plan_end_to_end_cost(&d, &full, 40);
        let em = plan_end_to_end_cost(&d, &mixed, 40);
        assert!(em.per_iteration_us <= ef.per_iteration_us);
        assert_eq!(em.factorization_us, ef.factorization_us, "factorization runs at full width");
    }

    /// The refresh exists to be cheap: the numeric sweep alone must cost
    /// strictly less than the full analysis (which additionally pays the
    /// sparsify search and the inspector), and the CI bench gate demands
    /// at least 2× — pin that margin here at the model level too.
    #[test]
    fn refresh_is_at_least_twice_cheaper_than_rebuild() {
        let d = DeviceSpec::a100();
        for sparsified in [true, false] {
            let p = plan(sparsified);
            let rebuild = plan_rebuild_cost_us(&d, &p);
            let refresh = plan_refresh_cost_us(&d, &p);
            assert!(refresh > 0.0);
            assert!(
                refresh * 2.0 <= rebuild,
                "refresh {refresh}µs not ≥2× cheaper than rebuild {rebuild}µs \
                 (sparsified={sparsified})"
            );
        }
    }

    /// A level-free plan prices its apply as plain SpMV traffic: a fixed,
    /// small launch count per iteration (no per-level barriers) and an
    /// end-to-end cost with no sparsify or inspector component.
    #[test]
    fn level_free_plan_prices_as_spmv_traffic() {
        use spcg_core::PrecondKind;
        let a = poisson_2d(16, 16);
        let p =
            SpcgPlan::build(&a, SpcgOptions::default().with_precond(PrecondKind::Fsai)).unwrap();
        assert!(p.is_level_free());
        let d = DeviceSpec::a100();
        let c = plan_iteration_cost(&d, &p);
        assert!(c.total_us() > 0.0);
        // spmv(A) + spmv(G) + spmv(Gᵀ) + 5 BLAS-1 kernels = 8 launches.
        assert_eq!(c.launches(), 8.0 * d.launch_overhead_us);
        let e = plan_end_to_end_cost(&d, &p, 30);
        assert_eq!(e.sparsify_us, 0.0);
        assert_eq!(e.inspector_us, 0.0);
        assert!(e.factorization_us > 0.0);
        assert_eq!(e.per_iteration_us, c.total_us());
        let rebuild = plan_rebuild_cost_us(&d, &p);
        assert!(rebuild > 0.0);
        assert!(plan_refresh_cost_us(&d, &p) <= rebuild);
    }

    #[test]
    fn clean_recovery_prices_as_plain_iterations() {
        let p = plan(true);
        let d = DeviceSpec::a100();
        let solve = p.solve_resilient(&vec![1.0; p.a().n_rows()]).unwrap();
        assert!(solve.report.clean());
        let cost = plan_recovery_cost(&d, &p, &solve.report);
        assert_eq!(cost.attempts, 1);
        assert_eq!(cost.refactorization_us, 0.0);
        let per_iter = plan_iteration_cost(&d, &p).total_us();
        assert_eq!(cost.total_us(), per_iter * solve.report.total_iterations() as f64);
    }

    #[test]
    fn faulted_recovery_pays_for_refactorization_and_wasted_iterations() {
        use spcg_core::{FaultInjection, ResilienceOptions};
        let p = plan(true);
        let d = DeviceSpec::a100();
        let b = vec![1.0; p.a().n_rows()];
        let opts =
            ResilienceOptions { fault: Some(FaultInjection::nan_at(2)), ..Default::default() };
        let mut ws = p.make_workspace();
        let solve = p.solve_resilient_with_workspace(&b, &opts, &mut ws).unwrap();
        assert!(solve.report.recovered());
        let faulted = plan_recovery_cost(&d, &p, &solve.report);
        let clean = plan_recovery_cost(&d, &p, &p.solve_resilient(&b).unwrap().report);
        assert!(faulted.attempts > 1);
        assert!(faulted.total_us() > clean.total_us(), "recovery must cost extra device time");
    }
}
