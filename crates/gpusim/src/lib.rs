//! # spcg-gpusim
//!
//! Analytic GPU/CPU execution-model simulator used in place of the paper's
//! A100/V100 hardware (see DESIGN.md, substitution table).
//!
//! The model prices each kernel as
//! `launch_overhead + max(bytes/bandwidth, flops/peak, serial_chain)` and a
//! level-scheduled triangular solve as one such kernel per wavefront. That
//! captures the paper's mechanism exactly: wavefront reduction removes
//! launch overheads and widens parallelism; nnz reduction cuts data
//! movement. Iteration counts are always taken from the *real* solver —
//! only wall-clock time is simulated.

#![warn(missing_docs)]

pub mod admission;
pub mod device;
pub mod ilu;
pub mod kernel;
pub mod pcg;
pub mod plan;
pub mod profiler;
pub mod trace;
pub mod trisolve;

pub use admission::{estimate_from_structure, iteration_budget, SolveCostEstimate};
pub use device::DeviceSpec;
pub use ilu::{
    ilu_factorization_cost, ilu_factorization_cost_serial, ilu_refresh_cost_serial,
    inspector_cost_us, sparsify_cost_us,
};
pub use kernel::{dot_cost, elementwise_cost, spmv_cost, value_bytes_of, KernelCost};
pub use pcg::{
    ainv_iteration_cost, ainv_setup_cost, end_to_end_cost, iteration_gflops, pcg_iteration_cost,
    pcg_iteration_cost_with_factor_bytes, EndToEndCost, IterationCost,
};
pub use plan::{
    plan_end_to_end_cost, plan_iteration_cost, plan_rebuild_cost_us, plan_recovery_cost,
    plan_refresh_cost_us, RecoveryCost,
};
pub use profiler::{profile, Boundedness, ProfileReport};
pub use trace::simulated_solve_trace;
pub use trisolve::{
    trisolve_block_cost, trisolve_block_cost_of, trisolve_cost, trisolve_cost_of, BlockWorkload,
    TrisolveWorkload,
};
