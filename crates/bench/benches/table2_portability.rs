//! Table 2 — per-iteration speedup on the A100 and V100 models for
//! SPCG-ILU(0) and SPCG-ILU(K).
//!
//! Paper reference: ILU(0) 1.23x (A100) / 1.22x (V100) with 69.16 / 83.18%
//! accelerated; ILU(K) 1.65x / 1.71x with 80.38 / 82.25%.

use spcg_bench::stats::{gmean, pct_accelerated};
use spcg_bench::sweep::{per_iteration_speedups, sweep_collection, Family};
use spcg_bench::table::{fmt_pct, fmt_speedup, print_table};
use spcg_bench::{write_artifact, Variant};
use spcg_core::SparsifyParams;
use spcg_gpusim::DeviceSpec;

fn main() {
    let variant = Variant::Heuristic(SparsifyParams::default());
    let mut cells: Vec<(String, f64, f64)> = Vec::new(); // (label, gmean, %acc)

    for family in [Family::Ilu0, Family::IlukAuto] {
        for device in [DeviceSpec::a100(), DeviceSpec::v100()] {
            eprintln!("--- {} on {} ---", family.label(), device.name);
            let rows = sweep_collection(&device, family, &variant);
            let speedups = per_iteration_speedups(&rows);
            cells.push((
                format!("{} {}", family.label(), device.name),
                gmean(&speedups).unwrap_or(0.0),
                pct_accelerated(&speedups),
            ));
        }
    }

    let headers = ["Statistic/Setting", "ILU(0) A100", "ILU(0) V100", "ILU(K) A100", "ILU(K) V100"];
    let gmean_row: Vec<String> = std::iter::once("Geometric Mean".into())
        .chain(cells.iter().map(|c| fmt_speedup(c.1)))
        .collect();
    let acc_row: Vec<String> =
        std::iter::once("% Accelerated".into()).chain(cells.iter().map(|c| fmt_pct(c.2))).collect();
    print_table(
        "Table 2: per-iteration speedup on A100 and V100 (simulated)",
        &headers,
        &[gmean_row, acc_row],
    );
    print_table(
        "paper reference",
        &headers,
        &[
            vec![
                "Geometric Mean".into(),
                "1.23x".into(),
                "1.22x".into(),
                "1.65x".into(),
                "1.71x".into(),
            ],
            vec![
                "% Accelerated".into(),
                "69.16%".into(),
                "83.18%".into(),
                "80.38%".into(),
                "82.25%".into(),
            ],
        ],
    );
    write_artifact("table2_portability", &cells);
}
