//! §5.4 — condition-number analysis on the named stand-ins: iteration
//! counts and condition estimates across sparsification ratios 0/1/5/10%.
//!
//! Paper reference (on the original SuiteSparse matrices): ecology2 fails
//! un-sparsified and at 1% but converges in 2 iterations at 5–10% (cond 30
//! → 10); thermal1 improves gradually (1000+ → 531 → 127 → 71);
//! Pres_Poisson improves up to 5% (458 → 401 iterations) then fails at 10%
//! (cond back to 1.11e4). See EXPERIMENTS.md for why the *iteration* flips
//! depend on the original data's numerical pathologies while the
//! condition-indicator staircase reproduces mechanically.

use spcg_bench::runner::bench_solver_config;
use spcg_bench::table::print_table;
use spcg_bench::write_artifact;
use spcg_core::{condition_estimate, sparsify_by_magnitude, CondEstimator};
use spcg_precond::{ilu0, ExecutionStrategy};
use spcg_solver::pcg;
use spcg_sparse::cond::SpectralOptions;
use spcg_suite::reference::{ecology2_like, pres_poisson_like, thermal1_like};

fn main() {
    let solver = bench_solver_config();
    let spectral = CondEstimator::Spectral(SpectralOptions::default());
    let cases = [
        ("ecology2-like", ecology2_like()),
        ("thermal1-like", thermal1_like()),
        ("Pres_Poisson-like", pres_poisson_like()),
    ];
    let mut rows = Vec::new();
    for (name, a) in &cases {
        let b = vec![1.0f64; a.n_rows()];
        for pct in [0.0, 1.0, 5.0, 10.0] {
            let a_hat = if pct == 0.0 { a.clone() } else { sparsify_by_magnitude(a, pct).a_hat };
            let (iters, status, resid) = match ilu0(&a_hat, ExecutionStrategy::Sequential) {
                Ok(f) => {
                    let r = pcg(a, &f, &b, &solver).expect("well-formed system");
                    (
                        r.iterations.to_string(),
                        format!("{:?}", r.stop),
                        format!("{:.2e}", r.final_residual),
                    )
                }
                Err(e) => ("-".into(), format!("factorization failed: {e}"), "-".into()),
            };
            let approx = condition_estimate(&a_hat, &CondEstimator::PaperApprox);
            let exact = condition_estimate(&a_hat, &spectral);
            rows.push(vec![
                name.to_string(),
                format!("{pct}%"),
                iters,
                status,
                resid,
                format!("{approx:.3e}"),
                format!("{exact:.3e}"),
            ]);
        }
    }
    print_table(
        "Sec 5.4: condition-number analysis across sparsification ratios",
        &[
            "matrix",
            "ratio",
            "iterations",
            "stop",
            "residual",
            "approx cond(A_hat)",
            "spectral cond(A_hat)",
        ],
        &rows,
    );
    println!("\npaper reference (original matrices):");
    println!(
        "  ecology2     : fails at 0%/1% (residual > 1), 2 iterations at 5%/10% (cond 30 -> 10)"
    );
    println!(
        "  thermal1     : 1000+ -> 531 -> 127 -> 71 iterations (cond 10.71 -> 10.70 -> 10.61)"
    );
    println!(
        "  Pres_Poisson : 458 -> 401 iterations up to 5% (cond 1.11e4 -> 1.07e4), fails at 10%"
    );
    write_artifact("sec54_condition", &rows);
}
