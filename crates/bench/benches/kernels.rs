//! Criterion microbenchmarks of the real CPU kernels: SpMV (sequential vs
//! rayon), triangular solves (sequential vs level-parallel vs
//! synchronization-free), ILU(0)/ILU(K) factorization, and the
//! sparsification step itself. These pin the substrate costs the analytic
//! GPU model abstracts.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spcg_core::sparsify_by_magnitude;
use spcg_precond::{ilu0, iluk, ExecutionStrategy};
use spcg_sparse::generators::{layered_poisson_2d, poisson_2d};
use spcg_sparse::spmv::{spmv, spmv_par};
use spcg_wavefront::{
    solve_levels_par, solve_lower_seq, solve_lower_sync_free, LevelSchedule, Triangle,
};
use std::hint::black_box;

fn bench_spmv(c: &mut Criterion) {
    let a = poisson_2d(200, 200);
    let x = vec![1.0f64; a.n_rows()];
    let mut y = vec![0.0f64; a.n_rows()];
    let mut g = c.benchmark_group("spmv");
    g.bench_function("seq_200x200", |b| b.iter(|| spmv(black_box(&a), black_box(&x), &mut y)));
    g.bench_function("rayon_200x200", |b| {
        b.iter(|| spmv_par(black_box(&a), black_box(&x), &mut y))
    });
    g.finish();
}

fn bench_trisolve(c: &mut Criterion) {
    let a = layered_poisson_2d(200, 200, 4, 0.02);
    let l = a.lower();
    let schedule = LevelSchedule::build(&l, Triangle::Lower);
    let rhs = vec![1.0f64; l.n_rows()];
    let mut x = vec![0.0f64; l.n_rows()];
    let mut g = c.benchmark_group("sptrsv");
    g.bench_function("seq", |b| b.iter(|| solve_lower_seq(black_box(&l), &rhs, &mut x)));
    g.bench_function("level_parallel", |b| {
        b.iter(|| solve_levels_par(black_box(&l), &schedule, &rhs, &mut x))
    });
    g.bench_function("sync_free_4t", |b| {
        b.iter(|| solve_lower_sync_free(black_box(&l), &rhs, &mut x, 4))
    });
    // The paper's mechanism: the sparsified factor solves faster.
    let slim = sparsify_by_magnitude(&a, 10.0).a_hat.lower();
    let slim_schedule = LevelSchedule::build(&slim, Triangle::Lower);
    g.bench_function("level_parallel_sparsified", |b| {
        b.iter(|| solve_levels_par(black_box(&slim), &slim_schedule, &rhs, &mut x))
    });
    g.finish();
}

fn bench_factorization(c: &mut Criterion) {
    let a = poisson_2d(120, 120);
    let mut g = c.benchmark_group("factorization");
    g.sample_size(20);
    g.bench_function("ilu0_120x120", |b| {
        b.iter_batched(
            || a.clone(),
            |m| ilu0(black_box(&m), ExecutionStrategy::Sequential).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("iluk2_120x120", |b| {
        b.iter_batched(
            || a.clone(),
            |m| iluk(black_box(&m), 2, ExecutionStrategy::Sequential).unwrap(),
            BatchSize::LargeInput,
        )
    });
    // Figure 6's premise on real hardware: sparsified input factors faster.
    let slim = sparsify_by_magnitude(&a, 10.0).a_hat;
    g.bench_function("ilu0_sparsified_120x120", |b| {
        b.iter_batched(
            || slim.clone(),
            |m| ilu0(black_box(&m), ExecutionStrategy::Sequential).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_sparsify(c: &mut Criterion) {
    let a = layered_poisson_2d(150, 150, 4, 0.02);
    let mut g = c.benchmark_group("sparsify");
    g.bench_function("magnitude_10pct", |b| b.iter(|| sparsify_by_magnitude(black_box(&a), 10.0)));
    g.bench_function("level_schedule_build", |b| {
        b.iter(|| LevelSchedule::build(black_box(&a), Triangle::Lower))
    });
    g.finish();
}

criterion_group!(benches, bench_spmv, bench_trisolve, bench_factorization, bench_sparsify);
criterion_main!(benches);
