//! Bench trajectory — a small, fixed, deterministic recipe set that pins
//! the repo's headline numerics PR over PR.
//!
//! Unlike the figure benches (which sweep the full 107-matrix collection
//! and write into `target/spcg-results/`), this target runs in seconds and
//! writes `BENCH_4.json` **at the repo root as a tracked artifact**: per
//! variant, the real iteration counts and the simulated A100 costs for
//! each fixed system. Committing the JSON turns the bench into a
//! trajectory — `git log -p BENCH_4.json` shows exactly when and how the
//! numbers moved. Only deterministic fields are serialized (iteration
//! counts, simulated µs, chosen ratios); wall-clock timings are excluded
//! so re-running on any machine reproduces the file byte for byte.
//!
//! `scripts/fill_experiments.py` consumes this JSON to refresh the
//! trajectory table in EXPERIMENTS.md.

use serde::Serialize;
use spcg_bench::stats::gmean;
use spcg_bench::{bench_solver_config, compare, ComparisonRow, Variant};
use spcg_core::{PrecondKind, SparsifyParams};
use spcg_gpusim::DeviceSpec;
use spcg_suite::{Ordering, Recipe};

/// The fixed systems. Small enough to run in seconds, varied enough to
/// notice a regression in any of the three regimes the paper cares about:
/// regular grids, wavefront-rich layered media, and irregular patterns.
fn fixtures() -> Vec<(&'static str, Recipe, f64, Ordering)> {
    vec![
        ("poisson2d-32", Recipe::Poisson2D { nx: 32, ny: 32 }, 5.0, Ordering::Natural),
        (
            "layered2d-28",
            Recipe::Layered2D { nx: 28, ny: 28, period: 7, weak: 0.02 },
            1.0,
            Ordering::Natural,
        ),
        ("aniso-30", Recipe::Anisotropic { nx: 30, ny: 30, eps: 0.05 }, 4.0, Ordering::Natural),
        (
            "banded-800",
            Recipe::Banded { n: 800, band: 12, density: 0.5, dominance: 1.8 },
            3.0,
            Ordering::Natural,
        ),
        (
            "graphlap-700",
            Recipe::GraphLaplacian { n: 700, degree: 6, shift: 0.6 },
            2.0,
            Ordering::Scrambled,
        ),
    ]
}

/// One variant's deterministic outcome on one system.
#[derive(Serialize)]
struct VariantPoint {
    variant: String,
    iterations: usize,
    converged: bool,
    per_iteration_us: f64,
    end_to_end_us: f64,
    factorization_us: f64,
    chosen_ratio: Option<f64>,
    wavefronts_factors: usize,
    factor_nnz: usize,
}

impl VariantPoint {
    fn of(e: &spcg_bench::EvalResult) -> Self {
        VariantPoint {
            variant: e.variant.clone(),
            iterations: e.iterations,
            converged: e.converged,
            per_iteration_us: round3(e.per_iteration_us),
            end_to_end_us: round3(e.end_to_end_us),
            factorization_us: round3(e.factorization_us),
            chosen_ratio: e.chosen_ratio,
            wavefronts_factors: e.wavefronts_factors,
            factor_nnz: e.factor_nnz,
        }
    }
}

#[derive(Serialize)]
struct TrajectoryRow {
    name: String,
    n: usize,
    nnz: usize,
    baseline: VariantPoint,
    spcg: VariantPoint,
    per_iteration_speedup: f64,
    end_to_end_speedup: f64,
}

#[derive(Serialize)]
struct Trajectory {
    bench: &'static str,
    device: &'static str,
    precond: &'static str,
    tolerance: f64,
    rows: Vec<TrajectoryRow>,
    gmean_per_iteration_speedup: f64,
    gmean_end_to_end_speedup: f64,
}

/// Three decimals are stable across platforms; more would commit noise.
fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn main() {
    let device = DeviceSpec::a100();
    let solver = bench_solver_config();
    let variant = Variant::Heuristic(SparsifyParams::default());

    let rows: Vec<TrajectoryRow> = fixtures()
        .into_iter()
        .map(|(name, recipe, spread, ordering)| {
            let a = recipe.build(7, spread, ordering);
            let b = vec![1.0; a.n_rows()];
            let row: ComparisonRow =
                compare(name, "", &a, &b, PrecondKind::Ilu0, &device, &variant, &solver)
                    .expect("trajectory fixture must evaluate");
            assert!(
                row.base.converged && row.spcg.converged,
                "trajectory fixture {name} stopped converging — investigate before committing"
            );
            TrajectoryRow {
                name: name.into(),
                n: row.n,
                nnz: row.nnz,
                per_iteration_speedup: round3(row.per_iteration_speedup()),
                // Convergence was just asserted, so the option is Some.
                end_to_end_speedup: round3(row.end_to_end_speedup().unwrap()),
                baseline: VariantPoint::of(&row.base),
                spcg: VariantPoint::of(&row.spcg),
            }
        })
        .collect();

    let per_iter: Vec<f64> = rows.iter().map(|r| r.per_iteration_speedup).collect();
    let e2e: Vec<f64> = rows.iter().map(|r| r.end_to_end_speedup).collect();
    let traj = Trajectory {
        bench: "trajectory",
        device: "a100-model",
        precond: "ilu0",
        tolerance: 1e-10,
        gmean_per_iteration_speedup: round3(gmean(&per_iter).unwrap_or(0.0)),
        gmean_end_to_end_speedup: round3(gmean(&e2e).unwrap_or(0.0)),
        rows,
    };

    // Tracked artifact at the repo root (not target/): BENCH_4.json is the
    // current trajectory point; its git history is the trajectory.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_4.json");
    let json = serde_json::to_string_pretty(&traj).expect("trajectory serializes");
    std::fs::write(&path, json + "\n").expect("BENCH_4.json written");

    println!("trajectory: {} fixtures, ILU(0), A100 model", traj.rows.len());
    for r in &traj.rows {
        println!(
            "  {:<14} n={:<5} nnz={:<6} iters {:>3} -> {:>3}  per-iter {:>6.3}x  e2e {:>6.3}x",
            r.name,
            r.n,
            r.nnz,
            r.baseline.iterations,
            r.spcg.iterations,
            r.per_iteration_speedup,
            r.end_to_end_speedup
        );
    }
    println!(
        "gmean per-iteration {:.3}x   gmean end-to-end {:.3}x",
        traj.gmean_per_iteration_speedup, traj.gmean_end_to_end_speedup
    );
    println!("wrote {}", path.display());
}
