//! Bench trajectory — a small, fixed, deterministic recipe set that pins
//! the repo's headline numerics PR over PR.
//!
//! Unlike the figure benches (which sweep the full 107-matrix collection
//! and write into `target/spcg-results/`), this target runs in seconds and
//! writes `BENCH_10.json` **at the repo root as a tracked artifact**: per
//! variant, the real iteration counts and the simulated A100 costs for
//! each fixed system, an ordering study comparing the natural and
//! `auto`-reordered plan at the *same* sparsify ratio, a precision
//! study comparing the full-f64 plan against the `MixedF32` tier (real
//! iterations, refinement restarts, and the simulated preconditioner-apply
//! bytes the demotion saves), a sync study comparing the barrier-per-level
//! and counter-release dependency-block executors on the same factors
//! (synchronizations per iteration and simulated sweep time), a
//! preconditioner study comparing the ILU(0)-sparsified plan against the
//! level-free FSAI plan (iterations, priced per-iteration cost, measured
//! syncs per apply) and recording which kind the `Auto` search commits to
//! and at what priced total, a serve
//! study replaying a 2×-overload
//! Poisson arrival schedule through the admission controller in virtual
//! time (per-priority latency quantiles, shed/downgrade rates), and a
//! sequence study pricing a value-only plan refresh against a full
//! rebuild and measuring the iterations a warm start saves over a seeded
//! drifting sequence. Committing the JSON turns the bench into a
//! trajectory — `git log -p BENCH_10.json` shows exactly when and how the
//! numbers moved. Only deterministic fields are serialized (iteration
//! counts, simulated µs/bytes, chosen ratios, level counts, virtual-time
//! latencies); wall-clock
//! timings are excluded so re-running on any machine reproduces the file
//! byte for byte.
//!
//! `scripts/fill_experiments.py` consumes this JSON to refresh the
//! trajectory tables in EXPERIMENTS.md, and
//! `scripts/check_bench_regression.py` gates CI on it: any regression in
//! per-iteration cost or iteration count — the mixed tier's apply-bytes
//! win dropping below its 1.5× floor, the dependency-block executor's
//! sync reduction hitting zero on a multi-level fixture, a nonzero FSAI
//! sync count, an `Auto` kind pick pricing worse than always-ILU, or the
//! level-free crossover disappearing from every fixture — against the
//! committed file fails the build.

use serde::Serialize;
use spcg_bench::stats::gmean;
use spcg_bench::{bench_solver_config, compare, ComparisonRow, Variant};
use spcg_core::{
    ExecutionStrategy, IluFill, OrderingKind, PrecisionPolicy, PrecondKind, SparsifyParams,
    SpcgOptions, SpcgPlan,
};
use spcg_gpusim::{
    dot_cost, elementwise_cost, plan_iteration_cost, plan_rebuild_cost_us, plan_refresh_cost_us,
    spmv_cost, trisolve_block_cost_of, trisolve_cost_of, DeviceSpec,
};
use spcg_probe::{Counter, HistogramProbe, RecordingProbe, Span};
use spcg_serve::{
    decide, Admission, LoadSnapshot, Priority, RequestPolicy, SolveTier, TierCost, TierCosts,
};
use spcg_sparse::Rng;
use spcg_suite::{Ordering, Recipe};
use std::time::Duration;

/// The fixed systems. Small enough to run in seconds, varied enough to
/// notice a regression in any of the three regimes the paper cares about:
/// regular grids, wavefront-rich layered media, and irregular patterns.
fn fixtures() -> Vec<(&'static str, Recipe, f64, Ordering)> {
    vec![
        ("poisson2d-32", Recipe::Poisson2D { nx: 32, ny: 32 }, 5.0, Ordering::Natural),
        (
            "layered2d-28",
            Recipe::Layered2D { nx: 28, ny: 28, period: 7, weak: 0.02 },
            1.0,
            Ordering::Natural,
        ),
        ("aniso-30", Recipe::Anisotropic { nx: 30, ny: 30, eps: 0.05 }, 4.0, Ordering::Natural),
        (
            "banded-800",
            Recipe::Banded { n: 800, band: 12, density: 0.5, dominance: 1.8 },
            3.0,
            Ordering::Natural,
        ),
        (
            "graphlap-700",
            Recipe::GraphLaplacian { n: 700, degree: 6, shift: 0.6 },
            2.0,
            Ordering::Scrambled,
        ),
    ]
}

/// One variant's deterministic outcome on one system.
#[derive(Serialize)]
struct VariantPoint {
    variant: String,
    iterations: usize,
    converged: bool,
    per_iteration_us: f64,
    end_to_end_us: f64,
    factorization_us: f64,
    chosen_ratio: Option<f64>,
    wavefronts_factors: usize,
    factor_nnz: usize,
}

impl VariantPoint {
    fn of(e: &spcg_bench::EvalResult) -> Self {
        VariantPoint {
            variant: e.variant.clone(),
            iterations: e.iterations,
            converged: e.converged,
            per_iteration_us: round3(e.per_iteration_us),
            end_to_end_us: round3(e.end_to_end_us),
            factorization_us: round3(e.factorization_us),
            chosen_ratio: e.chosen_ratio,
            wavefronts_factors: e.wavefronts_factors,
            factor_nnz: e.factor_nnz,
        }
    }
}

/// Natural vs `auto`-reordered plan at the *same* sparsify ratio: the
/// ordering is the only lever that moves between the two columns, so the
/// level counts isolate exactly what reordering buys.
#[derive(Serialize)]
struct OrderingPoint {
    /// Ordering the joint search committed to (`natural`/`rcm`/`coloring`).
    chosen: String,
    /// L+U factor levels of the natural-ordering plan.
    levels_natural: usize,
    /// L+U factor levels of the `auto` plan.
    levels_auto: usize,
    /// Percent reduction in factor levels, natural → auto.
    level_reduction_percent: f64,
    /// Simulated per-iteration cost of the natural plan, µs.
    per_iteration_us_natural: f64,
    /// Simulated per-iteration cost of the `auto` plan, µs.
    per_iteration_us_auto: f64,
    /// Real iteration count of the `auto` plan (natural's is `spcg`'s).
    iterations_auto: usize,
}

/// Full-f64 plan vs the `MixedF32` tier on the *same* default-options
/// pipeline: precision is the only lever that moves, so the iteration
/// delta and the apply-bytes ratio isolate exactly what demotion costs
/// and buys.
#[derive(Serialize)]
struct PrecisionPoint {
    /// Real iteration count of the full-precision plan.
    iterations_full: usize,
    /// Real iteration count of the mixed plan (refinement included).
    iterations_mixed: usize,
    /// Iterative-refinement restarts the mixed solve needed (0 = the
    /// narrow applies converged in one inner run).
    refine_restarts: usize,
    /// Simulated preconditioner-apply (L+U trisolve) bytes per iteration,
    /// full-width factors.
    apply_bytes_full: f64,
    /// Same traffic with f32-stored factors and staged vectors.
    apply_bytes_mixed: f64,
    /// `apply_bytes_full / apply_bytes_mixed` — the bandwidth win the
    /// demotion buys on the memory-bound triangular sweeps. CI gates this
    /// at a 1.5× floor per fixture.
    apply_bytes_ratio: f64,
    /// Simulated per-iteration cost of the full plan, µs.
    per_iteration_us_full: f64,
    /// Simulated per-iteration cost of the mixed plan, µs.
    per_iteration_us_mixed: f64,
}

/// ILU(0)-sparsified vs level-free FSAI on the same system, plus the kind
/// `Auto`'s joint search commits to. The ILU sync column is the
/// level-barrier executor's per-apply synchronization count (L + U
/// wavefronts — the structural price of the sweeps on a GPU); the FSAI
/// column is *measured* by running the solve under a recording probe and
/// totalling [`Counter::Syncs`] — the approximate-inverse apply is pure
/// SpMV, nothing in the loop emits one, and CI gates on that zero staying
/// zero. The Auto columns record the search's own end-to-end pricing
/// (setup + estimated iterations × per-iteration), whose argmin over
/// admissible candidates makes "Auto never prices worse than always-ILU"
/// a property CI can assert per fixture.
#[derive(Serialize)]
struct PrecondPoint {
    /// Real iteration count of the default ILU(0)-sparsified plan.
    iterations_ilu: usize,
    /// Real iteration count of the FSAI plan on the same system.
    iterations_fsai: usize,
    /// Simulated per-iteration cost of the ILU plan, µs.
    per_iteration_us_ilu: f64,
    /// Simulated per-iteration cost of the FSAI plan, µs.
    per_iteration_us_fsai: f64,
    /// Level-barrier synchronizations per preconditioner apply, ILU plan.
    syncs_per_iter_ilu: usize,
    /// Measured synchronizations across the whole probed FSAI solve —
    /// gated at zero.
    syncs_per_iter_fsai: usize,
    /// Kind the `Auto` search chose (`ilu`/`fsai`/`spai`/`jacobi`).
    auto_chose: String,
    /// The search's priced end-to-end total for its winner, µs.
    auto_total_us: f64,
    /// Same pricing for the always-admissible ILU candidate, µs.
    ilu_total_us: f64,
}

/// Solves the fixture under the default ILU plan and the FSAI plan with a
/// recording probe (for the measured sync counts), then reruns the build
/// with `PrecondKind::Auto` to capture what the joint kind search picks
/// and how it priced the field.
fn precond_study(
    a: &spcg_sparse::CsrMatrix<f64>,
    b: &[f64],
    device: &DeviceSpec,
    solver: &spcg_solver::SolverConfig,
) -> PrecondPoint {
    let base =
        SpcgOptions { ilu_fill: IluFill::Ilu0, solver: solver.clone(), ..Default::default() };
    let measured = |opts: &SpcgOptions| {
        let plan = SpcgPlan::build(a, opts).expect("precond-study plan builds");
        let mut probe = RecordingProbe::new();
        let mut ws = plan.make_workspace();
        let r = plan
            .solve_with_workspace_probed(b, &mut ws, &mut probe)
            .expect("precond-study fixture must solve");
        assert!(r.converged(), "precond-study fixture stopped converging");
        let syncs = probe.finish().counter_total(Counter::Syncs) as usize;
        (plan, r.iterations, syncs)
    };
    let (ilu_plan, iterations_ilu, _) =
        measured(&base.clone().with_exec(ExecutionStrategy::LevelBarrier));
    let f = ilu_plan.factors();
    let syncs_ilu = f.l_schedule().n_levels() + f.u_schedule().n_levels();
    let (fsai_plan, iterations_fsai, syncs_fsai) =
        measured(&base.clone().with_precond(PrecondKind::Fsai));
    let per_ilu = plan_iteration_cost(device, &ilu_plan).total_us();
    let per_fsai = plan_iteration_cost(device, &fsai_plan).total_us();

    let auto_plan =
        SpcgPlan::build(a, base.with_precond(PrecondKind::Auto)).expect("auto-precond plan builds");
    let d = auto_plan.kind_decision().expect("auto plan records its kind decision");
    let winner = d.winner().expect("kind decision records its winner");
    let ilu_cand = d.ilu().expect("the ILU candidate is always priced");
    PrecondPoint {
        iterations_ilu,
        iterations_fsai,
        per_iteration_us_ilu: round3(per_ilu),
        per_iteration_us_fsai: round3(per_fsai),
        syncs_per_iter_ilu: syncs_ilu,
        syncs_per_iter_fsai: syncs_fsai,
        auto_chose: d.chosen.label().to_string(),
        auto_total_us: round3(winner.total_us),
        ilu_total_us: round3(ilu_cand.total_us),
    }
}

/// Barrier-per-level vs counter-release dependency blocks on the *same*
/// sparsified factors: the executor is the only lever that moves, so the
/// sync counts and the simulated L+U sweep times isolate exactly what
/// killing the per-level barrier buys. CI gates `sync_reduction_percent`
/// strictly above zero on every multi-level fixture.
#[derive(Serialize)]
struct SyncPoint {
    /// Synchronizations per iteration under the level-barrier executor:
    /// one barrier per wavefront, L and U sweeps combined.
    syncs_barrier: usize,
    /// Synchronizations per iteration under dependency blocks: one counter
    /// release per block, L and U sweeps combined.
    syncs_blocks: usize,
    /// Percent reduction in per-iteration synchronizations, barrier → blocks.
    sync_reduction_percent: f64,
    /// Simulated L+U triangular-sweep time per iteration, barrier executor, µs.
    sweep_us_barrier: f64,
    /// Simulated L+U triangular-sweep time per iteration, block executor, µs.
    sweep_us_blocks: f64,
    /// Real iteration count of the dependency-block plan — asserted
    /// bitwise-identical to the barrier plan's solve every run.
    iterations_blocks: usize,
}

/// Builds the default-options plan under both parallel executors and
/// solves each; the factors are structurally identical, so the sync counts
/// and priced sweeps compare the executors alone. The bitwise assert is
/// the torture suite's headline property riding along in the bench: if the
/// counter-release schedule ever reorders a row's accumulation, the
/// committed artifact run fails before CI even reaches the gate script.
fn sync_study(
    a: &spcg_sparse::CsrMatrix<f64>,
    b: &[f64],
    device: &DeviceSpec,
    solver: &spcg_solver::SolverConfig,
) -> SyncPoint {
    let base =
        SpcgOptions { ilu_fill: IluFill::Ilu0, solver: solver.clone(), ..Default::default() };
    let barrier = SpcgPlan::build(a, base.clone().with_exec(ExecutionStrategy::LevelBarrier))
        .expect("barrier plan builds");
    let blocks = SpcgPlan::build(a, base.with_exec(ExecutionStrategy::DependencyBlocks))
        .expect("block plan builds");

    let f = barrier.factors();
    let syncs_barrier = f.l_schedule().n_levels() + f.u_schedule().n_levels();
    let syncs_blocks = f.l_blocks().n_blocks() + f.u_blocks().n_blocks();
    let sweep_us_barrier = trisolve_cost_of(device, f.l(), f.l_schedule()).time_us
        + trisolve_cost_of(device, f.u(), f.u_schedule()).time_us;
    let fb = blocks.factors();
    let sweep_us_blocks = trisolve_block_cost_of(device, fb.l(), fb.l_blocks()).time_us
        + trisolve_block_cost_of(device, fb.u(), fb.u_blocks()).time_us;

    let rb = barrier.solve(b).expect("barrier fixture must solve");
    let rk = blocks.solve(b).expect("block fixture must solve");
    assert!(rb.converged() && rk.converged(), "sync-study fixture stopped converging");
    assert_eq!(rb.x, rk.x, "dependency-block solve must be bitwise-identical to barrier");
    assert_eq!(rb.iterations, rk.iterations);

    SyncPoint {
        syncs_barrier,
        syncs_blocks,
        sync_reduction_percent: round3(
            (syncs_barrier as f64 - syncs_blocks as f64) / syncs_barrier as f64 * 100.0,
        ),
        sweep_us_barrier: round3(sweep_us_barrier),
        sweep_us_blocks: round3(sweep_us_blocks),
        iterations_blocks: rk.iterations,
    }
}

/// One priority class's fate under the overload replay.
#[derive(Serialize)]
struct ServeClassPoint {
    priority: String,
    offered: u64,
    /// Admitted at full quality.
    admitted: u64,
    /// Admitted at a degraded tier (Light or Jacobi).
    downgraded: u64,
    /// Refused at admission.
    shed: u64,
    /// Admitted requests the deadline watchdog cut short: the queue wait
    /// ate their budget, so the modeled solve was truncated at the
    /// deadline instead of running to completion.
    watchdog_killed: u64,
    /// Virtual-time completion latency quantiles for admitted requests
    /// (queue wait + modeled service time, watchdog-truncated), µs. The
    /// watchdog makes `deadline_us` a hard ceiling — CI gates on it.
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

/// Admission-control study: a fixed Poisson arrival schedule offered at
/// 2× the modeled service capacity, replayed through the *real*
/// [`spcg_serve::decide`] policy against a virtual-time worker pool. No
/// wall clock anywhere — arrivals come from a seeded generator and service
/// times from the A100 cost model — so the latency quantiles and shed
/// counts are bit-reproducible and CI can gate on them: high-priority p99
/// must stay under the deadline, and shedding must fall on the lower
/// classes first.
#[derive(Serialize)]
struct ServeStudy {
    workers: usize,
    queue_capacity: usize,
    requests: usize,
    seed: u64,
    /// Per-request deadline, µs of virtual time.
    deadline_us: f64,
    /// Offered arrival rate (2× capacity), requests per second.
    arrival_rate_per_s: f64,
    /// Modeled full-tier service capacity, requests per second.
    capacity_per_s: f64,
    shed_rate_percent: f64,
    degraded_rate_percent: f64,
    classes: Vec<ServeClassPoint>,
}

/// Prices the degradation ladder for the grid fixture the way the service
/// prices a warm cache hit: the Full and Light tiers from their actual
/// plans, Jacobi from the kernel model (SpMV + diagonal scale + BLAS-1).
/// Expected iteration counts use the service's √n heuristic so the study
/// exercises the same closed world the admission controller lives in.
fn serve_tier_costs(
    a: &spcg_sparse::CsrMatrix<f64>,
    device: &DeviceSpec,
    solver: &spcg_solver::SolverConfig,
) -> TierCosts {
    let n = a.n_rows();
    let ilu_iters = (n as f64).sqrt().ceil() as usize;
    let base =
        SpcgOptions { ilu_fill: IluFill::Ilu0, solver: solver.clone(), ..Default::default() };
    let full_plan = SpcgPlan::build(a, &base).expect("serve-study full plan builds");
    let light_plan =
        SpcgPlan::build(a, base.clone().with_sparsify(None)).expect("serve-study light plan");
    let warm = |plan: &SpcgPlan<f64>| TierCost {
        build_us: 0.0,
        per_iteration_us: plan_iteration_cost(device, plan).total_us(),
        expected_iterations: ilu_iters,
    };
    let spmv_us = spmv_cost(device, a).time_us;
    let diag_us = elementwise_cost::<f64>(device, n, 3.0).time_us;
    let blas_us = 2.0 * dot_cost::<f64>(device, n).time_us
        + 3.0 * elementwise_cost::<f64>(device, n, 3.0).time_us;
    TierCosts {
        full: warm(&full_plan),
        light: warm(&light_plan),
        jacobi: TierCost {
            build_us: elementwise_cost::<f64>(device, n, 2.0).time_us,
            per_iteration_us: spmv_us + diag_us + blas_us,
            expected_iterations: 3 * ilu_iters,
        },
    }
}

/// Discrete-event replay: Poisson arrivals hit `decide()` against a live
/// queue snapshot; admitted requests occupy the earliest-free virtual
/// worker for their tier's modeled service time.
fn serve_study(device: &DeviceSpec, solver: &spcg_solver::SolverConfig) -> ServeStudy {
    let a = Recipe::Poisson2D { nx: 32, ny: 32 }.build(7, 5.0, Ordering::Natural);
    let costs = serve_tier_costs(&a, device, solver);

    let workers = 4usize;
    let queue_capacity = 16usize;
    let requests = 600usize;
    let seed = 0x5ECC_u64;
    let full_service_us = costs.full.expected_total_us();
    // 2× overload: the point of the study is what the controller does when
    // the offered rate cannot possibly be served at full quality.
    let lambda_per_us = 2.0 * workers as f64 / full_service_us;
    let deadline_us = 3.0 * full_service_us;
    let deadline = Duration::from_nanos((deadline_us * 1000.0).round() as u64);

    let mut rng = Rng::new(seed);
    let mut worker_free = vec![0.0f64; workers];
    // Admitted-but-not-yet-started requests: (virtual start time, cost µs).
    let mut waiting: Vec<(f64, f64)> = Vec::new();
    let mut t_us = 0.0f64;
    let mut offered = [0u64; 3];
    let mut admitted = [0u64; 3];
    let mut downgraded = [0u64; 3];
    let mut shed = [0u64; 3];
    let mut killed = [0u64; 3];
    let mut latencies: Vec<HistogramProbe> = (0..3).map(|_| HistogramProbe::new()).collect();

    for i in 0..requests {
        t_us += -(1.0 - rng.uniform()).ln() / lambda_per_us;
        waiting.retain(|(start, _)| *start > t_us);
        let load = LoadSnapshot {
            queue_depth: waiting.len(),
            queue_capacity,
            queued_cost_us: waiting.iter().map(|(_, c)| c).sum(),
            workers,
        };
        let priority = Priority::ALL[i % 3];
        let class = priority.tag() as usize;
        offered[class] += 1;
        let policy = RequestPolicy::default().with_deadline(deadline).with_priority(priority);
        match decide(&policy, &load, &costs) {
            Admission::Admit { tier, .. } => {
                let cost_us = costs.at(tier).expected_total_us();
                let w = (0..workers)
                    .min_by(|&x, &y| worker_free[x].partial_cmp(&worker_free[y]).unwrap())
                    .unwrap();
                let start = worker_free[w].max(t_us);
                // The worker re-derives the iteration budget from the wall
                // clock at dequeue, so queue wait shrinks the watchdog: a
                // solve never runs past the request's deadline.
                let budget_us = (t_us + deadline_us - start).max(0.0);
                let ran_us = cost_us.min(budget_us);
                if cost_us > budget_us {
                    killed[class] += 1;
                }
                worker_free[w] = start + ran_us;
                waiting.push((start, ran_us));
                if tier == SolveTier::Full {
                    admitted[class] += 1;
                } else {
                    downgraded[class] += 1;
                }
                let latency_us = start + ran_us - t_us;
                latencies[class]
                    .record_duration_ns(Span::ServeRequest, (latency_us * 1000.0).round() as u64);
            }
            Admission::Shed(_) => shed[class] += 1,
        }
    }

    let classes = Priority::ALL
        .iter()
        .map(|p| {
            let class = p.tag() as usize;
            let q = |q: f64| {
                latencies[class]
                    .quantile(Span::ServeRequest, q)
                    .map_or(0.0, |ns| round3(ns as f64 / 1000.0))
            };
            ServeClassPoint {
                priority: p.label().to_string(),
                offered: offered[class],
                admitted: admitted[class],
                downgraded: downgraded[class],
                shed: shed[class],
                watchdog_killed: killed[class],
                p50_us: q(0.50),
                p95_us: q(0.95),
                p99_us: q(0.99),
            }
        })
        .collect();
    let total_offered: u64 = offered.iter().sum();
    let total_shed: u64 = shed.iter().sum();
    let total_downgraded: u64 = downgraded.iter().sum();
    ServeStudy {
        workers,
        queue_capacity,
        requests,
        seed,
        deadline_us: round3(deadline_us),
        arrival_rate_per_s: round3(lambda_per_us * 1e6),
        capacity_per_s: round3(workers as f64 / full_service_us * 1e6),
        shed_rate_percent: round3(100.0 * total_shed as f64 / total_offered as f64),
        degraded_rate_percent: round3(100.0 * total_downgraded as f64 / total_offered as f64),
        classes,
    }
}

/// Time-varying sequence study for one fixture: the modeled plan-cost
/// asymmetry (full rebuild vs value-only refresh on the serial host path)
/// and the real iteration counts of warm-started vs cold solves over a
/// seeded, symmetry-preserving drifting sequence. Everything here is
/// deterministic: drift scales come from a fixed-seed generator and the
/// solves are real f64 PCG runs.
#[derive(Serialize)]
struct SequencePoint {
    name: String,
    /// Drift steps past the opening solve.
    steps: usize,
    /// Relative per-step value perturbation amplitude.
    drift: f64,
    /// Modeled cost of a full re-plan (analysis + numeric factorization), µs.
    rebuild_us: f64,
    /// Modeled cost of the value-only numeric refresh, µs.
    refresh_us: f64,
    /// `rebuild_us / refresh_us` — CI gates this at a 2× floor.
    refresh_speedup: f64,
    /// Total iterations over the drift steps, warm-started from the
    /// previous step's solution.
    iterations_warm: usize,
    /// Total iterations over the same steps from x₀ = 0. CI gates
    /// `iterations_warm <= iterations_cold`.
    iterations_cold: usize,
    /// Percent of cold iterations the warm start saves.
    warm_saved_percent: f64,
}

/// Drifts each fixture's values through 4 steps (uniform seeded scale per
/// step, preserving symmetry), refreshing the plan numerics at every step
/// and solving the same right-hand side twice: warm (from the chained
/// workspace) and cold (fresh solve).
fn sequence_study(device: &DeviceSpec, solver: &spcg_solver::SolverConfig) -> Vec<SequencePoint> {
    let steps = 4usize;
    let drift = 0.002f64;
    fixtures()
        .into_iter()
        .map(|(name, recipe, spread, ordering)| {
            let a = recipe.build(7, spread, ordering);
            let b = vec![1.0; a.n_rows()];
            let opts = SpcgOptions {
                ilu_fill: IluFill::Ilu0,
                solver: solver.clone(),
                ..Default::default()
            };
            let plan = SpcgPlan::build(&a, &opts).expect("sequence fixture plan builds");
            let rebuild_us = plan_rebuild_cost_us(device, &plan);
            let refresh_us = plan_refresh_cost_us(device, &plan);

            let mut rng = Rng::new(0x5e9 ^ a.n_rows() as u64);
            let mut current = a.clone();
            let mut ws = plan.make_workspace();
            let opening = plan.solve_from(&b, &mut ws).expect("opening solve");
            assert!(opening.converged(), "sequence fixture {name} opening solve diverged");
            let mut active = plan;
            let (mut iterations_warm, mut iterations_cold) = (0usize, 0usize);
            for step in 0..steps {
                let scale = 1.0 + drift * rng.range(-1.0, 1.0);
                current = current.map_values(|v| v * scale);
                let refreshed = active
                    .refresh_values(&current)
                    .unwrap_or_else(|e| panic!("{name} step {step}: refresh failed: {e}"));
                let cold = refreshed
                    .solve(&b)
                    .unwrap_or_else(|e| panic!("{name} step {step}: cold solve failed: {e}"));
                let warm = refreshed
                    .solve_from(&b, &mut ws)
                    .unwrap_or_else(|e| panic!("{name} step {step}: warm solve failed: {e}"));
                assert!(
                    cold.converged() && warm.converged(),
                    "sequence fixture {name} stopped converging — investigate before committing"
                );
                iterations_warm += warm.iterations;
                iterations_cold += cold.iterations;
                active = refreshed;
            }
            SequencePoint {
                name: name.into(),
                steps,
                drift,
                rebuild_us: round3(rebuild_us),
                refresh_us: round3(refresh_us),
                refresh_speedup: round3(rebuild_us / refresh_us),
                iterations_warm,
                iterations_cold,
                warm_saved_percent: round3(
                    (1.0 - iterations_warm as f64 / iterations_cold.max(1) as f64) * 100.0,
                ),
            }
        })
        .collect()
}

#[derive(Serialize)]
struct TrajectoryRow {
    name: String,
    n: usize,
    nnz: usize,
    baseline: VariantPoint,
    spcg: VariantPoint,
    ordering: OrderingPoint,
    precision: PrecisionPoint,
    sync: SyncPoint,
    precond: PrecondPoint,
    per_iteration_speedup: f64,
    end_to_end_speedup: f64,
}

#[derive(Serialize)]
struct Trajectory {
    bench: &'static str,
    device: &'static str,
    precond: &'static str,
    tolerance: f64,
    rows: Vec<TrajectoryRow>,
    gmean_per_iteration_speedup: f64,
    gmean_end_to_end_speedup: f64,
    /// Geometric-mean reduction in total factor levels from `auto`
    /// reordering at fixed ratio: `(1 - 1/gmean(nat/auto)) * 100`.
    gmean_level_reduction_percent: f64,
    /// Geometric mean of the per-fixture full/mixed apply-bytes ratios.
    gmean_apply_bytes_ratio: f64,
    /// Geometric-mean reduction in per-iteration synchronizations from the
    /// dependency-block executor: `(1 - 1/gmean(barrier/blocks)) * 100`.
    gmean_sync_reduction_percent: f64,
    /// Geometric mean of the per-fixture rebuild/refresh cost ratios.
    gmean_refresh_speedup: f64,
    /// Virtual-time admission-control replay at 2× offered load.
    serve: ServeStudy,
    /// Refresh-vs-rebuild and warm-vs-cold study over drifting sequences.
    sequence: Vec<SequencePoint>,
}

/// Three decimals are stable across platforms; more would commit noise.
fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Builds the natural and `auto`-reordered plan at the ratio the heuristic
/// already picked: `ratios = [r]`, `tau = MAX`, `omega = 0` pin both arms
/// to the same sparsification, and `ordering_omega = 0` lets `auto` accept
/// any level reduction — so the two plans differ *only* in ordering.
fn ordering_study(
    a: &spcg_sparse::CsrMatrix<f64>,
    b: &[f64],
    chosen_ratio: Option<f64>,
    device: &DeviceSpec,
    solver: &spcg_solver::SolverConfig,
) -> OrderingPoint {
    let sparsify = chosen_ratio.map(|r| SparsifyParams {
        ratios: vec![r],
        tau: f64::MAX,
        omega: 0.0,
        ..Default::default()
    });
    let base = SpcgOptions {
        sparsify,
        ilu_fill: IluFill::Ilu0,
        solver: solver.clone(),
        ..Default::default()
    };
    let natural = SpcgPlan::build(a, &base).expect("natural plan builds");
    let auto =
        SpcgPlan::build(a, base.clone().with_ordering(OrderingKind::Auto).with_ordering_omega(0.0))
            .expect("auto plan builds");
    let levels_natural = natural.factors().total_wavefronts();
    let levels_auto = auto.factors().total_wavefronts();
    let chosen =
        auto.reorder().map_or_else(|| "natural".to_string(), |d| d.chosen.label().to_string());
    let result = auto.solve(b).expect("auto-reordered fixture must solve");
    assert!(
        result.converged(),
        "auto-reordered trajectory fixture stopped converging — investigate before committing"
    );
    OrderingPoint {
        chosen,
        levels_natural,
        levels_auto,
        level_reduction_percent: round3(
            (levels_natural as f64 - levels_auto as f64) / levels_natural as f64 * 100.0,
        ),
        per_iteration_us_natural: round3(plan_iteration_cost(device, &natural).total_us()),
        per_iteration_us_auto: round3(plan_iteration_cost(device, &auto).total_us()),
        iterations_auto: result.iterations,
    }
}

/// Builds the default-options plan twice — full precision and `MixedF32`
/// — and solves both. The mixed arm runs probed so the refinement-restart
/// counter lands in the artifact; the apply bytes come from the roofline
/// model's per-iteration trisolve pricing of each plan.
fn precision_study(
    a: &spcg_sparse::CsrMatrix<f64>,
    b: &[f64],
    device: &DeviceSpec,
    solver: &spcg_solver::SolverConfig,
) -> PrecisionPoint {
    let base =
        SpcgOptions { ilu_fill: IluFill::Ilu0, solver: solver.clone(), ..Default::default() };
    let full = SpcgPlan::build(a, &base).expect("full-precision plan builds");
    let mixed = SpcgPlan::build(a, base.clone().with_precision(PrecisionPolicy::MixedF32))
        .expect("mixed plan builds");
    assert!(mixed.is_mixed(), "MixedF32 must resolve to the mixed tier");

    let full_result = full.solve(b).expect("full fixture must solve");
    let mut probe = RecordingProbe::new();
    let mut ws = mixed.make_workspace();
    let mixed_result = mixed
        .solve_with_workspace_probed(b, &mut ws, &mut probe)
        .expect("mixed fixture must solve");
    assert!(
        full_result.converged() && mixed_result.converged(),
        "precision fixture stopped converging — investigate before committing"
    );
    let trace = probe.finish();
    let restarts = trace.counter_total(Counter::PrecisionRefineRestarts) as usize;

    let cost_full = plan_iteration_cost(device, &full);
    let cost_mixed = plan_iteration_cost(device, &mixed);
    let apply_full = cost_full.lower.bytes + cost_full.upper.bytes;
    let apply_mixed = cost_mixed.lower.bytes + cost_mixed.upper.bytes;
    PrecisionPoint {
        iterations_full: full_result.iterations,
        iterations_mixed: mixed_result.iterations,
        refine_restarts: restarts,
        apply_bytes_full: round3(apply_full),
        apply_bytes_mixed: round3(apply_mixed),
        apply_bytes_ratio: round3(apply_full / apply_mixed),
        per_iteration_us_full: round3(cost_full.total_us()),
        per_iteration_us_mixed: round3(cost_mixed.total_us()),
    }
}

fn main() {
    let device = DeviceSpec::a100();
    let solver = bench_solver_config();
    let variant = Variant::Heuristic(SparsifyParams::default());

    let rows: Vec<TrajectoryRow> = fixtures()
        .into_iter()
        .map(|(name, recipe, spread, ordering)| {
            let a = recipe.build(7, spread, ordering);
            let b = vec![1.0; a.n_rows()];
            let row: ComparisonRow =
                compare(name, "", &a, &b, IluFill::Ilu0, &device, &variant, &solver)
                    .expect("trajectory fixture must evaluate");
            assert!(
                row.base.converged && row.spcg.converged,
                "trajectory fixture {name} stopped converging — investigate before committing"
            );
            let ordering = ordering_study(&a, &b, row.spcg.chosen_ratio, &device, &solver);
            let precision = precision_study(&a, &b, &device, &solver);
            let sync = sync_study(&a, &b, &device, &solver);
            let precond = precond_study(&a, &b, &device, &solver);
            TrajectoryRow {
                name: name.into(),
                n: row.n,
                nnz: row.nnz,
                per_iteration_speedup: round3(row.per_iteration_speedup()),
                // Convergence was just asserted, so the option is Some.
                end_to_end_speedup: round3(row.end_to_end_speedup().unwrap()),
                baseline: VariantPoint::of(&row.base),
                spcg: VariantPoint::of(&row.spcg),
                ordering,
                precision,
                sync,
                precond,
            }
        })
        .collect();

    let per_iter: Vec<f64> = rows.iter().map(|r| r.per_iteration_speedup).collect();
    let e2e: Vec<f64> = rows.iter().map(|r| r.end_to_end_speedup).collect();
    // Aggregate the level win as a gmean of *ratios* (nat/auto), reported
    // as a percent reduction: robust to one fixture dominating, and a
    // fixture where auto stays natural contributes exactly 1.0.
    let level_ratios: Vec<f64> = rows
        .iter()
        .map(|r| r.ordering.levels_natural as f64 / r.ordering.levels_auto as f64)
        .collect();
    let gmean_levels = gmean(&level_ratios).unwrap_or(1.0);
    let apply_ratios: Vec<f64> = rows.iter().map(|r| r.precision.apply_bytes_ratio).collect();
    // Same gmean-of-ratios shape as the level aggregate: a diagonal-only
    // fixture (blocks == levels) contributes exactly 1.0.
    let sync_ratios: Vec<f64> =
        rows.iter().map(|r| r.sync.syncs_barrier as f64 / r.sync.syncs_blocks as f64).collect();
    let gmean_syncs = gmean(&sync_ratios).unwrap_or(1.0);
    let serve = serve_study(&device, &solver);
    let sequence = sequence_study(&device, &solver);
    let refresh_speedups: Vec<f64> = sequence.iter().map(|s| s.refresh_speedup).collect();
    let traj = Trajectory {
        bench: "trajectory",
        device: "a100-model",
        precond: "ilu0",
        tolerance: 1e-10,
        gmean_per_iteration_speedup: round3(gmean(&per_iter).unwrap_or(0.0)),
        gmean_end_to_end_speedup: round3(gmean(&e2e).unwrap_or(0.0)),
        gmean_level_reduction_percent: round3((1.0 - 1.0 / gmean_levels) * 100.0),
        gmean_apply_bytes_ratio: round3(gmean(&apply_ratios).unwrap_or(1.0)),
        gmean_sync_reduction_percent: round3((1.0 - 1.0 / gmean_syncs) * 100.0),
        gmean_refresh_speedup: round3(gmean(&refresh_speedups).unwrap_or(1.0)),
        serve,
        sequence,
        rows,
    };

    // Tracked artifact at the repo root (not target/): BENCH_10.json is
    // the current trajectory point; its git history is the trajectory.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_10.json");
    let json = serde_json::to_string_pretty(&traj).expect("trajectory serializes");
    std::fs::write(&path, json + "\n").expect("BENCH_10.json written");

    println!("trajectory: {} fixtures, ILU(0), A100 model", traj.rows.len());
    for r in &traj.rows {
        println!(
            "  {:<14} n={:<5} nnz={:<6} iters {:>3} -> {:>3}  per-iter {:>6.3}x  e2e {:>6.3}x",
            r.name,
            r.n,
            r.nnz,
            r.baseline.iterations,
            r.spcg.iterations,
            r.per_iteration_speedup,
            r.end_to_end_speedup
        );
        println!(
            "  {:<14} ordering {:<8} levels {:>3} -> {:>3}  ({:>5.1}% fewer)",
            "",
            r.ordering.chosen,
            r.ordering.levels_natural,
            r.ordering.levels_auto,
            r.ordering.level_reduction_percent
        );
        println!(
            "  {:<14} mixed f32 iters {:>3} -> {:>3}  restarts {}  apply bytes {:>6.3}x fewer",
            "",
            r.precision.iterations_full,
            r.precision.iterations_mixed,
            r.precision.refine_restarts,
            r.precision.apply_bytes_ratio
        );
        println!(
            "  {:<14} syncs/iter {:>4} -> {:>3}  ({:>5.1}% fewer)  sweep {:>8.3} -> {:>8.3} us",
            "",
            r.sync.syncs_barrier,
            r.sync.syncs_blocks,
            r.sync.sync_reduction_percent,
            r.sync.sweep_us_barrier,
            r.sync.sweep_us_blocks
        );
        println!(
            "  {:<14} fsai iters {:>3} vs ilu {:>3}  per-iter {:>7.3} vs {:>7.3} us  \
             syncs {} vs {}  auto -> {} ({:.0} vs ilu {:.0} us)",
            "",
            r.precond.iterations_fsai,
            r.precond.iterations_ilu,
            r.precond.per_iteration_us_fsai,
            r.precond.per_iteration_us_ilu,
            r.precond.syncs_per_iter_fsai,
            r.precond.syncs_per_iter_ilu,
            r.precond.auto_chose,
            r.precond.auto_total_us,
            r.precond.ilu_total_us
        );
    }
    println!(
        "gmean per-iteration {:.3}x   gmean end-to-end {:.3}x   gmean level reduction {:.1}%   \
         gmean apply-bytes ratio {:.3}x   gmean sync reduction {:.1}%",
        traj.gmean_per_iteration_speedup,
        traj.gmean_end_to_end_speedup,
        traj.gmean_level_reduction_percent,
        traj.gmean_apply_bytes_ratio,
        traj.gmean_sync_reduction_percent
    );
    println!(
        "serve study: {} requests at 2x capacity over {} workers, deadline {:.0} us, \
         shed {:.1}%, degraded {:.1}%",
        traj.serve.requests,
        traj.serve.workers,
        traj.serve.deadline_us,
        traj.serve.shed_rate_percent,
        traj.serve.degraded_rate_percent
    );
    for c in &traj.serve.classes {
        println!(
            "  {:<8} offered {:>3}  admitted {:>3}  downgraded {:>3}  shed {:>3}  \
             killed {:>3}  p50 {:>8.1} us  p99 {:>8.1} us",
            c.priority,
            c.offered,
            c.admitted,
            c.downgraded,
            c.shed,
            c.watchdog_killed,
            c.p50_us,
            c.p99_us
        );
    }
    println!(
        "sequence study: {} drift steps at {:.1}% per step, gmean refresh speedup {:.1}x",
        traj.sequence.first().map_or(0, |s| s.steps),
        traj.sequence.first().map_or(0.0, |s| 100.0 * s.drift),
        traj.gmean_refresh_speedup
    );
    for s in &traj.sequence {
        println!(
            "  {:<14} rebuild {:>9.1} us  refresh {:>8.1} us  ({:>5.1}x)  iters warm {:>3} \
             vs cold {:>3}  ({:>4.1}% saved)",
            s.name,
            s.rebuild_us,
            s.refresh_us,
            s.refresh_speedup,
            s.iterations_warm,
            s.iterations_cold,
            s.warm_saved_percent
        );
    }
    println!("wrote {}", path.display());
}
