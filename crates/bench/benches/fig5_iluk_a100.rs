//! Figure 5 — SPCG-ILU(K) speedups on the A100 model.
//!
//! Paper reference points: per-iteration gmean 1.65x with 80.38%
//! accelerated, slowdowns staying close to 1 (Fig 5a); end-to-end gmean
//! 3.73x, iterations approximately unchanged for 91.61% (Fig 5b, §4.3).
//! Baseline ILU(K) GFLOP/s envelope quoted: 0.0007–2.709.

use spcg_bench::stats::{gmean, histogram_pct, pct_accelerated};
use spcg_bench::sweep::{end_to_end_speedups, per_iteration_speedups, sweep_collection, Family};
use spcg_bench::table::{fmt_pct, fmt_speedup, print_histogram, print_scatter};
use spcg_bench::{write_artifact, Variant};
use spcg_core::SparsifyParams;
use spcg_gpusim::{iteration_gflops, DeviceSpec};
use spcg_solver::pcg_iteration_flops;

fn main() {
    let device = DeviceSpec::a100();
    let rows =
        sweep_collection(&device, Family::IlukAuto, &Variant::Heuristic(SparsifyParams::default()));
    write_artifact("fig5_iluk_a100", &rows.iter().map(|(_, r)| r).collect::<Vec<_>>());

    // --- Figure 5a: per-iteration speedup distribution ---
    let speedups = per_iteration_speedups(&rows);
    print_histogram(
        "Figure 5a: SPCG-ILU(K) per-iteration speedup distribution (A100 model)",
        0.0,
        5.0,
        &histogram_pct(&speedups, 0.0, 5.0, 20),
    );
    println!(
        "gmean per-iteration speedup: {}   (paper: 1.65x)",
        fmt_speedup(gmean(&speedups).unwrap_or(0.0))
    );
    println!("% accelerated: {}              (paper: 80.38%)", fmt_pct(pct_accelerated(&speedups)));
    let worst = speedups.iter().cloned().fold(f64::MAX, f64::min);
    println!("worst slowdown: {worst:.2}x   (paper: slowdowns remain close to 1)");

    let gflops: Vec<f64> = rows
        .iter()
        .map(|(_, r)| {
            let flops = pcg_iteration_flops(r.nnz, r.base.factor_nnz, r.n) as f64;
            iteration_gflops(flops, r.base.per_iteration_us)
        })
        .collect();
    let lo = gflops.iter().cloned().fold(f64::MAX, f64::min);
    let hi = gflops.iter().cloned().fold(0.0f64, f64::max);
    println!("baseline GFLOP/s range: {lo:.4} - {hi:.4}   (paper: 0.0007 - 2.709)");

    // --- Figure 5b: end-to-end speedup vs nnz ---
    let e2e = end_to_end_speedups(&rows);
    let pts: Vec<(String, f64, f64)> =
        e2e.iter().map(|(n, nnz, s)| (n.clone(), *nnz as f64, *s)).collect();
    print_scatter(
        "Figure 5b: SPCG-ILU(K) end-to-end speedup vs nnz (A100 model)",
        "nnz",
        "speedup",
        &pts,
    );
    let e2e_vals: Vec<f64> = e2e.iter().map(|(_, _, s)| *s).collect();
    println!(
        "gmean end-to-end speedup: {}   (paper: 3.73x)",
        fmt_speedup(gmean(&e2e_vals).unwrap_or(0.0))
    );
    let same = rows.iter().filter(|(_, r)| r.iterations_approx_same()).count();
    println!(
        "iterations approximately unchanged: {}   (paper: 91.61%)",
        fmt_pct(100.0 * same as f64 / rows.len().max(1) as f64)
    );
}
