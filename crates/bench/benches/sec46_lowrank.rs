//! §4.6 — low-rank approximation study: how often HSS-style compression
//! would trigger on incomplete factors (the STRUMPACK substitute).
//!
//! Paper reference: HSS compression applied effectively for only 5.61% of
//! matrices at default parameters; shrinking the minimum separator size
//! raises coverage to 28.04% but degrades performance/memory and is not
//! recommended.

use spcg_bench::table::{fmt_pct, print_table};
use spcg_bench::write_artifact;
use spcg_lowrank::{probe_factor, HssProbeParams};
use spcg_precond::{ilu0, ExecutionStrategy};
use spcg_suite::fast_collection;

fn main() {
    // The probe is dense-block QR over factor blocks — use the quarter-size
    // collection regardless of SPCG_FAST to bound runtime.
    let specs = fast_collection();
    let default_params = HssProbeParams::default();
    let lax_params = HssProbeParams { min_separator: 4, min_density: 0.02, ..Default::default() };

    let mut triggered_default = 0usize;
    let mut triggered_lax = 0usize;
    let mut total = 0usize;
    let mut rows = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let a = spec.build();
        let Ok(f) = ilu0(&a, ExecutionStrategy::Sequential) else { continue };
        let rep_d = probe_factor(f.l(), &default_params);
        let rep_l = probe_factor(f.l(), &lax_params);
        total += 1;
        if rep_d.triggers() {
            triggered_default += 1;
        }
        if rep_l.triggers() {
            triggered_lax += 1;
        }
        rows.push(vec![
            spec.name.clone(),
            rep_d.blocks_candidates.to_string(),
            rep_d.blocks_compressible.to_string(),
            rep_l.blocks_candidates.to_string(),
            rep_l.blocks_compressible.to_string(),
        ]);
        eprintln!("[{}/{}] {}", i + 1, specs.len(), spec.name);
    }
    print_table(
        "Sec 4.6: HSS qualification probe over ILU(0) lower factors",
        &[
            "matrix",
            "cand (default)",
            "compressible (default)",
            "cand (min_sep=4)",
            "compressible (min_sep=4)",
        ],
        &rows,
    );
    println!(
        "\nHSS triggers at default parameters: {}   (paper: 5.61%)",
        fmt_pct(100.0 * triggered_default as f64 / total.max(1) as f64)
    );
    println!(
        "HSS triggers with tiny minimum separator: {}   (paper: 28.04%, not recommended)",
        fmt_pct(100.0 * triggered_lax as f64 / total.max(1) as f64)
    );
    write_artifact("sec46_lowrank", &rows);
}
