//! §3.2.3 — heuristic-choice analysis.
//!
//! Three studies, as in the paper:
//!
//! 1. **Small ratios bring negligible structural change**: at 0.5% the
//!    paper finds 86.92% of matrices with < 5% relative wavefront
//!    reduction, 59.82% with none at all.
//! 2. **Large ratios degrade convergence**: at 50%, 62.62% of matrices
//!    fail to converge or need ≥ 2x the iterations.
//! 3. **Approximate vs exact condition number in the indicator**: with the
//!    same grid-searched thresholds (τ = 1, ω = 10%), the approximation
//!    achieves gmean speedup 1.233 and convergence rate 52.34% vs 1.235
//!    and 53.28% for exact condition numbers.

use spcg_bench::runner::{bench_solver_config, evaluate, Variant};
use spcg_bench::stats::gmean;
use spcg_bench::table::{fmt_pct, fmt_speedup};
use spcg_bench::write_artifact;
use spcg_core::{sparsify_by_magnitude, CondEstimator, IluFill, SparsifyParams};
use spcg_gpusim::DeviceSpec;
use spcg_precond::{ilu0, ExecutionStrategy};
use spcg_solver::{pcg, StopReason};
use spcg_sparse::cond::SpectralOptions;
use spcg_suite::env_collection;
use spcg_wavefront::wavefront_count;

fn main() {
    let specs = env_collection();
    let solver = bench_solver_config();
    let device = DeviceSpec::a100();

    // --- Study 1: ratio 0.5% ---
    let mut under5 = 0usize;
    let mut none = 0usize;
    let mut total = 0usize;
    for spec in &specs {
        let a = spec.build();
        let w0 = wavefront_count(&a);
        let w = wavefront_count(&sparsify_by_magnitude(&a, 0.5).a_hat);
        let reduction = if w0 == 0 { 0.0 } else { 100.0 * (w0 - w) as f64 / w0 as f64 };
        if reduction < 5.0 {
            under5 += 1;
        }
        if w == w0 {
            none += 1;
        }
        total += 1;
    }
    println!(
        "ratio 0.5%: {} of matrices with < 5% wavefront reduction (paper: 86.92%), {} with none (paper: 59.82%)",
        fmt_pct(100.0 * under5 as f64 / total as f64),
        fmt_pct(100.0 * none as f64 / total as f64)
    );

    // --- Study 2: ratio 50% ---
    let mut degraded = 0usize;
    let mut counted = 0usize;
    for (i, spec) in specs.iter().enumerate() {
        let a = spec.build();
        let b = spec.rhs(a.n_rows());
        let Ok(fb) = ilu0(&a, ExecutionStrategy::Sequential) else { continue };
        let base = pcg(&a, &fb, &b, &solver).expect("well-formed system");
        if base.stop != StopReason::Converged {
            continue;
        }
        counted += 1;
        let bad = match ilu0(&sparsify_by_magnitude(&a, 50.0).a_hat, ExecutionStrategy::Sequential)
        {
            Ok(fs) => {
                let r = pcg(&a, &fs, &b, &solver).expect("well-formed system");
                r.stop != StopReason::Converged || r.iterations >= 2 * base.iterations
            }
            Err(_) => true,
        };
        if bad {
            degraded += 1;
        }
        eprintln!("[{}/{}] study2 {}", i + 1, specs.len(), spec.name);
    }
    println!(
        "ratio 50%: {} of matrices fail or need >= 2x iterations (paper: 62.62%)",
        fmt_pct(100.0 * degraded as f64 / counted.max(1) as f64)
    );

    // --- Study 3: approximate vs exact condition estimator ---
    for (label, estimator, paper) in [
        ("approximate", CondEstimator::PaperApprox, "1.233x / 52.34%"),
        (
            "exact (spectral)",
            CondEstimator::Spectral(SpectralOptions::default()),
            "1.235x / 53.28%",
        ),
    ] {
        let params = SparsifyParams { estimator: estimator.clone(), ..Default::default() };
        let mut speedups = Vec::new();
        let mut converged = 0usize;
        let mut counted = 0usize;
        for (i, spec) in specs.iter().enumerate() {
            let a = spec.build();
            let b = spec.rhs(a.n_rows());
            let Ok(base) = evaluate(
                &a,
                &b,
                IluFill::Ilu0,
                &device,
                &Variant::Baseline,
                &solver,
                ExecutionStrategy::Sequential,
            ) else {
                continue;
            };
            let Ok(s) = evaluate(
                &a,
                &b,
                IluFill::Ilu0,
                &device,
                &Variant::Heuristic(params.clone()),
                &solver,
                ExecutionStrategy::Sequential,
            ) else {
                continue;
            };
            counted += 1;
            speedups.push(base.per_iteration_us / s.per_iteration_us);
            if s.converged {
                converged += 1;
            }
            eprintln!("[{}/{}] study3/{label} {}", i + 1, specs.len(), spec.name);
        }
        println!(
            "{label} estimator: gmean per-iteration speedup {} | convergence rate {}   (paper: {paper})",
            fmt_speedup(gmean(&speedups).unwrap_or(0.0)),
            fmt_pct(100.0 * converged as f64 / counted.max(1) as f64)
        );
    }
    write_artifact("sec323_heuristics", &"see stdout");
}
