//! Figure 9 — gmean end-to-end SPCG-ILU(0) speedup per application
//! category (A100 model).
//!
//! Paper reference: 16 of 17 categories show moderate or strong end-to-end
//! improvements; economic, duplicate optimization and circuit simulation
//! stand out; CFD and graphics/vision are diluted by degraded convergence
//! despite good per-iteration gains.

use spcg_bench::stats::gmean;
use spcg_bench::sweep::{sweep_collection, Family};
use spcg_bench::table::{fmt_speedup, print_table};
use spcg_bench::{write_artifact, Variant};
use spcg_core::SparsifyParams;
use spcg_gpusim::DeviceSpec;
use spcg_suite::Category;
use std::collections::HashMap;

fn main() {
    let device = DeviceSpec::a100();
    let rows =
        sweep_collection(&device, Family::Ilu0, &Variant::Heuristic(SparsifyParams::default()));

    let mut per_cat: HashMap<&'static str, (Vec<f64>, Vec<f64>)> = HashMap::new();
    for (spec, row) in &rows {
        let entry = per_cat.entry(spec.category.label()).or_default();
        if let Some(s) = row.end_to_end_speedup() {
            entry.0.push(s);
        }
        entry.1.push(row.per_iteration_speedup());
    }

    let mut table = Vec::new();
    for cat in Category::ALL {
        let label = cat.label();
        let (e2e, per_iter) = per_cat.get(label).cloned().unwrap_or_default();
        table.push(vec![
            label.to_string(),
            fmt_speedup(gmean(&e2e).unwrap_or(0.0)),
            fmt_speedup(gmean(&per_iter).unwrap_or(0.0)),
            e2e.len().to_string(),
        ]);
    }
    print_table(
        "Figure 9: gmean end-to-end SPCG-ILU(0) speedup per application category (A100 model)",
        &["category", "gmean e2e", "gmean per-iter", "#converging"],
        &table,
    );
    let improving = table
        .iter()
        .filter(|r| r[1].trim_end_matches('x').parse::<f64>().unwrap_or(0.0) > 1.0)
        .count();
    println!("categories with end-to-end improvement: {improving} / 17   (paper: 16 / 17)");
    write_artifact("fig9_categories", &table);
}
