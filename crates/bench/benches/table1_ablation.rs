//! Table 1 — per-iteration speedup of SPCG over PCG on the A100 model, per
//! fixed sparsification ratio, the wavefront-aware heuristic (SPCG) and the
//! oracle (best fixed ratio per matrix).
//!
//! Paper reference (Table 1a, ILU(0)): gmean 0.98 / 1.11 / 1.22 / 1.23 /
//! 1.39x and %accelerated 56.14 / 71.93 / 68.42 / 69.16 / 78.07 for
//! 1% / 5% / 10% / SPCG / Oracle. (Table 1b, ILU(K)): 1.47 / 1.62 / 1.65 /
//! 1.65 / 1.78x and 88.57 / 92.86 / 85.71 / 80.38 / 97.14.
//!
//! An extension row evaluates *post-factorization* sparsification (dropping
//! factor entries instead of matrix entries) — the design alternative the
//! paper argues against implicitly by sparsifying `A` before ILU.

use spcg_bench::runner::{bench_solver_config, evaluate, select_k, Variant};
use spcg_bench::stats::{gmean, pct_accelerated};
use spcg_bench::table::{fmt_pct, fmt_speedup, print_table};
use spcg_bench::write_artifact;
use spcg_core::{IluFill, SparsifyParams};
use spcg_gpusim::{pcg_iteration_cost, DeviceSpec};
use spcg_precond::{ilu0, ExecutionStrategy, IluFactors};
use spcg_suite::env_collection;

/// Drops the `pct`% smallest off-diagonal entries of both factors (the
/// post-factorization alternative).
fn sparsify_factors(f: &IluFactors<f64>, pct: f64) -> IluFactors<f64> {
    let l = spcg_core::sparsify_by_magnitude(f.l(), pct).a_hat;
    let u = spcg_core::sparsify_by_magnitude(f.u(), pct).a_hat;
    IluFactors::new(l, u, ExecutionStrategy::Sequential, "post-sparsified".into())
}

fn run_family(
    kind_of: impl Fn(&spcg_sparse::CsrMatrix<f64>, &[f64]) -> Option<IluFill>,
    label: &str,
    paper: &[(&str, f64, f64)],
) {
    let device = DeviceSpec::a100();
    let solver = bench_solver_config();
    let specs = env_collection();

    // columns: 1%, 5%, 10%, SPCG, Oracle, post-factor 10% (extension)
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 6];
    let mut oracle_matches = 0usize;
    let mut counted = 0usize;

    for (i, spec) in specs.iter().enumerate() {
        let a = spec.build();
        let b = spec.rhs(a.n_rows());
        let Some(kind) = kind_of(&a, &b) else {
            eprintln!("[{}/{}] {}: skipped (no K)", i + 1, specs.len(), spec.name);
            continue;
        };
        let Ok(base) = evaluate(
            &a,
            &b,
            kind,
            &device,
            &Variant::Baseline,
            &solver,
            ExecutionStrategy::Sequential,
        ) else {
            eprintln!("[{}/{}] {}: skipped (baseline failed)", i + 1, specs.len(), spec.name);
            continue;
        };
        let mut fixed = Vec::new();
        let mut ok = true;
        for r in [1.0, 5.0, 10.0] {
            match evaluate(
                &a,
                &b,
                kind,
                &device,
                &Variant::Fixed(r),
                &solver,
                ExecutionStrategy::Sequential,
            ) {
                Ok(e) => fixed.push(e),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let Ok(spcg) = evaluate(
            &a,
            &b,
            kind,
            &device,
            &Variant::Heuristic(SparsifyParams::default()),
            &solver,
            ExecutionStrategy::Sequential,
        ) else {
            continue;
        };
        // Oracle: fastest per-iteration fixed ratio.
        let oracle = fixed.iter().map(|e| e.per_iteration_us).fold(f64::MAX, f64::min);
        let oracle_ratio = fixed
            .iter()
            .min_by(|a, b| a.per_iteration_us.partial_cmp(&b.per_iteration_us).unwrap())
            .and_then(|e| e.chosen_ratio);
        if spcg.chosen_ratio == oracle_ratio {
            oracle_matches += 1;
        }
        counted += 1;

        for (k, e) in fixed.iter().enumerate() {
            cols[k].push(base.per_iteration_us / e.per_iteration_us);
        }
        cols[3].push(base.per_iteration_us / spcg.per_iteration_us);
        cols[4].push(base.per_iteration_us / oracle);

        // Extension: sparsify the FACTORS of the baseline at 10%.
        if let Ok(fb) = ilu0(&a, ExecutionStrategy::Sequential) {
            let fs = sparsify_factors(&fb, 10.0);
            let t = pcg_iteration_cost(&device, &a, &fs).total_us();
            cols[5].push(base.per_iteration_us / t);
        }
        eprintln!(
            "[{}/{}] {}: spcg {:.2}x oracle {:.2}x",
            i + 1,
            specs.len(),
            spec.name,
            cols[3].last().unwrap(),
            cols[4].last().unwrap()
        );
    }

    let headers =
        ["Statistic/Setting", "1%", "5%", "10%", "SPCG", "Oracle", "post-factor 10% (ext)"];
    let gmean_row: Vec<String> = std::iter::once("Geometric Mean".to_string())
        .chain(cols.iter().map(|c| fmt_speedup(gmean(c).unwrap_or(0.0))))
        .collect();
    let acc_row: Vec<String> = std::iter::once("% Accelerated".to_string())
        .chain(cols.iter().map(|c| fmt_pct(pct_accelerated(c))))
        .collect();
    print_table(
        &format!("Table 1: per-iteration speedup statistics of SPCG-{label} (A100 model)"),
        &headers,
        &[gmean_row, acc_row],
    );
    let paper_g: Vec<String> = std::iter::once("paper gmean".to_string())
        .chain(paper.iter().map(|&(_, g, _)| fmt_speedup(g)))
        .collect();
    let paper_a: Vec<String> = std::iter::once("paper %acc".to_string())
        .chain(paper.iter().map(|&(_, _, a)| fmt_pct(a)))
        .collect();
    print_table("paper reference", &headers[..6], &[paper_g, paper_a]);
    println!(
        "SPCG matches oracle ratio on {} of matrices (paper: 56.14% per-iteration)",
        fmt_pct(100.0 * oracle_matches as f64 / counted.max(1) as f64)
    );
    write_artifact(&format!("table1_{label}"), &cols);
}

fn main() {
    run_family(
        |_, _| Some(IluFill::Ilu0),
        "ILU(0)",
        &[
            ("1%", 0.98, 56.14),
            ("5%", 1.11, 71.93),
            ("10%", 1.22, 68.42),
            ("SPCG", 1.23, 69.16),
            ("Oracle", 1.39, 78.07),
        ],
    );
    let solver = bench_solver_config();
    run_family(
        move |a, b| select_k(a, b, &solver).map(IluFill::Iluk),
        "ILU(K)",
        &[
            ("1%", 1.47, 88.57),
            ("5%", 1.62, 92.86),
            ("10%", 1.65, 85.71),
            ("SPCG", 1.65, 80.38),
            ("Oracle", 1.78, 97.14),
        ],
    );
}
