//! Figure 4 — SPCG-ILU(0) speedups on the A100 model.
//!
//! Paper reference points: per-iteration gmean 1.23x with 69.16% of
//! matrices accelerated, histogram mass in 1–2x (Fig 4a); end-to-end gmean
//! 1.68x over the converging subset, range ~0.69–9.61x, iterations
//! approximately unchanged for 94.65% (Fig 4b, §4.3). Baseline GFLOP/s
//! envelope quoted: 0.0004–156.27.

use spcg_bench::stats::{gmean, histogram_pct, pct_accelerated};
use spcg_bench::sweep::{end_to_end_speedups, per_iteration_speedups, sweep_collection, Family};
use spcg_bench::table::{fmt_pct, fmt_speedup, print_histogram, print_scatter};
use spcg_bench::{write_artifact, Variant};
use spcg_core::SparsifyParams;
use spcg_gpusim::{iteration_gflops, DeviceSpec};
use spcg_solver::pcg_iteration_flops;

fn main() {
    let device = DeviceSpec::a100();
    let rows =
        sweep_collection(&device, Family::Ilu0, &Variant::Heuristic(SparsifyParams::default()));
    write_artifact("fig4_ilu0_a100", &rows.iter().map(|(_, r)| r).collect::<Vec<_>>());

    // --- Figure 4a: per-iteration speedup distribution ---
    let speedups = per_iteration_speedups(&rows);
    print_histogram(
        "Figure 4a: SPCG-ILU(0) per-iteration speedup distribution (A100 model)",
        0.0,
        5.0,
        &histogram_pct(&speedups, 0.0, 5.0, 20),
    );
    println!(
        "gmean per-iteration speedup: {}   (paper: 1.23x)",
        fmt_speedup(gmean(&speedups).unwrap_or(0.0))
    );
    println!("% accelerated: {}              (paper: 69.16%)", fmt_pct(pct_accelerated(&speedups)));

    // Baseline GFLOP/s envelope (theoretical baseline FLOPs / simulated time).
    let gflops: Vec<f64> = rows
        .iter()
        .map(|(_, r)| {
            let flops = pcg_iteration_flops(r.nnz, r.base.factor_nnz, r.n) as f64;
            iteration_gflops(flops, r.base.per_iteration_us)
        })
        .collect();
    let lo = gflops.iter().cloned().fold(f64::MAX, f64::min);
    let hi = gflops.iter().cloned().fold(0.0f64, f64::max);
    println!("baseline GFLOP/s range: {lo:.4} - {hi:.4}   (paper: 0.0004 - 156.27)");

    // --- Figure 4b: end-to-end speedup vs nnz (converging subset) ---
    let e2e = end_to_end_speedups(&rows);
    let pts: Vec<(String, f64, f64)> =
        e2e.iter().map(|(n, nnz, s)| (n.clone(), *nnz as f64, *s)).collect();
    print_scatter(
        "Figure 4b: SPCG-ILU(0) end-to-end speedup vs nnz (A100 model)",
        "nnz",
        "speedup",
        &pts,
    );
    let e2e_vals: Vec<f64> = e2e.iter().map(|(_, _, s)| *s).collect();
    println!(
        "gmean end-to-end speedup: {}   (paper: 1.68x)",
        fmt_speedup(gmean(&e2e_vals).unwrap_or(0.0))
    );
    let lo = e2e_vals.iter().cloned().fold(f64::MAX, f64::min);
    let hi = e2e_vals.iter().cloned().fold(0.0f64, f64::max);
    println!("end-to-end range: {lo:.2}x - {hi:.2}x   (paper: 0.69x - 9.61x)");
    let same = rows.iter().filter(|(_, r)| r.iterations_approx_same()).count();
    println!(
        "iterations approximately unchanged: {}   (paper: 94.65%)",
        fmt_pct(100.0 * same as f64 / rows.len().max(1) as f64)
    );
}
