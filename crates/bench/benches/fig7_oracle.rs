//! Figure 7 — per-iteration speedups of SPCG vs the oracle (ILU(K)),
//! scattered against nnz.
//!
//! Paper reference: the two point clouds largely overlap; SPCG's choice
//! matches the oracle's for 56.14% (per-iteration) of the matrices.

use spcg_bench::runner::{bench_solver_config, evaluate, select_k, Variant};
use spcg_bench::stats::gmean;
use spcg_bench::table::{fmt_pct, fmt_speedup, print_scatter};
use spcg_bench::write_artifact;
use spcg_core::{IluFill, SparsifyParams};
use spcg_gpusim::DeviceSpec;
use spcg_precond::ExecutionStrategy;
use spcg_suite::env_collection;

fn main() {
    let device = DeviceSpec::a100();
    let solver = bench_solver_config();
    let specs = env_collection();

    let mut spcg_pts = Vec::new();
    let mut oracle_pts = Vec::new();
    let mut matches = 0usize;

    for (i, spec) in specs.iter().enumerate() {
        let a = spec.build();
        let b = spec.rhs(a.n_rows());
        let Some(k) = select_k(&a, &b, &solver) else { continue };
        let kind = IluFill::Iluk(k);
        let Ok(base) = evaluate(
            &a,
            &b,
            kind,
            &device,
            &Variant::Baseline,
            &solver,
            ExecutionStrategy::Sequential,
        ) else {
            continue;
        };
        let Ok(spcg) = evaluate(
            &a,
            &b,
            kind,
            &device,
            &Variant::Heuristic(SparsifyParams::default()),
            &solver,
            ExecutionStrategy::Sequential,
        ) else {
            continue;
        };
        let mut best: Option<(f64, f64)> = None; // (per_iter_us, ratio)
        for r in [1.0, 5.0, 10.0] {
            if let Ok(e) = evaluate(
                &a,
                &b,
                kind,
                &device,
                &Variant::Fixed(r),
                &solver,
                ExecutionStrategy::Sequential,
            ) {
                if best.map(|(t, _)| e.per_iteration_us < t).unwrap_or(true) {
                    best = Some((e.per_iteration_us, r));
                }
            }
        }
        let Some((oracle_us, oracle_ratio)) = best else { continue };
        if spcg.chosen_ratio == Some(oracle_ratio) {
            matches += 1;
        }
        spcg_pts.push((
            spec.name.clone(),
            a.nnz() as f64,
            base.per_iteration_us / spcg.per_iteration_us,
        ));
        oracle_pts.push((spec.name.clone(), a.nnz() as f64, base.per_iteration_us / oracle_us));
        eprintln!("[{}/{}] {}", i + 1, specs.len(), spec.name);
    }

    print_scatter(
        "Figure 7: SPCG per-iteration speedup vs nnz (ILU(K), A100 model)",
        "nnz",
        "SPCG speedup",
        &spcg_pts,
    );
    print_scatter(
        "Figure 7: Oracle per-iteration speedup vs nnz (ILU(K), A100 model)",
        "nnz",
        "Oracle speedup",
        &oracle_pts,
    );
    let s: Vec<f64> = spcg_pts.iter().map(|p| p.2).collect();
    let o: Vec<f64> = oracle_pts.iter().map(|p| p.2).collect();
    println!(
        "gmean: SPCG {} vs Oracle {}   (paper: 1.65x vs 1.78x)",
        fmt_speedup(gmean(&s).unwrap_or(0.0)),
        fmt_speedup(gmean(&o).unwrap_or(0.0))
    );
    println!(
        "SPCG choice matches oracle: {}   (paper: 56.14%)",
        fmt_pct(100.0 * matches as f64 / spcg_pts.len().max(1) as f64)
    );
    write_artifact("fig7_oracle", &(spcg_pts, oracle_pts));
}
