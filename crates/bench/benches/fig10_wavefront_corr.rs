//! Figure 10 — correlation between wavefront reduction and per-iteration
//! speedup, for ILU(0) and ILU(K).
//!
//! Paper reference: Spearman ρ ≈ 0.61 for ILU(0) (moderately strong) and
//! ρ ≈ 0.22 for ILU(K) (positive but weaker, because fill interacts with
//! sparsification); positive linear trendlines in both.

use spcg_bench::stats::{linear_regression, spearman};
use spcg_bench::sweep::{sweep_collection, Family};
use spcg_bench::table::print_scatter;
use spcg_bench::{write_artifact, Variant};
use spcg_core::SparsifyParams;
use spcg_gpusim::DeviceSpec;

fn main() {
    let device = DeviceSpec::a100();
    let variant = Variant::Heuristic(SparsifyParams::default());

    for (family, paper_rho, title) in [
        (Family::Ilu0, 0.61, "Figure 10a: wavefront reduction vs per-iteration speedup (ILU(0))"),
        (
            Family::IlukAuto,
            0.22,
            "Figure 10b: wavefront reduction vs per-iteration speedup (ILU(K))",
        ),
    ] {
        let rows = sweep_collection(&device, family, &variant);
        // For ILU(K) the wavefront reduction is measured on the factors
        // (fill changes the dependence structure); for ILU(0) on the matrix.
        let pts: Vec<(String, f64, f64)> = rows
            .iter()
            .map(|(s, r)| {
                let reduction = match family {
                    Family::Ilu0 => r.wavefront_reduction_pct() / 100.0,
                    Family::IlukAuto => {
                        let b = r.base.wavefronts_factors as f64;
                        let p = r.spcg.wavefronts_factors as f64;
                        if b == 0.0 {
                            0.0
                        } else {
                            (b - p) / b
                        }
                    }
                };
                (s.name.clone(), r.per_iteration_speedup(), reduction)
            })
            .collect();
        print_scatter(title, "per-iter speedup", "wavefront reduction", &pts);
        let x: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let y: Vec<f64> = pts.iter().map(|p| p.2).collect();
        let rho = spearman(&y, &x);
        let (slope, intercept) = linear_regression(&y, &x);
        println!(
            "{}: Spearman rho = {rho:.2} (paper: {paper_rho}), trendline speedup = {slope:.2}*reduction + {intercept:.2}",
            family.label()
        );
        write_artifact(&format!("fig10_{}", family.label()), &pts);
    }
}
