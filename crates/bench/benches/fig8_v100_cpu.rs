//! Figure 8 — portability distributions: SPCG-ILU(0) and SPCG-ILU(K) on
//! the V100 model, and SPCG-ILU(0) on a real CPU (measured wall-clock with
//! the rayon level-parallel executor).
//!
//! Paper reference: V100 histograms concentrate above 1x with negligible
//! degradations (Fig 8a/8b); CPU gmean per-iteration speedup 1.24x with
//! 91.59% of matrices benefiting (Fig 8c).

use spcg_bench::runner::bench_solver_config;
use spcg_bench::stats::{gmean, histogram_pct, pct_accelerated};
use spcg_bench::sweep::{per_iteration_speedups, sweep_collection, Family};
use spcg_bench::table::{fmt_pct, fmt_speedup, print_histogram};
use spcg_bench::{write_artifact, Variant};
use spcg_core::{wavefront_aware_sparsify, SparsifyParams};
use spcg_gpusim::DeviceSpec;
use spcg_precond::{ilu0, ExecutionStrategy};
use spcg_solver::pcg;
use spcg_suite::env_collection;

/// Measured seconds-per-iteration of PCG with level-parallel triangular
/// solves; minimum of `reps` runs.
fn measured_per_iter(
    a: &spcg_sparse::CsrMatrix<f64>,
    f: &spcg_precond::IluFactors<f64>,
    b: &[f64],
    reps: usize,
) -> Option<f64> {
    let solver = bench_solver_config();
    let mut best = f64::MAX;
    let mut iters = 0;
    for _ in 0..reps {
        let r = pcg(a, f, b, &solver).expect("well-formed system");
        if r.iterations == 0 {
            return None;
        }
        iters = r.iterations;
        best = best.min(r.timings.total.as_secs_f64());
    }
    Some(best / iters as f64)
}

fn main() {
    let variant = Variant::Heuristic(SparsifyParams::default());

    // --- Fig 8a/8b: V100 model ---
    let v100 = DeviceSpec::v100();
    for (family, label, paper) in [
        (Family::Ilu0, "Fig 8a: SPCG-ILU(0) per-iteration speedup (V100 model)", "1.22x / 83.18%"),
        (
            Family::IlukAuto,
            "Fig 8b: SPCG-ILU(K) per-iteration speedup (V100 model)",
            "1.71x / 82.25%",
        ),
    ] {
        let rows = sweep_collection(&v100, family, &variant);
        let speedups = per_iteration_speedups(&rows);
        print_histogram(label, 0.0, 5.0, &histogram_pct(&speedups, 0.0, 5.0, 20));
        println!(
            "gmean {} | % accelerated {}   (paper: {paper})",
            fmt_speedup(gmean(&speedups).unwrap_or(0.0)),
            fmt_pct(pct_accelerated(&speedups)),
        );
        write_artifact(&format!("fig8_v100_{}", family.label()), &speedups);
    }

    // --- Fig 8c: real CPU, measured wall-clock ---
    let specs = env_collection();
    let mut speedups = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let a = spec.build();
        let b = spec.rhs(a.n_rows());
        let Ok(fb) = ilu0(&a, ExecutionStrategy::LevelBarrier) else { continue };
        let d = wavefront_aware_sparsify(&a, &SparsifyParams::default());
        let Ok(fs) = ilu0(&d.sparsified.a_hat, ExecutionStrategy::LevelBarrier) else { continue };
        let (Some(tb), Some(ts)) =
            (measured_per_iter(&a, &fb, &b, 3), measured_per_iter(&a, &fs, &b, 3))
        else {
            continue;
        };
        speedups.push(tb / ts);
        eprintln!(
            "[{}/{}] {}: measured CPU per-iteration speedup {:.2}x",
            i + 1,
            specs.len(),
            spec.name,
            tb / ts
        );
    }
    print_histogram(
        "Fig 8c: SPCG-ILU(0) per-iteration speedup (real CPU, measured)",
        0.0,
        5.0,
        &histogram_pct(&speedups, 0.0, 5.0, 20),
    );
    println!(
        "gmean {} | % accelerated {}   (paper: 1.24x / 91.59% on 40-core EPYC)",
        fmt_speedup(gmean(&speedups).unwrap_or(0.0)),
        fmt_pct(pct_accelerated(&speedups)),
    );
    write_artifact("fig8_cpu_measured", &speedups);
}
