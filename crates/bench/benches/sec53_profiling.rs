//! §5.3 — GPU profiling observations on three representative matrices
//! (the Nsight Compute substitute, using the simulator's counters).
//!
//! Paper reference: thermomech_dM — DRAM utilization 4.24% → 6.25%,
//! compute 16.49% → 23.71%, speedup 4.39x; Muu — DRAM 1.71% → 1.07%,
//! speedup 0.99x; 2cubes_sphere — compute utilization flat at 1.07%
//! (latency-limited).

use spcg_bench::table::print_table;
use spcg_bench::write_artifact;
use spcg_core::{wavefront_aware_sparsify, SparsifyParams};
use spcg_gpusim::{pcg_iteration_cost, profile, DeviceSpec};
use spcg_precond::{ilu0, ExecutionStrategy};
use spcg_suite::reference::{muu_like, thermomech_dm_like, two_cubes_sphere_like};

fn main() {
    let device = DeviceSpec::a100();
    let cases = [
        ("thermomech_dM-like", thermomech_dm_like()),
        ("2cubes_sphere-like", two_cubes_sphere_like()),
        ("Muu-like", muu_like()),
    ];
    let mut rows = Vec::new();
    for (name, a) in &cases {
        let fb = ilu0(a, ExecutionStrategy::Sequential).expect("baseline factorization");
        let d = wavefront_aware_sparsify(a, &SparsifyParams::default());
        let fs = ilu0(&d.sparsified.a_hat, ExecutionStrategy::Sequential)
            .expect("sparsified factorization");
        let cb = pcg_iteration_cost(&device, a, &fb).aggregate();
        let cs = pcg_iteration_cost(&device, a, &fs).aggregate();
        let pb = profile(&device, &cb);
        let ps = profile(&device, &cs);
        rows.push(vec![
            name.to_string(),
            format!("{:.2}%", pb.dram_utilization_pct),
            format!("{:.2}%", ps.dram_utilization_pct),
            format!("{:.2}%", pb.compute_utilization_pct),
            format!("{:.2}%", ps.compute_utilization_pct),
            format!("{:.2}x", cb.time_us / cs.time_us),
            format!("{:?}->{:?}", pb.bound, ps.bound),
        ]);
    }
    print_table(
        "Sec 5.3: simulated profiler counters, baseline vs SPCG (A100 model)",
        &["matrix", "DRAM base", "DRAM spcg", "compute base", "compute spcg", "speedup", "bound"],
        &rows,
    );
    println!("\npaper reference:");
    println!("  thermomech_dM : DRAM 4.24% -> 6.25%, compute 16.49% -> 23.71%, speedup 4.39x");
    println!("  2cubes_sphere : compute flat at 1.07% (latency-limited)");
    println!("  Muu           : DRAM 1.71% -> 1.07%, speedup 0.99x");
    write_artifact("sec53_profiling", &rows);
}
