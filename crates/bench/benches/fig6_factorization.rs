//! Figure 6 — sparsified ILU(0) *factorization-phase* speedup on the A100
//! model, per fixed sparsification level (1%, 5%, 10%) against nnz.
//!
//! Paper reference: factorization improves for most matrices at every
//! level, with higher levels tending to achieve greater speedups (speedups
//! mostly 1–2x, tail up to ~40x on the paper's log axis).

use spcg_bench::runner::bench_solver_config;
use spcg_bench::stats::{gmean, pct_accelerated};
use spcg_bench::table::{fmt_pct, fmt_speedup, print_scatter};
use spcg_bench::write_artifact;
use spcg_core::sparsify_by_magnitude;
use spcg_gpusim::{ilu_factorization_cost, DeviceSpec};
use spcg_suite::env_collection;

fn main() {
    let device = DeviceSpec::a100();
    let _ = bench_solver_config(); // factorization phase only: no solves needed
    let specs = env_collection();
    let ratios = [1.0, 5.0, 10.0];
    let mut per_ratio: Vec<Vec<(String, f64, f64)>> = vec![Vec::new(); ratios.len()];

    for (i, spec) in specs.iter().enumerate() {
        let a = spec.build();
        let base = ilu_factorization_cost(&device, &a).time_us;
        for (k, &r) in ratios.iter().enumerate() {
            let a_hat = sparsify_by_magnitude(&a, r).a_hat;
            let t = ilu_factorization_cost(&device, &a_hat).time_us;
            per_ratio[k].push((spec.name.clone(), a.nnz() as f64, base / t));
        }
        eprintln!(
            "[{}/{}] {}: 10% factorization speedup {:.2}x",
            i + 1,
            specs.len(),
            spec.name,
            per_ratio[2].last().unwrap().2
        );
    }

    for (k, &r) in ratios.iter().enumerate() {
        print_scatter(
            &format!("Figure 6: sparsified ILU(0) factorization speedup at {r}% (A100 model)"),
            "nnz",
            "speedup",
            &per_ratio[k],
        );
        let speedups: Vec<f64> = per_ratio[k].iter().map(|(_, _, s)| *s).collect();
        println!(
            "ratio {r}%: gmean {} | % improved {}   (paper: most matrices > 1x, higher ratios higher)",
            fmt_speedup(gmean(&speedups).unwrap_or(0.0)),
            fmt_pct(pct_accelerated(&speedups)),
        );
    }
    write_artifact("fig6_factorization", &per_ratio);
}
