//! The experiment runner shared by every bench target: build a matrix,
//! run baseline PCG and SPCG variants with *real* numerics, and price the
//! runs on a simulated device.

use serde::{Deserialize, Serialize};
use spcg_core::{
    sparsify_by_magnitude, wavefront_aware_sparsify, IluFill, SparsifyParams, SpcgOptions, SpcgPlan,
};
use spcg_gpusim::{end_to_end_cost, plan_iteration_cost, DeviceSpec, IterationCost};
use spcg_precond::{ilu0, ExecutionStrategy, IluFactors};
use spcg_solver::{SolveWorkspace, SolverConfig, StopReason};
use spcg_sparse::{CsrMatrix, Result};
use spcg_wavefront::wavefront_count;

/// Which solver configuration a run uses.
#[derive(Debug, Clone)]
pub enum Variant {
    /// Non-sparsified PCG (the cuSPARSE-style baseline).
    Baseline,
    /// SPCG with the wavefront-aware heuristic (Algorithm 2).
    Heuristic(SparsifyParams),
    /// SPCG with a fixed sparsification ratio (percent) — the Table 1
    /// ablation arms and the oracle sweep.
    Fixed(f64),
}

impl Variant {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Variant::Baseline => "baseline".into(),
            Variant::Heuristic(_) => "spcg".into(),
            Variant::Fixed(r) => format!("fixed{r}%"),
        }
    }
}

/// ILU(K) fill guard: symbolic patterns larger than this multiple of
/// nnz(A) (or this absolute entry count) are rejected, mirroring the
/// paper's exclusion of configurations that cannot complete.
pub const FILL_CAP_FACTOR: usize = 30;
/// Absolute fill cap.
pub const FILL_CAP_ABS: usize = 6_000_000;

/// Everything measured for one (matrix, variant, device) evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalResult {
    /// Variant label.
    pub variant: String,
    /// Real iteration count from the f64 solver.
    pub iterations: usize,
    /// Converged under the configured tolerance.
    pub converged: bool,
    /// Final residual.
    pub final_residual: f64,
    /// Simulated per-iteration time, µs.
    pub per_iteration_us: f64,
    /// Simulated end-to-end time (sparsify + inspector + factorization +
    /// iterations), µs.
    pub end_to_end_us: f64,
    /// Simulated factorization-phase time, µs.
    pub factorization_us: f64,
    /// Ratio chosen by the variant (None for baseline).
    pub chosen_ratio: Option<f64>,
    /// Wavefronts of the matrix handed to the factorization.
    pub wavefronts_matrix: usize,
    /// Wavefronts of the factors (L levels + U levels).
    pub wavefronts_factors: usize,
    /// nnz of the factors.
    pub factor_nnz: usize,
    /// Detailed per-iteration kernel breakdown.
    pub iteration_cost: IterationCost,
    /// Measured (real CPU) solve-loop seconds — used by the CPU
    /// portability experiment.
    pub measured_solve_seconds: f64,
}

/// Builds the preconditioner for `m` under `kind`, returning the factors
/// and the pattern matrix the factorization sweep ran over (for the cost
/// model). Applies the ILU(K) fill guard.
pub fn build_factors(
    m: &CsrMatrix<f64>,
    kind: IluFill,
    exec: ExecutionStrategy,
) -> Result<(IluFactors<f64>, CsrMatrix<f64>)> {
    match kind {
        IluFill::Ilu0 => Ok((ilu0(m, exec)?, m.clone())),
        IluFill::Iluk(k) => {
            let cap = FILL_CAP_ABS.min(FILL_CAP_FACTOR.saturating_mul(m.nnz()));
            let (pattern, _sym) = spcg_precond::iluk_pattern_matrix_capped(m, k, cap)?;
            // Numeric ILU on the padded pattern == ILU(K).
            Ok((ilu0(&pattern, exec)?, pattern))
        }
    }
}

/// Builds the analyzed [`SpcgPlan`] for one variant: the variant's
/// sparsification feeds the bench's fill-capped factorization, and the
/// plan carries the original `A` plus the factors for any number of
/// solves. Returns the plan, the factored pattern (for the cost model),
/// and the ratio the variant chose.
pub fn plan_variant(
    a: &CsrMatrix<f64>,
    kind: IluFill,
    variant: &Variant,
    solver: &SolverConfig,
    exec: ExecutionStrategy,
) -> Result<(SpcgPlan<f64>, CsrMatrix<f64>, Option<f64>)> {
    let (m_for_fact, chosen_ratio) = match variant {
        Variant::Baseline => (a.clone(), None),
        Variant::Heuristic(params) => {
            let d = wavefront_aware_sparsify(a, params);
            let r = d.chosen_ratio;
            (d.sparsified.a_hat, Some(r))
        }
        Variant::Fixed(r) => (sparsify_by_magnitude(a, *r).a_hat, Some(*r)),
    };
    let (factors, pattern) = build_factors(&m_for_fact, kind, exec)?;
    let opts = SpcgOptions {
        sparsify: None,
        ilu_fill: kind,
        exec,
        solver: solver.clone(),
        ..Default::default()
    };
    let plan =
        SpcgPlan::from_factors(a.clone(), factors, opts)?.with_factored_matrix(m_for_fact)?;
    Ok((plan, pattern, chosen_ratio))
}

/// Runs one variant of one matrix on one simulated device, reusing `ws`
/// across calls so repeated evaluations share one set of solve buffers.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_with_workspace(
    a: &CsrMatrix<f64>,
    b: &[f64],
    kind: IluFill,
    device: &DeviceSpec,
    variant: &Variant,
    solver: &SolverConfig,
    exec: ExecutionStrategy,
    ws: &mut SolveWorkspace<f64>,
) -> Result<EvalResult> {
    let (plan, pattern, chosen_ratio) = plan_variant(a, kind, variant, solver, exec)?;
    let factors = plan.factors();
    let m_for_fact = plan.factored_matrix();

    // Real numerics: PCG on the ORIGINAL A with the (possibly sparsified)
    // preconditioner, in f64 so the paper's 1e-12-style tolerances are
    // meaningful.
    let result = plan
        .solve_with_workspace(b, ws)
        .map_err(|e| spcg_sparse::SparseError::DimensionMismatch(e.to_string()))?;

    // Simulated timing with the real iteration count.
    let iter_cost = plan_iteration_cost(device, &plan);
    let mut e2e =
        end_to_end_cost(device, a, &pattern, factors, result.iterations, chosen_ratio.is_some());
    if matches!(kind, IluFill::Iluk(_)) {
        // The paper computes ILU(K) factors on the CPU with SuperLU (§3.3)
        // because the fill's changing dependences defeat a direct CUDA
        // implementation — so the construction phase is priced as a SERIAL
        // host factorization, where it dominates end-to-end exactly as in
        // the paper (gmean e2e 3.73x vs per-iteration 1.65x).
        let cpu = DeviceSpec::epyc_7413();
        e2e.factorization_us =
            spcg_gpusim::ilu::ilu_factorization_cost_serial(&cpu, &pattern).time_us;
    }

    Ok(EvalResult {
        variant: variant.label(),
        iterations: result.iterations,
        converged: result.stop == StopReason::Converged,
        final_residual: result.final_residual,
        per_iteration_us: iter_cost.total_us(),
        end_to_end_us: e2e.total_us(),
        factorization_us: e2e.factorization_us,
        chosen_ratio,
        wavefronts_matrix: wavefront_count(m_for_fact),
        wavefronts_factors: factors.l_schedule().n_levels() + factors.u_schedule().n_levels(),
        factor_nnz: factors.l().nnz() + factors.u().nnz(),
        iteration_cost: iter_cost,
        measured_solve_seconds: result.timings.total.as_secs_f64(),
    })
}

/// Runs one variant of one matrix on one simulated device with a
/// throwaway workspace. See [`evaluate_with_workspace`] to amortize the
/// solve buffers across evaluations.
pub fn evaluate(
    a: &CsrMatrix<f64>,
    b: &[f64],
    kind: IluFill,
    device: &DeviceSpec,
    variant: &Variant,
    solver: &SolverConfig,
    exec: ExecutionStrategy,
) -> Result<EvalResult> {
    let mut ws = SolveWorkspace::new(a.n_rows(), a.n_rows());
    evaluate_with_workspace(a, b, kind, device, variant, solver, exec, &mut ws)
}

/// Baseline-vs-variant comparison for one matrix on one device — the unit
/// of Figures 4/5/8 and Tables 1/2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Matrix name.
    pub name: String,
    /// Category label (empty when not applicable).
    pub category: String,
    /// Dimension.
    pub n: usize,
    /// Nonzeros of A.
    pub nnz: usize,
    /// Baseline evaluation.
    pub base: EvalResult,
    /// SPCG (or fixed-ratio) evaluation.
    pub spcg: EvalResult,
}

impl ComparisonRow {
    /// Simulated per-iteration speedup (baseline / SPCG).
    pub fn per_iteration_speedup(&self) -> f64 {
        self.base.per_iteration_us / self.spcg.per_iteration_us
    }

    /// Simulated end-to-end speedup; `None` unless both runs converged
    /// (the paper's end-to-end analysis keeps converging matrices only).
    pub fn end_to_end_speedup(&self) -> Option<f64> {
        (self.base.converged && self.spcg.converged)
            .then(|| self.base.end_to_end_us / self.spcg.end_to_end_us)
    }

    /// Simulated factorization-phase speedup.
    pub fn factorization_speedup(&self) -> f64 {
        self.base.factorization_us / self.spcg.factorization_us
    }

    /// Wavefront reduction of Equation 7, percent, measured on the matrix
    /// handed to the factorization.
    pub fn wavefront_reduction_pct(&self) -> f64 {
        spcg_wavefront::wavefront_reduction_percent(
            self.base.wavefronts_matrix,
            self.spcg.wavefronts_matrix,
        )
    }

    /// `true` when iteration counts stayed "approximately the same" (the
    /// paper's §4.3 criterion): within 10% of the baseline, or within 3
    /// absolute iterations — our synthetic systems converge in tens of
    /// iterations, where a ±2 wobble is noise rather than a convergence
    /// change.
    pub fn iterations_approx_same(&self) -> bool {
        let b = self.base.iterations as f64;
        let s = self.spcg.iterations as f64;
        (s - b).abs() <= (0.10 * b).max(3.0)
    }
}

/// Runs baseline + variant and assembles a [`ComparisonRow`].
#[allow(clippy::too_many_arguments)]
pub fn compare(
    name: &str,
    category: &str,
    a: &CsrMatrix<f64>,
    b: &[f64],
    kind: IluFill,
    device: &DeviceSpec,
    variant: &Variant,
    solver: &SolverConfig,
) -> Result<ComparisonRow> {
    let exec = ExecutionStrategy::Sequential;
    // One workspace serves both arms of the comparison.
    let mut ws = SolveWorkspace::new(a.n_rows(), a.n_rows());
    let base =
        evaluate_with_workspace(a, b, kind, device, &Variant::Baseline, solver, exec, &mut ws)?;
    let spcg = evaluate_with_workspace(a, b, kind, device, variant, solver, exec, &mut ws)?;
    Ok(ComparisonRow {
        name: name.to_string(),
        category: category.to_string(),
        n: a.n_rows(),
        nnz: a.nnz(),
        base,
        spcg,
    })
}

/// The bench-wide solver configuration: f64 numerics, relative tolerance
/// 1e-10 (the f64 analogue of the paper's 1e-12-with-f32 setting), 1000
/// iteration cap as in §4.3.
pub fn bench_solver_config() -> SolverConfig {
    SolverConfig::default().with_tol(1e-10).with_max_iters(1000)
}

/// Selects the paper's per-matrix K for ILU(K) experiments: candidates are
/// level-of-fill {2, 4, 8} (substituting for the paper's {10, 20, 30, 40}
/// sweep on matrices 1–2 orders of magnitude larger — see DESIGN.md),
/// judged by baseline PCG convergence. The fill cap excludes candidates
/// whose pattern explodes, as the paper excludes non-completing configs.
pub fn select_k(a: &CsrMatrix<f64>, b: &[f64], solver: &SolverConfig) -> Option<usize> {
    // As in `spcg_core::select_best_k`: only the factorization differs per
    // candidate, so the rhs setup and solve buffers are shared.
    let mut ws = SolveWorkspace::new(a.n_rows(), a.n_rows());
    let mut best: Option<(usize, bool, usize)> = None;
    for k in [2usize, 4, 8] {
        let Ok((plan, _, _)) = plan_variant(
            a,
            IluFill::Iluk(k),
            &Variant::Baseline,
            solver,
            ExecutionStrategy::Sequential,
        ) else {
            continue;
        };
        let Ok(stats) = plan.solve_in_place(b, &mut ws) else { continue };
        let conv = stats.stop == StopReason::Converged;
        let better = match best {
            None => true,
            Some((_, bc, bi)) => (conv && !bc) || (conv == bc && stats.iterations < bi),
        };
        if better {
            best = Some((k, conv, stats.iterations));
        }
    }
    best.map(|(k, _, _)| k)
}

/// Writes a serializable artifact under the workspace's
/// `target/spcg-results/` (bench binaries run with the crate directory as
/// CWD, so the path is anchored at the crate manifest).
pub fn write_artifact<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/spcg-results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(dir.join(format!("{name}.json")), json);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::{poisson_2d, with_magnitude_spread};

    fn system() -> (CsrMatrix<f64>, Vec<f64>) {
        let a = with_magnitude_spread(&poisson_2d(20, 20), 6.0, 3);
        let b = vec![1.0; 400];
        (a, b)
    }

    #[test]
    fn baseline_and_spcg_comparison_runs() {
        let (a, b) = system();
        let row = compare(
            "t",
            "test",
            &a,
            &b,
            IluFill::Ilu0,
            &DeviceSpec::a100(),
            &Variant::Heuristic(SparsifyParams::default()),
            &bench_solver_config(),
        )
        .unwrap();
        assert!(row.base.converged);
        assert!(row.spcg.converged);
        assert!(row.per_iteration_speedup() > 0.0);
        assert!(row.end_to_end_speedup().is_some());
        // Sparsified ILU(0) never has more wavefronts.
        assert!(row.spcg.wavefronts_matrix <= row.base.wavefronts_matrix);
    }

    #[test]
    fn fixed_variant_uses_requested_ratio() {
        let (a, b) = system();
        let r = evaluate(
            &a,
            &b,
            IluFill::Ilu0,
            &DeviceSpec::a100(),
            &Variant::Fixed(5.0),
            &bench_solver_config(),
            ExecutionStrategy::Sequential,
        )
        .unwrap();
        assert_eq!(r.chosen_ratio, Some(5.0));
        assert_eq!(r.variant, "fixed5%");
    }

    #[test]
    fn iluk_variant_runs_with_fill() {
        let (a, b) = system();
        let r = evaluate(
            &a,
            &b,
            IluFill::Iluk(2),
            &DeviceSpec::a100(),
            &Variant::Baseline,
            &bench_solver_config(),
            ExecutionStrategy::Sequential,
        )
        .unwrap();
        let r0 = evaluate(
            &a,
            &b,
            IluFill::Ilu0,
            &DeviceSpec::a100(),
            &Variant::Baseline,
            &bench_solver_config(),
            ExecutionStrategy::Sequential,
        )
        .unwrap();
        assert!(r.factor_nnz > r0.factor_nnz);
        assert!(r.iterations <= r0.iterations);
    }

    #[test]
    fn select_k_prefers_converging_fill() {
        let (a, b) = system();
        let k = select_k(&a, &b, &bench_solver_config());
        assert!(matches!(k, Some(2 | 4 | 8)));
    }

    #[test]
    fn comparison_row_metrics_are_consistent() {
        let (a, b) = system();
        let row = compare(
            "t",
            "c",
            &a,
            &b,
            IluFill::Ilu0,
            &DeviceSpec::v100(),
            &Variant::Fixed(10.0),
            &bench_solver_config(),
        )
        .unwrap();
        let wf = row.wavefront_reduction_pct();
        assert!((-100.0..=100.0).contains(&wf));
        // speedup definitions
        let s = row.per_iteration_speedup();
        assert!((s - row.base.per_iteration_us / row.spcg.per_iteration_us).abs() < 1e-12);
    }
}
