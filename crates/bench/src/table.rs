//! Plain-text table/figure rendering for the bench binaries.

/// Prints a fixed-width table: header row + data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: String = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:width$}", h, width = widths[i] + 2))
        .collect();
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(120)));
    for row in rows {
        let line: String = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8) + 2))
            .collect();
        println!("{line}");
    }
}

/// Prints an ASCII histogram (one bar per bin) — the textual stand-in for
/// the paper's distribution figures.
pub fn print_histogram(title: &str, lo: f64, hi: f64, pct: &[f64]) {
    println!("\n== {title} ==");
    let width = (hi - lo) / pct.len() as f64;
    for (i, &p) in pct.iter().enumerate() {
        let lo_i = lo + i as f64 * width;
        let bar = "#".repeat((p.round() as usize).min(80));
        println!("{:>5.2}-{:<5.2} {:>6.2}% {}", lo_i, lo_i + width, p, bar);
    }
}

/// Prints an x/y scatter as aligned columns (the textual stand-in for the
/// paper's scatter figures).
pub fn print_scatter(title: &str, x_label: &str, y_label: &str, pts: &[(String, f64, f64)]) {
    println!("\n== {title} ==");
    println!("{:<22} {:>14} {:>14}", "matrix", x_label, y_label);
    for (name, x, y) in pts {
        println!("{name:<22} {x:>14.4} {y:>14.4}");
    }
}

/// Formats a speedup with the paper's convention.
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.2}x")
}

/// Formats a percentage.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_speedup(1.234), "1.23x");
        assert_eq!(fmt_pct(69.158), "69.16%");
    }

    #[test]
    fn printers_do_not_panic() {
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        print_histogram("h", 0.0, 5.0, &[10.0, 90.0]);
        print_scatter("s", "x", "y", &[("m".into(), 1.0, 2.0)]);
    }
}
