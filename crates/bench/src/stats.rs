//! Aggregate statistics used by every table and figure: geometric means,
//! acceleration rates, histograms, Spearman correlation, linear regression.

/// Geometric mean of strictly positive finite values; `None` when empty.
pub fn gmean(values: &[f64]) -> Option<f64> {
    let logs: Vec<f64> =
        values.iter().filter(|v| v.is_finite() && **v > 0.0).map(|v| v.ln()).collect();
    if logs.is_empty() {
        None
    } else {
        Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
    }
}

/// Percentage of values strictly greater than 1 (the "% Accelerated" rows
/// of Table 1/2).
pub fn pct_accelerated(speedups: &[f64]) -> f64 {
    if speedups.is_empty() {
        return 0.0;
    }
    100.0 * speedups.iter().filter(|&&s| s > 1.0).count() as f64 / speedups.len() as f64
}

/// Histogram with fixed-width bins over `[lo, hi)`; the last bin also
/// absorbs values ≥ `hi` (the paper's figures clip the axis at 5×).
pub fn histogram(values: &[f64], lo: f64, hi: f64, n_bins: usize) -> Vec<usize> {
    assert!(n_bins > 0 && hi > lo);
    let mut bins = vec![0usize; n_bins];
    let width = (hi - lo) / n_bins as f64;
    for &v in values {
        if !v.is_finite() || v < lo {
            continue;
        }
        let idx = (((v - lo) / width) as usize).min(n_bins - 1);
        bins[idx] += 1;
    }
    bins
}

/// Histogram normalized to percentages (the figures' y-axis).
pub fn histogram_pct(values: &[f64], lo: f64, hi: f64, n_bins: usize) -> Vec<f64> {
    let bins = histogram(values, lo, hi, n_bins);
    let total: usize = bins.iter().sum();
    bins.iter().map(|&b| if total == 0 { 0.0 } else { 100.0 * b as f64 / total as f64 }).collect()
}

fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut r = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        // average ranks over ties
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            r[k] = avg;
        }
        i = j + 1;
    }
    r
}

/// Pearson correlation of two equal-length samples.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Spearman rank correlation (Figures 10a/10b report ρ = 0.61 and 0.22).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    pearson(&ranks(x), &ranks(y))
}

/// Least-squares line `y = slope·x + intercept` (the figures' trendline).
pub fn linear_regression(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    if n < 2.0 {
        return (0.0, y.first().copied().unwrap_or(0.0));
    }
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
    }
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    (slope, my - slope * mx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), None);
        // non-finite and non-positive values are skipped
        assert!((gmean(&[2.0, f64::NAN, 8.0, -1.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn accelerated_percentage() {
        assert_eq!(pct_accelerated(&[0.5, 1.0, 1.5, 2.0]), 50.0);
        assert_eq!(pct_accelerated(&[]), 0.0);
    }

    #[test]
    fn histogram_binning() {
        let h = histogram(&[0.1, 0.3, 0.3, 4.9, 7.0], 0.0, 5.0, 20);
        assert_eq!(h[0], 1); // 0.1
        assert_eq!(h[1], 2); // two 0.3s
        assert_eq!(h[19], 2); // 4.9 and the clipped 7.0
        let pct = histogram_pct(&[1.0, 1.0, 3.0, 3.0], 0.0, 5.0, 5);
        assert_eq!(pct[1], 50.0);
        assert_eq!(pct[3], 50.0);
    }

    #[test]
    fn spearman_monotone_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 100.0, 1000.0, 10000.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        let yr: Vec<f64> = y.iter().rev().copied().collect();
        assert!((spearman(&x, &yr) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [5.0, 5.0, 6.0, 7.0];
        let r = spearman(&x, &y);
        assert!(r > 0.9 && r <= 1.0 + 1e-12);
    }

    #[test]
    fn regression_recovers_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| 2.5 * v - 1.0).collect();
        let (s, i) = linear_regression(&x, &y);
        assert!((s - 2.5).abs() < 1e-12);
        assert!((i + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_noise_is_small() {
        let x: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| ((i * 13 + 5) % 11) as f64).collect();
        assert!(pearson(&x, &y).abs() < 0.3);
    }
}
