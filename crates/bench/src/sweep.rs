//! Suite-wide sweeps shared by the figure/table bench targets.

use crate::runner::{bench_solver_config, compare, select_k, ComparisonRow, Variant};
use spcg_core::IluFill;
use spcg_gpusim::DeviceSpec;
use spcg_suite::{env_collection, MatrixSpec};

/// Preconditioner family for a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// ILU(0) for every matrix.
    Ilu0,
    /// ILU(K) with the per-matrix best K (the paper's §3.3 selection).
    IlukAuto,
}

impl Family {
    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            Family::Ilu0 => "ILU(0)",
            Family::IlukAuto => "ILU(K)",
        }
    }
}

/// One sweep record: the spec plus its comparison row.
pub type SweepRow = (MatrixSpec, ComparisonRow);

/// Runs `variant` against the baseline over the whole (env-selected)
/// collection on `device`. Matrices whose factorization fails or whose
/// ILU(K) fill exceeds the cap are skipped with a note — mirroring the
/// paper's exclusion of configurations that cannot complete.
pub fn sweep_collection(device: &DeviceSpec, family: Family, variant: &Variant) -> Vec<SweepRow> {
    let specs = env_collection();
    let solver = bench_solver_config();
    let mut rows = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let a = spec.build();
        let b = spec.rhs(a.n_rows());
        let kind = match family {
            Family::Ilu0 => IluFill::Ilu0,
            Family::IlukAuto => match select_k(&a, &b, &solver) {
                Some(k) => IluFill::Iluk(k),
                None => {
                    eprintln!("[{}/{}] {}: no usable K, skipped", i + 1, specs.len(), spec.name);
                    continue;
                }
            },
        };
        match compare(&spec.name, spec.category.label(), &a, &b, kind, device, variant, &solver) {
            Ok(row) => {
                eprintln!(
                    "[{}/{}] {}: per-iter {:.2}x, e2e {}",
                    i + 1,
                    specs.len(),
                    spec.name,
                    row.per_iteration_speedup(),
                    row.end_to_end_speedup()
                        .map(|s| format!("{s:.2}x"))
                        .unwrap_or_else(|| "n/a".into()),
                );
                rows.push((spec.clone(), row));
            }
            Err(e) => eprintln!("[{}/{}] {}: skipped ({e})", i + 1, specs.len(), spec.name),
        }
    }
    rows
}

/// Per-iteration speedups of a sweep.
pub fn per_iteration_speedups(rows: &[SweepRow]) -> Vec<f64> {
    rows.iter().map(|(_, r)| r.per_iteration_speedup()).collect()
}

/// End-to-end speedups of the converging subset.
pub fn end_to_end_speedups(rows: &[SweepRow]) -> Vec<(String, usize, f64)> {
    rows.iter()
        .filter_map(|(s, r)| r.end_to_end_speedup().map(|v| (s.name.clone(), r.nnz, v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_labels() {
        assert_eq!(Family::Ilu0.label(), "ILU(0)");
        assert_eq!(Family::IlukAuto.label(), "ILU(K)");
    }
}
