//! # spcg-bench
//!
//! Benchmark harness regenerating every table and figure of the SPCG
//! paper's evaluation. The bench targets (`cargo bench -p spcg-bench`) are
//! plain binaries; each prints the corresponding table/figure data and
//! writes a JSON artifact under `target/spcg-results/`.
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig4_ilu0_a100` | Figure 4a/4b |
//! | `fig5_iluk_a100` | Figure 5a/5b |
//! | `fig6_factorization` | Figure 6 |
//! | `table1_ablation` | Table 1a/1b |
//! | `fig7_oracle` | Figure 7 |
//! | `table2_portability` | Table 2 |
//! | `fig8_v100_cpu` | Figure 8a/8b/8c |
//! | `fig9_categories` | Figure 9 |
//! | `fig10_wavefront_corr` | Figure 10a/10b |
//! | `sec53_profiling` | §5.3 profiling observations |
//! | `sec54_condition` | §5.4 condition-number analysis |
//! | `sec323_heuristics` | §3.2.3 heuristic-choice analysis |
//! | `sec46_lowrank` | §4.6 low-rank (HSS) study |
//! | `kernels` | Criterion microbenchmarks (real CPU) |
//!
//! Set `SPCG_FAST=1` to run on the quarter-size dataset.

#![warn(missing_docs)]

pub mod runner;
pub mod stats;
pub mod sweep;
pub mod table;

pub use runner::{
    bench_solver_config, build_factors, compare, evaluate, select_k, write_artifact, ComparisonRow,
    EvalResult, Variant,
};
