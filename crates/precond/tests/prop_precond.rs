//! Property-based tests of the preconditioners: factorization identities,
//! application correctness, and breakdown behaviour under failure
//! injection.

use proptest::prelude::*;
use spcg_precond::{
    ic0, ilu0, iluk, BlockJacobiPreconditioner, ExecutionStrategy, JacobiPreconditioner,
    Preconditioner, SaiPattern, SaiPreconditioner,
};
use spcg_sparse::generators::{banded_spd, poisson_2d, random_spd};
use spcg_sparse::{CooMatrix, CsrMatrix};

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// ILU(0) reproduces A exactly on A's pattern, for arbitrary banded SPD
    /// matrices.
    #[test]
    fn ilu0_pattern_identity(n in 8usize..50, band in 2usize..6, seed in 0u64..500) {
        let a = banded_spd(n, band, 0.8, 1.6, seed);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let lu = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
        for (i, j, v) in a.iter() {
            prop_assert!((lu.get(i, j) - v).abs() < 1e-8 * v.abs().max(1.0));
        }
    }

    /// ILU(K) residual ‖A − LU‖_F is non-increasing in K.
    #[test]
    fn iluk_residual_monotone(nx in 4usize..9, seed in 0u64..100) {
        let _ = seed;
        let a = poisson_2d(nx, nx);
        let ad = a.to_dense();
        let fro = |k: usize| {
            let f = iluk(&a, k, ExecutionStrategy::Sequential).unwrap();
            let lu = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
            let mut s = 0.0f64;
            for i in 0..a.n_rows() {
                for j in 0..a.n_rows() {
                    let d = lu.get(i, j) - ad.get(i, j);
                    s += d * d;
                }
            }
            s.sqrt()
        };
        let (r0, r1, r2) = (fro(0), fro(1), fro(2));
        prop_assert!(r1 <= r0 + 1e-12);
        prop_assert!(r2 <= r1 + 1e-12);
    }

    /// Applying ILU factors solves L·U z = r: the application is the exact
    /// inverse of the PRODUCT of the factors (not of A).
    #[test]
    fn factors_apply_inverts_product(n in 8usize..40, seed in 0u64..300) {
        let a = banded_spd(n, 3, 0.9, 1.8, seed);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let r: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let mut z = vec![0.0; n];
        f.apply(&r, &mut z);
        let lu = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
        let rz = lu.matvec(&z);
        for (got, want) in rz.iter().zip(&r) {
            prop_assert!((got - want).abs() < 1e-7);
        }
    }

    /// IC(0) of a strongly dominant SPD matrix succeeds and L·Lᵀ matches A
    /// on the lower pattern.
    #[test]
    fn ic0_lower_pattern_identity(n in 8usize..40, seed in 0u64..200) {
        let a = banded_spd(n, 3, 0.8, 2.5, seed);
        let f = ic0(&a, ExecutionStrategy::Sequential).unwrap();
        let llt = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
        for (i, j, v) in a.iter() {
            if j <= i {
                prop_assert!((llt.get(i, j) - v).abs() < 1e-8);
            }
        }
    }

    /// Jacobi and block-Jacobi(1) agree everywhere.
    #[test]
    fn jacobi_block1_equivalence(n in 5usize..40, seed in 0u64..200) {
        let a = random_spd(n, 3, 1.5, seed);
        let j = JacobiPreconditioner::new(&a).unwrap();
        let b1 = BlockJacobiPreconditioner::new(&a, 1).unwrap();
        let r: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut z1 = vec![0.0; n];
        let mut z2 = vec![0.0; n];
        j.apply(&r, &mut z1);
        b1.apply(&r, &mut z2);
        for (x, y) in z1.iter().zip(&z2) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// SAI never increases the Frobenius distance to the identity versus
    /// the trivial preconditioner G = 0 (i.e. ‖I − GA‖_F ≤ ‖I‖_F).
    #[test]
    fn sai_is_no_worse_than_nothing(n in 6usize..30, seed in 0u64..100) {
        let a = banded_spd(n, 2, 0.9, 2.0, seed);
        let sai = SaiPreconditioner::new(&a, SaiPattern::OfA).unwrap();
        let resid = sai.residual_fro(&a);
        prop_assert!(resid <= (n as f64).sqrt() + 1e-9, "residual {resid}");
    }
}

// --- failure injection (deterministic) ---

#[test]
fn ilu0_rejects_structurally_singular_matrices() {
    // Missing diagonal entry.
    let mut coo = CooMatrix::<f64>::new(3, 3);
    coo.push(0, 0, 1.0).unwrap();
    coo.push(1, 1, 1.0).unwrap();
    coo.push(2, 0, 1.0).unwrap();
    assert!(ilu0(&coo.to_csr(), ExecutionStrategy::Sequential).is_err());
}

#[test]
fn ilu0_detects_pivot_collapse() {
    // 2x2 with exactly cancelling pivot: a_11 - a_10*a_01/a_00 == 0.
    let mut coo = CooMatrix::<f64>::new(2, 2);
    coo.push(0, 0, 2.0).unwrap();
    coo.push(0, 1, 2.0).unwrap();
    coo.push(1, 0, 2.0).unwrap();
    coo.push(1, 1, 2.0).unwrap();
    assert!(ilu0(&coo.to_csr(), ExecutionStrategy::Sequential).is_err());
}

#[test]
fn iluk_rejects_missing_diagonal_at_any_k() {
    let mut coo = CooMatrix::<f64>::new(2, 2);
    coo.push(0, 0, 1.0).unwrap();
    coo.push(0, 1, 1.0).unwrap();
    coo.push(1, 0, 1.0).unwrap();
    let a = coo.to_csr();
    for k in 0..3 {
        assert!(iluk(&a, k, ExecutionStrategy::Sequential).is_err(), "k={k}");
    }
}

#[test]
fn ic0_rejects_indefinite_input() {
    let a: CsrMatrix<f64> = poisson_2d(4, 4).map_values(|v| -v);
    assert!(ic0(&a, ExecutionStrategy::Sequential).is_err());
}

#[test]
fn block_jacobi_rejects_singular_block() {
    let mut coo = CooMatrix::<f64>::new(4, 4);
    // Block {0,1} singular: rank-1.
    coo.push(0, 0, 1.0).unwrap();
    coo.push(0, 1, 1.0).unwrap();
    coo.push(1, 0, 1.0).unwrap();
    coo.push(1, 1, 1.0).unwrap();
    coo.push(2, 2, 1.0).unwrap();
    coo.push(3, 3, 1.0).unwrap();
    assert!(BlockJacobiPreconditioner::new(&coo.to_csr(), 2).is_err());
}
