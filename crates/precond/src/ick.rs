//! IC(K): incomplete Cholesky with level-of-fill K — the symmetric sibling
//! of ILU(K), named explicitly by the paper (§6.2: "Some examples are
//! ILU(K), and Incomplete Cholesky with K fill-in (IC(K)) solvers").
//!
//! The fill pattern is the lower triangle of the ILU(K) symbolic pattern
//! (levels are symmetric for symmetric input); the numeric phase is the
//! IC(0) sweep on the padded pattern.

use crate::factors::{ExecutionStrategy, IluFactors};
use crate::ic0::ic0;
use crate::iluk::iluk_symbolic_capped;
use spcg_sparse::{CsrMatrix, Result, Scalar};

/// Computes the IC(K) factorization `A ≈ L Lᵀ` with level-of-fill `k`.
///
/// Fails like [`ic0`] when a pivot becomes non-positive (matrix not SPD
/// enough for incomplete Cholesky at this fill level).
pub fn ick<T: Scalar>(
    a: &CsrMatrix<T>,
    k: usize,
    exec: ExecutionStrategy,
) -> Result<IluFactors<T>> {
    ick_capped(a, k, usize::MAX, exec)
}

/// [`ick`] with an early-abort fill cap (see
/// [`crate::iluk::iluk_symbolic_capped`]).
pub fn ick_capped<T: Scalar>(
    a: &CsrMatrix<T>,
    k: usize,
    max_nnz: usize,
    exec: ExecutionStrategy,
) -> Result<IluFactors<T>> {
    let sym = iluk_symbolic_capped(a, k, max_nnz)?;
    // Materialize A's values on the fill pattern (fill entries start 0),
    // then run the IC(0) sweep over the padded matrix: the sweep only
    // reads the lower triangle, so the result is IC(K).
    let n = a.n_rows();
    let mut values = vec![T::ZERO; sym.col_idx.len()];
    for i in 0..n {
        let start = sym.row_ptr[i];
        let cols = &sym.col_idx[start..sym.row_ptr[i + 1]];
        for (&c, &v) in a.row_cols(i).iter().zip(a.row_values(i)) {
            let pos = cols.binary_search(&c).expect("A's pattern is in the fill pattern");
            values[start + pos] = v;
        }
    }
    let padded = CsrMatrix::from_raw(n, n, sym.row_ptr.clone(), sym.col_idx.clone(), values)?;
    let factors = ic0(&padded, exec)?;
    Ok(IluFactors::new(factors.l().clone(), factors.u().clone(), exec, format!("ick({k})")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::{banded_spd, poisson_2d};

    #[test]
    fn ick0_equals_ic0() {
        let a = poisson_2d(8, 8);
        let f0 = ic0(&a, ExecutionStrategy::Sequential).unwrap();
        let fk = ick(&a, 0, ExecutionStrategy::Sequential).unwrap();
        assert_eq!(f0.l(), fk.l());
    }

    #[test]
    fn residual_shrinks_with_k() {
        let a = poisson_2d(7, 7);
        let ad = a.to_dense();
        let fro = |k: usize| {
            let f = ick(&a, k, ExecutionStrategy::Sequential).unwrap();
            let llt = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
            let mut s = 0.0f64;
            for i in 0..49 {
                for j in 0..49 {
                    let d = llt.get(i, j) - ad.get(i, j);
                    s += d * d;
                }
            }
            s.sqrt()
        };
        let (r0, r2) = (fro(0), fro(2));
        assert!(r2 < r0, "IC(2) residual {r2} should beat IC(0) {r0}");
    }

    #[test]
    fn large_k_is_exact_cholesky() {
        let a = banded_spd(14, 3, 0.9, 2.5, 3);
        let f = ick(&a, 20, ExecutionStrategy::Sequential).unwrap();
        let llt = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
        let ad = a.to_dense();
        for i in 0..14 {
            for j in 0..14 {
                assert!((llt.get(i, j) - ad.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn apply_is_symmetric_operator() {
        use crate::traits::Preconditioner;
        let a = poisson_2d(6, 6);
        let f = ick(&a, 1, ExecutionStrategy::Sequential).unwrap();
        let n = 36;
        let mut m = vec![vec![0.0f64; n]; n];
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let mut z = vec![0.0; n];
            f.apply(&e, &mut z);
            for (i, &v) in z.iter().enumerate() {
                m[i][j] = v;
            }
        }
        for (i, row) in m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn fill_cap_aborts() {
        let a = poisson_2d(20, 20);
        assert!(ick_capped(&a, 8, 100, ExecutionStrategy::Sequential).is_err());
    }
}
