//! Mixed-precision preconditioning (paper §6.2: "The SPCG solver proposed
//! in this work can additionally benefit from mixed-precision design").
//!
//! The preconditioner's factors are stored and applied in [`Scalar::Lower`]
//! (`f32` for `f64` solves) — halving the factor's memory traffic, which is
//! exactly what the triangular solves are bound by — while the outer PCG
//! iterates in full precision. Since PCG tolerates an inexact
//! preconditioner (it only changes the effective operator `M⁻¹A`),
//! convergence is preserved for reasonably conditioned factors; the outer
//! iterative-refinement loop in `spcg-core` recovers full accuracy when the
//! reduced-precision application stalls the recurrence.
//!
//! The down/upcast runs through the caller-provided staging buffer of
//! [`Preconditioner::apply_staged`], so a warm mixed solve performs no heap
//! allocation — enforced by `crates/core/tests/zero_alloc.rs`.

use crate::factors::{ExecutionStrategy, IluFactors};
use crate::traits::Preconditioner;
use spcg_sparse::{CsrMatrix, Scalar};

/// Incomplete factors stored in [`Scalar::Lower`] precision, applied inside
/// a full-precision `T` solve.
///
/// The wrapper demotes the residual into the staging buffer, runs both
/// triangular sweeps in reduced precision, and promotes the result back —
/// one pass each way, no heap allocation on the staged path.
#[derive(Debug, Clone)]
pub struct MixedPrecisionIlu<T: Scalar = f64> {
    inner: IluFactors<T::Lower>,
    name: String,
}

impl<T: Scalar> MixedPrecisionIlu<T> {
    /// Demotes existing full-precision factors into `T::Lower` storage.
    /// The structure (and level schedules) carry over unchanged.
    pub fn from_full(factors: &IluFactors<T>) -> Self {
        Self::new(factors.demoted())
    }

    /// Wraps factors already stored in reduced precision.
    pub fn new(inner: IluFactors<T::Lower>) -> Self {
        Self { inner, name: "mixed-precision-ilu".into() }
    }

    /// Access to the inner reduced-precision factors.
    pub fn inner(&self) -> &IluFactors<T::Lower> {
        &self.inner
    }

    /// Bytes of factor storage saved versus full precision.
    pub fn bytes_saved(&self) -> usize {
        let full = std::mem::size_of::<T>();
        let lower = std::mem::size_of::<T::Lower>();
        (full - lower) * Preconditioner::<T::Lower>::nnz(&self.inner)
    }
}

impl<T: Scalar> Preconditioner<T> for MixedPrecisionIlu<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        let mut staging = vec![<T::Lower as Scalar>::ZERO; self.staging_len()];
        self.apply_staged(r, z, &mut [], &mut staging);
    }

    /// Triple-width staging: demoted residual, reduced-precision iterate,
    /// and the triangular-sweep intermediate, packed back to back.
    fn staging_len(&self) -> usize {
        3 * Preconditioner::<T::Lower>::dim(&self.inner)
    }

    fn apply_staged(&self, r: &[T], z: &mut [T], _scratch: &mut [T], staging: &mut [T::Lower]) {
        let n = Preconditioner::<T::Lower>::dim(&self.inner);
        assert!(staging.len() >= 3 * n, "staging buffer too small for mixed apply");
        let (r_lo, rest) = staging.split_at_mut(n);
        let (z_lo, y_lo) = rest.split_at_mut(n);
        for (lo, &hi) in r_lo.iter_mut().zip(r) {
            *lo = hi.demote();
        }
        self.inner.solve_with_scratch(r_lo, z_lo, y_lo);
        for (hi, &lo) in z.iter_mut().zip(z_lo.iter()) {
            *hi = T::promote(lo);
        }
    }

    fn value_bytes(&self) -> usize {
        std::mem::size_of::<T::Lower>()
    }

    fn dim(&self) -> usize {
        Preconditioner::<T::Lower>::dim(&self.inner)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn nnz(&self) -> usize {
        Preconditioner::<T::Lower>::nnz(&self.inner)
    }
}

/// Convenience: ILU(0) factored directly in reduced precision, wrapped for
/// full-precision solves.
pub fn ilu0_mixed<T: Scalar>(
    a: &CsrMatrix<T>,
    exec: ExecutionStrategy,
) -> spcg_sparse::Result<MixedPrecisionIlu<T>> {
    let a_lo: CsrMatrix<T::Lower> = a.demoted();
    Ok(MixedPrecisionIlu::new(crate::ilu0::ilu0(&a_lo, exec)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilu0::ilu0;
    use spcg_sparse::generators::poisson_2d;

    #[test]
    fn mixed_apply_tracks_double_apply() {
        let a = poisson_2d(10, 10);
        let f64_factors = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let mixed = MixedPrecisionIlu::from_full(&f64_factors);
        let r: Vec<f64> = (0..100).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let mut z64 = vec![0.0; 100];
        let mut zmx = vec![0.0; 100];
        f64_factors.apply(&r, &mut z64);
        mixed.apply(&r, &mut zmx);
        let scale = z64.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for (a, b) in z64.iter().zip(&zmx) {
            assert!((a - b).abs() < 1e-4 * scale, "mixed precision drifted: {a} vs {b}");
        }
    }

    #[test]
    fn staged_apply_is_identical_to_allocating_apply() {
        let a = poisson_2d(9, 9);
        let mixed = MixedPrecisionIlu::from_full(&ilu0(&a, ExecutionStrategy::Sequential).unwrap());
        let r: Vec<f64> = (0..81).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let mut z_alloc = vec![0.0; 81];
        let mut z_staged = vec![0.0; 81];
        mixed.apply(&r, &mut z_alloc);
        let mut staging = vec![0.0f32; mixed.staging_len()];
        mixed.apply_staged(&r, &mut z_staged, &mut [], &mut staging);
        assert_eq!(z_alloc, z_staged, "staged path must be bitwise identical");
    }

    #[test]
    fn halves_factor_bytes() {
        let a = poisson_2d(8, 8);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let mixed = MixedPrecisionIlu::from_full(&f);
        use crate::traits::Preconditioner as P;
        assert_eq!(P::<f64>::nnz(&mixed), P::<f64>::nnz(&f));
        assert_eq!(mixed.bytes_saved(), 4 * P::<f64>::nnz(&f));
        assert_eq!(P::<f64>::value_bytes(&mixed), 4);
        assert_eq!(P::<f64>::value_bytes(&f), 8);
    }

    #[test]
    fn direct_f32_build() {
        let a = poisson_2d(6, 6);
        let m = ilu0_mixed(&a, ExecutionStrategy::Sequential).unwrap();
        let r = vec![1.0f64; 36];
        let mut z = vec![0.0f64; 36];
        m.apply(&r, &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
        assert_eq!(Preconditioner::<f64>::dim(&m), 36);
    }

    /// The floor of the chain is exact: a `MixedPrecisionIlu<f32>` stores
    /// f32 factors for an f32 solve, and its staged apply is bitwise the
    /// plain apply.
    #[test]
    fn f32_floor_is_exact() {
        let a: spcg_sparse::CsrMatrix<f32> = poisson_2d(6, 6).cast();
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let mixed = MixedPrecisionIlu::<f32>::from_full(&f);
        let r = vec![1.0f32; 36];
        let mut z_full = vec![0.0f32; 36];
        let mut z_mixed = vec![0.0f32; 36];
        f.apply(&r, &mut z_full);
        mixed.apply(&r, &mut z_mixed);
        assert_eq!(z_full, z_mixed);
    }
}
