//! Mixed-precision preconditioning (paper §6.2: "The SPCG solver proposed
//! in this work can additionally benefit from mixed-precision design").
//!
//! The preconditioner's factors are stored and applied in `f32` — halving
//! the factor's memory traffic, which is exactly what the triangular
//! solves are bound by — while the outer PCG iterates in `f64`. Since PCG
//! tolerates an inexact preconditioner (it only changes the effective
//! operator `M⁻¹A`), convergence is preserved for reasonably conditioned
//! factors.

use crate::factors::{IluFactors, TriangularExec};
use crate::traits::Preconditioner;
use spcg_sparse::CsrMatrix;

/// Wraps `f32` ILU factors for use inside an `f64` solver.
#[derive(Debug, Clone)]
pub struct MixedPrecisionIlu {
    inner: IluFactors<f32>,
    // Reusable casting buffers would need interior mutability; the
    // allocation per apply is kept for simplicity and measured to be
    // negligible next to the solves.
}

impl MixedPrecisionIlu {
    /// Demotes existing `f64` factors to `f32`.
    pub fn from_f64(factors: &IluFactors<f64>) -> Self {
        let l: CsrMatrix<f32> = factors.l().cast();
        let u: CsrMatrix<f32> = factors.u().cast();
        Self { inner: IluFactors::new(l, u, factors.exec(), "ilu-f32".into()) }
    }

    /// Builds directly from `f32` factors.
    pub fn new(inner: IluFactors<f32>) -> Self {
        Self { inner }
    }

    /// Access to the inner single-precision factors.
    pub fn inner(&self) -> &IluFactors<f32> {
        &self.inner
    }

    /// Bytes of factor storage saved versus double precision.
    pub fn bytes_saved(&self) -> usize {
        4 * Preconditioner::<f32>::nnz(&self.inner)
    }
}

impl Preconditioner<f64> for MixedPrecisionIlu {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let r32: Vec<f32> = r.iter().map(|&v| v as f32).collect();
        let mut z32 = vec![0.0f32; z.len()];
        self.inner.solve(&r32, &mut z32);
        for (zo, zi) in z.iter_mut().zip(&z32) {
            *zo = *zi as f64;
        }
    }

    fn dim(&self) -> usize {
        Preconditioner::<f32>::dim(&self.inner)
    }

    fn name(&self) -> &str {
        "mixed-precision-ilu"
    }

    fn nnz(&self) -> usize {
        Preconditioner::<f32>::nnz(&self.inner)
    }
}

/// Convenience: ILU(0) in single precision, wrapped for `f64` solves.
pub fn ilu0_mixed(
    a: &CsrMatrix<f64>,
    exec: TriangularExec,
) -> spcg_sparse::Result<MixedPrecisionIlu> {
    let a32: CsrMatrix<f32> = a.cast();
    Ok(MixedPrecisionIlu::new(crate::ilu0::ilu0(&a32, exec)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilu0::ilu0;
    use spcg_sparse::generators::poisson_2d;

    #[test]
    fn mixed_apply_tracks_double_apply() {
        let a = poisson_2d(10, 10);
        let f64_factors = ilu0(&a, TriangularExec::Sequential).unwrap();
        let mixed = MixedPrecisionIlu::from_f64(&f64_factors);
        let r: Vec<f64> = (0..100).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let mut z64 = vec![0.0; 100];
        let mut zmx = vec![0.0; 100];
        f64_factors.apply(&r, &mut z64);
        mixed.apply(&r, &mut zmx);
        let scale = z64.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for (a, b) in z64.iter().zip(&zmx) {
            assert!((a - b).abs() < 1e-4 * scale, "mixed precision drifted: {a} vs {b}");
        }
    }

    #[test]
    fn halves_factor_bytes() {
        let a = poisson_2d(8, 8);
        let f = ilu0(&a, TriangularExec::Sequential).unwrap();
        let mixed = MixedPrecisionIlu::from_f64(&f);
        use crate::traits::Preconditioner as P;
        assert_eq!(P::<f64>::nnz(&mixed), P::<f64>::nnz(&f));
        assert_eq!(mixed.bytes_saved(), 4 * P::<f64>::nnz(&f));
    }

    #[test]
    fn direct_f32_build() {
        let a = poisson_2d(6, 6);
        let m = ilu0_mixed(&a, TriangularExec::Sequential).unwrap();
        let r = vec![1.0f64; 36];
        let mut z = vec![0.0f64; 36];
        m.apply(&r, &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
        assert_eq!(Preconditioner::<f64>::dim(&m), 36);
    }
}
