//! The `Preconditioner` abstraction: anything that can apply `z = M⁻¹ r`
//! inside line 13 of Algorithm 1.

use spcg_sparse::Scalar;

/// A preconditioner application `z = M⁻¹ r`.
///
/// Implementations must be deterministic: PCG calls `apply` once per
/// iteration and the convergence trace is compared across runs in tests.
pub trait Preconditioner<T: Scalar>: Send + Sync {
    /// Applies the preconditioner: writes `z = M⁻¹ r`.
    fn apply(&self, r: &[T], z: &mut [T]);

    /// Length of the scratch slice [`apply_with_scratch`] needs (0 when the
    /// application has no intermediate vector).
    ///
    /// [`apply_with_scratch`]: Preconditioner::apply_with_scratch
    fn scratch_len(&self) -> usize {
        0
    }

    /// Applies the preconditioner using caller-provided scratch, so the
    /// solver's hot loop performs no heap allocation. `scratch` must be at
    /// least [`scratch_len`](Preconditioner::scratch_len) long.
    ///
    /// The default forwards to [`apply`](Preconditioner::apply); override
    /// it in implementations whose `apply` allocates intermediates. The
    /// result must be bitwise identical to `apply` — PCG convergence traces
    /// are compared across the two paths in tests.
    fn apply_with_scratch(&self, r: &[T], z: &mut [T], _scratch: &mut [T]) {
        self.apply(r, z);
    }

    /// Length of the [`Scalar::Lower`] staging slice
    /// [`apply_staged`](Preconditioner::apply_staged) needs (0 for
    /// full-precision preconditioners, which never touch the staging
    /// buffer).
    fn staging_len(&self) -> usize {
        0
    }

    /// Applies the preconditioner through caller-provided scratch *and* a
    /// low-precision staging buffer. This is the boundary where
    /// mixed-precision preconditioners demote `r` into `T::Lower`, run the
    /// triangular sweeps in reduced precision, and promote the result back
    /// into `z` — all through `staging`, so warm mixed solves stay
    /// allocation-free. `staging` must be at least
    /// [`staging_len`](Preconditioner::staging_len) long.
    ///
    /// The default ignores `staging` and forwards to
    /// [`apply_with_scratch`](Preconditioner::apply_with_scratch), so every
    /// full-precision preconditioner is bitwise unchanged by this seam.
    fn apply_staged(&self, r: &[T], z: &mut [T], scratch: &mut [T], _staging: &mut [T::Lower]) {
        self.apply_with_scratch(r, z, scratch);
    }

    /// Bytes of one stored factor value as this preconditioner actually
    /// holds it (`size_of::<T>()` unless factors are demoted). Cost models
    /// price triangular-solve bandwidth with this width.
    fn value_bytes(&self) -> usize {
        std::mem::size_of::<T>()
    }

    /// Problem size `n`.
    fn dim(&self) -> usize;

    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Number of stored nonzeros in the preconditioner's factors (0 for
    /// matrix-free preconditioners). Used by cost models.
    fn nnz(&self) -> usize {
        0
    }
}

/// The identity preconditioner (turns PCG into plain CG).
#[derive(Debug, Clone)]
pub struct IdentityPreconditioner {
    n: usize,
}

impl IdentityPreconditioner {
    /// Identity preconditioner of dimension `n`.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl<T: Scalar> Preconditioner<T> for IdentityPreconditioner {
    fn apply(&self, r: &[T], z: &mut [T]) {
        assert_eq!(r.len(), self.n);
        assert_eq!(z.len(), self.n);
        z.copy_from_slice(r);
    }

    fn dim(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "identity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_copies() {
        let m = IdentityPreconditioner::new(3);
        let r = [1.0f64, 2.0, 3.0];
        let mut z = [0.0; 3];
        m.apply(&r, &mut z);
        assert_eq!(z, r);
        assert_eq!(Preconditioner::<f64>::dim(&m), 3);
        assert_eq!(Preconditioner::<f64>::nnz(&m), 0);
    }
}
