//! Level-scheduled parallel ILU(0) numeric factorization.
//!
//! The factorization has the same dependence structure as the lower
//! triangular solve: row `i` needs every row `k < i` with `a_ik != 0`
//! finished first. Scheduling rows by those levels lets each wavefront
//! factor in parallel — this is how GPU ILU(0) kernels (cuSPARSE
//! `csrilu02`) are organized, and what the Figure 6 experiments model.
//!
//! The parallel sweep is bitwise identical to the sequential one: each
//! row's updates are accumulated in CSR order by exactly one thread.

use crate::factors::{ExecutionStrategy, IluFactors};
use crate::ilu0::split_factors;
use rayon::prelude::*;
use spcg_sparse::{CsrMatrix, Result, Scalar, SparseError};
use spcg_wavefront::{LevelSchedule, Triangle};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Rows per rayon task inside a level; narrower levels run sequentially.
const LEVEL_PAR_MIN: usize = 128;

/// Shared-mutable value array for disjoint-row parallel writes.
///
/// Safety contract: concurrent callers must only write positions belonging
/// to distinct rows, and only read positions of rows finalized in earlier
/// levels (separated by the rayon join barrier).
struct SharedVals<'a, T>(&'a [UnsafeCell<T>]);

unsafe impl<T: Send + Sync> Sync for SharedVals<'_, T> {}

impl<'a, T: Copy> SharedVals<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: UnsafeCell<T> has the same layout as T.
        let ptr = slice as *mut [T] as *const [UnsafeCell<T>];
        Self(unsafe { &*ptr })
    }

    /// SAFETY: position `p` must belong to the caller's row.
    unsafe fn write(&self, p: usize, v: T) {
        unsafe { *self.0[p].get() = v };
    }

    /// SAFETY: position `p` must belong to a finalized row (or the
    /// caller's own).
    unsafe fn read(&self, p: usize) -> T {
        unsafe { *self.0[p].get() }
    }
}

/// Computes ILU(0) with level-scheduled parallel numeric factorization.
///
/// Produces exactly the same factors as [`crate::ilu0::ilu0`]; `exec`
/// selects how the *application* (triangular solves) will run.
pub fn ilu0_par<T: Scalar>(a: &CsrMatrix<T>, exec: ExecutionStrategy) -> Result<IluFactors<T>> {
    if !a.is_square() {
        return Err(SparseError::NotSquare { n_rows: a.n_rows(), n_cols: a.n_cols() });
    }
    let n = a.n_rows();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let mut vals: Vec<T> = a.values().to_vec();

    let mut diag_pos = vec![0usize; n];
    for i in 0..n {
        match a.row_cols(i).binary_search(&i) {
            Ok(k) => diag_pos[i] = row_ptr[i] + k,
            Err(_) => return Err(SparseError::ZeroDiagonal { row: i }),
        }
    }

    // The factorization levels are the lower-triangle wavefronts of A.
    let schedule = LevelSchedule::build(a, Triangle::Lower);
    let shared = SharedVals::new(&mut vals);
    let failed = AtomicBool::new(false);

    for level in schedule.levels() {
        let factor_row = |&i: &usize| {
            // SAFETY: this closure is the unique writer of row i's
            // positions; rows k < i read here were finalized in earlier
            // levels (the schedule guarantees it, and levels are separated
            // by a join barrier).
            unsafe {
                for kk in row_ptr[i]..diag_pos[i] {
                    let k = col_idx[kk];
                    let piv = shared.read(diag_pos[k]);
                    if piv == T::ZERO || piv.is_bad() {
                        failed.store(true, Ordering::Relaxed);
                        return;
                    }
                    let lik = shared.read(kk) / piv;
                    shared.write(kk, lik);
                    let mut p = kk + 1;
                    let row_i_end = row_ptr[i + 1];
                    for jj in diag_pos[k] + 1..row_ptr[k + 1] {
                        let j = col_idx[jj];
                        while p < row_i_end && col_idx[p] < j {
                            p += 1;
                        }
                        if p == row_i_end {
                            break;
                        }
                        if col_idx[p] == j {
                            let v = shared.read(p) - lik * shared.read(jj);
                            shared.write(p, v);
                        }
                    }
                }
                let piv = shared.read(diag_pos[i]);
                if piv == T::ZERO || piv.is_bad() {
                    failed.store(true, Ordering::Relaxed);
                }
            }
        };
        if level.len() >= LEVEL_PAR_MIN {
            level.par_iter().for_each(factor_row);
        } else {
            level.iter().for_each(factor_row);
        }
        if failed.load(Ordering::Relaxed) {
            // Locate the first bad pivot for a precise error.
            for (i, &dp) in diag_pos.iter().enumerate() {
                // SAFETY: all writers joined.
                let piv = unsafe { shared.read(dp) };
                if piv == T::ZERO || piv.is_bad() {
                    return Err(SparseError::ZeroDiagonal { row: i });
                }
            }
            return Err(SparseError::ZeroDiagonal { row: 0 });
        }
    }

    let (l, u) = split_factors(a, &vals, &diag_pos);
    Ok(IluFactors::new(l, u, exec, "ilu0-par".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilu0::ilu0;
    use spcg_sparse::generators::{banded_spd, layered_poisson_2d, poisson_2d, random_spd};

    #[test]
    fn parallel_factors_match_sequential_bitwise() {
        for (name, a) in [
            ("poisson", poisson_2d(40, 40)),
            ("layered", layered_poisson_2d(48, 48, 4, 0.02)),
            ("banded", banded_spd(1500, 4, 0.8, 1.6, 7)),
            ("random", random_spd(1200, 5, 1.5, 9)),
        ] {
            let fs = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
            let fp = ilu0_par(&a, ExecutionStrategy::Sequential).unwrap();
            assert_eq!(fs.l().values(), fp.l().values(), "{name}: L differs");
            assert_eq!(fs.u().values(), fp.u().values(), "{name}: U differs");
        }
    }

    #[test]
    fn rejects_missing_diagonal() {
        let mut coo = spcg_sparse::CooMatrix::<f64>::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        assert!(ilu0_par(&coo.to_csr(), ExecutionStrategy::Sequential).is_err());
    }

    #[test]
    fn rejects_pivot_collapse() {
        let mut coo = spcg_sparse::CooMatrix::<f64>::new(2, 2);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        coo.push(1, 0, 2.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        assert!(ilu0_par(&coo.to_csr(), ExecutionStrategy::Sequential).is_err());
    }

    #[test]
    fn f32_parallel_factorization() {
        let a: CsrMatrix<f32> = poisson_2d(30, 30).cast();
        let fs = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let fp = ilu0_par(&a, ExecutionStrategy::Sequential).unwrap();
        assert_eq!(fs.u().values(), fp.u().values());
    }
}
