//! Static-pattern sparse approximate inverse (SAI/SPAI) preconditioner —
//! the alternative GPU-friendly family the paper discusses in §6.2.
//!
//! `M⁻¹` is approximated directly by a sparse matrix `G` minimizing
//! `‖I − G·A‖_F` row by row over a fixed sparsity pattern (here: the
//! pattern of `A`, optionally squared). Applying the preconditioner is then
//! a single SpMV — no triangular solves, no wavefronts — which is why SAI
//! parallelizes trivially; its weakness (also per the paper) is that not
//! every matrix has a good sparse approximate inverse.

use crate::traits::Preconditioner;
use spcg_sparse::spmv::spmv;
use spcg_sparse::{CooMatrix, CscMatrix, CsrMatrix, DenseMatrix, Result, Scalar, SparseError};

/// Pattern used for the approximate inverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaiPattern {
    /// The sparsity pattern of `A` itself (cheapest, weakest).
    OfA,
    /// The pattern of `A²` (denser, stronger) — entries reachable within
    /// two hops.
    OfASquared,
}

/// A sparse-approximate-inverse preconditioner `z = G r`.
#[derive(Debug, Clone)]
pub struct SaiPreconditioner<T: Scalar> {
    g: CsrMatrix<T>,
}

impl<T: Scalar> SaiPreconditioner<T> {
    /// Builds the SAI preconditioner of `a` on the chosen pattern.
    ///
    /// For every row `i` of `G`, the least-squares problem
    /// `min ‖e_iᵀ − g_iᵀ A‖₂` over the pattern's support is solved via its
    /// normal equations on the small gathered submatrix.
    pub fn new(a: &CsrMatrix<T>, pattern: SaiPattern) -> Result<Self> {
        Self::new_probed(a, pattern, &mut spcg_probe::NoProbe)
    }

    /// [`new`](SaiPreconditioner::new) with an observability
    /// [`Probe`](spcg_probe::Probe): emits
    /// [`Counter::SpaiRows`](spcg_probe::Counter::SpaiRows) (per-row
    /// least-squares solves),
    /// [`Counter::SpaiGathered`](spcg_probe::Counter::SpaiGathered) (dense
    /// normal-equation entries gathered across them), and
    /// [`Counter::AinvNnz`](spcg_probe::Counter::AinvNnz) (stored entries
    /// of `M`).
    pub fn new_probed<P: spcg_probe::Probe>(
        a: &CsrMatrix<T>,
        pattern: SaiPattern,
        probe: &mut P,
    ) -> Result<Self> {
        if !a.is_square() {
            return Err(SparseError::NotSquare { n_rows: a.n_rows(), n_cols: a.n_cols() });
        }
        let n = a.n_rows();
        let csc = CscMatrix::from_csr(a);
        let support: Vec<Vec<usize>> = match pattern {
            SaiPattern::OfA => (0..n).map(|i| a.row_cols(i).to_vec()).collect(),
            SaiPattern::OfASquared => (0..n)
                .map(|i| {
                    let mut cols: Vec<usize> =
                        a.row_cols(i).iter().flat_map(|&k| a.row_cols(k).iter().copied()).collect();
                    cols.sort_unstable();
                    cols.dedup();
                    cols
                })
                .collect(),
        };

        let mut coo = CooMatrix::with_capacity(n, n, support.iter().map(Vec::len).sum());
        let mut gathered = 0u64;
        for (i, cols) in support.iter().enumerate() {
            let k = cols.len();
            if k == 0 {
                return Err(SparseError::ZeroDiagonal { row: i });
            }
            // Rows of A touched by the support columns (g_iᵀ A restricted).
            let mut touched: Vec<usize> =
                cols.iter().flat_map(|&j| a.row_cols(j).iter().copied()).collect();
            touched.sort_unstable();
            touched.dedup();
            // Dense local system: B[t][s] = A[cols[s]][touched[t]].
            let m = touched.len();
            gathered += (m * k) as u64;
            let mut bmat = DenseMatrix::zeros(m, k);
            for (s, &j) in cols.iter().enumerate() {
                for (&c, &v) in a.row_cols(j).iter().zip(a.row_values(j)) {
                    let t = touched.binary_search(&c).expect("touched covers row j");
                    bmat.set(t, s, v);
                }
            }
            let _ = &csc; // csc retained for future column-driven patterns
                          // rhs = e_i restricted to touched.
            let mut rhs = vec![T::ZERO; m];
            if let Ok(t) = touched.binary_search(&i) {
                rhs[t] = T::ONE;
            }
            // Normal equations: (BᵀB) g = Bᵀ rhs.
            let bt = bmat.transpose();
            let mut btb = bt.matmul(&bmat)?;
            // Tiny Tikhonov term guards against rank deficiency.
            let eps = T::from_f64(1e-12);
            for d in 0..k {
                let v = btb.get(d, d) + eps;
                btb.set(d, d, v);
            }
            let btr = bt.matvec(&rhs);
            let g = btb.solve(&btr)?;
            for (s, &j) in cols.iter().enumerate() {
                if g[s] != T::ZERO {
                    coo.push(i, j, g[s])?;
                }
            }
        }
        let g = coo.to_csr();
        probe.counter(spcg_probe::Counter::SpaiRows, n as u64);
        probe.counter(spcg_probe::Counter::SpaiGathered, gathered);
        probe.counter(spcg_probe::Counter::AinvNnz, g.nnz() as u64);
        Ok(Self { g })
    }

    /// The approximate inverse matrix `G`.
    pub fn matrix(&self) -> &CsrMatrix<T> {
        &self.g
    }

    /// Frobenius residual `‖I − G A‖_F` — the quantity the construction
    /// minimized, exposed for diagnostics.
    pub fn residual_fro(&self, a: &CsrMatrix<T>) -> f64 {
        let n = a.n_rows();
        let mut total = 0.0f64;
        let mut col = vec![T::ZERO; n];
        let mut out = vec![T::ZERO; n];
        // ‖I − G A‖_F² = Σ_j ‖e_j − G (A e_j)‖² computed column-wise.
        for j in 0..n {
            for v in col.iter_mut() {
                *v = T::ZERO;
            }
            // A e_j = column j of A.
            for (r, c, v) in a.iter() {
                if c == j {
                    col[r] = v;
                }
            }
            spmv(&self.g, &col, &mut out);
            for (i, &v) in out.iter().enumerate() {
                let want = if i == j { 1.0 } else { 0.0 };
                let d = v.to_f64() - want;
                total += d * d;
            }
        }
        total.sqrt()
    }
}

impl<T: Scalar> Preconditioner<T> for SaiPreconditioner<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        spmv(&self.g, r, z);
    }

    fn dim(&self) -> usize {
        self.g.n_rows()
    }

    fn name(&self) -> &str {
        "sai"
    }

    fn nnz(&self) -> usize {
        self.g.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::{banded_spd, poisson_1d, poisson_2d};

    #[test]
    fn diagonal_matrix_inverts_exactly() {
        let mut coo = CooMatrix::<f64>::new(3, 3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 4.0).unwrap();
        coo.push(2, 2, 8.0).unwrap();
        let a = coo.to_csr();
        let sai = SaiPreconditioner::new(&a, SaiPattern::OfA).unwrap();
        assert!((sai.matrix().get(0, 0).unwrap() - 0.5).abs() < 1e-10);
        assert!((sai.matrix().get(2, 2).unwrap() - 0.125).abs() < 1e-10);
        assert!(sai.residual_fro(&a) < 1e-9);
    }

    #[test]
    fn squared_pattern_is_denser_and_better() {
        let a = poisson_1d(24);
        let s1 = SaiPreconditioner::new(&a, SaiPattern::OfA).unwrap();
        let s2 = SaiPreconditioner::new(&a, SaiPattern::OfASquared).unwrap();
        assert!(Preconditioner::<f64>::nnz(&s2) > Preconditioner::<f64>::nnz(&s1));
        assert!(s2.residual_fro(&a) < s1.residual_fro(&a), "denser pattern should fit better");
    }

    #[test]
    fn sai_accelerates_pcg() {
        use crate::traits::IdentityPreconditioner;
        use spcg_sparse::blas::norm2;
        let a = banded_spd(120, 4, 0.7, 1.5, 9);
        let b: Vec<f64> = (0..120).map(|i| ((i % 7) as f64) - 3.0).collect();
        let _ = norm2(&b);
        // Run two CG variants by hand through the solver crate is not
        // possible here (dependency direction), so check the operator
        // quality instead: ‖I - GA‖_F must be well below ‖I‖_F = sqrt(n),
        // i.e. G is a genuine approximate inverse.
        let sai = SaiPreconditioner::new(&a, SaiPattern::OfA).unwrap();
        let resid = sai.residual_fro(&a);
        assert!(resid < (120.0f64).sqrt() * 0.5, "SAI residual {resid} too large");
        // And applying it roughly inverts A on a test vector.
        let mut az = vec![0.0; 120];
        let mut z = vec![0.0; 120];
        sai.apply(&b, &mut z);
        spmv(&a, &z, &mut az);
        let err: f64 = az.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        let bnorm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / bnorm < 0.9, "G is no better than identity: {}", err / bnorm);
        let _ = IdentityPreconditioner::new(120);
    }

    #[test]
    fn works_on_2d_poisson() {
        let a = poisson_2d(8, 8);
        let sai = SaiPreconditioner::new(&a, SaiPattern::OfA).unwrap();
        assert_eq!(Preconditioner::<f64>::dim(&sai), 64);
        assert!(sai.matrix().is_square());
        // G should be symmetric-ish for symmetric A (same pattern, same
        // normal equations transposed) — check loosely.
        let g = sai.matrix();
        let mut asym: f64 = 0.0;
        for (r, c, v) in g.iter() {
            let w = g.get(c, r).unwrap_or(0.0);
            asym = asym.max((v - w).abs());
        }
        assert!(asym < 0.5, "G wildly asymmetric: {asym}");
    }

    #[test]
    fn non_square_rejected() {
        let mut coo = CooMatrix::<f64>::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        assert!(SaiPreconditioner::new(&coo.to_csr(), SaiPattern::OfA).is_err());
    }
}
