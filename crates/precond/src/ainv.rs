//! The level-free (approximate-inverse) preconditioner family as one
//! enum, so a plan can own "whichever level-free kind was selected" without
//! boxing a trait object: FSAI (`Gᵀ G`, two SpMVs), static-pattern SPAI
//! (`M`, one SpMV), or Jacobi (`diag(A)⁻¹`, one elementwise pass). Every
//! variant applies with zero synchronization — no levels, no barriers.

use crate::fsai::FsaiPreconditioner;
use crate::jacobi::JacobiPreconditioner;
use crate::sai::SaiPreconditioner;
use crate::traits::Preconditioner;
use spcg_sparse::{CsrMatrix, Scalar};

/// One constructed approximate-inverse preconditioner.
#[derive(Debug, Clone)]
pub enum AinvPreconditioner<T: Scalar> {
    /// Factored sparse approximate inverse `M⁻¹ = GᵀG` (SPD-preserving).
    Fsai(FsaiPreconditioner<T>),
    /// Unfactored sparse approximate inverse `M⁻¹ = M` minimizing
    /// `‖I − MA‖_F` on a static pattern.
    Spai(SaiPreconditioner<T>),
    /// Diagonal inverse — the degenerate (weakest, cheapest) member.
    Jacobi(JacobiPreconditioner<T>),
}

impl<T: Scalar> AinvPreconditioner<T> {
    /// Short stable kind label ("fsai" / "spai" / "jacobi").
    pub fn kind_name(&self) -> &'static str {
        match self {
            AinvPreconditioner::Fsai(_) => "fsai",
            AinvPreconditioner::Spai(_) => "spai",
            AinvPreconditioner::Jacobi(_) => "jacobi",
        }
    }

    /// The sparse factor matrices one application multiplies by, in apply
    /// order — `[G, Gᵀ]` for FSAI, `[M]` for SPAI, empty for Jacobi (whose
    /// apply is a single elementwise pass, not an SpMV). Cost models price
    /// a level-free iteration as SpMV traffic over exactly these.
    pub fn factor_matrices(&self) -> Vec<&CsrMatrix<T>> {
        match self {
            AinvPreconditioner::Fsai(f) => vec![f.g(), f.g_t()],
            AinvPreconditioner::Spai(s) => vec![s.matrix()],
            AinvPreconditioner::Jacobi(_) => Vec::new(),
        }
    }

    /// Estimated resident bytes of the stored inverse factors (CSR values
    /// plus column indices plus row pointers; the Jacobi variant stores
    /// one value per row).
    pub fn approx_bytes(&self) -> usize {
        let idx = std::mem::size_of::<usize>();
        let val = std::mem::size_of::<T>();
        let csr_bytes = |m: &CsrMatrix<T>| m.nnz() * (val + idx) + (m.n_rows() + 1) * idx;
        match self {
            AinvPreconditioner::Fsai(f) => csr_bytes(f.g()) + csr_bytes(f.g_t()),
            AinvPreconditioner::Spai(s) => csr_bytes(s.matrix()),
            AinvPreconditioner::Jacobi(j) => Preconditioner::<T>::nnz(j) * val,
        }
    }
}

impl<T: Scalar> Preconditioner<T> for AinvPreconditioner<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        match self {
            AinvPreconditioner::Fsai(f) => f.apply(r, z),
            AinvPreconditioner::Spai(s) => s.apply(r, z),
            AinvPreconditioner::Jacobi(j) => j.apply(r, z),
        }
    }

    fn scratch_len(&self) -> usize {
        match self {
            AinvPreconditioner::Fsai(f) => f.scratch_len(),
            AinvPreconditioner::Spai(s) => s.scratch_len(),
            AinvPreconditioner::Jacobi(j) => j.scratch_len(),
        }
    }

    fn apply_with_scratch(&self, r: &[T], z: &mut [T], scratch: &mut [T]) {
        match self {
            AinvPreconditioner::Fsai(f) => f.apply_with_scratch(r, z, scratch),
            AinvPreconditioner::Spai(s) => s.apply_with_scratch(r, z, scratch),
            AinvPreconditioner::Jacobi(j) => j.apply_with_scratch(r, z, scratch),
        }
    }

    fn dim(&self) -> usize {
        match self {
            AinvPreconditioner::Fsai(f) => f.dim(),
            AinvPreconditioner::Spai(s) => s.dim(),
            AinvPreconditioner::Jacobi(j) => j.dim(),
        }
    }

    fn name(&self) -> &str {
        self.kind_name()
    }

    fn nnz(&self) -> usize {
        match self {
            AinvPreconditioner::Fsai(f) => Preconditioner::<T>::nnz(f),
            AinvPreconditioner::Spai(s) => Preconditioner::<T>::nnz(s),
            AinvPreconditioner::Jacobi(j) => Preconditioner::<T>::nnz(j),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sai::SaiPattern;
    use spcg_sparse::generators::poisson_2d;

    #[test]
    fn delegation_matches_inner() {
        let a = poisson_2d(6, 6);
        let inner = FsaiPreconditioner::new(&a).unwrap();
        let outer = AinvPreconditioner::Fsai(inner.clone());
        let r: Vec<f64> = (0..36).map(|i| (i % 4) as f64).collect();
        let (mut z1, mut z2) = (vec![0.0; 36], vec![0.0; 36]);
        inner.apply(&r, &mut z1);
        outer.apply(&r, &mut z2);
        assert_eq!(z1, z2);
        assert_eq!(outer.kind_name(), "fsai");
        assert_eq!(outer.factor_matrices().len(), 2);
        assert!(outer.approx_bytes() > 0);
    }

    #[test]
    fn factor_matrices_per_kind() {
        let a = poisson_2d(5, 5);
        let spai = AinvPreconditioner::Spai(SaiPreconditioner::new(&a, SaiPattern::OfA).unwrap());
        let jac = AinvPreconditioner::Jacobi(JacobiPreconditioner::new(&a).unwrap());
        assert_eq!(spai.factor_matrices().len(), 1);
        assert!(jac.factor_matrices().is_empty());
        assert_eq!(jac.approx_bytes(), 25 * 8);
        assert_eq!(Preconditioner::<f64>::scratch_len(&spai), 0);
    }
}
