//! Pivot-shifted refactorization: retry a broken-down incomplete
//! factorization on the diagonally shifted matrix `A + αI`.
//!
//! Incomplete factorizations break down on matrices that are perfectly
//! solvable — a pivot hits zero (or drifts negative for IC(0)) even though
//! `A` itself is SPD, because dropped fill removed exactly the mass that
//! kept the pivot positive. The classical cure (Manteuffel 1980) is to
//! factor `A + αI` instead: the shift pushes every pivot up without
//! changing the sparsity pattern, and PCG still solves the *original*
//! system — only the preconditioner sees the shift.
//!
//! [`shifted_factorization`] wraps every factorization kind behind one
//! retry loop: attempt the unshifted factorization, validate the pivots,
//! and on breakdown escalate `α` geometrically until the factors pass or
//! the attempt budget is spent. Failures are reported as a typed
//! [`FactorError`] so recovery layers can distinguish "shift harder" from
//! "this matrix is structurally hopeless".

use crate::factors::{ExecutionStrategy, IluFactors};
use crate::ic0::ic0;
use crate::ilu0::ilu0_probed;
use crate::iluk::iluk_probed;
use spcg_probe::{Counter, NoProbe, Probe, Span};
use spcg_sparse::{CsrMatrix, Scalar, SparseError};

/// Which incomplete factorization the shift loop retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorKind {
    /// ILU with zero fill.
    Ilu0,
    /// ILU with level-of-fill K.
    Iluk(usize),
    /// Incomplete Cholesky with zero fill.
    Ic0,
}

impl FactorKind {
    /// Short label for reports and factor names.
    pub fn label(&self) -> String {
        match self {
            FactorKind::Ilu0 => "ilu0".to_string(),
            FactorKind::Iluk(k) => format!("iluk({k})"),
            FactorKind::Ic0 => "ic0".to_string(),
        }
    }
}

/// How the diagonal shift escalates across retry attempts.
///
/// The shift is *relative*: attempt `j` (1-based among shifted attempts)
/// factors `A + α_j I` with `α_j = initial_shift · growth^(j-1) · s` where
/// `s` is the mean absolute diagonal of `A`, so the same policy works for
/// matrices at any scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftPolicy {
    /// First shift, as a fraction of the mean absolute diagonal.
    pub initial_shift: f64,
    /// Geometric escalation factor between attempts (> 1).
    pub growth: f64,
    /// Total factorization attempts, *including* the unshifted one.
    pub max_attempts: usize,
    /// A computed pivot is accepted only when `|u_ii|` is at least this
    /// fraction of the mean absolute diagonal; smaller pivots trigger a
    /// retry even when the sweep itself did not divide by zero.
    pub min_pivot_rel: f64,
}

impl Default for ShiftPolicy {
    fn default() -> Self {
        Self { initial_shift: 1e-3, growth: 10.0, max_attempts: 6, min_pivot_rel: 1e-10 }
    }
}

impl ShiftPolicy {
    /// The absolute shift used on attempt `attempt` (0 = unshifted),
    /// given the matrix diagonal scale.
    pub fn alpha_for(&self, attempt: usize, diag_scale: f64) -> f64 {
        if attempt == 0 {
            0.0
        } else {
            self.initial_shift * self.growth.powi(attempt as i32 - 1) * diag_scale
        }
    }
}

/// Why a shifted factorization could not produce usable factors.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// The matrix cannot be factored at any shift (non-square, malformed
    /// CSR, …) — retrying is pointless.
    Structural(SparseError),
    /// Every attempt up to the policy budget broke down.
    Breakdown {
        /// Number of factorization attempts performed.
        attempts: usize,
        /// Largest shift tried before giving up.
        max_alpha: f64,
        /// Row of the offending pivot on the last attempt.
        row: usize,
    },
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::Structural(e) => write!(f, "structural factorization error: {e}"),
            FactorError::Breakdown { attempts, max_alpha, row } => write!(
                f,
                "factorization broke down at row {row} after {attempts} attempts (max shift {max_alpha:.3e})"
            ),
        }
    }
}

impl std::error::Error for FactorError {}

/// Factors produced by the shift retry loop, with provenance.
#[derive(Debug, Clone)]
pub struct ShiftedFactors<T: Scalar> {
    /// The usable factors (of `A + αI` when `alpha > 0`).
    pub factors: IluFactors<T>,
    /// The shift that finally succeeded (0 when `A` factored directly).
    pub alpha: f64,
    /// Factorization attempts performed, including the successful one.
    pub attempts: usize,
}

impl<T: Scalar> ShiftedFactors<T> {
    /// `true` when the unshifted factorization succeeded.
    pub fn is_unshifted(&self) -> bool {
        self.alpha == 0.0
    }
}

/// Mean absolute diagonal of `a` — the scale reference for relative
/// shifts and pivot thresholds. Falls back to 1 for an all-zero diagonal.
pub fn diag_scale<T: Scalar>(a: &CsrMatrix<T>) -> f64 {
    let n = a.n_rows();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = a.diag().iter().map(|v| v.to_f64().abs()).sum();
    let mean = sum / n as f64;
    if mean > 0.0 && mean.is_finite() {
        mean
    } else {
        1.0
    }
}

/// Runs `kind`'s factorization on `A`, retrying on `A + αI` with
/// geometrically escalating `α` until the pivots validate or the attempt
/// budget is exhausted.
///
/// The returned factors approximate `A + αI`, which preconditions the
/// original `A` well for the modest shifts the policy generates; callers
/// solve the *unshifted* system as usual.
pub fn shifted_factorization<T: Scalar>(
    a: &CsrMatrix<T>,
    kind: FactorKind,
    exec: ExecutionStrategy,
    policy: &ShiftPolicy,
) -> Result<ShiftedFactors<T>, FactorError> {
    shifted_factorization_probed(a, kind, exec, policy, &mut NoProbe)
}

/// [`shifted_factorization`] with an observability [`Probe`]: every retry is
/// bracketed in a [`Span::ShiftAttempt`] (the inner factorization adds its
/// own `Factorize`/`LevelBuild` spans for ILU kinds), and the total number
/// of attempts consumed is reported via [`Counter::ShiftAttempts`] —
/// whether the loop succeeds or exhausts its budget.
pub fn shifted_factorization_probed<T: Scalar, P: Probe>(
    a: &CsrMatrix<T>,
    kind: FactorKind,
    exec: ExecutionStrategy,
    policy: &ShiftPolicy,
    probe: &mut P,
) -> Result<ShiftedFactors<T>, FactorError> {
    if !a.is_square() {
        return Err(FactorError::Structural(SparseError::NotSquare {
            n_rows: a.n_rows(),
            n_cols: a.n_cols(),
        }));
    }
    let scale = diag_scale(a);
    let min_pivot = policy.min_pivot_rel * scale;
    let attempts = policy.max_attempts.max(1);
    let mut last_row = 0usize;
    let mut max_alpha = 0.0f64;

    for attempt in 0..attempts {
        let alpha = policy.alpha_for(attempt, scale);
        max_alpha = alpha;
        probe.span_begin(Span::ShiftAttempt);
        let outcome = shift_attempt(a, kind, exec, alpha, attempt, probe);
        probe.span_end(Span::ShiftAttempt);
        match outcome? {
            Ok(factors) => match validate_pivots(&factors, min_pivot) {
                Ok(()) => {
                    probe.counter(Counter::ShiftAttempts, attempt as u64 + 1);
                    return Ok(ShiftedFactors { factors, alpha, attempts: attempt + 1 });
                }
                Err(row) => last_row = row,
            },
            // A zero/absent diagonal is exactly what the shift repairs;
            // anything else no amount of shifting will fix.
            Err(row) => last_row = row,
        }
    }
    probe.counter(Counter::ShiftAttempts, attempts as u64);
    Err(FactorError::Breakdown { attempts, max_alpha, row: last_row })
}

/// One factorization attempt at shift `alpha`. Outer `Err` is structural
/// (abort the loop); inner `Err(row)` is a repairable zero-diagonal.
#[allow(clippy::type_complexity)]
fn shift_attempt<T: Scalar, P: Probe>(
    a: &CsrMatrix<T>,
    kind: FactorKind,
    exec: ExecutionStrategy,
    alpha: f64,
    attempt: usize,
    probe: &mut P,
) -> Result<Result<IluFactors<T>, usize>, FactorError> {
    let target;
    let m: &CsrMatrix<T> = if attempt == 0 {
        a
    } else {
        let shift = CsrMatrix::<T>::identity(a.n_rows()).map_values(|v| v * T::from_f64(alpha));
        target = a.add(&shift).map_err(FactorError::Structural)?;
        &target
    };
    let factored = match kind {
        FactorKind::Ilu0 => ilu0_probed(m, exec, probe),
        FactorKind::Iluk(k) => iluk_probed(m, k, exec, probe),
        FactorKind::Ic0 => ic0(m, exec),
    };
    match factored {
        Ok(factors) => Ok(Ok(factors)),
        Err(SparseError::ZeroDiagonal { row }) => Ok(Err(row)),
        Err(e) => Err(FactorError::Structural(e)),
    }
}

/// Checks every U pivot: finite and at least `min_pivot` in magnitude.
/// Returns the first offending row.
fn validate_pivots<T: Scalar>(factors: &IluFactors<T>, min_pivot: f64) -> Result<(), usize> {
    let u = factors.u();
    for i in 0..u.n_rows() {
        let piv = u.get(i, i).map_or(0.0, |v| v.to_f64());
        if !piv.is_finite() || piv.abs() < min_pivot {
            return Err(i);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilu0::ilu0;
    use crate::iluk::iluk;
    use crate::traits::Preconditioner;
    use spcg_sparse::generators::{banded_spd, poisson_2d};
    use spcg_sparse::CooMatrix;

    /// A matrix that defeats ILU(0) without a shift: SPD-patterned but with
    /// a diagonal entry the elimination drives to exactly zero.
    fn breakdown_matrix() -> CsrMatrix<f64> {
        // Row 1's pivot becomes 1 - (2*2)/4 = 0 during elimination.
        let mut c = CooMatrix::new(3, 3);
        c.push(0, 0, 4.0).unwrap();
        c.push(0, 1, 2.0).unwrap();
        c.push(1, 0, 2.0).unwrap();
        c.push(1, 1, 1.0).unwrap();
        c.push(1, 2, 1.0).unwrap();
        c.push(2, 1, 1.0).unwrap();
        c.push(2, 2, 3.0).unwrap();
        c.to_csr()
    }

    #[test]
    fn healthy_matrix_factors_unshifted() {
        let a = poisson_2d(8, 8);
        let s = shifted_factorization(
            &a,
            FactorKind::Ilu0,
            ExecutionStrategy::Sequential,
            &ShiftPolicy::default(),
        )
        .unwrap();
        assert!(s.is_unshifted());
        assert_eq!(s.attempts, 1);
        // Bitwise identical to the direct factorization.
        let direct = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        assert_eq!(s.factors.l(), direct.l());
        assert_eq!(s.factors.u(), direct.u());
    }

    #[test]
    fn zero_pivot_recovers_with_shift() {
        let a = breakdown_matrix();
        assert!(ilu0(&a, ExecutionStrategy::Sequential).is_err(), "must break down unshifted");
        let s = shifted_factorization(
            &a,
            FactorKind::Ilu0,
            ExecutionStrategy::Sequential,
            &ShiftPolicy::default(),
        )
        .unwrap();
        assert!(!s.is_unshifted());
        assert!(s.attempts > 1);
        assert!(s.alpha > 0.0);
        // The factors must be applicable (finite output).
        let mut z = vec![0.0; 3];
        s.factors.apply(&[1.0, 2.0, 3.0], &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn shift_escalates_geometrically() {
        let p = ShiftPolicy::default();
        let s = 2.0;
        assert_eq!(p.alpha_for(0, s), 0.0);
        let a1 = p.alpha_for(1, s);
        let a2 = p.alpha_for(2, s);
        let a3 = p.alpha_for(3, s);
        assert!((a2 / a1 - p.growth).abs() < 1e-12);
        assert!((a3 / a2 - p.growth).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_recovers_for_ic0() {
        // IC(0) requires positive pivots; a negative diagonal breaks it
        // until the shift pushes the spectrum up.
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0).unwrap();
        c.push(0, 1, 2.0).unwrap();
        c.push(1, 0, 2.0).unwrap();
        c.push(1, 1, 1.0).unwrap(); // pivot 1 - 4 = -3 < 0
        let a = c.to_csr();
        assert!(ic0(&a, ExecutionStrategy::Sequential).is_err());
        let s = shifted_factorization(
            &a,
            FactorKind::Ic0,
            ExecutionStrategy::Sequential,
            &ShiftPolicy::default(),
        )
        .unwrap();
        assert!(s.alpha >= 3.0 * 1e-3, "needs a large enough shift, got {}", s.alpha);
    }

    #[test]
    fn budget_exhaustion_is_a_breakdown_error() {
        let a = breakdown_matrix();
        // One attempt = unshifted only, which we know fails.
        let p = ShiftPolicy { max_attempts: 1, ..Default::default() };
        let err = shifted_factorization(&a, FactorKind::Ilu0, ExecutionStrategy::Sequential, &p)
            .unwrap_err();
        match err {
            FactorError::Breakdown { attempts, row, .. } => {
                assert_eq!(attempts, 1);
                assert_eq!(row, 1);
            }
            other => panic!("expected Breakdown, got {other:?}"),
        }
    }

    #[test]
    fn non_square_is_structural() {
        let mut c = CooMatrix::new(2, 3);
        c.push(0, 0, 1.0).unwrap();
        c.push(1, 1, 1.0).unwrap();
        let err = shifted_factorization(
            &c.to_csr(),
            FactorKind::Ilu0,
            ExecutionStrategy::Sequential,
            &ShiftPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FactorError::Structural(_)), "got {err:?}");
    }

    #[test]
    fn tiny_pivot_triggers_revalidation_retry() {
        // Factorization succeeds numerically but leaves a pivot far below
        // the diagonal scale; the validator must force a shifted retry.
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1e6).unwrap();
        c.push(1, 1, 1e-12).unwrap();
        let a = c.to_csr();
        let p = ShiftPolicy { min_pivot_rel: 1e-8, ..Default::default() };
        let s =
            shifted_factorization(&a, FactorKind::Ilu0, ExecutionStrategy::Sequential, &p).unwrap();
        assert!(!s.is_unshifted(), "tiny pivot must not validate unshifted");
    }

    #[test]
    fn shifted_iluk_preserves_pattern_of_shifted_matrix() {
        let a = banded_spd(20, 3, 0.9, 2.0, 11);
        let s = shifted_factorization(
            &a,
            FactorKind::Iluk(1),
            ExecutionStrategy::Sequential,
            &ShiftPolicy::default(),
        )
        .unwrap();
        assert!(s.is_unshifted());
        let direct = iluk(&a, 1, ExecutionStrategy::Sequential).unwrap();
        assert_eq!(s.factors.u().nnz(), direct.u().nnz());
    }

    #[test]
    fn display_messages_are_informative() {
        let e = FactorError::Breakdown { attempts: 6, max_alpha: 0.2, row: 17 };
        let msg = e.to_string();
        assert!(msg.contains("row 17") && msg.contains("6 attempts"));
        let s = FactorError::Structural(SparseError::NotSquare { n_rows: 2, n_cols: 3 });
        assert!(s.to_string().contains("structural"));
    }
}
