//! Jacobi (diagonal) preconditioner — the trivially parallel baseline.

use crate::traits::Preconditioner;
use spcg_sparse::{CsrMatrix, Result, Scalar, SparseError};

/// Diagonal preconditioner `M = diag(A)`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner<T: Scalar> {
    inv_diag: Vec<T>,
}

impl<T: Scalar> JacobiPreconditioner<T> {
    /// Builds from the diagonal of `a`; every diagonal entry must be stored
    /// and nonzero.
    pub fn new(a: &CsrMatrix<T>) -> Result<Self> {
        if !a.is_square() {
            return Err(SparseError::NotSquare { n_rows: a.n_rows(), n_cols: a.n_cols() });
        }
        let mut inv_diag = Vec::with_capacity(a.n_rows());
        for i in 0..a.n_rows() {
            match a.get(i, i) {
                Some(d) if d != T::ZERO && !d.is_bad() => inv_diag.push(T::ONE / d),
                _ => return Err(SparseError::ZeroDiagonal { row: i }),
            }
        }
        Ok(Self { inv_diag })
    }
}

impl<T: Scalar> Preconditioner<T> for JacobiPreconditioner<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        assert_eq!(r.len(), self.inv_diag.len());
        assert_eq!(z.len(), self.inv_diag.len());
        for ((zi, &ri), &di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }

    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn name(&self) -> &str {
        "jacobi"
    }

    fn nnz(&self) -> usize {
        self.inv_diag.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::poisson_2d;

    #[test]
    fn applies_inverse_diagonal() {
        let a = poisson_2d(3, 3);
        let m = JacobiPreconditioner::new(&a).unwrap();
        let r = vec![4.0f64; 9];
        let mut z = vec![0.0; 9];
        m.apply(&r, &mut z);
        // diagonal of poisson_2d is 4 everywhere
        assert!(z.iter().all(|&v| (v - 1.0).abs() < 1e-15));
        assert_eq!(m.nnz(), 9);
    }

    #[test]
    fn zero_diag_rejected() {
        let mut coo = spcg_sparse::CooMatrix::<f64>::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        assert!(JacobiPreconditioner::new(&coo.to_csr()).is_err());
    }
}
