//! Shared representation of incomplete factorizations `M = L·U` and the
//! machinery to apply `M⁻¹` via two triangular solves.

use crate::traits::Preconditioner;
use serde::{Deserialize, Serialize};
use spcg_probe::{Counter, NoProbe, Probe, Span};
use spcg_sparse::{CsrMatrix, Scalar};
use spcg_wavefront::{
    solve_levels_par_probed, solve_lower_seq, solve_upper_seq, LevelSchedule, Triangle,
};

/// How the two triangular solves inside `M⁻¹ r` are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TriangularExec {
    /// Plain sequential substitution.
    Sequential,
    /// Level-scheduled (wavefront) parallel execution under rayon.
    LevelParallel,
}

/// An incomplete factorization `A ≈ L U` with precomputed level schedules.
///
/// `L` is lower triangular with an explicitly stored unit diagonal; `U` is
/// upper triangular with the pivots on its diagonal. Both keep CSR order so
/// sequential and parallel application are bitwise identical.
#[derive(Debug, Clone)]
pub struct IluFactors<T: Scalar> {
    l: CsrMatrix<T>,
    u: CsrMatrix<T>,
    l_schedule: LevelSchedule,
    u_schedule: LevelSchedule,
    exec: TriangularExec,
    name: String,
    scratch_dim: usize,
}

impl<T: Scalar> IluFactors<T> {
    /// Wraps factor matrices, building their level schedules (the
    /// "inspector" phase).
    pub fn new(l: CsrMatrix<T>, u: CsrMatrix<T>, exec: TriangularExec, name: String) -> Self {
        Self::new_probed(l, u, exec, name, &mut NoProbe)
    }

    /// [`new`](Self::new) with an observability [`Probe`]: brackets the
    /// level-schedule construction in a [`Span::LevelBuild`] and reports the
    /// resulting level count via [`Counter::Levels`].
    pub fn new_probed<P: Probe>(
        l: CsrMatrix<T>,
        u: CsrMatrix<T>,
        exec: TriangularExec,
        name: String,
        probe: &mut P,
    ) -> Self {
        assert!(l.is_square() && u.is_square(), "factors must be square");
        assert_eq!(l.n_rows(), u.n_rows(), "factor dimensions must agree");
        probe.span_begin(Span::LevelBuild);
        let l_schedule = LevelSchedule::build(&l, Triangle::Lower);
        let u_schedule = LevelSchedule::build(&u, Triangle::Upper);
        probe.counter(Counter::Levels, (l_schedule.n_levels() + u_schedule.n_levels()) as u64);
        probe.span_end(Span::LevelBuild);
        let scratch_dim = l.n_rows();
        Self { l, u, l_schedule, u_schedule, exec, name, scratch_dim }
    }

    /// The lower factor.
    pub fn l(&self) -> &CsrMatrix<T> {
        &self.l
    }

    /// The upper factor.
    pub fn u(&self) -> &CsrMatrix<T> {
        &self.u
    }

    /// Level schedule of the forward solve.
    pub fn l_schedule(&self) -> &LevelSchedule {
        &self.l_schedule
    }

    /// Level schedule of the backward solve.
    pub fn u_schedule(&self) -> &LevelSchedule {
        &self.u_schedule
    }

    /// Total wavefronts across both solves — the synchronization count per
    /// preconditioner application.
    pub fn total_wavefronts(&self) -> usize {
        self.l_schedule.n_levels() + self.u_schedule.n_levels()
    }

    /// Execution strategy used by [`Preconditioner::apply`].
    pub fn exec(&self) -> TriangularExec {
        self.exec
    }

    /// Changes the execution strategy.
    pub fn with_exec(mut self, exec: TriangularExec) -> Self {
        self.exec = exec;
        self
    }

    /// Deterministic fault injection: returns the factors with the U pivot
    /// of `row` overwritten by zero, simulating a factorization whose pivot
    /// silently collapsed. The sparsity structure (and hence the level
    /// schedules) is unchanged. Panics if `row` has no stored pivot.
    pub fn with_zeroed_pivot(mut self, row: usize) -> Self {
        let pos = self.u.row_ptr()[row]
            + self
                .u
                .row_cols(row)
                .binary_search(&row)
                .expect("row must have a structurally present pivot");
        self.u.values_mut()[pos] = T::ZERO;
        self
    }

    /// Deterministic fault injection: returns the factors with the stored
    /// entry `(row, col)` scaled by `scale` — in `L` when `col < row`,
    /// in `U` otherwise — simulating a corrupted factor value (e.g. a bad
    /// memory transfer). Structure is unchanged. Panics if the entry is
    /// not stored.
    pub fn with_scaled_entry(mut self, row: usize, col: usize, scale: f64) -> Self {
        let m = if col < row { &mut self.l } else { &mut self.u };
        let pos = m.row_ptr()[row]
            + m.row_cols(row).binary_search(&col).expect("entry must be structurally present");
        let v = m.values()[pos];
        m.values_mut()[pos] = v * T::from_f64(scale);
        self
    }

    /// Precision-converting constructor: the same factors with every stored
    /// value demoted into [`Scalar::Lower`] storage. The sparsity structure
    /// — and therefore the level schedules — is identical, so the schedules
    /// are cloned rather than rebuilt (no inspector re-run).
    pub fn demoted(&self) -> IluFactors<T::Lower> {
        IluFactors {
            l: self.l.demoted(),
            u: self.u.demoted(),
            l_schedule: self.l_schedule.clone(),
            u_schedule: self.u_schedule.clone(),
            exec: self.exec,
            name: format!("{}/lower", self.name),
            scratch_dim: self.scratch_dim,
        }
    }

    /// Numeric-refresh constructor: wraps freshly re-swept factor matrices
    /// whose sparsity structure is identical to `prior`'s, cloning the
    /// level schedules rather than rebuilding them (no inspector re-run) —
    /// the value-only analogue of [`demoted`](Self::demoted).
    pub fn refreshed_from(prior: &Self, l: CsrMatrix<T>, u: CsrMatrix<T>) -> Self {
        debug_assert_eq!(l.row_ptr(), prior.l.row_ptr(), "L structure must be unchanged");
        debug_assert_eq!(l.col_idx(), prior.l.col_idx(), "L structure must be unchanged");
        debug_assert_eq!(u.row_ptr(), prior.u.row_ptr(), "U structure must be unchanged");
        debug_assert_eq!(u.col_idx(), prior.u.col_idx(), "U structure must be unchanged");
        Self {
            l,
            u,
            l_schedule: prior.l_schedule.clone(),
            u_schedule: prior.u_schedule.clone(),
            exec: prior.exec,
            name: prior.name.clone(),
            scratch_dim: prior.scratch_dim,
        }
    }

    /// Solves `L y = r` then `U z = y`, allocating the intermediate `y`.
    /// Hot loops should prefer [`solve_with_scratch`](Self::solve_with_scratch).
    pub fn solve(&self, r: &[T], z: &mut [T]) {
        let mut y = vec![T::ZERO; self.scratch_dim];
        self.solve_with_scratch(r, z, &mut y);
    }

    /// Solves `L y = r` then `U z = y` with a caller-provided intermediate,
    /// performing no heap allocation. `y` must be at least `n` long; results
    /// are bitwise identical to [`solve`](Self::solve).
    pub fn solve_with_scratch(&self, r: &[T], z: &mut [T], y: &mut [T]) {
        self.solve_with_scratch_probed(r, z, y, &mut NoProbe)
    }

    /// [`solve_with_scratch`](Self::solve_with_scratch) with an
    /// observability [`Probe`]: each sweep is bracketed in
    /// [`Span::TriangularLower`] / [`Span::TriangularUpper`], and under
    /// [`TriangularExec::LevelParallel`] the probed executor additionally
    /// reports per-level widths and synchronization counts.
    pub fn solve_with_scratch_probed<P: Probe>(
        &self,
        r: &[T],
        z: &mut [T],
        y: &mut [T],
        probe: &mut P,
    ) {
        let n = self.scratch_dim;
        assert_eq!(r.len(), n, "rhs length mismatch");
        assert_eq!(z.len(), n, "solution length mismatch");
        let y = &mut y[..n];
        match self.exec {
            TriangularExec::Sequential => {
                probe.span_begin(Span::TriangularLower);
                solve_lower_seq(&self.l, r, y);
                probe.span_end(Span::TriangularLower);
                probe.span_begin(Span::TriangularUpper);
                solve_upper_seq(&self.u, y, z);
                probe.span_end(Span::TriangularUpper);
            }
            TriangularExec::LevelParallel => {
                probe.span_begin(Span::TriangularLower);
                solve_levels_par_probed(&self.l, &self.l_schedule, r, y, probe);
                probe.span_end(Span::TriangularLower);
                probe.span_begin(Span::TriangularUpper);
                solve_levels_par_probed(&self.u, &self.u_schedule, y, z, probe);
                probe.span_end(Span::TriangularUpper);
            }
        }
    }
}

impl<T: Scalar> Preconditioner<T> for IluFactors<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        self.solve(r, z);
    }

    fn scratch_len(&self) -> usize {
        self.scratch_dim
    }

    fn apply_with_scratch(&self, r: &[T], z: &mut [T], scratch: &mut [T]) {
        self.solve_with_scratch(r, z, scratch);
    }

    fn dim(&self) -> usize {
        self.scratch_dim
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn nnz(&self) -> usize {
        self.l.nnz() + self.u.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::CooMatrix;

    /// Exact dense LU of a tiny SPD matrix, wrapped as IluFactors: applying
    /// it must solve the system exactly.
    #[test]
    fn exact_lu_solves_exactly() {
        // A = [4 1; 1 3] = L U with L = [1 0; 0.25 1], U = [4 1; 0 2.75]
        let mut lc = CooMatrix::new(2, 2);
        lc.push(0, 0, 1.0).unwrap();
        lc.push(1, 0, 0.25).unwrap();
        lc.push(1, 1, 1.0).unwrap();
        let mut uc = CooMatrix::new(2, 2);
        uc.push(0, 0, 4.0).unwrap();
        uc.push(0, 1, 1.0).unwrap();
        uc.push(1, 1, 2.75).unwrap();
        let f = IluFactors::new(lc.to_csr(), uc.to_csr(), TriangularExec::Sequential, "lu".into());
        let b = [1.0, 2.0];
        let mut x = [0.0; 2];
        f.apply(&b, &mut x);
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
        assert_eq!(f.total_wavefronts(), 4);
        assert_eq!(Preconditioner::<f64>::nnz(&f), 6);
    }

    #[test]
    fn parallel_exec_matches_sequential() {
        let a = spcg_sparse::generators::poisson_2d(12, 12);
        let l = a.lower();
        let u = a.upper();
        let fs = IluFactors::new(l.clone(), u.clone(), TriangularExec::Sequential, "s".into());
        let fp = IluFactors::new(l, u, TriangularExec::LevelParallel, "p".into());
        let b: Vec<f64> = (0..144).map(|i| (i % 13) as f64 - 6.0).collect();
        let mut zs = vec![0.0; 144];
        let mut zp = vec![0.0; 144];
        fs.apply(&b, &mut zs);
        fp.apply(&b, &mut zp);
        assert_eq!(zs, zp);
    }
}
