//! Shared representation of incomplete factorizations `M = L·U` and the
//! machinery to apply `M⁻¹` via two triangular solves.

use crate::traits::Preconditioner;
use serde::{Deserialize, Serialize};
use spcg_probe::{Counter, NoProbe, Probe, Span};
use spcg_sparse::{CsrMatrix, Scalar};
use spcg_wavefront::{
    solve_blocks_probed, solve_levels_par_probed, solve_lower_seq, solve_upper_seq, BlockSchedule,
    ExecCostModel, LevelSchedule, Triangle,
};

/// How the two triangular solves inside `M⁻¹ r` are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionStrategy {
    /// Plain sequential substitution.
    Sequential,
    /// Level-scheduled (wavefront) parallel execution under rayon, with a
    /// barrier between levels.
    LevelBarrier,
    /// Dependency-block execution: workers release successor blocks by
    /// atomic countdown instead of joining a per-level barrier.
    DependencyBlocks,
    /// Pick [`LevelBarrier`](Self::LevelBarrier) or
    /// [`DependencyBlocks`](Self::DependencyBlocks) by cost-model-priced
    /// time at plan build. Resolved when the factors are constructed —
    /// built factors never report `Auto`.
    Auto,
}

impl ExecutionStrategy {
    /// Short stable label (used by traces and the CLI).
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionStrategy::Sequential => "sequential",
            ExecutionStrategy::LevelBarrier => "level-barrier",
            ExecutionStrategy::DependencyBlocks => "dependency-blocks",
            ExecutionStrategy::Auto => "auto",
        }
    }

    /// Parses a CLI spelling (`seq`, `barrier`, `blocks`, `auto`, or the
    /// full labels).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "seq" | "sequential" => Some(ExecutionStrategy::Sequential),
            "barrier" | "level-barrier" | "par" => Some(ExecutionStrategy::LevelBarrier),
            "blocks" | "dependency-blocks" => Some(ExecutionStrategy::DependencyBlocks),
            "auto" => Some(ExecutionStrategy::Auto),
            _ => None,
        }
    }

    /// Small distinct integer per variant, for hashing into cache keys.
    pub fn tag(&self) -> u64 {
        match self {
            ExecutionStrategy::Sequential => 0,
            ExecutionStrategy::LevelBarrier => 1,
            ExecutionStrategy::DependencyBlocks => 2,
            ExecutionStrategy::Auto => 3,
        }
    }
}

/// An incomplete factorization `A ≈ L U` with precomputed level and block
/// schedules.
///
/// `L` is lower triangular with an explicitly stored unit diagonal; `U` is
/// upper triangular with the pivots on its diagonal. Both keep CSR order so
/// sequential and parallel application are bitwise identical.
#[derive(Debug, Clone)]
pub struct IluFactors<T: Scalar> {
    l: CsrMatrix<T>,
    u: CsrMatrix<T>,
    l_schedule: LevelSchedule,
    u_schedule: LevelSchedule,
    l_blocks: BlockSchedule,
    u_blocks: BlockSchedule,
    exec: ExecutionStrategy,
    name: String,
    scratch_dim: usize,
}

impl<T: Scalar> IluFactors<T> {
    /// Wraps factor matrices, building their level and block schedules (the
    /// "inspector" phase). [`ExecutionStrategy::Auto`] is resolved here by
    /// cost-model-priced time; built factors never report `Auto`.
    pub fn new(l: CsrMatrix<T>, u: CsrMatrix<T>, exec: ExecutionStrategy, name: String) -> Self {
        Self::new_probed(l, u, exec, name, &mut NoProbe)
    }

    /// [`new`](Self::new) with an observability [`Probe`]: brackets the
    /// schedule construction in a [`Span::LevelBuild`] and reports the
    /// resulting level count via [`Counter::Levels`], block count via
    /// [`Counter::ExecBlocks`], and — for the parallel strategies — the
    /// per-application synchronization count under the *resolved* strategy
    /// via [`Counter::Syncs`] (levels for the barrier executor, counter
    /// releases for dependency blocks; the sequential sweep synchronizes
    /// nothing and emits no `Syncs`).
    pub fn new_probed<P: Probe>(
        l: CsrMatrix<T>,
        u: CsrMatrix<T>,
        exec: ExecutionStrategy,
        name: String,
        probe: &mut P,
    ) -> Self {
        assert!(l.is_square() && u.is_square(), "factors must be square");
        assert_eq!(l.n_rows(), u.n_rows(), "factor dimensions must agree");
        probe.span_begin(Span::LevelBuild);
        let l_schedule = LevelSchedule::build(&l, Triangle::Lower);
        let u_schedule = LevelSchedule::build(&u, Triangle::Upper);
        let l_blocks = BlockSchedule::from_levels(&l, &l_schedule);
        let u_blocks = BlockSchedule::from_levels(&u, &u_schedule);
        probe.counter(Counter::Levels, (l_schedule.n_levels() + u_schedule.n_levels()) as u64);
        probe.counter(Counter::ExecBlocks, (l_blocks.n_blocks() + u_blocks.n_blocks()) as u64);
        probe.span_end(Span::LevelBuild);
        let exec = resolve_exec(exec, &l, &l_schedule, &l_blocks, &u, &u_schedule, &u_blocks);
        let syncs = match exec {
            ExecutionStrategy::Sequential => 0,
            ExecutionStrategy::LevelBarrier => l_schedule.n_levels() + u_schedule.n_levels(),
            ExecutionStrategy::DependencyBlocks => l_blocks.n_blocks() + u_blocks.n_blocks(),
            // `resolve_exec` never returns `Auto`.
            ExecutionStrategy::Auto => unreachable!("Auto is resolved above"),
        };
        if syncs > 0 {
            probe.counter(Counter::Syncs, syncs as u64);
        }
        let scratch_dim = l.n_rows();
        Self { l, u, l_schedule, u_schedule, l_blocks, u_blocks, exec, name, scratch_dim }
    }

    /// The lower factor.
    pub fn l(&self) -> &CsrMatrix<T> {
        &self.l
    }

    /// The upper factor.
    pub fn u(&self) -> &CsrMatrix<T> {
        &self.u
    }

    /// Level schedule of the forward solve.
    pub fn l_schedule(&self) -> &LevelSchedule {
        &self.l_schedule
    }

    /// Level schedule of the backward solve.
    pub fn u_schedule(&self) -> &LevelSchedule {
        &self.u_schedule
    }

    /// Block schedule of the forward solve.
    pub fn l_blocks(&self) -> &BlockSchedule {
        &self.l_blocks
    }

    /// Block schedule of the backward solve.
    pub fn u_blocks(&self) -> &BlockSchedule {
        &self.u_blocks
    }

    /// Total wavefronts across both solves — the synchronization count per
    /// preconditioner application under [`ExecutionStrategy::LevelBarrier`].
    pub fn total_wavefronts(&self) -> usize {
        self.l_schedule.n_levels() + self.u_schedule.n_levels()
    }

    /// Total dependency blocks across both solves — the synchronization
    /// count per application under [`ExecutionStrategy::DependencyBlocks`].
    pub fn total_blocks(&self) -> usize {
        self.l_blocks.n_blocks() + self.u_blocks.n_blocks()
    }

    /// Execution strategy used by [`Preconditioner::apply`]. Never
    /// [`ExecutionStrategy::Auto`]: `Auto` is resolved at construction.
    pub fn exec(&self) -> ExecutionStrategy {
        self.exec
    }

    /// Changes the execution strategy ([`ExecutionStrategy::Auto`] is
    /// re-resolved against the stored schedules).
    pub fn with_exec(mut self, exec: ExecutionStrategy) -> Self {
        self.exec = resolve_exec(
            exec,
            &self.l,
            &self.l_schedule,
            &self.l_blocks,
            &self.u,
            &self.u_schedule,
            &self.u_blocks,
        );
        self
    }

    /// Deterministic fault injection: returns the factors with the U pivot
    /// of `row` overwritten by zero, simulating a factorization whose pivot
    /// silently collapsed. The sparsity structure (and hence the level
    /// schedules) is unchanged. Panics if `row` has no stored pivot.
    pub fn with_zeroed_pivot(mut self, row: usize) -> Self {
        let pos = self.u.row_ptr()[row]
            + self
                .u
                .row_cols(row)
                .binary_search(&row)
                .expect("row must have a structurally present pivot");
        self.u.values_mut()[pos] = T::ZERO;
        self
    }

    /// Deterministic fault injection: returns the factors with the stored
    /// entry `(row, col)` scaled by `scale` — in `L` when `col < row`,
    /// in `U` otherwise — simulating a corrupted factor value (e.g. a bad
    /// memory transfer). Structure is unchanged. Panics if the entry is
    /// not stored.
    pub fn with_scaled_entry(mut self, row: usize, col: usize, scale: f64) -> Self {
        let m = if col < row { &mut self.l } else { &mut self.u };
        let pos = m.row_ptr()[row]
            + m.row_cols(row).binary_search(&col).expect("entry must be structurally present");
        let v = m.values()[pos];
        m.values_mut()[pos] = v * T::from_f64(scale);
        self
    }

    /// Precision-converting constructor: the same factors with every stored
    /// value demoted into [`Scalar::Lower`] storage. The sparsity structure
    /// — and therefore the level schedules — is identical, so the schedules
    /// are cloned rather than rebuilt (no inspector re-run).
    pub fn demoted(&self) -> IluFactors<T::Lower> {
        IluFactors {
            l: self.l.demoted(),
            u: self.u.demoted(),
            l_schedule: self.l_schedule.clone(),
            u_schedule: self.u_schedule.clone(),
            l_blocks: self.l_blocks.clone(),
            u_blocks: self.u_blocks.clone(),
            exec: self.exec,
            name: format!("{}/lower", self.name),
            scratch_dim: self.scratch_dim,
        }
    }

    /// Numeric-refresh constructor: wraps freshly re-swept factor matrices
    /// whose sparsity structure is identical to `prior`'s, cloning the
    /// level schedules rather than rebuilding them (no inspector re-run) —
    /// the value-only analogue of [`demoted`](Self::demoted).
    pub fn refreshed_from(prior: &Self, l: CsrMatrix<T>, u: CsrMatrix<T>) -> Self {
        debug_assert_eq!(l.row_ptr(), prior.l.row_ptr(), "L structure must be unchanged");
        debug_assert_eq!(l.col_idx(), prior.l.col_idx(), "L structure must be unchanged");
        debug_assert_eq!(u.row_ptr(), prior.u.row_ptr(), "U structure must be unchanged");
        debug_assert_eq!(u.col_idx(), prior.u.col_idx(), "U structure must be unchanged");
        Self {
            l,
            u,
            l_schedule: prior.l_schedule.clone(),
            u_schedule: prior.u_schedule.clone(),
            l_blocks: prior.l_blocks.clone(),
            u_blocks: prior.u_blocks.clone(),
            exec: prior.exec,
            name: prior.name.clone(),
            scratch_dim: prior.scratch_dim,
        }
    }

    /// Solves `L y = r` then `U z = y`, allocating the intermediate `y`.
    /// Hot loops should prefer [`solve_with_scratch`](Self::solve_with_scratch).
    pub fn solve(&self, r: &[T], z: &mut [T]) {
        let mut y = vec![T::ZERO; self.scratch_dim];
        self.solve_with_scratch(r, z, &mut y);
    }

    /// Solves `L y = r` then `U z = y` with a caller-provided intermediate,
    /// performing no heap allocation. `y` must be at least `n` long; results
    /// are bitwise identical to [`solve`](Self::solve).
    pub fn solve_with_scratch(&self, r: &[T], z: &mut [T], y: &mut [T]) {
        self.solve_with_scratch_probed(r, z, y, &mut NoProbe)
    }

    /// [`solve_with_scratch`](Self::solve_with_scratch) with an
    /// observability [`Probe`]: each sweep is bracketed in
    /// [`Span::TriangularLower`] / [`Span::TriangularUpper`], and under the
    /// parallel strategies the probed executors additionally report
    /// synchronization counts (per-level widths and barriers, or block
    /// releases).
    pub fn solve_with_scratch_probed<P: Probe>(
        &self,
        r: &[T],
        z: &mut [T],
        y: &mut [T],
        probe: &mut P,
    ) {
        let n = self.scratch_dim;
        assert_eq!(r.len(), n, "rhs length mismatch");
        assert_eq!(z.len(), n, "solution length mismatch");
        let y = &mut y[..n];
        match self.exec {
            ExecutionStrategy::Sequential => {
                probe.span_begin(Span::TriangularLower);
                solve_lower_seq(&self.l, r, y);
                probe.span_end(Span::TriangularLower);
                probe.span_begin(Span::TriangularUpper);
                solve_upper_seq(&self.u, y, z);
                probe.span_end(Span::TriangularUpper);
            }
            ExecutionStrategy::LevelBarrier => {
                probe.span_begin(Span::TriangularLower);
                solve_levels_par_probed(&self.l, &self.l_schedule, r, y, probe);
                probe.span_end(Span::TriangularLower);
                probe.span_begin(Span::TriangularUpper);
                solve_levels_par_probed(&self.u, &self.u_schedule, y, z, probe);
                probe.span_end(Span::TriangularUpper);
            }
            ExecutionStrategy::DependencyBlocks => {
                probe.span_begin(Span::TriangularLower);
                solve_blocks_probed(&self.l, &self.l_blocks, r, y, probe);
                probe.span_end(Span::TriangularLower);
                probe.span_begin(Span::TriangularUpper);
                solve_blocks_probed(&self.u, &self.u_blocks, y, z, probe);
                probe.span_end(Span::TriangularUpper);
            }
            // Auto is resolved by every constructor and by with_exec.
            ExecutionStrategy::Auto => unreachable!("Auto is resolved at construction"),
        }
    }
}

/// Resolves [`ExecutionStrategy::Auto`] to the parallel strategy with the
/// lower cost-model-priced time over both sweeps; other strategies pass
/// through unchanged.
fn resolve_exec<T: Scalar>(
    exec: ExecutionStrategy,
    l: &CsrMatrix<T>,
    l_schedule: &LevelSchedule,
    l_blocks: &BlockSchedule,
    u: &CsrMatrix<T>,
    u_schedule: &LevelSchedule,
    u_blocks: &BlockSchedule,
) -> ExecutionStrategy {
    if exec != ExecutionStrategy::Auto {
        return exec;
    }
    let model = ExecCostModel::default();
    let barrier_us = model.level_time_us(l, l_schedule) + model.level_time_us(u, u_schedule);
    let blocks_us = model.block_time_us(l, l_blocks) + model.block_time_us(u, u_blocks);
    if blocks_us <= barrier_us {
        ExecutionStrategy::DependencyBlocks
    } else {
        ExecutionStrategy::LevelBarrier
    }
}

impl<T: Scalar> Preconditioner<T> for IluFactors<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        self.solve(r, z);
    }

    fn scratch_len(&self) -> usize {
        self.scratch_dim
    }

    fn apply_with_scratch(&self, r: &[T], z: &mut [T], scratch: &mut [T]) {
        self.solve_with_scratch(r, z, scratch);
    }

    fn dim(&self) -> usize {
        self.scratch_dim
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn nnz(&self) -> usize {
        self.l.nnz() + self.u.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::CooMatrix;

    /// Exact dense LU of a tiny SPD matrix, wrapped as IluFactors: applying
    /// it must solve the system exactly.
    #[test]
    fn exact_lu_solves_exactly() {
        // A = [4 1; 1 3] = L U with L = [1 0; 0.25 1], U = [4 1; 0 2.75]
        let mut lc = CooMatrix::new(2, 2);
        lc.push(0, 0, 1.0).unwrap();
        lc.push(1, 0, 0.25).unwrap();
        lc.push(1, 1, 1.0).unwrap();
        let mut uc = CooMatrix::new(2, 2);
        uc.push(0, 0, 4.0).unwrap();
        uc.push(0, 1, 1.0).unwrap();
        uc.push(1, 1, 2.75).unwrap();
        let f =
            IluFactors::new(lc.to_csr(), uc.to_csr(), ExecutionStrategy::Sequential, "lu".into());
        let b = [1.0, 2.0];
        let mut x = [0.0; 2];
        f.apply(&b, &mut x);
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
        assert_eq!(f.total_wavefronts(), 4);
        assert_eq!(Preconditioner::<f64>::nnz(&f), 6);
    }

    #[test]
    fn parallel_exec_matches_sequential() {
        let a = spcg_sparse::generators::poisson_2d(12, 12);
        let l = a.lower();
        let u = a.upper();
        let fs = IluFactors::new(l.clone(), u.clone(), ExecutionStrategy::Sequential, "s".into());
        let fp = IluFactors::new(l, u, ExecutionStrategy::LevelBarrier, "p".into());
        let b: Vec<f64> = (0..144).map(|i| (i % 13) as f64 - 6.0).collect();
        let mut zs = vec![0.0; 144];
        let mut zp = vec![0.0; 144];
        fs.apply(&b, &mut zs);
        fp.apply(&b, &mut zp);
        assert_eq!(zs, zp);
    }
}
