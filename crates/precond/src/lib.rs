//! # spcg-precond
//!
//! Preconditioners for the SPCG workspace: ILU(0), ILU(K) with level-of-fill,
//! IC(0), Jacobi, the level-free approximate-inverse family (FSAI and
//! static-pattern SPAI, which apply as pure SpMVs with zero
//! synchronization), and the [`Preconditioner`] trait PCG consumes.
//! Triangular applications run either sequentially or level-parallel
//! through the schedules built by `spcg-wavefront`. Factorization
//! breakdowns are repairable through [`shifted_factorization`], which
//! retries on the diagonally shifted `A + αI` with escalating `α`.

#![warn(missing_docs)]

pub mod ainv;
pub mod block_jacobi;
pub mod factors;
pub mod fsai;
pub mod ic0;
pub mod ick;
pub mod ilu0;
pub mod ilu0_par;
pub mod iluk;
pub mod jacobi;
pub mod mixed;
pub mod sai;
pub mod shifted;
pub mod traits;

pub use ainv::AinvPreconditioner;
pub use block_jacobi::BlockJacobiPreconditioner;
pub use factors::{ExecutionStrategy, IluFactors};
pub use fsai::FsaiPreconditioner;
pub use ic0::ic0;
pub use ick::{ick, ick_capped};
pub use ilu0::{ilu0, ilu0_probed, ilu_refresh, ilu_refresh_probed};
pub use ilu0_par::ilu0_par;
pub use iluk::{
    iluk, iluk_pattern_matrix, iluk_pattern_matrix_capped, iluk_probed, iluk_symbolic,
    iluk_symbolic_capped, SymbolicIluk,
};
pub use jacobi::JacobiPreconditioner;
pub use mixed::{ilu0_mixed, MixedPrecisionIlu};
pub use sai::{SaiPattern, SaiPreconditioner};
pub use shifted::{
    diag_scale, shifted_factorization, shifted_factorization_probed, FactorError, FactorKind,
    ShiftPolicy, ShiftedFactors,
};
pub use traits::{IdentityPreconditioner, Preconditioner};
