//! ILU(K): incomplete LU with level-of-fill K.
//!
//! Two phases, as in SPARSKIT/SuperLU:
//!
//! 1. **Symbolic**: compute the fill pattern. Original entries have level 0;
//!    a fill entry created by eliminating column `k` from row `i` gets level
//!    `lev(i,k) + lev(k,j) + 1` and is kept iff its (minimized) level ≤ K.
//! 2. **Numeric**: run the fixed-pattern IKJ sweep (shared with ILU(0)) on
//!    the filled pattern.
//!
//! Larger K gives a more accurate preconditioner with denser factors and —
//! the paper's key observation — more dependences, hence more wavefronts.

use crate::factors::{ExecutionStrategy, IluFactors};
use crate::ilu0::{ilu0_values, split_factors};
use spcg_probe::{Counter, NoProbe, Probe, Span};
use spcg_sparse::{CsrMatrix, Result, Scalar, SparseError};
use std::collections::BTreeMap;

/// Result of the symbolic phase: the filled pattern and per-entry levels.
#[derive(Debug, Clone)]
pub struct SymbolicIluk {
    /// Filled pattern as CSR arrays (sorted columns).
    pub row_ptr: Vec<usize>,
    /// Column indices of the filled pattern.
    pub col_idx: Vec<usize>,
    /// Level of fill per stored entry (0 = original).
    pub levels: Vec<usize>,
    /// Fill entries added on top of `A`'s pattern.
    pub fill_count: usize,
}

/// Computes the ILU(K) fill pattern of a square matrix.
pub fn iluk_symbolic<T: Scalar>(a: &CsrMatrix<T>, k: usize) -> Result<SymbolicIluk> {
    iluk_symbolic_capped(a, k, usize::MAX)
}

/// [`iluk_symbolic`] with an early abort once the pattern exceeds
/// `max_nnz` entries — callers enforcing a fill budget (like the bench
/// harness's fill cap) avoid paying for a symbolic phase they will reject.
pub fn iluk_symbolic_capped<T: Scalar>(
    a: &CsrMatrix<T>,
    k: usize,
    max_nnz: usize,
) -> Result<SymbolicIluk> {
    if !a.is_square() {
        return Err(SparseError::NotSquare { n_rows: a.n_rows(), n_cols: a.n_cols() });
    }
    let n = a.n_rows();
    // Factored rows so far: sorted (col, level) pairs plus the index of the
    // first upper entry (col >= row).
    let mut rows: Vec<Vec<(usize, usize)>> = Vec::with_capacity(n);
    let mut upper_start: Vec<usize> = Vec::with_capacity(n);
    let mut total_nnz = 0usize;

    for i in 0..n {
        let mut work: BTreeMap<usize, usize> = BTreeMap::new();
        for &c in a.row_cols(i) {
            work.insert(c, 0);
        }
        if !work.contains_key(&i) {
            return Err(SparseError::ZeroDiagonal { row: i });
        }
        // Eliminate columns < i in ascending order; the b-tree lets us keep
        // pulling the next unprocessed key even as fill is inserted.
        let mut cursor = 0usize;
        while let Some((&kcol, &lev_ik)) = work.range(cursor..i).next() {
            cursor = kcol + 1;
            if lev_ik > k {
                continue; // entry will be dropped; do not propagate fill
            }
            let krow = &rows[kcol];
            for &(j, lev_kj) in &krow[upper_start[kcol]..] {
                if j == kcol {
                    continue;
                }
                let fill = lev_ik + lev_kj + 1;
                if fill <= k {
                    work.entry(j).and_modify(|l| *l = (*l).min(fill)).or_insert(fill);
                }
            }
        }
        // Retain entries with level <= K (original entries are level 0 and
        // always survive).
        let row: Vec<(usize, usize)> = work.into_iter().filter(|&(_, lev)| lev <= k).collect();
        total_nnz += row.len();
        if total_nnz > max_nnz {
            return Err(SparseError::InvalidStructure(format!(
                "ILU({k}) fill exceeds cap of {max_nnz} entries at row {i}"
            )));
        }
        let us = row.partition_point(|&(c, _)| c < i);
        upper_start.push(us);
        rows.push(row);
    }

    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut levels = Vec::new();
    row_ptr.push(0);
    for row in &rows {
        for &(c, lev) in row {
            col_idx.push(c);
            levels.push(lev);
        }
        row_ptr.push(col_idx.len());
    }
    let fill_count = col_idx.len() - a.nnz();
    Ok(SymbolicIluk { row_ptr, col_idx, levels, fill_count })
}

/// Computes the ILU(K) factorization.
pub fn iluk<T: Scalar>(
    a: &CsrMatrix<T>,
    k: usize,
    exec: ExecutionStrategy,
) -> Result<IluFactors<T>> {
    iluk_probed(a, k, exec, &mut NoProbe)
}

/// [`iluk`] with an observability [`Probe`]: the symbolic + numeric phases
/// are bracketed in a `Span::Factorize`, level-schedule construction in a
/// `Span::LevelBuild`, and one `Counter::Factorizations` event is emitted
/// on success.
pub fn iluk_probed<T: Scalar, P: Probe>(
    a: &CsrMatrix<T>,
    k: usize,
    exec: ExecutionStrategy,
    probe: &mut P,
) -> Result<IluFactors<T>> {
    probe.span_begin(Span::Factorize);
    let swept = iluk_pattern_matrix(a, k).and_then(|(filled, _)| {
        let (vals, diag_pos) = ilu0_values(&filled)?;
        Ok((filled, vals, diag_pos))
    });
    probe.span_end(Span::Factorize);
    let (filled, vals, diag_pos) = swept?;
    probe.counter(Counter::Factorizations, 1);
    let (l, u) = split_factors(&filled, &vals, &diag_pos);
    Ok(IluFactors::new_probed(l, u, exec, format!("iluk({k})"), probe))
}

/// Materializes `A`'s values on the ILU(K) fill pattern (fill entries start
/// at zero). Returns the padded matrix and the symbolic info.
pub fn iluk_pattern_matrix<T: Scalar>(
    a: &CsrMatrix<T>,
    k: usize,
) -> Result<(CsrMatrix<T>, SymbolicIluk)> {
    iluk_pattern_matrix_capped(a, k, usize::MAX)
}

/// [`iluk_pattern_matrix`] with an early-abort fill cap.
pub fn iluk_pattern_matrix_capped<T: Scalar>(
    a: &CsrMatrix<T>,
    k: usize,
    max_nnz: usize,
) -> Result<(CsrMatrix<T>, SymbolicIluk)> {
    let sym = iluk_symbolic_capped(a, k, max_nnz)?;
    let mut values = vec![T::ZERO; sym.col_idx.len()];
    let n = a.n_rows();
    for i in 0..n {
        let start = sym.row_ptr[i];
        let cols = &sym.col_idx[start..sym.row_ptr[i + 1]];
        for (&c, &v) in a.row_cols(i).iter().zip(a.row_values(i)) {
            let pos = cols.binary_search(&c).expect("A's pattern is a subset of the fill pattern");
            values[start + pos] = v;
        }
    }
    let filled = CsrMatrix::from_raw(n, n, sym.row_ptr.clone(), sym.col_idx.clone(), values)?;
    Ok((filled, sym))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilu0::ilu0;
    use crate::traits::Preconditioner;
    use spcg_sparse::generators::{banded_spd, poisson_2d};

    #[test]
    fn iluk0_pattern_equals_a() {
        let a = poisson_2d(5, 5);
        let sym = iluk_symbolic(&a, 0).unwrap();
        assert_eq!(sym.fill_count, 0);
        assert_eq!(sym.col_idx.len(), a.nnz());
        assert_eq!(&sym.row_ptr, a.row_ptr());
        assert_eq!(&sym.col_idx, a.col_idx());
        assert!(sym.levels.iter().all(|&l| l == 0));
    }

    #[test]
    fn iluk0_factors_match_ilu0() {
        let a = poisson_2d(6, 6);
        let f0 = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let fk = iluk(&a, 0, ExecutionStrategy::Sequential).unwrap();
        assert_eq!(f0.l(), fk.l());
        assert_eq!(f0.u(), fk.u());
    }

    #[test]
    fn fill_grows_with_k() {
        let a = poisson_2d(8, 8);
        let mut last = 0;
        for k in 0..4 {
            let sym = iluk_symbolic(&a, k).unwrap();
            assert!(
                sym.fill_count >= last,
                "fill must be monotone in K: k={k} gives {} < {last}",
                sym.fill_count
            );
            last = sym.fill_count;
        }
        assert!(last > 0, "poisson 2d must generate fill for k >= 1");
    }

    /// For large enough K on a small matrix, ILU(K) becomes the exact LU
    /// factorization, so L·U == A everywhere.
    #[test]
    fn large_k_is_exact_lu() {
        let a = banded_spd(15, 3, 0.9, 2.0, 5);
        let f = iluk(&a, 20, ExecutionStrategy::Sequential).unwrap();
        let lu = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
        let ad = a.to_dense();
        for i in 0..15 {
            for j in 0..15 {
                assert!(
                    (lu.get(i, j) - ad.get(i, j)).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    lu.get(i, j),
                    ad.get(i, j)
                );
            }
        }
    }

    /// ILU(K) always matches A on A's own pattern.
    #[test]
    fn matches_a_on_original_pattern() {
        let a = poisson_2d(6, 5);
        for k in [1, 2] {
            let f = iluk(&a, k, ExecutionStrategy::Sequential).unwrap();
            let lu = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
            for (i, j, v) in a.iter() {
                assert!((lu.get(i, j) - v).abs() < 1e-9, "k={k} at ({i},{j})");
            }
        }
    }

    /// Higher K must not *increase* the residual ‖A - LU‖_F: more fill means
    /// a closer factorization.
    #[test]
    fn residual_shrinks_with_k() {
        let a = poisson_2d(7, 7);
        let ad = a.to_dense();
        let mut last = f64::MAX;
        for k in [0usize, 1, 2, 4, 16] {
            let f = iluk(&a, k, ExecutionStrategy::Sequential).unwrap();
            let lu = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
            let mut err = 0.0f64;
            for i in 0..49 {
                for j in 0..49 {
                    let d = lu.get(i, j) - ad.get(i, j);
                    err += d * d;
                }
            }
            let err = err.sqrt();
            assert!(err <= last + 1e-12, "k={k}: {err} > {last}");
            last = err;
        }
        assert!(last < 1e-9, "k=16 should be exact on a 7x7 grid, residual {last}");
    }

    /// The paper: ILU(K) fill introduces *more* wavefronts than ILU(0).
    #[test]
    fn fill_increases_wavefronts() {
        let a = poisson_2d(10, 10);
        let f0 = iluk(&a, 0, ExecutionStrategy::Sequential).unwrap();
        let f2 = iluk(&a, 2, ExecutionStrategy::Sequential).unwrap();
        assert!(
            f2.total_wavefronts() >= f0.total_wavefronts(),
            "k=2 wavefronts {} < k=0 {}",
            f2.total_wavefronts(),
            f0.total_wavefronts()
        );
        assert!(Preconditioner::<f64>::nnz(&f2) > Preconditioner::<f64>::nnz(&f0));
    }

    #[test]
    fn missing_diagonal_rejected() {
        let mut coo = spcg_sparse::CooMatrix::<f64>::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        assert!(matches!(
            iluk_symbolic(&coo.to_csr(), 1),
            Err(SparseError::ZeroDiagonal { row: 1 })
        ));
    }

    #[test]
    fn pattern_matrix_preserves_values() {
        let a = poisson_2d(5, 4);
        let (filled, sym) = iluk_pattern_matrix(&a, 2).unwrap();
        assert_eq!(filled.nnz(), a.nnz() + sym.fill_count);
        for (i, j, v) in a.iter() {
            assert_eq!(filled.get(i, j), Some(v));
        }
    }
}
