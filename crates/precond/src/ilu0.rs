//! ILU(0): incomplete LU factorization with zero fill-in.
//!
//! The factor pattern equals the pattern of `A`, so memory is fixed and the
//! factorization is a single sweep (the IKJ variant restricted to existing
//! entries). This is the preconditioner behind SPCG-ILU(0).

use crate::factors::{ExecutionStrategy, IluFactors};
use spcg_probe::{Counter, NoProbe, Probe, Span};
use spcg_sparse::{CooMatrix, CsrMatrix, Result, Scalar, SparseError};

/// Computes the ILU(0) factorization of a square matrix with a structurally
/// present, nonzero diagonal.
///
/// Returns factors `L` (unit lower) and `U` (upper with pivots) whose
/// combined pattern equals `A`'s.
pub fn ilu0<T: Scalar>(a: &CsrMatrix<T>, exec: ExecutionStrategy) -> Result<IluFactors<T>> {
    ilu0_probed(a, exec, &mut NoProbe)
}

/// [`ilu0`] with an observability [`Probe`]: the numeric sweep is bracketed
/// in a [`Span::Factorize`], level-schedule construction in a
/// `Span::LevelBuild` (via [`IluFactors::new_probed`]), and one
/// [`Counter::Factorizations`] event is emitted on success.
pub fn ilu0_probed<T: Scalar, P: Probe>(
    a: &CsrMatrix<T>,
    exec: ExecutionStrategy,
    probe: &mut P,
) -> Result<IluFactors<T>> {
    probe.span_begin(Span::Factorize);
    let swept = ilu0_values(a);
    probe.span_end(Span::Factorize);
    let (vals, diag_pos) = swept?;
    probe.counter(Counter::Factorizations, 1);
    let (l, u) = split_factors(a, &vals, &diag_pos);
    Ok(IluFactors::new_probed(l, u, exec, "ilu0".into(), probe))
}

/// Value-only refactorization: re-runs the numeric IKJ sweep for a matrix
/// with `prior`'s sparsity structure but new values, cloning the level
/// schedules from `prior` instead of re-running the inspector.
///
/// Works for any fixed-pattern incomplete factorization built by this
/// crate: the factor pattern is recovered from `prior` (for ILU(K) this is
/// the filled pattern), `a`'s values are scattered onto it (fill entries
/// restart at zero, exactly as in the original build), and the shared
/// numeric sweep runs on the result. With unchanged values the produced
/// factors are bitwise identical to the original build's.
pub fn ilu_refresh<T: Scalar>(a: &CsrMatrix<T>, prior: &IluFactors<T>) -> Result<IluFactors<T>> {
    ilu_refresh_probed(a, prior, &mut NoProbe)
}

/// [`ilu_refresh`] with an observability [`Probe`]: the numeric sweep is
/// bracketed in a [`Span::Factorize`] and one [`Counter::Factorizations`]
/// event is emitted on success. No `Span::LevelBuild` is ever emitted —
/// the schedules are cloned, which is the refresh's whole point.
pub fn ilu_refresh_probed<T: Scalar, P: Probe>(
    a: &CsrMatrix<T>,
    prior: &IluFactors<T>,
    probe: &mut P,
) -> Result<IluFactors<T>> {
    if !a.is_square() {
        return Err(SparseError::NotSquare { n_rows: a.n_rows(), n_cols: a.n_cols() });
    }
    if prior.l().n_rows() != a.n_rows() {
        return Err(SparseError::InvalidStructure(format!(
            "refresh dimension {} does not match the prior factors' {}",
            a.n_rows(),
            prior.l().n_rows()
        )));
    }
    probe.span_begin(Span::Factorize);
    let swept = refresh_pattern_matrix(a, prior).and_then(|filled| {
        let (vals, diag_pos) = ilu0_values(&filled)?;
        Ok((filled, vals, diag_pos))
    });
    probe.span_end(Span::Factorize);
    let (filled, vals, diag_pos) = swept?;
    probe.counter(Counter::Factorizations, 1);
    let (l, u) = split_factors(&filled, &vals, &diag_pos);
    Ok(IluFactors::refreshed_from(prior, l, u))
}

/// Scatters `a`'s values onto the factor pattern recorded in `prior`
/// (strictly-lower part of `L` plus all of `U`); positions absent from `a`
/// (ILU(K) fill) start at zero, as in the original build.
fn refresh_pattern_matrix<T: Scalar>(
    a: &CsrMatrix<T>,
    prior: &IluFactors<T>,
) -> Result<CsrMatrix<T>> {
    let n = a.n_rows();
    let (l, u) = (prior.l(), prior.u());
    // L stores an explicit unit diagonal on top of the factored pattern.
    let nnz = l.nnz() - n + u.nnz();
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    row_ptr.push(0);
    for i in 0..n {
        let a_cols = a.row_cols(i);
        let a_vals = a.row_values(i);
        let mut scatter = |j: usize| {
            let v = match a_cols.binary_search(&j) {
                Ok(k) => a_vals[k],
                Err(_) => T::ZERO,
            };
            col_idx.push(j);
            values.push(v);
        };
        for &j in l.row_cols(i) {
            if j < i {
                scatter(j);
            }
        }
        for &j in u.row_cols(i) {
            scatter(j);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_raw(n, n, row_ptr, col_idx, values)
}

/// The numeric sweep of ILU(0): returns the factored values overlaid on
/// `A`'s pattern plus the position of each diagonal entry.
///
/// Exposed separately so the GPU cost model can price the sweep and so
/// ILU(K) can reuse it on its filled pattern.
pub(crate) fn ilu0_values<T: Scalar>(a: &CsrMatrix<T>) -> Result<(Vec<T>, Vec<usize>)> {
    if !a.is_square() {
        return Err(SparseError::NotSquare { n_rows: a.n_rows(), n_cols: a.n_cols() });
    }
    let n = a.n_rows();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let mut vals: Vec<T> = a.values().to_vec();

    // Locate every diagonal entry up front; a missing one is fatal.
    let mut diag_pos = vec![0usize; n];
    for i in 0..n {
        let cols = a.row_cols(i);
        match cols.binary_search(&i) {
            Ok(k) => diag_pos[i] = row_ptr[i] + k,
            Err(_) => return Err(SparseError::ZeroDiagonal { row: i }),
        }
    }

    for i in 0..n {
        // Eliminate columns k < i in ascending order (IKJ).
        for kk in row_ptr[i]..diag_pos[i] {
            let k = col_idx[kk];
            let piv = vals[diag_pos[k]];
            if piv == T::ZERO || piv.is_bad() {
                return Err(SparseError::ZeroDiagonal { row: k });
            }
            let lik = vals[kk] / piv;
            vals[kk] = lik;
            // Subtract lik * U(k, j) from A(i, j) for every j > k present in
            // both rows — a sorted two-pointer merge.
            let mut p = kk + 1;
            let row_i_end = row_ptr[i + 1];
            for jj in diag_pos[k] + 1..row_ptr[k + 1] {
                let j = col_idx[jj];
                while p < row_i_end && col_idx[p] < j {
                    p += 1;
                }
                if p == row_i_end {
                    break;
                }
                if col_idx[p] == j {
                    let delta = lik * vals[jj];
                    vals[p] -= delta;
                }
            }
        }
        if vals[diag_pos[i]] == T::ZERO || vals[diag_pos[i]].is_bad() {
            return Err(SparseError::ZeroDiagonal { row: i });
        }
    }
    Ok((vals, diag_pos))
}

/// Splits factored values on `A`'s pattern into unit-lower `L` and upper `U`.
pub(crate) fn split_factors<T: Scalar>(
    a: &CsrMatrix<T>,
    vals: &[T],
    diag_pos: &[usize],
) -> (CsrMatrix<T>, CsrMatrix<T>) {
    let n = a.n_rows();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let mut lc = CooMatrix::with_capacity(n, n, a.nnz() / 2 + n);
    let mut uc = CooMatrix::with_capacity(n, n, a.nnz() / 2 + n);
    for i in 0..n {
        for p in row_ptr[i]..row_ptr[i + 1] {
            let j = col_idx[p];
            if p < diag_pos[i] {
                lc.push(i, j, vals[p]).expect("within bounds");
            } else {
                uc.push(i, j, vals[p]).expect("within bounds");
            }
        }
        lc.push(i, i, T::ONE).expect("within bounds");
    }
    (lc.to_csr(), uc.to_csr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Preconditioner;
    use spcg_sparse::generators::{banded_spd, poisson_1d, poisson_2d};
    use spcg_sparse::DenseMatrix;

    /// For a tridiagonal matrix ILU(0) == exact LU (no fill is possible), so
    /// L·U must reproduce A exactly.
    #[test]
    fn tridiagonal_ilu0_is_exact_lu() {
        let a = poisson_1d(12);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let lu = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
        let ad = a.to_dense();
        for i in 0..12 {
            for j in 0..12 {
                assert!((lu.get(i, j) - ad.get(i, j)).abs() < 1e-12, "mismatch at ({i},{j})");
            }
        }
    }

    /// On a general pattern, L·U must match A *on A's pattern* (the defining
    /// property of ILU(0)), while off-pattern entries may differ.
    #[test]
    fn ilu0_matches_a_on_pattern() {
        let a = poisson_2d(6, 5);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let lu = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
        for (i, j, v) in a.iter() {
            assert!((lu.get(i, j) - v).abs() < 1e-10, "pattern entry ({i},{j})");
        }
    }

    #[test]
    fn factors_have_expected_structure() {
        let a = poisson_2d(5, 5);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        // L unit diagonal
        for i in 0..25 {
            assert_eq!(f.l().get(i, i), Some(1.0));
        }
        // L strictly lower + diag, U upper incl diag
        for (r, c, _) in f.l().iter() {
            assert!(c <= r);
        }
        for (r, c, _) in f.u().iter() {
            assert!(c >= r);
        }
        // combined nnz = nnz(A) + n (unit diagonal is extra)
        assert_eq!(f.l().nnz() + f.u().nnz(), a.nnz() + 25);
    }

    /// Applying M⁻¹ must solve L U z = r accurately.
    #[test]
    fn apply_inverts_the_product() {
        let a = banded_spd(30, 4, 0.8, 2.0, 7);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let r: Vec<f64> = (0..30).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let mut z = vec![0.0; 30];
        f.apply(&r, &mut z);
        // check L U z == r
        let lu = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
        let rz = lu.matvec(&z);
        for (got, want) in rz.iter().zip(&r) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn missing_diagonal_is_rejected() {
        let mut coo = spcg_sparse::CooMatrix::<f64>::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        let a = coo.to_csr();
        assert!(matches!(
            ilu0(&a, ExecutionStrategy::Sequential),
            Err(SparseError::ZeroDiagonal { row: 1 })
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        let mut coo = spcg_sparse::CooMatrix::<f64>::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        let a = coo.to_csr();
        assert!(ilu0(&a, ExecutionStrategy::Sequential).is_err());
    }

    /// ILU(0) of a dense SPD matrix equals the exact dense LU.
    #[test]
    fn dense_pattern_matches_dense_lu() {
        let d = DenseMatrix::from_rows(3, 3, vec![4.0, 1.0, 2.0, 1.0, 5.0, 1.0, 2.0, 1.0, 6.0])
            .unwrap();
        let a = CsrMatrix::from_dense(&d);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let lu = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((lu.get(i, j) - d.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn refresh_with_unchanged_values_is_bitwise_identical() {
        let a = poisson_2d(8, 7);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let r = ilu_refresh(&a, &f).unwrap();
        assert_eq!(f.l(), r.l());
        assert_eq!(f.u(), r.u());
        assert_eq!(f.total_wavefronts(), r.total_wavefronts());
    }

    #[test]
    fn refresh_matches_a_full_rebuild_on_new_values() {
        let a = poisson_2d(8, 8);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let a2 = a.map_values(|v| v * 1.5);
        let refreshed = ilu_refresh(&a2, &f).unwrap();
        let rebuilt = ilu0(&a2, ExecutionStrategy::Sequential).unwrap();
        assert_eq!(refreshed.l(), rebuilt.l());
        assert_eq!(refreshed.u(), rebuilt.u());
    }

    #[test]
    fn refresh_reproduces_iluk_numeric_factors() {
        let a = poisson_2d(7, 7);
        let f = crate::iluk::iluk(&a, 2, ExecutionStrategy::Sequential).unwrap();
        let a2 = a.map_values(|v| v * 0.9);
        let refreshed = ilu_refresh(&a2, &f).unwrap();
        let rebuilt = crate::iluk::iluk(&a2, 2, ExecutionStrategy::Sequential).unwrap();
        assert_eq!(refreshed.l(), rebuilt.l());
        assert_eq!(refreshed.u(), rebuilt.u());
    }

    #[test]
    fn refresh_rejects_dimension_mismatch() {
        let a = poisson_2d(6, 6);
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let wrong = poisson_2d(5, 5);
        assert!(ilu_refresh(&wrong, &f).is_err());
    }

    #[test]
    fn f32_factorization_works() {
        let a: CsrMatrix<f32> = poisson_2d(8, 8).cast();
        let f = ilu0(&a, ExecutionStrategy::Sequential).unwrap();
        let mut z = vec![0.0f32; 64];
        let r = vec![1.0f32; 64];
        f.apply(&r, &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
    }
}
