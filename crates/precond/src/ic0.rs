//! IC(0): incomplete Cholesky with zero fill — the symmetric sibling of
//! ILU(0), mentioned by the paper (§6.2) as the other standard incomplete
//! preconditioner for SPD systems. Provided as an extension; the evaluation
//! uses ILU(0)/ILU(K) to match the paper.

use crate::factors::{ExecutionStrategy, IluFactors};
use spcg_sparse::{CooMatrix, CsrMatrix, Result, Scalar, SparseError};

/// Computes the IC(0) factorization `A ≈ L Lᵀ`, restricted to the lower
/// pattern of `A`. Fails with [`SparseError::ZeroDiagonal`] when a pivot
/// becomes non-positive (matrix not SPD enough for IC(0)).
pub fn ic0<T: Scalar>(a: &CsrMatrix<T>, exec: ExecutionStrategy) -> Result<IluFactors<T>> {
    if !a.is_square() {
        return Err(SparseError::NotSquare { n_rows: a.n_rows(), n_cols: a.n_cols() });
    }
    let n = a.n_rows();
    let lower = a.lower();
    let row_ptr = lower.row_ptr().to_vec();
    let col_idx = lower.col_idx().to_vec();
    let mut vals = lower.values().to_vec();

    // Diagonal must terminate each lower row.
    let mut diag_pos = vec![0usize; n];
    for i in 0..n {
        let end = row_ptr[i + 1];
        if end == row_ptr[i] || col_idx[end - 1] != i {
            return Err(SparseError::ZeroDiagonal { row: i });
        }
        diag_pos[i] = end - 1;
    }

    for i in 0..n {
        for kk in row_ptr[i]..row_ptr[i + 1] {
            let j = col_idx[kk];
            // Sparse dot of rows i and j over columns < j.
            let mut s = vals[kk];
            let (mut p, mut q) = (row_ptr[i], row_ptr[j]);
            while p < kk && q < diag_pos[j] {
                match col_idx[p].cmp(&col_idx[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        s -= vals[p] * vals[q];
                        p += 1;
                        q += 1;
                    }
                }
            }
            if j < i {
                let ljj = vals[diag_pos[j]];
                if ljj == T::ZERO || ljj.is_bad() {
                    return Err(SparseError::ZeroDiagonal { row: j });
                }
                vals[kk] = s / ljj;
            } else {
                // diagonal entry: pivot must stay positive
                if s <= T::ZERO || s.is_bad() {
                    return Err(SparseError::ZeroDiagonal { row: i });
                }
                vals[kk] = s.sqrt();
            }
        }
    }

    let mut lc = CooMatrix::with_capacity(n, n, vals.len());
    for i in 0..n {
        for p in row_ptr[i]..row_ptr[i + 1] {
            lc.push(i, col_idx[p], vals[p]).expect("in bounds");
        }
    }
    let l = lc.to_csr();
    let lt = l.transpose();
    Ok(IluFactors::new(l, lt, exec, "ic0".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Preconditioner;
    use spcg_sparse::generators::{banded_spd, poisson_1d, poisson_2d};

    /// Tridiagonal: IC(0) is the exact Cholesky factorization.
    #[test]
    fn tridiagonal_ic0_is_exact_cholesky() {
        let a = poisson_1d(10);
        let f = ic0(&a, ExecutionStrategy::Sequential).unwrap();
        let llt = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
        let ad = a.to_dense();
        for i in 0..10 {
            for j in 0..10 {
                assert!((llt.get(i, j) - ad.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn llt_matches_a_on_lower_pattern() {
        let a = poisson_2d(6, 6);
        let f = ic0(&a, ExecutionStrategy::Sequential).unwrap();
        let llt = f.l().to_dense().matmul(&f.u().to_dense()).unwrap();
        for (i, j, v) in a.iter() {
            if j <= i {
                assert!((llt.get(i, j) - v).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn apply_is_symmetric_operator() {
        // M⁻¹ = L⁻ᵀ L⁻¹ is symmetric: (e_i, M⁻¹ e_j) == (e_j, M⁻¹ e_i).
        let a = banded_spd(12, 3, 0.8, 2.0, 3);
        let f = ic0(&a, ExecutionStrategy::Sequential).unwrap();
        let n = 12;
        let mut m = vec![vec![0.0f64; n]; n];
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let mut z = vec![0.0; n];
            f.apply(&e, &mut z);
            for (i, &v) in z.iter().enumerate() {
                m[i][j] = v;
            }
        }
        for (i, row) in m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let mut coo = spcg_sparse::CooMatrix::<f64>::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push_sym(0, 1, 5.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        // a_11 - l_10^2 = 1 - 25 < 0
        assert!(ic0(&coo.to_csr(), ExecutionStrategy::Sequential).is_err());
    }
}
