//! Block-Jacobi preconditioner: dense inversion of contiguous diagonal
//! blocks. Fully parallel to apply (no cross-block dependences), stronger
//! than point Jacobi — the standard middle ground between Jacobi and ILU,
//! and the basis of the adaptive-precision block-Jacobi work the paper
//! cites (Flegar et al., reference 21).

use crate::traits::Preconditioner;
use spcg_sparse::{CsrMatrix, DenseMatrix, Result, Scalar, SparseError};

/// Block-Jacobi preconditioner with fixed-size contiguous blocks.
#[derive(Debug, Clone)]
pub struct BlockJacobiPreconditioner<T: Scalar> {
    /// Inverted diagonal blocks (row-major dense), one per block.
    blocks: Vec<DenseMatrix<T>>,
    block_size: usize,
    n: usize,
}

impl<T: Scalar> BlockJacobiPreconditioner<T> {
    /// Builds the preconditioner by densely inverting each `block_size`
    /// diagonal block of `a` (the last block may be smaller).
    pub fn new(a: &CsrMatrix<T>, block_size: usize) -> Result<Self> {
        if !a.is_square() {
            return Err(SparseError::NotSquare { n_rows: a.n_rows(), n_cols: a.n_cols() });
        }
        assert!(block_size >= 1, "block size must be positive");
        let n = a.n_rows();
        let mut blocks = Vec::with_capacity(n.div_ceil(block_size));
        let mut start = 0usize;
        while start < n {
            let end = (start + block_size).min(n);
            let bs = end - start;
            let mut d = DenseMatrix::zeros(bs, bs);
            for i in start..end {
                for (&c, &v) in a.row_cols(i).iter().zip(a.row_values(i)) {
                    if (start..end).contains(&c) {
                        d.set(i - start, c - start, v);
                    }
                }
            }
            let inv = d.inverse().map_err(|_| SparseError::ZeroDiagonal { row: start })?;
            blocks.push(inv);
            start = end;
        }
        Ok(Self { blocks, block_size, n })
    }

    /// Block size used at construction.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }
}

impl<T: Scalar> Preconditioner<T> for BlockJacobiPreconditioner<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        assert_eq!(r.len(), self.n);
        assert_eq!(z.len(), self.n);
        let mut start = 0usize;
        for block in &self.blocks {
            let bs = block.n_rows();
            let seg = block.matvec(&r[start..start + bs]);
            z[start..start + bs].copy_from_slice(&seg);
            start += bs;
        }
    }

    fn dim(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "block-jacobi"
    }

    fn nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.n_rows() * b.n_cols()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::JacobiPreconditioner;
    use spcg_sparse::generators::{banded_spd, poisson_1d};

    #[test]
    fn block_size_one_equals_point_jacobi() {
        let a = poisson_1d(12);
        let bj = BlockJacobiPreconditioner::new(&a, 1).unwrap();
        let pj = JacobiPreconditioner::new(&a).unwrap();
        let r: Vec<f64> = (0..12).map(|i| i as f64 - 5.0).collect();
        let mut z1 = vec![0.0; 12];
        let mut z2 = vec![0.0; 12];
        bj.apply(&r, &mut z1);
        pj.apply(&r, &mut z2);
        for (a, b) in z1.iter().zip(&z2) {
            assert!((a - b).abs() < 1e-14);
        }
        assert_eq!(bj.n_blocks(), 12);
    }

    #[test]
    fn whole_matrix_block_is_exact_inverse() {
        let a = banded_spd(10, 3, 0.9, 2.0, 4);
        let bj = BlockJacobiPreconditioner::new(&a, 10).unwrap();
        assert_eq!(bj.n_blocks(), 1);
        let b: Vec<f64> = (0..10).map(|i| (i as f64).cos()).collect();
        let mut z = vec![0.0; 10];
        bj.apply(&b, &mut z);
        let direct = a.to_dense().solve(&b).unwrap();
        for (got, want) in z.iter().zip(&direct) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn uneven_final_block() {
        let a = poisson_1d(10);
        let bj = BlockJacobiPreconditioner::new(&a, 4).unwrap();
        assert_eq!(bj.n_blocks(), 3); // 4 + 4 + 2
        let r = vec![1.0; 10];
        let mut z = vec![0.0; 10];
        bj.apply(&r, &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
        assert_eq!(Preconditioner::<f64>::nnz(&bj), 16 + 16 + 4);
    }

    #[test]
    fn larger_blocks_are_stronger() {
        // The block inverse captures more of A: ‖I − M⁻¹A‖_F shrinks when
        // the block grows from point Jacobi to 8-blocks, and vanishes when
        // one block covers the whole matrix.
        let a = poisson_1d(32);
        let fro = |bs: usize| {
            let m = BlockJacobiPreconditioner::new(&a, bs).unwrap();
            let n = 32;
            let mut total = 0.0f64;
            for j in 0..n {
                let mut e = vec![0.0f64; n];
                e[j] = 1.0;
                let ae = spcg_sparse::spmv::spmv_alloc(&a, &e);
                let mut z = vec![0.0; n];
                m.apply(&ae, &mut z);
                for (i, &v) in z.iter().enumerate() {
                    let want = if i == j { 1.0 } else { 0.0 };
                    total += (v - want) * (v - want);
                }
            }
            total.sqrt()
        };
        assert!(fro(8) < fro(1), "blocks of 8 should beat point Jacobi");
        assert!(fro(32) < 1e-9);
    }
}
