//! Factored sparse approximate inverse (FSAI) preconditioner — the
//! SPD-preserving member of the approximate-inverse family.
//!
//! FSAI approximates the *inverse Cholesky factor*: a lower-triangular `G`
//! with `G ≈ L⁻¹` (where `A = L Lᵀ`) on the sparsity pattern of `A`'s lower
//! triangle. The preconditioner is `M⁻¹ = Gᵀ G`, applied as two SpMVs
//! `z = Gᵀ (G r)` — no triangular solves, no wavefronts, zero
//! synchronization per application. Because `M⁻¹` is a congruence
//! `GᵀG ≻ 0` whenever `G` is nonsingular, FSAI preserves SPD by
//! construction, unlike unfactored SPAI.
//!
//! Construction (Kolotilina–Yeremin): for each row `i` with support
//! `J = {j ≤ i : a_ij stored} ∪ {i}`, solve the small dense SPD system
//! `A(J,J) ŷ = e_i|_J` and scale the row by `1/√ŷ_i`. For SPD `A`,
//! `ŷ_i = (A(J,J)⁻¹)_{ii} > 0`, so `G` always comes out lower-triangular
//! with a strictly positive diagonal, and `diag(G A Gᵀ) = 1`.

use crate::traits::Preconditioner;
use spcg_probe::{Counter, Probe};
use spcg_sparse::spmv::spmv;
use spcg_sparse::{CooMatrix, CsrMatrix, DenseMatrix, Result, Scalar, SparseError};

/// A factored sparse approximate inverse `M⁻¹ = Gᵀ G` with lower-triangular
/// `G ≈ L⁻¹` on the pattern of `tril(A)`.
#[derive(Debug, Clone)]
pub struct FsaiPreconditioner<T: Scalar> {
    /// Lower-triangular approximate inverse factor.
    g: CsrMatrix<T>,
    /// `Gᵀ`, materialized so both halves of the apply are forward SpMVs.
    gt: CsrMatrix<T>,
}

impl<T: Scalar> FsaiPreconditioner<T> {
    /// Builds the FSAI factor of `a` on the pattern of its lower triangle.
    ///
    /// Fails with [`SparseError::ZeroDiagonal`] when a row's gathered
    /// subsystem is not positive definite (the SPD breakdown the resilience
    /// ladder climbs past), and requires every diagonal entry of `a` to be
    /// stored.
    pub fn new(a: &CsrMatrix<T>) -> Result<Self> {
        Self::new_probed(a, &mut spcg_probe::NoProbe)
    }

    /// [`new`](FsaiPreconditioner::new) with an observability [`Probe`]:
    /// emits [`Counter::SpaiRows`] (per-row dense solves),
    /// [`Counter::SpaiGathered`] (dense entries gathered across them), and
    /// [`Counter::AinvNnz`] (stored entries of `G` plus `Gᵀ`).
    pub fn new_probed<P: Probe>(a: &CsrMatrix<T>, probe: &mut P) -> Result<Self> {
        if !a.is_square() {
            return Err(SparseError::NotSquare { n_rows: a.n_rows(), n_cols: a.n_cols() });
        }
        let n = a.n_rows();
        let mut coo = CooMatrix::with_capacity(n, n, a.lower().nnz());
        let mut gathered = 0u64;
        for i in 0..n {
            // Support: stored lower-triangle columns of row i, diagonal
            // included whether or not it is stored.
            let mut cols: Vec<usize> = a.row_cols(i).iter().copied().filter(|&j| j < i).collect();
            cols.push(i);
            let k = cols.len();
            // Gathered dense subsystem A(J, J).
            let mut sub = DenseMatrix::zeros(k, k);
            for (r, &jr) in cols.iter().enumerate() {
                for (c, &jc) in cols.iter().enumerate() {
                    if let Some(v) = a.get(jr, jc) {
                        sub.set(r, c, v);
                    }
                }
            }
            gathered += (k * k) as u64;
            // rhs = e_i restricted to J (the diagonal is the last entry).
            let mut rhs = vec![T::ZERO; k];
            rhs[k - 1] = T::ONE;
            let y = sub.solve(&rhs).map_err(|_| SparseError::ZeroDiagonal { row: i })?;
            // For SPD A(J,J), y_i = (A(J,J)⁻¹)_ii > 0; anything else is a
            // breakdown (indefinite or numerically singular subsystem).
            let d = y[k - 1];
            if d.to_f64() <= 0.0 || d.is_bad() {
                return Err(SparseError::ZeroDiagonal { row: i });
            }
            let scale = T::from_f64(1.0 / d.to_f64().sqrt());
            for (s, &j) in cols.iter().enumerate() {
                let v = y[s] * scale;
                if v != T::ZERO {
                    coo.push(i, j, v)?;
                }
            }
        }
        let g = coo.to_csr();
        let gt = g.transpose();
        probe.counter(Counter::SpaiRows, n as u64);
        probe.counter(Counter::SpaiGathered, gathered);
        probe.counter(Counter::AinvNnz, (g.nnz() + gt.nnz()) as u64);
        Ok(Self { g, gt })
    }

    /// The lower-triangular approximate inverse factor `G`.
    pub fn g(&self) -> &CsrMatrix<T> {
        &self.g
    }

    /// The materialized transpose `Gᵀ` (the second SpMV of the apply).
    pub fn g_t(&self) -> &CsrMatrix<T> {
        &self.gt
    }
}

impl<T: Scalar> Preconditioner<T> for FsaiPreconditioner<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        let mut tmp = vec![T::ZERO; self.g.n_rows()];
        spmv(&self.g, r, &mut tmp);
        spmv(&self.gt, &tmp, z);
    }

    fn scratch_len(&self) -> usize {
        self.g.n_rows()
    }

    fn apply_with_scratch(&self, r: &[T], z: &mut [T], scratch: &mut [T]) {
        let tmp = &mut scratch[..self.g.n_rows()];
        spmv(&self.g, r, tmp);
        spmv(&self.gt, tmp, z);
    }

    fn dim(&self) -> usize {
        self.g.n_rows()
    }

    fn name(&self) -> &str {
        "fsai"
    }

    fn nnz(&self) -> usize {
        self.g.nnz() + self.gt.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcg_sparse::generators::{banded_spd, poisson_1d, poisson_2d};

    #[test]
    fn diagonal_matrix_inverts_exactly() {
        let mut coo = CooMatrix::<f64>::new(3, 3);
        coo.push(0, 0, 4.0).unwrap();
        coo.push(1, 1, 9.0).unwrap();
        coo.push(2, 2, 16.0).unwrap();
        let a = coo.to_csr();
        let f = FsaiPreconditioner::new(&a).unwrap();
        // G = diag(A)^{-1/2}, so GᵀG = A⁻¹ exactly.
        assert!((f.g().get(0, 0).unwrap() - 0.5).abs() < 1e-12);
        assert!((f.g().get(1, 1).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        let r = [4.0, 9.0, 16.0];
        let mut z = [0.0; 3];
        f.apply(&r, &mut z);
        assert!(z.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn g_is_lower_triangular_with_positive_diagonal() {
        for a in [poisson_2d(9, 9), banded_spd(80, 3, 0.6, 1.2, 5)] {
            let f = FsaiPreconditioner::new(&a).unwrap();
            for (r, c, _) in f.g().iter() {
                assert!(c <= r, "entry ({r}, {c}) above the diagonal");
            }
            for i in 0..a.n_rows() {
                let d = f.g().get(i, i).expect("missing diagonal");
                assert!(d > 0.0, "G[{i},{i}] = {d} not positive");
            }
        }
    }

    #[test]
    fn scratch_apply_is_bitwise_identical() {
        let a = poisson_2d(7, 7);
        let f = FsaiPreconditioner::new(&a).unwrap();
        let r: Vec<f64> = (0..49).map(|i| ((i % 11) as f64) - 5.0).collect();
        let mut plain = vec![0.0; 49];
        let mut scratched = vec![0.0; 49];
        let mut scratch = vec![0.0; Preconditioner::<f64>::scratch_len(&f)];
        f.apply(&r, &mut plain);
        f.apply_with_scratch(&r, &mut scratched, &mut scratch);
        assert_eq!(plain, scratched);
    }

    #[test]
    fn approximately_inverts_spd_operator() {
        let a = poisson_1d(64);
        let f = FsaiPreconditioner::new(&a).unwrap();
        let r: Vec<f64> = (0..64).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut z = vec![0.0; 64];
        f.apply(&r, &mut z);
        // z ≈ A⁻¹ r, so ‖A z − r‖ must beat the identity preconditioner.
        let mut az = vec![0.0; 64];
        spmv(&a, &z, &mut az);
        let err: f64 = az.iter().zip(&r).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        let rnorm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / rnorm < 0.9, "GᵀG no better than identity: {}", err / rnorm);
    }

    #[test]
    fn indefinite_subsystem_is_a_breakdown() {
        // Negative diagonal: the 1x1 gathered system solves to y < 0.
        let mut coo = CooMatrix::<f64>::new(2, 2);
        coo.push(0, 0, -1.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        let err = FsaiPreconditioner::new(&coo.to_csr()).unwrap_err();
        assert!(matches!(err, SparseError::ZeroDiagonal { row: 0 }));
    }

    #[test]
    fn non_square_rejected() {
        let mut coo = CooMatrix::<f64>::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        assert!(FsaiPreconditioner::new(&coo.to_csr()).is_err());
    }

    #[test]
    fn probe_reports_construction_counters() {
        let a = poisson_2d(6, 6);
        let mut probe = spcg_probe::HistogramProbe::new();
        let f = FsaiPreconditioner::new_probed(&a, &mut probe).unwrap();
        assert_eq!(probe.counter_total(Counter::SpaiRows), 36);
        assert_eq!(probe.counter_total(Counter::AinvNnz), Preconditioner::<f64>::nnz(&f) as u64);
        assert!(probe.counter_total(Counter::SpaiGathered) >= 36);
    }
}
