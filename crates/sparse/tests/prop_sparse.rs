//! Property-based tests of the sparse substrate: CSR invariants under
//! arbitrary triplet input, transpose/permutation algebra, and I/O.

use proptest::prelude::*;
use spcg_sparse::generators::{banded_spd, graph_laplacian, random_spd};
use spcg_sparse::io::{read_matrix_market, write_matrix_market, MmSymmetry};
use spcg_sparse::permute::{reverse_cuthill_mckee, scrambled_perm};
use spcg_sparse::{CooMatrix, CsrMatrix};

/// Strategy: arbitrary triplets in a small shape.
fn triplets(n: usize, max_entries: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..n, 0..n, -10.0f64..10.0), 0..max_entries)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// COO→CSR always produces structurally valid CSR (checked by the
    /// `from_raw` validator) with duplicates summed.
    #[test]
    fn coo_to_csr_is_always_valid(entries in triplets(12, 60)) {
        let mut coo = CooMatrix::<f64>::new(12, 12);
        for &(r, c, v) in &entries {
            coo.push(r, c, v).unwrap();
        }
        let csr = coo.to_csr();
        // Re-validate through the checked constructor.
        let revalidated = CsrMatrix::from_raw(
            csr.n_rows(),
            csr.n_cols(),
            csr.row_ptr().to_vec(),
            csr.col_idx().to_vec(),
            csr.values().to_vec(),
        );
        prop_assert!(revalidated.is_ok());
        // Entry values equal the sum over duplicates.
        for (r, c, v) in csr.iter() {
            let expect: f64 = entries
                .iter()
                .filter(|&&(er, ec, _)| er == r && ec == c)
                .map(|&(_, _, ev)| ev)
                .sum();
            prop_assert!((v - expect).abs() < 1e-9);
        }
    }

    /// Transpose is an involution and preserves nnz.
    #[test]
    fn transpose_involution(entries in triplets(10, 40)) {
        let mut coo = CooMatrix::<f64>::new(10, 10);
        for &(r, c, v) in &entries {
            coo.push(r, c, v).unwrap();
        }
        let a = coo.to_csr();
        let tt = a.transpose().transpose();
        prop_assert_eq!(a, tt);
    }

    /// add/sub are inverse operations (after pruning exact zeros).
    #[test]
    fn add_sub_roundtrip(
        e1 in triplets(8, 30),
        e2 in triplets(8, 30),
    ) {
        let build = |es: &[(usize, usize, f64)]| {
            let mut coo = CooMatrix::<f64>::new(8, 8);
            for &(r, c, v) in es {
                coo.push(r, c, v).unwrap();
            }
            coo.to_csr()
        };
        let a = build(&e1);
        let b = build(&e2);
        let roundtrip = a.add(&b).unwrap().sub(&b).unwrap();
        for (r, c, v) in a.iter() {
            let got = roundtrip.get(r, c).unwrap_or(0.0);
            prop_assert!((got - v).abs() < 1e-9, "({r},{c}): {got} vs {v}");
        }
    }

    /// Symmetric permutation preserves symmetry, nnz and the spectrum
    /// proxy (diagonal multiset).
    #[test]
    fn permutation_preserves_structure(n in 10usize..60, seed in 0u64..500) {
        let a = random_spd(n, 4, 1.5, seed);
        let p = scrambled_perm(n, seed ^ 1);
        let pa = a.permute_sym(&p).unwrap();
        prop_assert_eq!(pa.nnz(), a.nnz());
        prop_assert!(pa.is_symmetric(1e-12));
        let mut d1 = a.diag();
        let mut d2 = pa.diag();
        d1.sort_by(|x, y| x.partial_cmp(y).unwrap());
        d2.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(d1, d2);
    }

    /// RCM never increases the bandwidth of an already-banded matrix by
    /// more than the structural optimum bound, and always yields a valid
    /// permutation.
    #[test]
    fn rcm_is_valid_permutation(n in 10usize..80, band in 2usize..6, seed in 0u64..200) {
        let a = banded_spd(n, band, 0.8, 1.5, seed);
        let p = reverse_cuthill_mckee(&a);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// Matrix Market round-trips preserve symmetric matrices.
    #[test]
    fn matrix_market_roundtrip(n in 5usize..40, seed in 0u64..300) {
        let a = graph_laplacian(n.max(6), 3, 0.7, seed);
        let mut buf = Vec::new();
        write_matrix_market(&a, MmSymmetry::Symmetric, &mut buf).unwrap();
        let back: CsrMatrix<f64> = read_matrix_market(buf.as_slice()).unwrap();
        prop_assert_eq!(back.nnz(), a.nnz());
        for (r, c, v) in a.iter() {
            let w = back.get(r, c).unwrap();
            prop_assert!((v - w).abs() <= 1e-12 * v.abs().max(1.0));
        }
    }

    /// lower() + strict_upper() partition every square matrix.
    #[test]
    fn triangle_partition(entries in triplets(9, 50)) {
        let mut coo = CooMatrix::<f64>::new(9, 9);
        for &(r, c, v) in &entries {
            coo.push(r, c, v).unwrap();
        }
        let a = coo.to_csr();
        let l = a.lower();
        let u = a.strict_upper();
        prop_assert_eq!(l.nnz() + u.nnz(), a.nnz());
        let sum = l.add(&u).unwrap();
        for (r, c, v) in a.iter() {
            prop_assert_eq!(sum.get(r, c), Some(v));
        }
    }
}
