//! Compressed sparse row (CSR) matrix — the workhorse representation used by
//! every kernel in the workspace (Figure 1b of the paper).

use crate::coo::CooMatrix;
use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};
use crate::scalar::Scalar;

/// A compressed-sparse-row matrix.
///
/// Invariants (enforced by [`CsrMatrix::from_raw`] and preserved by every
/// method here):
/// * `row_ptr.len() == n_rows + 1`, `row_ptr[0] == 0`, non-decreasing,
///   `row_ptr[n_rows] == col_idx.len() == values.len()`;
/// * column indices within each row are strictly increasing (sorted, no
///   duplicates) and `< n_cols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T: Scalar> {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Builds a CSR matrix from raw arrays, validating all invariants.
    pub fn from_raw(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Result<Self> {
        if row_ptr.len() != n_rows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "row_ptr length {} != n_rows + 1 = {}",
                row_ptr.len(),
                n_rows + 1
            )));
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::InvalidStructure("row_ptr[0] != 0".into()));
        }
        if *row_ptr.last().unwrap() != col_idx.len() || col_idx.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "nnz mismatch: row_ptr end {}, col_idx {}, values {}",
                row_ptr.last().unwrap(),
                col_idx.len(),
                values.len()
            )));
        }
        for r in 0..n_rows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(SparseError::InvalidStructure(format!("row_ptr decreases at row {r}")));
            }
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "row {r} columns not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = cols.last() {
                if last >= n_cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: last,
                        n_rows,
                        n_cols,
                    });
                }
            }
        }
        Ok(Self { n_rows, n_cols, row_ptr, col_idx, values })
    }

    /// Builds a CSR matrix from arrays already known to satisfy the
    /// invariants (used by trusted in-crate constructors like COO
    /// conversion). Debug builds still validate.
    pub fn from_raw_unchecked(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Self {
        debug_assert!(Self::from_raw(
            n_rows,
            n_cols,
            row_ptr.clone(),
            col_idx.clone(),
            values.clone()
        )
        .is_ok());
        Self { n_rows, n_cols, row_ptr, col_idx, values }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![T::ONE; n],
        }
    }

    /// Builds from a dense matrix, keeping entries with `|a_ij| > 0`.
    pub fn from_dense(dense: &DenseMatrix<T>) -> Self {
        let mut coo = CooMatrix::with_capacity(dense.n_rows(), dense.n_cols(), 16);
        for i in 0..dense.n_rows() {
            for j in 0..dense.n_cols() {
                let v = dense.get(i, j);
                if v != T::ZERO {
                    coo.push(i, j, v).expect("dense indices in range");
                }
            }
        }
        coo.to_csr()
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `true` for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.n_rows == self.n_cols
    }

    /// Row-pointer array (`n_rows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, concatenated row by row.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Stored values, concatenated row by row.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable view of the stored values (structure stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Column indices of row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r`.
    #[inline]
    pub fn row_values(&self, r: usize) -> &[T] {
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Looks up entry `(r, c)`; `None` when not stored.
    pub fn get(&self, r: usize, c: usize) -> Option<T> {
        let cols = self.row_cols(r);
        cols.binary_search(&c).ok().map(|k| self.values[self.row_ptr[r] + k])
    }

    /// Iterates `(row, col, value)` over all stored entries in row order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.n_rows).flat_map(move |r| {
            self.row_cols(r).iter().zip(self.row_values(r)).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// The diagonal as a dense vector (missing entries are zero).
    pub fn diag(&self) -> Vec<T> {
        let n = self.n_rows.min(self.n_cols);
        let mut d = vec![T::ZERO; n];
        for (r, dr) in d.iter_mut().enumerate() {
            if let Some(v) = self.get(r, r) {
                *dr = v;
            }
        }
        d
    }

    /// `true` if every diagonal entry of the leading square block is stored
    /// and nonzero.
    pub fn has_full_nonzero_diag(&self) -> bool {
        let n = self.n_rows.min(self.n_cols);
        (0..n).all(|r| matches!(self.get(r, r), Some(v) if v != T::ZERO))
    }

    /// Transpose (also the CSC view of the same matrix).
    pub fn transpose(&self) -> Self {
        let mut col_counts = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            col_counts[c + 1] += 1;
        }
        for i in 0..self.n_cols {
            col_counts[i + 1] += col_counts[i];
        }
        let mut row_ptr_t = col_counts.clone();
        let mut col_idx_t = vec![0usize; self.nnz()];
        let mut values_t = vec![T::ZERO; self.nnz()];
        let mut cursor = col_counts;
        for r in 0..self.n_rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let slot = cursor[c];
                col_idx_t[slot] = r;
                values_t[slot] = self.values[k];
                cursor[c] += 1;
            }
        }
        // Rows of the transpose are filled in increasing source-row order, so
        // they come out sorted automatically.
        row_ptr_t.truncate(self.n_cols);
        row_ptr_t.push(self.nnz());
        Self {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_ptr: row_ptr_t,
            col_idx: col_idx_t,
            values: values_t,
        }
    }

    /// Keeps entries for which `keep(row, col, value)` returns `true`.
    pub fn filter(&self, mut keep: impl FnMut(usize, usize, T) -> bool) -> Self {
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..self.n_rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let (c, v) = (self.col_idx[k], self.values[k]);
                if keep(r, c, v) {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self { n_rows: self.n_rows, n_cols: self.n_cols, row_ptr, col_idx, values }
    }

    /// Lower-triangular part including the diagonal.
    pub fn lower(&self) -> Self {
        self.filter(|r, c, _| c <= r)
    }

    /// Strictly lower-triangular part.
    pub fn strict_lower(&self) -> Self {
        self.filter(|r, c, _| c < r)
    }

    /// Upper-triangular part including the diagonal.
    pub fn upper(&self) -> Self {
        self.filter(|r, c, _| c >= r)
    }

    /// Strictly upper-triangular part.
    pub fn strict_upper(&self) -> Self {
        self.filter(|r, c, _| c > r)
    }

    /// Applies `f` to every stored value, preserving structure.
    pub fn map_values(&self, mut f: impl FnMut(T) -> T) -> Self {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = f(*v);
        }
        out
    }

    /// Structural + numerical symmetry test: `|a_ij - a_ji| <= tol` for every
    /// stored entry, and every stored `(i, j)` has a stored `(j, i)` partner
    /// unless its value is within `tol` of zero.
    pub fn is_symmetric(&self, tol: T) -> bool {
        if !self.is_square() {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr == self.row_ptr && t.col_idx == self.col_idx {
            return self.values.iter().zip(&t.values).all(|(&a, &b)| (a - b).abs() <= tol);
        }
        // Structures differ: fall back to entrywise comparison.
        for (r, c, v) in self.iter() {
            let w = t.get(r, c).unwrap_or(T::ZERO);
            if (v - w).abs() > tol {
                return false;
            }
        }
        for (r, c, v) in t.iter() {
            let w = self.get(r, c).unwrap_or(T::ZERO);
            if (v - w).abs() > tol {
                return false;
            }
        }
        true
    }

    /// Entry-wise sum `self + other` (shapes must match).
    pub fn add(&self, other: &Self) -> Result<Self> {
        self.combine(other, |a, b| a + b)
    }

    /// Entry-wise difference `self - other` (shapes must match).
    pub fn sub(&self, other: &Self) -> Result<Self> {
        self.combine(other, |a, b| a - b)
    }

    fn combine(&self, other: &Self, f: impl Fn(T, T) -> T) -> Result<Self> {
        if self.n_rows != other.n_rows || self.n_cols != other.n_cols {
            return Err(SparseError::DimensionMismatch(format!(
                "{}x{} vs {}x{}",
                self.n_rows, self.n_cols, other.n_rows, other.n_cols
            )));
        }
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..self.n_rows {
            let (ac, av) = (self.row_cols(r), self.row_values(r));
            let (bc, bv) = (other.row_cols(r), other.row_values(r));
            let (mut i, mut j) = (0, 0);
            while i < ac.len() || j < bc.len() {
                let (c, v) = if j >= bc.len() || (i < ac.len() && ac[i] < bc[j]) {
                    let out = (ac[i], f(av[i], T::ZERO));
                    i += 1;
                    out
                } else if i >= ac.len() || bc[j] < ac[i] {
                    let out = (bc[j], f(T::ZERO, bv[j]));
                    j += 1;
                    out
                } else {
                    let out = (ac[i], f(av[i], bv[j]));
                    i += 1;
                    j += 1;
                    out
                };
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(Self { n_rows: self.n_rows, n_cols: self.n_cols, row_ptr, col_idx, values })
    }

    /// Drops stored entries that are exactly zero.
    pub fn prune_zeros(&self) -> Self {
        self.filter(|_, _, v| v != T::ZERO)
    }

    /// Dense copy (only sensible for small matrices; used by tests and the
    /// low-rank probe).
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let mut d = DenseMatrix::zeros(self.n_rows, self.n_cols);
        for (r, c, v) in self.iter() {
            d.set(r, c, v);
        }
        d
    }

    /// Half bandwidth: `max |i - j|` over stored entries (0 for diagonal or
    /// empty matrices).
    pub fn bandwidth(&self) -> usize {
        self.iter().map(|(r, c, _)| r.abs_diff(c)).max().unwrap_or(0)
    }

    /// Applies the symmetric permutation `P A Pᵀ` given `perm`, where
    /// `perm[new_index] = old_index`.
    pub fn permute_sym(&self, perm: &[usize]) -> Result<Self> {
        if !self.is_square() {
            return Err(SparseError::NotSquare { n_rows: self.n_rows, n_cols: self.n_cols });
        }
        if perm.len() != self.n_rows {
            return Err(SparseError::DimensionMismatch(format!(
                "permutation length {} != n {}",
                perm.len(),
                self.n_rows
            )));
        }
        let mut inv = vec![usize::MAX; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            if old >= perm.len() || inv[old] != usize::MAX {
                return Err(SparseError::InvalidStructure("perm is not a permutation".into()));
            }
            inv[old] = new;
        }
        let mut coo = CooMatrix::with_capacity(self.n_rows, self.n_cols, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(inv[r], inv[c], v)?;
        }
        Ok(coo.to_csr())
    }

    /// Converts every stored value through `f64` into scalar type `U`.
    pub fn cast<U: Scalar>(&self) -> CsrMatrix<U> {
        CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }

    /// Precision-converting constructor: the same sparsity pattern with
    /// every value demoted into [`Scalar::Lower`] storage (lossy for `f64`
    /// → `f32`, identity at the bottom of the chain). This is how
    /// mixed-precision tiers derive their low-precision factor storage.
    pub fn demoted(&self) -> CsrMatrix<T::Lower> {
        CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|v| v.demote()).collect(),
        }
    }

    /// Precision-converting constructor: widens a [`Scalar::Lower`]-stored
    /// matrix back into `T` storage (exact).
    pub fn promoted(lower: &CsrMatrix<T::Lower>) -> CsrMatrix<T> {
        CsrMatrix {
            n_rows: lower.n_rows,
            n_cols: lower.n_cols,
            row_ptr: lower.row_ptr.clone(),
            col_idx: lower.col_idx.clone(),
            values: lower.values.iter().map(|&v| T::promote(v)).collect(),
        }
    }

    /// Bytes required to store the CSR arrays (8-byte indices assumed),
    /// used by the GPU cost model for data-movement estimates.
    pub fn storage_bytes(&self, value_bytes: usize) -> usize {
        (self.row_ptr.len() + self.col_idx.len()) * std::mem::size_of::<usize>()
            + self.values.len() * value_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f64> {
        // Figure 1 of the paper: lower-triangular L with entries a..g.
        // [a 0 0 0; 0 b 0 0; c 0 d 0; e 0 f g]
        let mut coo = CooMatrix::new(4, 4);
        for &(r, c, v) in &[
            (0usize, 0usize, 1.0),
            (1, 1, 2.0),
            (2, 0, 3.0),
            (2, 2, 4.0),
            (3, 0, 5.0),
            (3, 2, 6.0),
            (3, 3, 7.0),
        ] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn figure1_csr_layout() {
        let m = sample();
        assert_eq!(m.row_ptr(), &[0, 1, 2, 4, 7]);
        assert_eq!(m.col_idx(), &[0, 1, 0, 2, 0, 2, 3]);
        assert_eq!(m.nnz(), 7);
    }

    #[test]
    fn from_raw_validates() {
        assert!(CsrMatrix::<f64>::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
        // bad row_ptr length
        assert!(CsrMatrix::<f64>::from_raw(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]).is_err());
        // decreasing row_ptr
        assert!(
            CsrMatrix::<f64>::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err()
        );
        // unsorted columns
        assert!(CsrMatrix::<f64>::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // duplicate columns
        assert!(CsrMatrix::<f64>::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
        // column out of bounds
        assert!(CsrMatrix::<f64>::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
    }

    #[test]
    fn identity_and_get() {
        let i = CsrMatrix::<f64>::identity(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(1, 1), Some(1.0));
        assert_eq!(i.get(0, 2), None);
        assert!(i.has_full_nonzero_diag());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), Some(3.0));
        assert_eq!(t.get(0, 3), Some(5.0));
        let tt = t.transpose();
        assert_eq!(tt, m);
    }

    #[test]
    fn triangular_extraction() {
        let m = sample().add(&sample().transpose()).unwrap();
        let l = m.lower();
        for (r, c, _) in l.iter() {
            assert!(c <= r);
        }
        let sl = m.strict_lower();
        for (r, c, _) in sl.iter() {
            assert!(c < r);
        }
        let u = m.upper();
        for (r, c, _) in u.iter() {
            assert!(c >= r);
        }
        assert_eq!(l.nnz() + m.strict_upper().nnz(), m.nnz());
    }

    #[test]
    fn symmetry_detection() {
        let m = sample();
        assert!(!m.is_symmetric(0.0));
        let s = m.add(&m.transpose()).unwrap();
        assert!(s.is_symmetric(0.0));
    }

    #[test]
    fn add_sub_inverse() {
        let a = sample();
        let b = a.transpose();
        let sum = a.add(&b).unwrap();
        let diff = sum.sub(&b).unwrap().prune_zeros();
        for (r, c, v) in a.iter() {
            assert_eq!(diff.get(r, c), Some(v));
        }
        assert_eq!(diff.nnz(), a.nnz());
    }

    #[test]
    fn diag_extraction() {
        let m = sample();
        assert_eq!(m.diag(), vec![1.0, 2.0, 4.0, 7.0]);
    }

    #[test]
    fn bandwidth_of_figure1() {
        assert_eq!(sample().bandwidth(), 3);
        assert_eq!(CsrMatrix::<f64>::identity(5).bandwidth(), 0);
    }

    #[test]
    fn permute_sym_identity_is_noop() {
        let m = sample();
        let p: Vec<usize> = (0..4).collect();
        assert_eq!(m.permute_sym(&p).unwrap(), m);
    }

    #[test]
    fn permute_sym_reverse() {
        let m = sample();
        let p: Vec<usize> = (0..4).rev().collect();
        let pm = m.permute_sym(&p).unwrap();
        // old (2,0) value 3.0 maps to new (1,3)
        assert_eq!(pm.get(1, 3), Some(3.0));
        // permuting back restores the original
        let back = pm.permute_sym(&p).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn permute_rejects_bad_perm() {
        let m = sample();
        assert!(m.permute_sym(&[0, 0, 1, 2]).is_err());
        assert!(m.permute_sym(&[0, 1]).is_err());
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        let back = CsrMatrix::from_dense(&d);
        assert_eq!(back, m);
    }

    #[test]
    fn cast_f64_to_f32() {
        let m = sample();
        let f: CsrMatrix<f32> = m.cast();
        assert_eq!(f.get(3, 3), Some(7.0f32));
        assert_eq!(f.nnz(), m.nnz());
    }

    #[test]
    fn filter_and_prune() {
        let m = sample();
        let big = m.filter(|_, _, v| v >= 4.0);
        assert_eq!(big.nnz(), 4);
        let mut z = m.clone();
        z.values_mut()[0] = 0.0;
        assert_eq!(z.prune_zeros().nnz(), m.nnz() - 1);
    }
}
