//! Condition-number estimation.
//!
//! The paper's wavefront-aware sparsification needs ‖Â⁻¹‖ cheaply (§3.2.2).
//! It approximates the condition number κ(Â) as the ratio of the inf-norm of
//! Â (proxy for the largest eigenvalue) to the smallest absolute diagonal
//! entry (proxy for the smallest eigenvalue), then uses
//! ‖Â⁻¹‖ ≈ κ(Â)/‖Â‖₂. This module provides that approximation plus two more
//! trustworthy estimators used by the §3.2.3 "approx vs exact" ablation and
//! the §5.4 condition-number analysis:
//!
//! * dense symmetric eigenvalues via cyclic Jacobi (exact, small matrices);
//! * power iteration for λ_max and inverse power iteration (with an internal
//!   CG) for λ_min on large SPD matrices.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::norms::{matrix_norm_inf, min_abs_diag};
use crate::rng::Rng;
use crate::scalar::Scalar;
use crate::spmv::spmv;

/// Paper approximation of the condition number:
/// `κ(A) ≈ ‖A‖_∞ / min_i |a_ii|`.
///
/// Returns `f64::INFINITY` when a diagonal entry is missing or zero, which
/// conservatively fails the convergence check.
pub fn approx_condition<T: Scalar>(a: &CsrMatrix<T>) -> f64 {
    let num = matrix_norm_inf(a).to_f64();
    match min_abs_diag(a) {
        Some(d) if d.to_f64() > 0.0 => num / d.to_f64(),
        _ => f64::INFINITY,
    }
}

/// Paper approximation of the inverse norm used on line 4 of Algorithm 2:
/// `‖A⁻¹‖ ≈ κ(A) / ‖A‖₂`, with `‖A‖₂` itself proxied by `‖A‖_∞`
/// (for symmetric matrices `‖A‖₂ ≤ ‖A‖_∞`).
pub fn approx_inv_norm<T: Scalar>(a: &CsrMatrix<T>) -> f64 {
    let norm = matrix_norm_inf(a).to_f64();
    if norm == 0.0 {
        return f64::INFINITY;
    }
    approx_condition(a) / norm
}

/// Options for the iterative (large-matrix) spectral estimators.
#[derive(Debug, Clone)]
pub struct SpectralOptions {
    /// Power-iteration steps for λ_max.
    pub power_iters: usize,
    /// Outer inverse-power steps for λ_min.
    pub inverse_iters: usize,
    /// Inner CG iterations per inverse-power step.
    pub cg_iters: usize,
    /// Deterministic seed for the starting vector.
    pub seed: u64,
}

impl Default for SpectralOptions {
    fn default() -> Self {
        Self { power_iters: 60, inverse_iters: 8, cg_iters: 200, seed: 0x5eed }
    }
}

/// Estimates the largest eigenvalue of an SPD matrix by power iteration.
pub fn lambda_max_est<T: Scalar>(a: &CsrMatrix<T>, opts: &SpectralOptions) -> f64 {
    let n = a.n_rows();
    if n == 0 {
        return 0.0;
    }
    let mut rng = Rng::new(opts.seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
    normalize(&mut x);
    let af: CsrMatrix<f64> = a.cast();
    let mut y = vec![0.0f64; n];
    let mut lambda = 0.0;
    for _ in 0..opts.power_iters {
        spmv(&af, &x, &mut y);
        lambda = dot64(&x, &y);
        let norm = norm64(&y);
        if norm == 0.0 {
            return 0.0;
        }
        for (xi, &yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
    }
    lambda.abs()
}

/// Estimates the smallest eigenvalue of an SPD matrix by inverse power
/// iteration; each application of `A⁻¹` is an unpreconditioned CG solve.
///
/// Returns `None` if CG stagnates (matrix not SPD enough for the estimate).
pub fn lambda_min_est<T: Scalar>(a: &CsrMatrix<T>, opts: &SpectralOptions) -> Option<f64> {
    let n = a.n_rows();
    if n == 0 {
        return None;
    }
    let af: CsrMatrix<f64> = a.cast();
    let mut rng = Rng::new(opts.seed ^ 0xabcd_ef01);
    let mut x: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
    normalize(&mut x);
    let mut mu = 0.0;
    for _ in 0..opts.inverse_iters {
        let y = cg_solve(&af, &x, opts.cg_iters, 1e-10)?;
        let norm = norm64(&y);
        if norm == 0.0 || !norm.is_finite() {
            return None;
        }
        // Rayleigh quotient of the normalized iterate.
        let mut ay = vec![0.0; n];
        for (xi, &yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
        spmv(&af, &x, &mut ay);
        mu = dot64(&x, &ay);
    }
    (mu.is_finite() && mu > 0.0).then_some(mu)
}

/// 2-norm condition number estimate `λ_max / λ_min` for SPD matrices.
pub fn condition_2norm_est<T: Scalar>(a: &CsrMatrix<T>, opts: &SpectralOptions) -> Option<f64> {
    let lmax = lambda_max_est(a, opts);
    let lmin = lambda_min_est(a, opts)?;
    (lmin > 0.0).then(|| lmax / lmin)
}

/// All eigenvalues of a symmetric dense matrix via cyclic Jacobi rotations.
/// Exact reference for small matrices; `O(n³)` per sweep.
pub fn sym_eigenvalues_dense(a: &DenseMatrix<f64>) -> Vec<f64> {
    let n = a.n_rows();
    assert_eq!(n, a.n_cols(), "eigenvalues need a square matrix");
    let mut m = a.clone();
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in i + 1..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + m.norm_fro()) {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = m.get(k, p);
                    let akq = m.get(k, q);
                    m.set(k, p, c * akp - s * akq);
                    m.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = m.get(p, k);
                    let aqk = m.get(q, k);
                    m.set(p, k, c * apk - s * aqk);
                    m.set(q, k, s * apk + c * aqk);
                }
            }
        }
    }
    let mut eig: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    eig.sort_by(|a, b| a.partial_cmp(b).unwrap());
    eig
}

/// Exact 2-norm condition number of a small symmetric matrix
/// (`|λ|_max / |λ|_min`); `None` if singular to working precision.
pub fn condition_2norm_dense(a: &DenseMatrix<f64>) -> Option<f64> {
    let eig = sym_eigenvalues_dense(a);
    let amax = eig.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let amin = eig.iter().fold(f64::MAX, |m, &v| m.min(v.abs()));
    (amin > amax * 1e-300).then(|| amax / amin)
}

fn dot64(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

fn norm64(x: &[f64]) -> f64 {
    dot64(x, x).sqrt()
}

fn normalize(x: &mut [f64]) {
    let n = norm64(x);
    if n > 0.0 {
        for v in x {
            *v /= n;
        }
    }
}

/// Minimal unpreconditioned CG used internally by the inverse-power
/// estimator. Kept private to avoid a dependency cycle with `spcg-solver`.
fn cg_solve(a: &CsrMatrix<f64>, b: &[f64], max_iters: usize, tol: f64) -> Option<Vec<f64>> {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rr = dot64(&r, &r);
    let b_norm = norm64(b).max(1e-300);
    for _ in 0..max_iters {
        if rr.sqrt() / b_norm < tol {
            return Some(x);
        }
        spmv(a, &p, &mut ap);
        let pap = dot64(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            return None;
        }
        let alpha = rr / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_new = dot64(&r, &r);
        let beta = rr_new / rr;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_new;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// 1-D Laplacian: eigenvalues 2 - 2cos(kπ/(n+1)) are known exactly.
    fn lap1d(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                coo.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn approx_condition_on_diagonal_matrix() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 10.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        coo.push(2, 2, 5.0).unwrap();
        let a = coo.to_csr();
        // inf-norm 10, min diag 2 -> 5
        assert_eq!(approx_condition(&a), 5.0);
        assert_eq!(approx_inv_norm(&a), 0.5);
    }

    #[test]
    fn approx_condition_missing_diag_is_infinite() {
        let mut coo = CooMatrix::<f64>::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        let a = coo.to_csr();
        assert!(approx_condition(&a).is_infinite());
    }

    #[test]
    fn jacobi_eigenvalues_match_analytic_laplacian() {
        let n = 8;
        let a = lap1d(n).to_dense();
        let eig = sym_eigenvalues_dense(&a);
        for (k, &e) in eig.iter().enumerate() {
            let exact =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((e - exact).abs() < 1e-10, "k={k}: {e} vs {exact}");
        }
    }

    #[test]
    fn power_iteration_finds_lambda_max() {
        let n = 32;
        let a = lap1d(n);
        let exact = 2.0 - 2.0 * (n as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
        let est = lambda_max_est(&a, &SpectralOptions { power_iters: 500, ..Default::default() });
        assert!((est - exact).abs() / exact < 1e-3, "{est} vs {exact}");
    }

    #[test]
    fn inverse_power_finds_lambda_min() {
        let n = 32;
        let a = lap1d(n);
        let exact = 2.0 - 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        let est = lambda_min_est(&a, &SpectralOptions::default()).unwrap();
        assert!((est - exact).abs() / exact < 1e-2, "{est} vs {exact}");
    }

    #[test]
    fn iterative_condition_close_to_dense_exact() {
        let a = lap1d(24);
        let exact = condition_2norm_dense(&a.to_dense()).unwrap();
        let est = condition_2norm_est(&a, &SpectralOptions::default()).unwrap();
        assert!((est - exact).abs() / exact < 0.05, "{est} vs {exact}");
    }

    #[test]
    fn dense_condition_of_identity_is_one() {
        let i = DenseMatrix::identity(5);
        assert!((condition_2norm_dense(&i).unwrap() - 1.0).abs() < 1e-12);
    }
}
