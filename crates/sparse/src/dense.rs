//! Small dense matrices — reference implementations for tests, condition
//! numbers on modest sizes, and the low-rank probe.

use crate::error::{Result, SparseError};
use crate::scalar::Scalar;

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T: Scalar> {
    n_rows: usize,
    n_cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// All-zero matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self { n_rows, n_cols, data: vec![T::ZERO; n_rows * n_cols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, T::ONE);
        }
        m
    }

    /// Builds from a row-major slice.
    pub fn from_rows(n_rows: usize, n_cols: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != n_rows * n_cols {
            return Err(SparseError::DimensionMismatch(format!(
                "data length {} != {}x{}",
                data.len(),
                n_rows,
                n_cols
            )));
        }
        Ok(Self { n_rows, n_cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        self.data[r * self.n_cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        self.data[r * self.n_cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Matrix-vector product `y = A x`.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n_cols, "matvec dimension mismatch");
        (0..self.n_rows)
            .map(|r| self.row(r).iter().zip(x).fold(T::ZERO, |acc, (&a, &b)| acc + a * b))
            .collect()
    }

    /// Matrix product `A * B`.
    pub fn matmul(&self, other: &Self) -> Result<Self> {
        if self.n_cols != other.n_rows {
            return Err(SparseError::DimensionMismatch(format!(
                "{}x{} * {}x{}",
                self.n_rows, self.n_cols, other.n_rows, other.n_cols
            )));
        }
        let mut out = Self::zeros(self.n_rows, other.n_cols);
        for i in 0..self.n_rows {
            for k in 0..self.n_cols {
                let aik = self.get(i, k);
                if aik == T::ZERO {
                    continue;
                }
                for j in 0..other.n_cols {
                    let v = out.get(i, j) + aik * other.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.n_cols, self.n_rows);
        for r in 0..self.n_rows {
            for c in 0..self.n_cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Reference-quality direct solver used to validate the iterative
    /// solvers; `O(n^3)`, intended for small systems.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>> {
        if self.n_rows != self.n_cols {
            return Err(SparseError::NotSquare { n_rows: self.n_rows, n_cols: self.n_cols });
        }
        if b.len() != self.n_rows {
            return Err(SparseError::DimensionMismatch(format!(
                "rhs length {} != n {}",
                b.len(),
                self.n_rows
            )));
        }
        let n = self.n_rows;
        let mut a = self.clone();
        let mut x: Vec<T> = b.to_vec();
        for col in 0..n {
            // partial pivot
            let mut piv = col;
            let mut best = a.get(col, col).abs();
            for r in col + 1..n {
                let cand = a.get(r, col).abs();
                if cand > best {
                    best = cand;
                    piv = r;
                }
            }
            if best == T::ZERO {
                return Err(SparseError::ZeroDiagonal { row: col });
            }
            if piv != col {
                for c in 0..n {
                    let tmp = a.get(col, c);
                    a.set(col, c, a.get(piv, c));
                    a.set(piv, c, tmp);
                }
                x.swap(col, piv);
            }
            let d = a.get(col, col);
            for r in col + 1..n {
                let f = a.get(r, col) / d;
                if f == T::ZERO {
                    continue;
                }
                for c in col..n {
                    let v = a.get(r, c) - f * a.get(col, c);
                    a.set(r, c, v);
                }
                x[r] = x[r] - f * x[col];
            }
        }
        for col in (0..n).rev() {
            let mut s = x[col];
            for (c, &xc) in x.iter().enumerate().skip(col + 1) {
                s -= a.get(col, c) * xc;
            }
            x[col] = s / a.get(col, col);
        }
        Ok(x)
    }

    /// Inverse via `n` solves against the identity. `O(n^4)` with this simple
    /// implementation — only for small validation matrices.
    pub fn inverse(&self) -> Result<Self> {
        let n = self.n_rows;
        let mut out = Self::zeros(n, n);
        for j in 0..n {
            let mut e = vec![T::ZERO; n];
            e[j] = T::ONE;
            let col = self.solve(&e)?;
            for (i, &v) in col.iter().enumerate() {
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// Inf-norm: maximum absolute row sum.
    pub fn norm_inf(&self) -> T {
        (0..self.n_rows)
            .map(|r| self.row(r).iter().fold(T::ZERO, |acc, &v| acc + v.abs()))
            .fold(T::ZERO, |a, b| if b > a { b } else { a })
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> T {
        self.data.iter().fold(T::ZERO, |acc, &v| acc + v * v).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        // [4 1; 1 3] x = [1; 2] -> x = [1/11; 7/11]
        let a = DenseMatrix::from_rows(2, 2, vec![4.0, 1.0, 1.0, 3.0]).unwrap();
        let x = a.solve(&[1.0, 2.0]).unwrap();
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // leading zero pivot forces a row swap
        let a = DenseMatrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = a.solve(&[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn singular_is_rejected() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(a.solve(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = DenseMatrix::from_rows(3, 3, vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 5.0])
            .unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matvec_matches_manual() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn norms() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, -2.0, 3.0, 4.0]).unwrap();
        assert_eq!(a.norm_inf(), 7.0);
        assert!((a.norm_fro() - 30.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn transpose_and_matmul() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = a.transpose();
        assert_eq!(t.get(2, 1), 6.0);
        let p = a.matmul(&t).unwrap();
        assert_eq!(p.get(0, 0), 14.0);
        assert_eq!(p.get(1, 1), 77.0);
    }
}
