//! A tiny, deterministic PRNG (SplitMix64 seeding + xoshiro256**) used by the
//! matrix generators.
//!
//! The synthetic SuiteSparse stand-in collection must be bit-reproducible
//! across runs, platforms, and dependency upgrades, so we implement the
//! generator in-crate instead of depending on a specific `rand` version.

/// xoshiro256** PRNG with SplitMix64 seed expansion.
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expands the seed into the 256-bit state.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        Self { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2n = s2 ^ s0;
        let s3n = s3 ^ s1;
        let s1n = s1 ^ s2n;
        let s0n = s0 ^ s3n;
        s2n ^= t;
        self.state = [s0n, s1n, s2n, s3n.rotate_left(45)];
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` (n > 0), rejection-free via 128-bit
    /// multiply (slightly biased for astronomically large `n`, irrelevant
    /// here).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_near_half() {
        let mut r = Rng::new(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = Rng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(5);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(9);
        let mut xs: Vec<usize> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }
}
