//! Coordinate-format (triplet) builder — the entry point for assembling
//! sparse matrices before conversion to CSR.

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};
use crate::scalar::Scalar;

/// A coordinate-format sparse matrix builder.
///
/// Entries may be pushed in any order; duplicates are summed during
/// [`CooMatrix::to_csr`], matching the assembly semantics of finite-element
/// codes and of the Matrix Market format.
#[derive(Debug, Clone)]
pub struct CooMatrix<T: Scalar> {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> CooMatrix<T> {
    /// Creates an empty builder for an `n_rows x n_cols` matrix.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Self { n_rows, n_cols, entries: Vec::new() }
    }

    /// Creates an empty builder with room for `cap` entries.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        Self { n_rows, n_cols, entries: Vec::with_capacity(cap) }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of raw (possibly duplicated) entries pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pushes one entry, validating its indices.
    pub fn push(&mut self, row: usize, col: usize, value: T) -> Result<()> {
        if row >= self.n_rows || col >= self.n_cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Pushes `value` at `(row, col)` and `(col, row)`.
    ///
    /// Off-diagonal entries are mirrored; a diagonal entry is pushed once.
    pub fn push_sym(&mut self, row: usize, col: usize, value: T) -> Result<()> {
        self.push(row, col, value)?;
        if row != col {
            self.push(col, row, value)?;
        }
        Ok(())
    }

    /// Read-only view of the raw triplets.
    pub fn entries(&self) -> &[(usize, usize, T)] {
        &self.entries
    }

    /// Converts to CSR, summing duplicate entries and dropping entries that
    /// sum to exactly zero is *not* done (explicit zeros are preserved, as in
    /// Matrix Market semantics).
    pub fn to_csr(&self) -> CsrMatrix<T> {
        // Counting sort by row, then sort each row segment by column and
        // compact duplicates. O(nnz log nnz_row) overall, allocation-lean.
        let mut row_counts = vec![0usize; self.n_rows + 1];
        for &(r, _, _) in &self.entries {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.n_rows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut order: Vec<usize> = vec![0; self.entries.len()];
        let mut cursor = row_counts.clone();
        for (k, &(r, _, _)) in self.entries.iter().enumerate() {
            order[cursor[r]] = k;
            cursor[r] += 1;
        }

        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx: Vec<usize> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<T> = Vec::with_capacity(self.entries.len());
        row_ptr.push(0);

        let mut scratch: Vec<(usize, T)> = Vec::new();
        for r in 0..self.n_rows {
            scratch.clear();
            for &k in &order[row_counts[r]..row_counts[r + 1]] {
                let (_, c, v) = self.entries[k];
                scratch.push((c, v));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                col_idx.push(c);
                values.push(v);
                i = j;
            }
            row_ptr.push(col_idx.len());
        }

        CsrMatrix::from_raw_unchecked(self.n_rows, self.n_cols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_convert() {
        let mut coo = CooMatrix::<f64>::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(2, 1, 4.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        coo.push(2, 2, 5.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.get(0, 0), Some(1.0));
        assert_eq!(csr.get(1, 1), Some(2.0));
        assert_eq!(csr.get(2, 1), Some(4.0));
        assert_eq!(csr.get(2, 2), Some(5.0));
        assert_eq!(csr.get(0, 1), None);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::<f64>::new(2, 2);
        coo.push(0, 1, 1.5).unwrap();
        coo.push(0, 1, 2.5).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), Some(4.0));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut coo = CooMatrix::<f64>::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
    }

    #[test]
    fn push_sym_mirrors_offdiagonal() {
        let mut coo = CooMatrix::<f64>::new(3, 3);
        coo.push_sym(0, 1, 7.0).unwrap();
        coo.push_sym(2, 2, 3.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 1), Some(7.0));
        assert_eq!(csr.get(1, 0), Some(7.0));
        assert_eq!(csr.get(2, 2), Some(3.0));
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn unsorted_rows_become_sorted() {
        let mut coo = CooMatrix::<f64>::new(1, 5);
        for &c in &[4usize, 0, 2, 1, 3] {
            coo.push(0, c, c as f64).unwrap();
        }
        let csr = coo.to_csr();
        let cols: Vec<usize> = csr.row_cols(0).to_vec();
        assert_eq!(cols, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::<f64>::new(4, 4);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.n_rows(), 4);
    }
}
