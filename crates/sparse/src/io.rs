//! Matrix Market (`.mtx`) reader/writer for the `coordinate real` flavour,
//! covering `general` and `symmetric` storage — the formats the SuiteSparse
//! collection ships SPD matrices in.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};
use crate::scalar::Scalar;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Symmetry declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; mirrored on read.
    Symmetric,
}

/// Parses a Matrix Market `coordinate real` stream into CSR.
pub fn read_matrix_market<T: Scalar, R: Read>(reader: R) -> Result<CsrMatrix<T>> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".into()))?
        .map_err(SparseError::from)?;
    let h = header.to_ascii_lowercase();
    if !h.starts_with("%%matrixmarket") {
        return Err(SparseError::Parse("missing %%MatrixMarket header".into()));
    }
    if !h.contains("matrix") || !h.contains("coordinate") {
        return Err(SparseError::Parse(format!("unsupported header: {header}")));
    }
    if !(h.contains("real") || h.contains("integer") || h.contains("pattern")) {
        return Err(SparseError::Parse(format!("unsupported field type: {header}")));
    }
    let pattern = h.contains("pattern");
    let symmetry = if h.contains("symmetric") {
        MmSymmetry::Symmetric
    } else if h.contains("general") {
        MmSymmetry::General
    } else {
        return Err(SparseError::Parse(format!("unsupported symmetry: {header}")));
    };

    // Skip comments, find the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(SparseError::from)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|s| s.parse::<usize>().map_err(|e| SparseError::Parse(e.to_string())))
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!("bad size line: {size_line}")));
    }
    let (n_rows, n_cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(n_rows, n_cols, nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(SparseError::from)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let r: usize = parts
            .next()
            .ok_or_else(|| SparseError::Parse(format!("bad entry line: {t}")))?
            .parse()
            .map_err(|e: std::num::ParseIntError| SparseError::Parse(e.to_string()))?;
        let c: usize = parts
            .next()
            .ok_or_else(|| SparseError::Parse(format!("bad entry line: {t}")))?
            .parse()
            .map_err(|e: std::num::ParseIntError| SparseError::Parse(e.to_string()))?;
        let v: f64 = if pattern {
            1.0
        } else {
            parts
                .next()
                .ok_or_else(|| SparseError::Parse(format!("missing value: {t}")))?
                .parse()
                .map_err(|e: std::num::ParseFloatError| SparseError::Parse(e.to_string()))?
        };
        if r == 0 || c == 0 {
            return Err(SparseError::Parse("matrix market indices are 1-based".into()));
        }
        let (r, c) = (r - 1, c - 1);
        match symmetry {
            MmSymmetry::General => coo.push(r, c, T::from_f64(v))?,
            MmSymmetry::Symmetric => coo.push_sym(r, c, T::from_f64(v))?,
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse(format!("size line declared {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Writes a CSR matrix as Matrix Market `coordinate real`.
///
/// With [`MmSymmetry::Symmetric`] only the lower triangle is emitted; the
/// caller must ensure the matrix is actually symmetric.
pub fn write_matrix_market<T: Scalar, W: Write>(
    a: &CsrMatrix<T>,
    symmetry: MmSymmetry,
    writer: W,
) -> Result<()> {
    let mut w = BufWriter::new(writer);
    let sym = match symmetry {
        MmSymmetry::General => "general",
        MmSymmetry::Symmetric => "symmetric",
    };
    writeln!(w, "%%MatrixMarket matrix coordinate real {sym}")?;
    let entries: Vec<(usize, usize, T)> = match symmetry {
        MmSymmetry::General => a.iter().collect(),
        MmSymmetry::Symmetric => a.iter().filter(|&(r, c, _)| c <= r).collect(),
    };
    writeln!(w, "{} {} {}", a.n_rows(), a.n_cols(), entries.len())?;
    for (r, c, v) in entries {
        writeln!(w, "{} {} {:e}", r + 1, c + 1, v.to_f64())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a Matrix Market file from disk.
pub fn read_matrix_market_file<T: Scalar>(path: &std::path::Path) -> Result<CsrMatrix<T>> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes a Matrix Market file to disk.
pub fn write_matrix_market_file<T: Scalar>(
    a: &CsrMatrix<T>,
    symmetry: MmSymmetry,
    path: &std::path::Path,
) -> Result<()> {
    write_matrix_market(a, symmetry, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::poisson_2d;

    #[test]
    fn parse_general() {
        let src = "%%MatrixMarket matrix coordinate real general\n% a comment\n3 3 4\n1 1 2.0\n2 2 3.0\n3 1 -1.0\n3 3 4.0\n";
        let a: CsrMatrix<f64> = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(a.n_rows(), 3);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(2, 0), Some(-1.0));
    }

    #[test]
    fn parse_symmetric_mirrors() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 2.0\n2 1 -1.0\n";
        let a: CsrMatrix<f64> = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), Some(-1.0));
        assert_eq!(a.get(1, 0), Some(-1.0));
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn parse_pattern() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let a: CsrMatrix<f64> = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), Some(1.0));
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_matrix_market::<f64, _>("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n".as_bytes()
        )
        .is_err()); // count mismatch
        assert!(read_matrix_market::<f64, _>(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n".as_bytes()
        )
        .is_err()); // zero-based index
        assert!(read_matrix_market::<f64, _>(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err()); // unsupported field
    }

    #[test]
    fn roundtrip_general() {
        let a = poisson_2d(4, 3);
        let mut buf = Vec::new();
        write_matrix_market(&a, MmSymmetry::General, &mut buf).unwrap();
        let b: CsrMatrix<f64> = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_symmetric_halves_storage() {
        let a = poisson_2d(4, 4);
        let mut buf = Vec::new();
        write_matrix_market(&a, MmSymmetry::Symmetric, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        let declared: usize =
            text.lines().nth(1).unwrap().split_whitespace().nth(2).unwrap().parse().unwrap();
        assert!(declared < a.nnz());
        let b: CsrMatrix<f64> = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn file_roundtrip() {
        let a = poisson_2d(3, 3);
        let dir = std::env::temp_dir().join("spcg_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p33.mtx");
        write_matrix_market_file(&a, MmSymmetry::Symmetric, &path).unwrap();
        let b: CsrMatrix<f64> = read_matrix_market_file(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }
}
