//! Level-1 vector kernels used by the iterative solvers, with sequential and
//! rayon-parallel variants.
//!
//! The parallel variants exist for large vectors; the sequential ones avoid
//! fork/join overhead on the small systems used by tests. The crossover is
//! exposed as [`PAR_THRESHOLD`] so callers (and benches) can reason about it.

use crate::scalar::Scalar;
use rayon::prelude::*;

/// Below this many elements the sequential kernels are used even when a
/// caller asks for parallelism (fork/join would dominate).
pub const PAR_THRESHOLD: usize = 1 << 14;

/// Dot product `xᵀ y` (sequential).
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).fold(T::ZERO, |acc, (&a, &b)| acc + a * b)
}

/// Dot product with rayon reduction for large vectors.
pub fn dot_par<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        return dot(x, y);
    }
    x.par_iter().zip(y.par_iter()).map(|(&a, &b)| a * b).reduce(|| T::ZERO, |a, b| a + b)
}

/// `y ← a x + y`.
pub fn axpy<T: Scalar>(a: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Parallel `y ← a x + y`.
pub fn axpy_par<T: Scalar>(a: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        return axpy(a, x, y);
    }
    y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, &xi)| {
        *yi += a * xi;
    });
}

/// `y ← x + b y` (the `p ← z + β p` update in PCG, done in place on `y = p`).
pub fn xpby<T: Scalar>(x: &[T], b: T, y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = xi + b * *yi;
    }
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2<T: Scalar>(x: &[T]) -> T {
    dot(x, x).sqrt()
}

/// Inf-norm `max |x_i|`.
pub fn norm_inf<T: Scalar>(x: &[T]) -> T {
    x.iter().fold(T::ZERO, |acc, &v| if v.abs() > acc { v.abs() } else { acc })
}

/// Copies `src` into `dst`.
pub fn copy<T: Scalar>(src: &[T], dst: &mut [T]) {
    dst.copy_from_slice(src);
}

/// `x ← a x`.
pub fn scale<T: Scalar>(a: T, x: &mut [T]) {
    for v in x {
        *v *= a;
    }
}

/// Elementwise `z = x - y`.
pub fn sub_into<T: Scalar>(x: &[T], y: &[T], z: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), z.len());
    for ((zi, &xi), &yi) in z.iter_mut().zip(x).zip(y) {
        *zi = xi - yi;
    }
}

/// `true` if any component is NaN/inf.
pub fn has_bad<T: Scalar>(x: &[T]) -> bool {
    x.iter().any(|v| v.is_bad())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_small() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_par_matches_seq_above_threshold() {
        let n = PAR_THRESHOLD + 17;
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        // Both orders of summation are exact here because the products are
        // small integers.
        assert_eq!(dot_par(&x, &y), dot(&x, &y));
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn axpy_par_matches_seq() {
        let n = PAR_THRESHOLD + 3;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut y1: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
        let mut y2 = y1.clone();
        axpy(0.5, &x, &mut y1);
        axpy_par(0.5, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn xpby_is_pcg_direction_update() {
        let z = [1.0, 1.0];
        let mut p = [3.0, 4.0];
        xpby(&z, 0.5, &mut p);
        assert_eq!(p, [2.5, 3.0]);
    }

    #[test]
    fn norms_and_utils() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[1.0, -7.0, 2.0]), 7.0);
        let mut x = [1.0, 2.0];
        scale(3.0, &mut x);
        assert_eq!(x, [3.0, 6.0]);
        let mut z = [0.0; 2];
        sub_into(&[5.0, 5.0], &[2.0, 3.0], &mut z);
        assert_eq!(z, [3.0, 2.0]);
        assert!(has_bad(&[1.0, f64::NAN]));
        assert!(!has_bad(&[1.0, 2.0]));
    }
}
