//! Numerical analysis utilities: Gershgorin bounds, diagonal dominance,
//! and symmetric Jacobi (diagonal) scaling — the standard preprocessing
//! toolbox around an SPD solve.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// Gershgorin disc bounds on the spectrum: every eigenvalue lies in
/// `[min_i (a_ii - r_i), max_i (a_ii + r_i)]` with `r_i` the off-diagonal
/// absolute row sum. Cheap, rigorous, and often loose — the counterpart to
/// the paper's inf-norm/min-diagonal proxy.
pub fn gershgorin_bounds<T: Scalar>(a: &CsrMatrix<T>) -> (f64, f64) {
    assert!(a.is_square(), "Gershgorin bounds need a square matrix");
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..a.n_rows() {
        let mut diag = 0.0f64;
        let mut radius = 0.0f64;
        for (&c, &v) in a.row_cols(i).iter().zip(a.row_values(i)) {
            if c == i {
                diag = v.to_f64();
            } else {
                radius += v.to_f64().abs();
            }
        }
        lo = lo.min(diag - radius);
        hi = hi.max(diag + radius);
    }
    if a.n_rows() == 0 {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// Strict diagonal dominance margin: `min_i (|a_ii| - r_i)`. Positive means
/// strictly diagonally dominant (SPD for symmetric matrices with positive
/// diagonal, by Gershgorin).
pub fn dominance_margin<T: Scalar>(a: &CsrMatrix<T>) -> f64 {
    assert!(a.is_square(), "dominance margin needs a square matrix");
    let mut margin = f64::INFINITY;
    for i in 0..a.n_rows() {
        let mut diag = 0.0f64;
        let mut radius = 0.0f64;
        for (&c, &v) in a.row_cols(i).iter().zip(a.row_values(i)) {
            if c == i {
                diag = v.to_f64().abs();
            } else {
                radius += v.to_f64().abs();
            }
        }
        margin = margin.min(diag - radius);
    }
    if a.n_rows() == 0 {
        0.0
    } else {
        margin
    }
}

/// `true` when the matrix is strictly diagonally dominant.
pub fn is_diagonally_dominant<T: Scalar>(a: &CsrMatrix<T>) -> bool {
    dominance_margin(a) > 0.0
}

/// Symmetric Jacobi scaling `D^{-1/2} A D^{-1/2}`: the scaled matrix has a
/// unit diagonal, which equilibrates row norms and is the usual first step
/// before ILU on badly scaled systems. Returns the scaled matrix and the
/// scale vector `d_i = sqrt(a_ii)` (so `x = D^{-1/2} x̂` recovers the
/// original unknowns).
///
/// Returns `None` if any diagonal entry is missing or non-positive.
pub fn jacobi_scale<T: Scalar>(a: &CsrMatrix<T>) -> Option<(CsrMatrix<T>, Vec<T>)> {
    if !a.is_square() {
        return None;
    }
    let n = a.n_rows();
    let mut d = Vec::with_capacity(n);
    for i in 0..n {
        match a.get(i, i) {
            Some(v) if v > T::ZERO => d.push(v.sqrt()),
            _ => return None,
        }
    }
    let scaled = {
        let mut coo = crate::coo::CooMatrix::with_capacity(n, n, a.nnz());
        for (r, c, v) in a.iter() {
            coo.push(r, c, v / (d[r] * d[c])).expect("in range");
        }
        coo.to_csr()
    };
    Some((scaled, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::sym_eigenvalues_dense;
    use crate::generators::{poisson_2d, varcoef_2d};

    #[test]
    fn gershgorin_contains_true_spectrum() {
        let a = poisson_2d(6, 6);
        let (lo, hi) = gershgorin_bounds(&a);
        let eig = sym_eigenvalues_dense(&a.to_dense());
        assert!(lo <= eig[0] + 1e-12, "lo {lo} > min eig {}", eig[0]);
        assert!(hi >= *eig.last().unwrap() - 1e-12);
        // For interior-heavy Poisson the bounds are the classic [0, 8].
        assert!(lo >= -1e-12 && hi <= 8.0 + 1e-12);
    }

    #[test]
    fn dominance_detection() {
        let a = poisson_2d(5, 5); // margin 0 on interior rows
        assert!(!is_diagonally_dominant(&a));
        let shifted = a.add(&crate::csr::CsrMatrix::identity(25).map_values(|v| v * 0.5)).unwrap();
        assert!(is_diagonally_dominant(&shifted));
        assert!((dominance_margin(&shifted) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jacobi_scaling_unit_diagonal() {
        let a = varcoef_2d(6, 6, 0.1, 10.0, 3);
        let (scaled, d) = jacobi_scale(&a).unwrap();
        for (i, &di) in d.iter().enumerate() {
            assert!((scaled.get(i, i).unwrap() - 1.0).abs() < 1e-12);
            assert!((di * di - a.get(i, i).unwrap()).abs() < 1e-10);
        }
        assert!(scaled.is_symmetric(1e-12));
        // Scaling preserves SPD.
        let eig = sym_eigenvalues_dense(&scaled.to_dense());
        assert!(eig[0] > 0.0);
    }

    #[test]
    fn jacobi_scaling_rejects_bad_diagonal() {
        let mut coo = crate::coo::CooMatrix::<f64>::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, -1.0).unwrap();
        assert!(jacobi_scale(&coo.to_csr()).is_none());
    }

    #[test]
    fn scaling_improves_conditioning_of_badly_scaled_system() {
        // Badly scaled: multiply rows/cols by wildly varying factors.
        let base = poisson_2d(5, 5);
        let mut coo = crate::coo::CooMatrix::new(25, 25);
        for (r, c, v) in base.iter() {
            let sr = 10f64.powi((r % 5) as i32);
            let sc = 10f64.powi((c % 5) as i32);
            coo.push(r, c, v * sr * sc).unwrap();
        }
        let bad = coo.to_csr();
        let (scaled, _) = jacobi_scale(&bad).unwrap();
        let cond_bad = {
            let e = sym_eigenvalues_dense(&bad.to_dense());
            e.last().unwrap() / e[0]
        };
        let cond_scaled = {
            let e = sym_eigenvalues_dense(&scaled.to_dense());
            e.last().unwrap() / e[0]
        };
        assert!(
            cond_scaled < cond_bad / 100.0,
            "scaling should slash the condition number: {cond_bad} -> {cond_scaled}"
        );
    }
}
