//! Compressed sparse column (CSC) view.
//!
//! CSC is CSR of the transpose; the type exists so column-oriented kernels
//! (e.g. the dependence-DAG builder, which needs "which rows consume column
//! j") can express intent without re-deriving the transpose at each call.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// A compressed-sparse-column matrix, stored internally as the CSR of the
/// transpose.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T: Scalar> {
    transposed: CsrMatrix<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// Builds the CSC view of a CSR matrix.
    pub fn from_csr(a: &CsrMatrix<T>) -> Self {
        Self { transposed: a.transpose() }
    }

    /// Number of rows (of the logical matrix).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.transposed.n_cols()
    }

    /// Number of columns (of the logical matrix).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.transposed.n_rows()
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.transposed.nnz()
    }

    /// Row indices of stored entries in column `c`, ascending.
    #[inline]
    pub fn col_rows(&self, c: usize) -> &[usize] {
        self.transposed.row_cols(c)
    }

    /// Values of stored entries in column `c`, matching [`Self::col_rows`].
    #[inline]
    pub fn col_values(&self, c: usize) -> &[T] {
        self.transposed.row_values(c)
    }

    /// Entry lookup.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<T> {
        self.transposed.get(c, r)
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        self.transposed.transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(3, 4);
        for &(r, c, v) in &[(0usize, 0usize, 1.0), (0, 3, 2.0), (1, 1, 3.0), (2, 0, 4.0)] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn csc_column_access() {
        let a = sample();
        let c = CscMatrix::from_csr(&a);
        assert_eq!(c.n_rows(), 3);
        assert_eq!(c.n_cols(), 4);
        assert_eq!(c.col_rows(0), &[0, 2]);
        assert_eq!(c.col_values(0), &[1.0, 4.0]);
        assert_eq!(c.col_rows(2), &[] as &[usize]);
    }

    #[test]
    fn get_matches_csr() {
        let a = sample();
        let c = CscMatrix::from_csr(&a);
        for r in 0..3 {
            for col in 0..4 {
                assert_eq!(c.get(r, col), a.get(r, col));
            }
        }
    }

    #[test]
    fn roundtrip() {
        let a = sample();
        assert_eq!(CscMatrix::from_csr(&a).to_csr(), a);
    }
}
