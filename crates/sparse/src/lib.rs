//! # spcg-sparse
//!
//! Sparse and dense linear-algebra substrate for the SPCG workspace: CSR/CSC
//! storage, COO assembly, SpMV, level-1 vector kernels, matrix norms,
//! condition-number estimation, orderings, SPD matrix generators, and Matrix
//! Market I/O.
//!
//! Everything downstream (`spcg-wavefront`, `spcg-precond`, `spcg-solver`,
//! `spcg-core`) is built on the [`CsrMatrix`] type defined here.

#![warn(missing_docs)]

pub mod analysis;
pub mod blas;
pub mod cond;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod fingerprint;
pub mod generators;
pub mod io;
pub mod norms;
pub mod permute;
pub mod rng;
pub mod scalar;
pub mod spmv;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::{Result, SparseError};
pub use fingerprint::MatrixFingerprint;
pub use rng::Rng;
pub use scalar::Scalar;
