//! Sparse matrix–vector product (line 9 of Algorithm 1), sequential and
//! rayon-parallel. SpMV is the embarrassingly parallel half of PCG; the
//! triangular solves in `spcg-wavefront` are the hard half.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Sequential `y = A x`.
pub fn spmv<T: Scalar>(a: &CsrMatrix<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.n_cols(), "spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "spmv: y length mismatch");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    for (r, yr) in y.iter_mut().enumerate() {
        let mut acc = T::ZERO;
        for k in row_ptr[r]..row_ptr[r + 1] {
            acc += values[k] * x[col_idx[k]];
        }
        *yr = acc;
    }
}

/// Row-parallel `y = A x` using rayon. Each output row is an independent
/// reduction, so the result is bitwise identical to the sequential kernel.
pub fn spmv_par<T: Scalar>(a: &CsrMatrix<T>, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), a.n_cols(), "spmv: x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "spmv: y length mismatch");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    y.par_iter_mut().enumerate().for_each(|(r, yr)| {
        let mut acc = T::ZERO;
        for k in row_ptr[r]..row_ptr[r + 1] {
            acc += values[k] * x[col_idx[k]];
        }
        *yr = acc;
    });
}

/// Allocating convenience wrapper around [`spmv`].
pub fn spmv_alloc<T: Scalar>(a: &CsrMatrix<T>, x: &[T]) -> Vec<T> {
    let mut y = vec![T::ZERO; a.n_rows()];
    spmv(a, x, &mut y);
    y
}

/// FLOP count of one SpMV on this matrix (2 per stored entry), used for the
/// GFLOP/s figures the harness reports.
pub fn spmv_flops<T: Scalar>(a: &CsrMatrix<T>) -> u64 {
    2 * a.nnz() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(3, 3);
        for &(r, c, v) in
            &[(0usize, 0usize, 2.0), (0, 2, 1.0), (1, 1, 3.0), (2, 0, -1.0), (2, 2, 4.0)]
        {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let x = [1.0, 2.0, 3.0];
        let y = spmv_alloc(&a, &x);
        assert_eq!(y, a.to_dense().matvec(&x));
        assert_eq!(y, vec![5.0, 6.0, 11.0]);
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let a = sample();
        let x = [0.5, -1.5, 2.0];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        spmv(&a, &x, &mut y1);
        spmv_par(&a, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn identity_spmv_is_copy() {
        let i = CsrMatrix::<f64>::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(spmv_alloc(&i, &x), x.to_vec());
    }

    #[test]
    fn flop_count() {
        assert_eq!(spmv_flops(&sample()), 10);
    }

    #[test]
    #[should_panic(expected = "x length mismatch")]
    fn dimension_mismatch_panics() {
        let a = sample();
        let mut y = vec![0.0; 3];
        spmv(&a, &[1.0], &mut y);
    }
}
