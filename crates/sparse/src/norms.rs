//! Matrix norms used by the sparsification convergence indicator
//! (Equation 6 of the paper: ‖Â⁻¹‖·‖S‖ < τ).

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// Inf-norm `‖A‖_∞`: maximum absolute row sum. The paper uses this as a proxy
/// for the largest eigenvalue when estimating condition numbers (§3.2.2).
pub fn matrix_norm_inf<T: Scalar>(a: &CsrMatrix<T>) -> T {
    let mut best = T::ZERO;
    for r in 0..a.n_rows() {
        let s = a.row_values(r).iter().fold(T::ZERO, |acc, &v| acc + v.abs());
        if s > best {
            best = s;
        }
    }
    best
}

/// 1-norm `‖A‖₁`: maximum absolute column sum.
pub fn matrix_norm_one<T: Scalar>(a: &CsrMatrix<T>) -> T {
    let mut col_sums = vec![T::ZERO; a.n_cols()];
    for (_, c, v) in a.iter() {
        col_sums[c] += v.abs();
    }
    col_sums.into_iter().fold(T::ZERO, |best, s| if s > best { s } else { best })
}

/// Frobenius norm.
pub fn matrix_norm_fro<T: Scalar>(a: &CsrMatrix<T>) -> T {
    a.values().iter().fold(T::ZERO, |acc, &v| acc + v * v).sqrt()
}

/// Largest absolute entry.
pub fn matrix_norm_max<T: Scalar>(a: &CsrMatrix<T>) -> T {
    a.values().iter().fold(T::ZERO, |best, &v| if v.abs() > best { v.abs() } else { best })
}

/// Smallest absolute diagonal entry of the leading square block; `None` when
/// the diagonal has a structurally missing entry (treated as 0 by callers).
pub fn min_abs_diag<T: Scalar>(a: &CsrMatrix<T>) -> Option<T> {
    let n = a.n_rows().min(a.n_cols());
    let mut best: Option<T> = None;
    for r in 0..n {
        let v = a.get(r, r)?.abs();
        best = Some(match best {
            Some(b) if b < v => b,
            _ => v,
        });
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn m() -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(3, 3);
        for &(r, c, v) in
            &[(0usize, 0usize, 2.0), (0, 1, -1.0), (1, 1, 3.0), (2, 0, 4.0), (2, 2, 1.0)]
        {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn inf_norm_is_max_row_sum() {
        assert_eq!(matrix_norm_inf(&m()), 5.0); // row 2: 4 + 1
    }

    #[test]
    fn one_norm_is_max_col_sum() {
        assert_eq!(matrix_norm_one(&m()), 6.0); // col 0: 2 + 4
    }

    #[test]
    fn fro_norm() {
        let expect = (4.0f64 + 1.0 + 9.0 + 16.0 + 1.0).sqrt();
        assert!((matrix_norm_fro(&m()) - expect).abs() < 1e-12);
    }

    #[test]
    fn max_norm() {
        assert_eq!(matrix_norm_max(&m()), 4.0);
    }

    #[test]
    fn min_diag() {
        assert_eq!(min_abs_diag(&m()), Some(1.0));
        // missing diagonal entry -> None
        let mut coo = CooMatrix::<f64>::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        assert_eq!(min_abs_diag(&coo.to_csr()), None);
    }

    #[test]
    fn norms_of_empty_matrix_are_zero() {
        let e = CooMatrix::<f64>::new(3, 3).to_csr();
        assert_eq!(matrix_norm_inf(&e), 0.0);
        assert_eq!(matrix_norm_one(&e), 0.0);
        assert_eq!(matrix_norm_fro(&e), 0.0);
        assert_eq!(matrix_norm_max(&e), 0.0);
    }
}
