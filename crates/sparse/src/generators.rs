//! SPD matrix generators.
//!
//! These are the building blocks from which `spcg-suite` assembles its
//! synthetic SuiteSparse stand-in collection: discretized PDE operators
//! (Poisson / anisotropic diffusion / 9-point stencils), graph Laplacians,
//! and randomly structured diagonally dominant matrices. All generators are
//! deterministic given their arguments.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::rng::Rng;

/// 1-D Laplacian (tridiagonal `[-1, 2, -1]`), the canonical SPD example.
pub fn poisson_1d(n: usize) -> CsrMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0).expect("in range");
        if i + 1 < n {
            coo.push_sym(i, i + 1, -1.0).expect("in range");
        }
    }
    coo.to_csr()
}

/// 2-D Poisson operator on an `nx x ny` grid (5-point stencil).
pub fn poisson_2d(nx: usize, ny: usize) -> CsrMatrix<f64> {
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            coo.push(i, i, 4.0).expect("in range");
            if x + 1 < nx {
                coo.push_sym(i, idx(x + 1, y), -1.0).expect("in range");
            }
            if y + 1 < ny {
                coo.push_sym(i, idx(x, y + 1), -1.0).expect("in range");
            }
        }
    }
    coo.to_csr()
}

/// 3-D Poisson operator on an `nx x ny x nz` grid (7-point stencil).
pub fn poisson_3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix<f64> {
    let n = nx * ny * nz;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                coo.push(i, i, 6.0).expect("in range");
                if x + 1 < nx {
                    coo.push_sym(i, idx(x + 1, y, z), -1.0).expect("in range");
                }
                if y + 1 < ny {
                    coo.push_sym(i, idx(x, y + 1, z), -1.0).expect("in range");
                }
                if z + 1 < nz {
                    coo.push_sym(i, idx(x, y, z + 1), -1.0).expect("in range");
                }
            }
        }
    }
    coo.to_csr()
}

/// Anisotropic 2-D diffusion: x-coupling 1, y-coupling `eps`. Small `eps`
/// produces the strongly directional systems typical of CFD boundary layers.
pub fn anisotropic_2d(nx: usize, ny: usize, eps: f64) -> CsrMatrix<f64> {
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            coo.push(i, i, 2.0 + 2.0 * eps).expect("in range");
            if x + 1 < nx {
                coo.push_sym(i, idx(x + 1, y), -1.0).expect("in range");
            }
            if y + 1 < ny {
                coo.push_sym(i, idx(x, y + 1), -eps).expect("in range");
            }
        }
    }
    coo.to_csr()
}

/// 9-point 2-D stencil (includes diagonal neighbours) — denser rows, like the
/// biharmonic / graphics problems in the paper's dataset.
pub fn stencil9_2d(nx: usize, ny: usize) -> CsrMatrix<f64> {
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 9 * n);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            coo.push(i, i, 8.0).expect("in range");
            let neighbours: [(isize, isize, f64); 4] =
                [(1, 0, -1.0), (0, 1, -1.0), (1, 1, -0.5), (1, -1, -0.5)];
            for (dx, dy, w) in neighbours {
                let (xx, yy) = (x as isize + dx, y as isize + dy);
                if xx >= 0 && (xx as usize) < nx && yy >= 0 && (yy as usize) < ny {
                    coo.push_sym(i, idx(xx as usize, yy as usize), w).expect("in range");
                }
            }
        }
    }
    coo.to_csr()
}

/// Variable-coefficient 2-D diffusion: each edge weight is drawn from
/// `[lo, hi]`. Models heterogeneous-material FEM/thermal problems; SPD by
/// construction (weighted graph Laplacian plus a small mass term).
pub fn varcoef_2d(nx: usize, ny: usize, lo: f64, hi: f64, seed: u64) -> CsrMatrix<f64> {
    assert!(lo > 0.0 && hi >= lo, "coefficients must be positive");
    let n = nx * ny;
    let mut rng = Rng::new(seed);
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let idx = |x: usize, y: usize| y * nx + x;
    let mut diag = vec![0.0f64; n];
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            if x + 1 < nx {
                let w = rng.range(lo, hi);
                edges.push((i, idx(x + 1, y), w));
            }
            if y + 1 < ny {
                let w = rng.range(lo, hi);
                edges.push((i, idx(x, y + 1), w));
            }
        }
    }
    for &(i, j, w) in &edges {
        diag[i] += w;
        diag[j] += w;
        coo.push_sym(i, j, -w).expect("in range");
    }
    for (i, &d) in diag.iter().enumerate() {
        // Small mass term keeps the matrix strictly positive definite.
        coo.push(i, i, d + 0.01 * (lo + hi)).expect("in range");
    }
    coo.to_csr()
}

/// Laplacian of a random graph with roughly `avg_degree` neighbours per
/// vertex, shifted by `shift` on the diagonal to make it SPD. Models the
/// circuit-simulation / economics matrices of the dataset (irregular
/// structure, no banding).
pub fn graph_laplacian(n: usize, avg_degree: usize, shift: f64, seed: u64) -> CsrMatrix<f64> {
    assert!(shift > 0.0, "shift must be positive for SPD");
    let mut rng = Rng::new(seed);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let m = n * avg_degree / 2;
    for _ in 0..m {
        let a = rng.below(n);
        let b = rng.below(n);
        if a != b {
            edges.push((a.min(b), a.max(b)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let mut coo = CooMatrix::with_capacity(n, n, 2 * edges.len() + n);
    let mut diag = vec![shift; n];
    for &(a, b) in &edges {
        let w = rng.range(0.1, 1.0);
        diag[a] += w;
        diag[b] += w;
        coo.push_sym(a, b, -w).expect("in range");
    }
    for (i, &d) in diag.iter().enumerate() {
        coo.push(i, i, d).expect("in range");
    }
    coo.to_csr()
}

/// Random banded SPD matrix: entries within `band` of the diagonal with the
/// given fill `density`, made SPD by diagonal dominance times `dominance`
/// (> 1 ⇒ well conditioned, → 1 ⇒ ill conditioned).
pub fn banded_spd(
    n: usize,
    band: usize,
    density: f64,
    dominance: f64,
    seed: u64,
) -> CsrMatrix<f64> {
    assert!(dominance > 1.0, "dominance must exceed 1 for SPD by Gershgorin");
    let mut rng = Rng::new(seed);
    let mut coo = CooMatrix::new(n, n);
    let mut row_abs = vec![0.0f64; n];
    for i in 0..n {
        let hi = (i + band).min(n - 1);
        for j in i + 1..=hi {
            if rng.chance(density) {
                let v = rng.range(-1.0, 1.0);
                if v != 0.0 {
                    row_abs[i] += v.abs();
                    row_abs[j] += v.abs();
                    coo.push_sym(i, j, v).expect("in range");
                }
            }
        }
    }
    for (i, &ra) in row_abs.iter().enumerate() {
        coo.push(i, i, ra * dominance + 0.1).expect("in range");
    }
    coo.to_csr()
}

/// Random unstructured SPD matrix with expected off-diagonal `nnz_per_row`,
/// SPD via diagonal dominance.
pub fn random_spd(n: usize, nnz_per_row: usize, dominance: f64, seed: u64) -> CsrMatrix<f64> {
    assert!(dominance > 1.0, "dominance must exceed 1 for SPD by Gershgorin");
    let mut rng = Rng::new(seed);
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    let target = n * nnz_per_row / 2;
    for _ in 0..target {
        let a = rng.below(n);
        let b = rng.below(n);
        if a != b {
            pairs.push((a.min(b), a.max(b), rng.range(-1.0, 1.0)));
        }
    }
    pairs.sort_unstable_by_key(|&(a, b, _)| (a, b));
    pairs.dedup_by_key(|&mut (a, b, _)| (a, b));
    let mut coo = CooMatrix::new(n, n);
    let mut row_abs = vec![0.0f64; n];
    for &(a, b, v) in &pairs {
        row_abs[a] += v.abs();
        row_abs[b] += v.abs();
        coo.push_sym(a, b, v).expect("in range");
    }
    for (i, &ra) in row_abs.iter().enumerate() {
        coo.push(i, i, ra * dominance + 0.1).expect("in range");
    }
    coo.to_csr()
}

/// Deterministic per-edge weight in `[lo, hi]` from the (unordered) node
/// pair and a seed — the same weight for `(i, j)` and `(j, i)`.
fn edge_weight(i: usize, j: usize, lo: f64, hi: f64, seed: u64) -> f64 {
    let (a, b) = (i.min(j) as u64, i.max(j) as u64);
    let mut h =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    lo + (hi - lo) * u
}

/// Rescales an SPD matrix's *off-diagonal* magnitudes by symmetric per-edge
/// factors in `[1/spread, 1]`, keeping the diagonal unchanged, so that
/// magnitude-based sparsification has a meaningful tail of entries that are
/// weak *relative to their rows* (as in real application matrices).
///
/// Weakening off-diagonals of a diagonally-dominant (or M-matrix-like) SPD
/// matrix only increases its dominance margin, so SPD is preserved.
pub fn with_magnitude_spread(a: &CsrMatrix<f64>, spread: f64, seed: u64) -> CsrMatrix<f64> {
    assert!(spread >= 1.0, "spread must be >= 1");
    let mut coo = CooMatrix::with_capacity(a.n_rows(), a.n_cols(), a.nnz());
    for (r, c, v) in a.iter() {
        let w = if r == c { 1.0 } else { edge_weight(r, c, 1.0 / spread, 1.0, seed) };
        coo.push(r, c, v * w).expect("in range");
    }
    coo.to_csr()
}

/// 2-D Poisson operator with weak *interface* couplings: every `period`-th
/// grid line is attached to the next through couplings of magnitude `weak`
/// instead of 1 (layered media / domain-decomposition structure).
///
/// The interface entries are ~`2/(5·period)` of the nonzeros, so a
/// sparsification ratio of that size removes them entirely and the
/// triangular solve's wavefront count collapses from `nx + ny - 1` to
/// roughly `nx + period` — the structure behind the paper's large
/// wavefront-reduction cases (cf. Figure 3).
pub fn layered_poisson_2d(nx: usize, ny: usize, period: usize, weak: f64) -> CsrMatrix<f64> {
    assert!(period >= 2, "period must be at least 2");
    assert!((0.0..1.0).contains(&weak), "weak coupling must be in (0,1)");
    let n = nx * ny;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            // The +0.25 is a reaction/mass term (implicit time stepping):
            // it keeps λ_min well above the interface-coupling magnitude,
            // so dropping interfaces from the preconditioner perturbs
            // M⁻¹A only mildly — the regime where the paper reports
            // unchanged iteration counts.
            coo.push(i, i, 4.25).expect("in range");
            if x + 1 < nx {
                coo.push_sym(i, idx(x + 1, y), -1.0).expect("in range");
            }
            if y + 1 < ny {
                let w = if (y + 1) % period == 0 { weak } else { 1.0 };
                coo.push_sym(i, idx(x, y + 1), -w).expect("in range");
            }
        }
    }
    coo.to_csr()
}

/// 3-D Poisson operator with weak couplings between `period`-thick slabs —
/// the 3-D analogue of [`layered_poisson_2d`].
pub fn layered_poisson_3d(
    nx: usize,
    ny: usize,
    nz: usize,
    period: usize,
    weak: f64,
) -> CsrMatrix<f64> {
    assert!(period >= 2, "period must be at least 2");
    assert!((0.0..1.0).contains(&weak), "weak coupling must be in (0,1)");
    let n = nx * ny * nz;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                // +0.25 reaction/mass term, as in `layered_poisson_2d`.
                coo.push(i, i, 6.25).expect("in range");
                if x + 1 < nx {
                    coo.push_sym(i, idx(x + 1, y, z), -1.0).expect("in range");
                }
                if y + 1 < ny {
                    coo.push_sym(i, idx(x, y + 1, z), -1.0).expect("in range");
                }
                if z + 1 < nz {
                    let w = if (z + 1) % period == 0 { weak } else { 1.0 };
                    coo.push_sym(i, idx(x, y, z + 1), -w).expect("in range");
                }
            }
        }
    }
    coo.to_csr()
}

/// Adds `frac · nnz(A)` extra symmetric entries of tiny magnitude
/// `[-hi, -lo]` between random non-adjacent nodes — the "far-field noise"
/// tail real application matrices carry. The entries are weak enough to be
/// harmless numerically (keep `hi` well below the matrix's diagonal slack)
/// but they add dependence edges, so removing them genuinely shortens
/// wavefronts.
pub fn add_weak_noise(
    a: &CsrMatrix<f64>,
    frac: f64,
    lo: f64,
    hi: f64,
    seed: u64,
) -> CsrMatrix<f64> {
    add_weak_noise_windowed(a, frac, lo, hi, usize::MAX, seed)
}

/// [`add_weak_noise`] restricted to pairs with `|i - j| <= window`.
///
/// Long-range noise edges deepen the dependence DAG aggressively (each one
/// chains distant rows); window-limited noise models matrices whose weak
/// entries stay near the band and perturb wavefronts only mildly.
pub fn add_weak_noise_windowed(
    a: &CsrMatrix<f64>,
    frac: f64,
    lo: f64,
    hi: f64,
    window: usize,
    seed: u64,
) -> CsrMatrix<f64> {
    assert!(0.0 < lo && lo <= hi, "need 0 < lo <= hi");
    let n = a.n_rows();
    let pairs = ((frac * a.nnz() as f64) / 2.0) as usize;
    let mut rng = Rng::new(seed);
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz() + 2 * pairs);
    for (r, c, v) in a.iter() {
        coo.push(r, c, v).expect("in range");
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < pairs && attempts < 40 * pairs + 100 {
        attempts += 1;
        let i = rng.below(n);
        let j = if window >= n {
            rng.below(n)
        } else {
            let lo_j = i.saturating_sub(window);
            let hi_j = (i + window).min(n - 1);
            lo_j + rng.below(hi_j - lo_j + 1)
        };
        if i == j || a.get(i, j).is_some() {
            continue;
        }
        coo.push_sym(i, j, -rng.range(lo, hi)).expect("in range");
        added += 1;
    }
    coo.to_csr()
}

/// Rescales a deterministic `frac` of the off-diagonal edges down to
/// `rel_lo..rel_hi` times their magnitude — the numerically negligible
/// "junk tail" (assembly artifacts, far-field terms) that real application
/// matrices carry. Dropping these entries is numerically free but removes
/// their dependence edges, which is precisely the paper's opportunity.
pub fn with_weak_tail(
    a: &CsrMatrix<f64>,
    frac: f64,
    rel_lo: f64,
    rel_hi: f64,
    seed: u64,
) -> CsrMatrix<f64> {
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0,1]");
    assert!(0.0 < rel_lo && rel_lo <= rel_hi && rel_hi < 1.0, "need 0 < lo <= hi < 1");
    let mut coo = CooMatrix::with_capacity(a.n_rows(), a.n_cols(), a.nnz());
    for (r, c, v) in a.iter() {
        let w = if r != c && edge_weight(r, c, 0.0, 1.0, seed) < frac {
            edge_weight(r, c, rel_lo, rel_hi, seed ^ 0x77)
        } else {
            1.0
        };
        coo.push(r, c, v * w).expect("in range");
    }
    coo.to_csr()
}

/// Weakens "long" edges (`|i - j| >= min_dist`) by symmetric per-edge
/// factors in `[1/spread, 1]`, keeping short-range couplings and the
/// diagonal unchanged.
///
/// On grid stencils the long edges are the cross-line couplings that carry
/// the lower triangle's dependence chains, so weakening them makes the
/// magnitude-based sparsifier remove exactly the entries whose removal
/// collapses wavefronts — the structure the paper exploits.
pub fn weaken_long_edges(
    a: &CsrMatrix<f64>,
    min_dist: usize,
    spread: f64,
    seed: u64,
) -> CsrMatrix<f64> {
    assert!(spread >= 1.0, "spread must be >= 1");
    let mut coo = CooMatrix::with_capacity(a.n_rows(), a.n_cols(), a.nnz());
    for (r, c, v) in a.iter() {
        let w = if r != c && r.abs_diff(c) >= min_dist {
            edge_weight(r, c, 1.0 / spread, 1.0 / spread.sqrt(), seed)
        } else {
            1.0
        };
        coo.push(r, c, v * w).expect("in range");
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::condition_2norm_dense;

    fn assert_spd_small(a: &CsrMatrix<f64>) {
        assert!(a.is_symmetric(1e-12), "not symmetric");
        let eig = crate::cond::sym_eigenvalues_dense(&a.to_dense());
        assert!(eig[0] > 0.0, "not positive definite: min eig {}", eig[0]);
    }

    #[test]
    fn poisson_1d_structure() {
        let a = poisson_1d(5);
        assert_eq!(a.nnz(), 13);
        assert_spd_small(&a);
    }

    #[test]
    fn poisson_2d_is_spd() {
        let a = poisson_2d(4, 5);
        assert_eq!(a.n_rows(), 20);
        assert_spd_small(&a);
        // interior point has 5 nonzeros
        assert_eq!(a.row_nnz(5), 5);
    }

    #[test]
    fn poisson_3d_is_spd() {
        let a = poisson_3d(3, 3, 3);
        assert_eq!(a.n_rows(), 27);
        assert_spd_small(&a);
        // center point (1,1,1) has 7 nonzeros
        assert_eq!(a.row_nnz(13), 7);
    }

    #[test]
    fn anisotropic_is_spd_and_directional() {
        let a = anisotropic_2d(4, 4, 0.01);
        assert_spd_small(&a);
        // y-coupling entries are tiny compared to x-coupling
        assert_eq!(a.get(0, 4), Some(-0.01));
        assert_eq!(a.get(0, 1), Some(-1.0));
    }

    #[test]
    fn stencil9_is_spd() {
        let a = stencil9_2d(4, 4);
        assert_spd_small(&a);
        // interior point has 9 nonzeros
        assert_eq!(a.row_nnz(5), 9);
    }

    #[test]
    fn varcoef_is_spd() {
        let a = varcoef_2d(4, 4, 0.5, 2.0, 42);
        assert_spd_small(&a);
    }

    #[test]
    fn graph_laplacian_is_spd() {
        let a = graph_laplacian(30, 4, 0.5, 7);
        assert_spd_small(&a);
    }

    #[test]
    fn banded_is_spd_and_banded() {
        let a = banded_spd(25, 3, 0.8, 1.5, 11);
        assert_spd_small(&a);
        assert!(a.bandwidth() <= 3);
    }

    #[test]
    fn random_spd_is_spd() {
        let a = random_spd(30, 4, 1.3, 13);
        assert_spd_small(&a);
    }

    #[test]
    fn dominance_controls_conditioning() {
        let well = banded_spd(20, 3, 0.9, 4.0, 1);
        let ill = banded_spd(20, 3, 0.9, 1.05, 1);
        let cw = condition_2norm_dense(&well.to_dense()).unwrap();
        let ci = condition_2norm_dense(&ill.to_dense()).unwrap();
        assert!(ci > cw, "ill {ci} should exceed well {cw}");
    }

    #[test]
    fn magnitude_spread_preserves_spd_and_diagonal() {
        let a = poisson_2d(5, 5);
        let b = with_magnitude_spread(&a, 4.0, 3);
        assert_spd_small(&b);
        assert_eq!(a.nnz(), b.nnz());
        assert_eq!(a.diag(), b.diag());
        // off-diagonal values now vary in magnitude, symmetrically
        assert!(b.is_symmetric(0.0));
        let vals: Vec<f64> =
            b.values().iter().map(|v| v.abs()).filter(|&v| v < 1.0 && v > 0.0).collect();
        assert!(!vals.is_empty());
    }

    #[test]
    fn weaken_long_edges_targets_cross_line_couplings() {
        let a = poisson_2d(6, 6);
        let b = weaken_long_edges(&a, 2, 5.0, 7);
        assert_spd_small(&b);
        // x-couplings (distance 1) unchanged, y-couplings (distance 6) weakened
        assert_eq!(b.get(0, 1), Some(-1.0));
        let y = b.get(0, 6).unwrap().abs();
        assert!((0.2..0.5).contains(&y), "y-coupling {y}");
        assert_eq!(a.diag(), b.diag());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(banded_spd(20, 4, 0.7, 2.0, 9), banded_spd(20, 4, 0.7, 2.0, 9));
        assert_eq!(graph_laplacian(20, 3, 1.0, 9), graph_laplacian(20, 3, 1.0, 9));
        assert_ne!(banded_spd(20, 4, 0.7, 2.0, 9), banded_spd(20, 4, 0.7, 2.0, 10));
    }
}
