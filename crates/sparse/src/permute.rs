//! Symmetric orderings. Reverse Cuthill–McKee (RCM) is used by the matrix
//! generators to produce realistic banded structures, and by experiments that
//! study how ordering interacts with wavefront counts.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use std::collections::VecDeque;

/// Computes a reverse Cuthill–McKee ordering of a square matrix's adjacency
/// structure (the matrix is treated as an undirected graph via `A + Aᵀ`).
///
/// Returns `perm` with `perm[new] = old`, suitable for
/// [`CsrMatrix::permute_sym`].
pub fn reverse_cuthill_mckee<T: Scalar>(a: &CsrMatrix<T>) -> Vec<usize> {
    assert!(a.is_square(), "RCM requires a square matrix");
    let n = a.n_rows();
    // Build symmetric adjacency (without self loops).
    let at = a.transpose();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, c, _) in a.iter().chain(at.iter()) {
        if r != c {
            adj[r].push(c);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();

    // Process every connected component, starting each from a minimum-degree
    // vertex (a cheap pseudo-peripheral heuristic).
    while let Some(start) = (0..n).filter(|&v| !visited[v]).min_by_key(|&v| degree[v]) {
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            nbrs.sort_unstable_by_key(|&u| degree[u]);
            for u in nbrs {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

/// Bandwidth of the matrix after applying `perm` (without materializing the
/// permuted matrix).
pub fn permuted_bandwidth<T: Scalar>(a: &CsrMatrix<T>, perm: &[usize]) -> usize {
    let n = a.n_rows();
    let mut inv = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    a.iter().map(|(r, c, _)| inv[r].abs_diff(inv[c])).max().unwrap_or(0)
}

/// The identity permutation.
pub fn identity_perm(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// A deterministic pseudo-random permutation (used to *destroy* banding when
/// generating wavefront-poor test matrices).
pub fn scrambled_perm(n: usize, seed: u64) -> Vec<usize> {
    let mut perm = identity_perm(n);
    crate::rng::Rng::new(seed).shuffle(&mut perm);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn ring(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            coo.push_sym(i, (i + 1) % n, -1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = ring(12);
        let p = reverse_cuthill_mckee(&a);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scrambled_matrix() {
        let a = ring(64);
        let scrambled = a.permute_sym(&scrambled_perm(64, 99)).unwrap();
        let before = scrambled.bandwidth();
        let p = reverse_cuthill_mckee(&scrambled);
        let after = permuted_bandwidth(&scrambled, &p);
        assert!(after < before, "bandwidth {before} -> {after}");
        assert!(after <= 3, "ring graph should become nearly tridiagonal, got {after}");
    }

    #[test]
    fn permuted_bandwidth_matches_materialized() {
        let a = ring(32);
        let p = scrambled_perm(32, 5);
        let direct = a.permute_sym(&p).unwrap().bandwidth();
        // permute_sym uses perm[new]=old with inv mapping — verify agreement.
        assert_eq!(permuted_bandwidth(&a, &p), direct);
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        let mut coo = CooMatrix::<f64>::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(3, 4, -1.0).unwrap();
        let a = coo.to_csr();
        let p = reverse_cuthill_mckee(&a);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }
}
