//! Symmetric orderings. Reverse Cuthill–McKee (RCM) is used by the matrix
//! generators to produce realistic banded structures, and by experiments that
//! study how ordering interacts with wavefront counts.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use std::collections::VecDeque;

/// Symmetric adjacency lists of `A + Aᵀ` without self loops — the
/// undirected graph every ordering here works on.
fn symmetric_adjacency<T: Scalar>(a: &CsrMatrix<T>) -> Vec<Vec<usize>> {
    let n = a.n_rows();
    let at = a.transpose();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (r, c, _) in a.iter().chain(at.iter()) {
        if r != c {
            adj[r].push(c);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// Computes a reverse Cuthill–McKee ordering of a square matrix's adjacency
/// structure (the matrix is treated as an undirected graph via `A + Aᵀ`).
///
/// Returns `perm` with `perm[new] = old`, suitable for
/// [`CsrMatrix::permute_sym`].
pub fn reverse_cuthill_mckee<T: Scalar>(a: &CsrMatrix<T>) -> Vec<usize> {
    assert!(a.is_square(), "RCM requires a square matrix");
    let n = a.n_rows();
    let adj = symmetric_adjacency(a);
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();

    // Process every connected component, starting each from a minimum-degree
    // vertex (a cheap pseudo-peripheral heuristic).
    while let Some(start) = (0..n).filter(|&v| !visited[v]).min_by_key(|&v| degree[v]) {
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            nbrs.sort_unstable_by_key(|&u| degree[u]);
            for u in nbrs {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

/// Computes a greedy graph-coloring ordering: vertices are first-fit
/// colored on `A + Aᵀ` in natural order, then listed color block by color
/// block (stable within a block).
///
/// Rows sharing a color are pairwise non-adjacent, so in the permuted
/// matrix every lower-triangle dependency of a row lands in a strictly
/// earlier color block: the wavefront level of any row is bounded by its
/// block index, and the triangular-solve level count of an ILU(0) factor
/// (whose pattern equals the matrix pattern) is at most the number of
/// colors. On mesh-like matrices that flattens hundreds of levels into a
/// handful — the level-set analogue of red-black ordering.
///
/// Returns `perm` with `perm[new] = old`, suitable for
/// [`CsrMatrix::permute_sym`].
pub fn greedy_color_perm<T: Scalar>(a: &CsrMatrix<T>) -> Vec<usize> {
    assert!(a.is_square(), "coloring requires a square matrix");
    let n = a.n_rows();
    let adj = symmetric_adjacency(a);
    let mut color = vec![usize::MAX; n];
    // mark[c] == v means color c is taken by a neighbor of the vertex
    // currently being colored; reusing one array keeps the sweep O(E).
    let mut mark = vec![usize::MAX; n.max(1)];
    let mut n_colors = 0usize;
    for v in 0..n {
        for &u in &adj[v] {
            if color[u] != usize::MAX {
                mark[color[u]] = v;
            }
        }
        let c = (0..n).find(|&c| mark[c] != v).expect("first-fit color always exists");
        color[v] = c;
        n_colors = n_colors.max(c + 1);
    }
    // Stable counting sort by color: perm[new] = old.
    let mut offsets = vec![0usize; n_colors + 1];
    for &c in &color {
        offsets[c + 1] += 1;
    }
    for c in 0..n_colors {
        offsets[c + 1] += offsets[c];
    }
    let mut perm = vec![0usize; n];
    for (v, &c) in color.iter().enumerate() {
        perm[offsets[c]] = v;
        offsets[c] += 1;
    }
    perm
}

/// Inverts a permutation given as `perm[new] = old`, returning
/// `inv[old] = new` (applying `inv` undoes `perm`).
pub fn inverse_perm(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    inv
}

/// Bandwidth of the matrix after applying `perm` (without materializing the
/// permuted matrix).
pub fn permuted_bandwidth<T: Scalar>(a: &CsrMatrix<T>, perm: &[usize]) -> usize {
    let n = a.n_rows();
    let mut inv = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    a.iter().map(|(r, c, _)| inv[r].abs_diff(inv[c])).max().unwrap_or(0)
}

/// The identity permutation.
pub fn identity_perm(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// A deterministic pseudo-random permutation (used to *destroy* banding when
/// generating wavefront-poor test matrices).
pub fn scrambled_perm(n: usize, seed: u64) -> Vec<usize> {
    let mut perm = identity_perm(n);
    crate::rng::Rng::new(seed).shuffle(&mut perm);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn ring(n: usize) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
            coo.push_sym(i, (i + 1) % n, -1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = ring(12);
        let p = reverse_cuthill_mckee(&a);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scrambled_matrix() {
        let a = ring(64);
        let scrambled = a.permute_sym(&scrambled_perm(64, 99)).unwrap();
        let before = scrambled.bandwidth();
        let p = reverse_cuthill_mckee(&scrambled);
        let after = permuted_bandwidth(&scrambled, &p);
        assert!(after < before, "bandwidth {before} -> {after}");
        assert!(after <= 3, "ring graph should become nearly tridiagonal, got {after}");
    }

    #[test]
    fn permuted_bandwidth_matches_materialized() {
        let a = ring(32);
        let p = scrambled_perm(32, 5);
        let direct = a.permute_sym(&p).unwrap().bandwidth();
        // permute_sym uses perm[new]=old with inv mapping — verify agreement.
        assert_eq!(permuted_bandwidth(&a, &p), direct);
    }

    #[test]
    fn coloring_is_a_permutation() {
        let a = ring(17);
        let p = greedy_color_perm(&a);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..17).collect::<Vec<_>>());
    }

    /// Lower-triangle wavefront level count of `m`, computed the direct
    /// way: `level[i] = 1 + max(level[j])` over stored `j < i` in row `i`.
    fn lower_levels(m: &CsrMatrix<f64>) -> usize {
        let n = m.n_rows();
        let mut level = vec![0usize; n];
        let mut max_level = 0;
        for (r, c, _) in m.iter() {
            if c < r {
                level[r] = level[r].max(level[c] + 1);
            }
        }
        for &l in &level {
            max_level = max_level.max(l + 1);
        }
        max_level
    }

    #[test]
    fn coloring_flattens_triangular_levels() {
        // An even-length ring is 2-colorable: after the coloring
        // permutation every row's earlier neighbors lie in a strictly
        // earlier color block, so the lower triangle has at most 2 levels.
        // The natural ordering chains nearly the whole ring.
        let a = ring(64);
        let natural = lower_levels(&a);
        let p = greedy_color_perm(&a);
        let colored = lower_levels(&a.permute_sym(&p).unwrap());
        assert!(colored <= 2, "2-colorable graph should yield <= 2 levels, got {colored}");
        assert!(colored < natural, "coloring must flatten levels: {natural} -> {colored}");
    }

    #[test]
    fn inverse_perm_round_trips() {
        let p = scrambled_perm(40, 7);
        let inv = inverse_perm(&p);
        for (new, &old) in p.iter().enumerate() {
            assert_eq!(inv[old], new);
        }
        let a = ring(40);
        let there = a.permute_sym(&p).unwrap();
        let back = there.permute_sym(&inv).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        let mut coo = CooMatrix::<f64>::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(3, 4, -1.0).unwrap();
        let a = coo.to_csr();
        let p = reverse_cuthill_mckee(&a);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }
}
