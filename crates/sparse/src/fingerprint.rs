//! Content fingerprints for CSR matrices.
//!
//! A [`MatrixFingerprint`] identifies a linear system for plan-cache
//! purposes: two matrices with the same fingerprint may share the analysis
//! (sparsification decision, incomplete factors, level schedules) computed
//! for one of them. It is the concatenation of
//!
//! * a **structure hash** over the dimensions, `row_ptr`, and `col_idx`
//!   arrays — the sparsity pattern that determines the level schedules; and
//! * a **value digest** over the bit patterns of the stored values — two
//!   systems with identical sparsity but different values must *never*
//!   share numeric factors, so the digest is part of the identity.
//!
//! Both are FNV-1a-style 64-bit hashes computed in one allocation-free
//! sweep. Collisions are theoretically possible, as with any hashing
//! scheme; a cache keyed on fingerprints trades that (astronomically
//! unlikely) risk for O(nnz) identification instead of O(nnz) comparison
//! against every cached matrix.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

#[inline]
fn fnv1a_u64(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Identity of a CSR matrix for caching: structure hash + value digest.
///
/// `Eq`/`Hash` cover every field, so a fingerprint can key a `HashMap`
/// directly. Construction is allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatrixFingerprint {
    /// FNV-1a hash of dimensions, `row_ptr`, and `col_idx`.
    pub structure: u64,
    /// FNV-1a hash of the stored values' bit patterns (via
    /// [`Scalar::to_f64`], exact for `f32`/`f64`).
    pub values: u64,
    /// Number of rows, kept verbatim as a cheap first-level discriminator.
    pub n_rows: usize,
    /// Number of stored entries, ditto.
    pub nnz: usize,
}

impl MatrixFingerprint {
    /// Computes the fingerprint of `a` in one pass over its arrays.
    pub fn of<T: Scalar>(a: &CsrMatrix<T>) -> Self {
        let mut s = FNV_OFFSET;
        s = fnv1a_u64(s, a.n_rows() as u64);
        s = fnv1a_u64(s, a.n_cols() as u64);
        for &p in a.row_ptr() {
            s = fnv1a_u64(s, p as u64);
        }
        for &c in a.col_idx() {
            s = fnv1a_u64(s, c as u64);
        }
        let mut v = FNV_OFFSET;
        for &x in a.values() {
            v = fnv1a_u64(v, x.to_f64().to_bits());
        }
        Self { structure: s, values: v, n_rows: a.n_rows(), nnz: a.nnz() }
    }

    /// `true` when the two fingerprints share the sparsity pattern
    /// (regardless of values) — the precondition for reusing symbolic
    /// analysis such as level schedules.
    pub fn same_structure(&self, other: &Self) -> bool {
        self.structure == other.structure && self.n_rows == other.n_rows && self.nnz == other.nnz
    }
}

impl fmt::Display for MatrixFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}:{:016x}", self.structure, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::poisson_2d;

    #[test]
    fn identical_matrices_agree() {
        let a = poisson_2d(8, 8);
        let b = poisson_2d(8, 8);
        assert_eq!(MatrixFingerprint::of(&a), MatrixFingerprint::of(&b));
    }

    #[test]
    fn different_structure_differs() {
        let a = poisson_2d(8, 8);
        let b = poisson_2d(8, 9);
        let (fa, fb) = (MatrixFingerprint::of(&a), MatrixFingerprint::of(&b));
        assert_ne!(fa, fb);
        assert!(!fa.same_structure(&fb));
    }

    #[test]
    fn same_structure_different_values_differs() {
        let a = poisson_2d(8, 8);
        let b = a.map_values(|v| v * 2.0);
        let (fa, fb) = (MatrixFingerprint::of(&a), MatrixFingerprint::of(&b));
        assert!(fa.same_structure(&fb), "pattern unchanged by scaling");
        assert_eq!(fa.structure, fb.structure);
        assert_ne!(fa.values, fb.values, "value digest must separate them");
        assert_ne!(fa, fb);
    }

    #[test]
    fn one_entry_flip_changes_digest() {
        let a = poisson_2d(6, 6);
        let mut b = a.clone();
        b.values_mut()[7] += 1e-12;
        assert_ne!(MatrixFingerprint::of(&a).values, MatrixFingerprint::of(&b).values);
    }

    #[test]
    fn display_is_stable_hex() {
        let a = poisson_2d(4, 4);
        let f = MatrixFingerprint::of(&a);
        let shown = format!("{f}");
        assert_eq!(shown.len(), 33);
        assert_eq!(shown, format!("{:016x}:{:016x}", f.structure, f.values));
    }

    #[test]
    fn f32_and_f64_representable_values_agree() {
        // to_f64 is exact for f32, so a matrix whose values are all exactly
        // representable in f32 fingerprints identically at both precisions.
        let a = poisson_2d(5, 5); // stencil values: 4.0 / -1.0
        let a32 = a.cast::<f32>();
        assert_eq!(MatrixFingerprint::of(&a).values, MatrixFingerprint::of(&a32).values);
    }
}
