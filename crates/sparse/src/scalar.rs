//! Floating-point abstraction so every kernel in the workspace is generic over
//! `f32` (the precision the paper evaluates in) and `f64` (used by most tests
//! to pin algorithmic correctness independent of rounding).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable in every sparse kernel of this workspace.
///
/// The trait is deliberately small: just the arithmetic the solvers need plus
/// lossless round-trips through `f64` for accumulating statistics.
pub trait Scalar:
    Copy
    + Debug
    + Display
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// The next-lower precision in the lossy-conversion chain — the storage
    /// type mixed-precision tiers demote factors into. `f64::Lower = f32`;
    /// `f32` is the floor of the chain, so `f32::Lower = f32` and its
    /// demote/promote round-trip is exact. Future `f16`/`bf16` tiers extend
    /// the chain here without touching any downstream signature.
    type Lower: Scalar;

    /// Lossy narrowing into [`Scalar::Lower`] (rounds to nearest).
    fn demote(self) -> Self::Lower;
    /// Exact widening back from [`Scalar::Lower`].
    fn promote(v: Self::Lower) -> Self;

    /// Machine epsilon of the underlying representation.
    fn epsilon() -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// `true` when the value is NaN or infinite.
    fn is_bad(self) -> bool;
    /// Widen to `f64` (exact for both supported types).
    fn to_f64(self) -> f64;
    /// Narrow from `f64` (rounds for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Largest finite value.
    fn max_value() -> Self;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    type Lower = f32;

    #[inline]
    fn demote(self) -> f32 {
        self
    }
    #[inline]
    fn promote(v: f32) -> Self {
        v
    }
    #[inline]
    fn epsilon() -> Self {
        f32::EPSILON
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn is_bad(self) -> bool {
        !self.is_finite()
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn max_value() -> Self {
        f32::MAX
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    type Lower = f32;

    #[inline]
    fn demote(self) -> f32 {
        self as f32
    }
    #[inline]
    fn promote(v: f32) -> Self {
        v as f64
    }
    #[inline]
    fn epsilon() -> Self {
        f64::EPSILON
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn is_bad(self) -> bool {
        !self.is_finite()
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn max_value() -> Self {
        f64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>(v: f64) -> f64 {
        T::from_f64(v).to_f64()
    }

    #[test]
    fn f64_roundtrip_is_exact() {
        for v in [0.0, 1.0, -3.5, 1e300, f64::MIN_POSITIVE] {
            assert_eq!(roundtrip::<f64>(v), v);
        }
    }

    #[test]
    fn f32_roundtrip_of_representable_values() {
        for v in [0.0, 1.0, -3.5, 0.25, 1024.0] {
            assert_eq!(roundtrip::<f32>(v), v);
        }
    }

    #[test]
    fn bad_detection() {
        assert!(f64::NAN.is_bad());
        assert!(f64::INFINITY.is_bad());
        assert!(!1.0f64.is_bad());
        assert!(f32::NAN.is_bad());
        assert!((-f32::INFINITY).is_bad());
    }

    #[test]
    fn constants_behave() {
        assert_eq!(f64::ZERO + f64::ONE, 1.0);
        assert_eq!(f32::ZERO + f32::ONE, 1.0);
        assert!(f64::epsilon() > 0.0);
    }

    #[test]
    fn demote_promote_chain() {
        // f64 -> f32 rounds; promoting back is exact widening.
        let v = 0.1f64;
        let lo = v.demote();
        assert_eq!(lo, 0.1f32);
        assert_eq!(f64::promote(lo), 0.1f32 as f64);
        // Representable values round-trip exactly.
        for v in [0.0f64, 1.0, -3.5, 0.25, 1024.0] {
            assert_eq!(f64::promote(v.demote()), v);
        }
        // f32 is the floor of the chain: demote is the identity.
        assert_eq!(2.5f32.demote(), 2.5f32);
        assert_eq!(f32::promote(2.5f32), 2.5f32);
    }

    #[test]
    fn abs_and_sqrt() {
        assert_eq!((-2.0f64).abs(), 2.0);
        assert_eq!(4.0f64.sqrt(), 2.0);
        assert_eq!((-2.0f32).abs(), 2.0);
        assert_eq!(9.0f32.sqrt(), 3.0);
    }
}
