//! Error type shared by the sparse substrate.

use std::fmt;

/// Errors produced while constructing or manipulating sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column index is outside the declared shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows in the matrix.
        n_rows: usize,
        /// Number of columns in the matrix.
        n_cols: usize,
    },
    /// Raw CSR arrays are inconsistent (lengths, monotonicity, sortedness).
    InvalidStructure(String),
    /// The operation needs a square matrix.
    NotSquare {
        /// Number of rows.
        n_rows: usize,
        /// Number of columns.
        n_cols: usize,
    },
    /// A zero (or missing) diagonal entry was found where one is required.
    ZeroDiagonal {
        /// Row with the missing/zero pivot.
        row: usize,
    },
    /// Dimension mismatch between operands.
    DimensionMismatch(String),
    /// Failure while parsing an external format (e.g. Matrix Market).
    Parse(String),
    /// I/O failure while reading/writing matrix files.
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, n_rows, n_cols } => {
                write!(f, "entry ({row}, {col}) outside matrix shape {n_rows}x{n_cols}")
            }
            SparseError::InvalidStructure(msg) => write!(f, "invalid CSR structure: {msg}"),
            SparseError::NotSquare { n_rows, n_cols } => {
                write!(f, "operation requires a square matrix, got {n_rows}x{n_cols}")
            }
            SparseError::ZeroDiagonal { row } => {
                write!(f, "zero or missing diagonal entry at row {row}")
            }
            SparseError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            SparseError::Parse(msg) => write!(f, "parse error: {msg}"),
            SparseError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

/// Convenience alias used across the substrate.
pub type Result<T> = std::result::Result<T, SparseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds { row: 5, col: 7, n_rows: 4, n_cols: 4 };
        assert!(e.to_string().contains("(5, 7)"));
        let e = SparseError::NotSquare { n_rows: 3, n_cols: 4 };
        assert!(e.to_string().contains("3x4"));
        let e = SparseError::ZeroDiagonal { row: 2 };
        assert!(e.to_string().contains("row 2"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
    }
}
